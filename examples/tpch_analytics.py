"""TPC-H on three storage systems: the Section VI-B evaluation in miniature.

Loads ``lineitem``/``orders`` into Hive(HDFS), Hive(HBase) and DualTable,
then runs the paper's read queries (Q1, Q12, COUNT) and DML statements
(DML-a/b/c) on each, printing a side-by-side comparison.

Run with::

    python examples/tpch_analytics.py
"""

from repro.bench.runners import SCALES, tpch_session
from repro.common.units import fmt_seconds
from repro.workloads import tpch

SYSTEMS = [
    ("Hive(HDFS)", "orc", None),
    ("Hive(HBase)", "hbase", None),
    ("DualTable", "dualtable", "cost"),
]

SCALE = SCALES["tiny"]


def section(title):
    print()
    print(title)
    print("-" * len(title))


def main():
    section("Read queries (Figure 11): Q1, Q12, full count")
    queries = [("Q1 (pricing summary)", tpch.QUERY_A_Q1),
               ("Q12 (shipping modes)", tpch.QUERY_B_Q12),
               ("count(*)", tpch.QUERY_C_COUNT)]
    for label, storage, mode in SYSTEMS:
        session = tpch_session(storage, SCALE, mode=mode)
        times = []
        for _, sql in queries:
            times.append(session.execute(sql).sim_seconds)
        print("   %-12s " % label
              + "  ".join("%s=%s" % (q[0].split()[0], fmt_seconds(t))
                          for q, t in zip(queries, times)))

    section("Q1 output (same on every system)")
    session = tpch_session("dualtable", SCALE, mode="cost")
    result = session.execute(tpch.QUERY_A_Q1)
    header = "   %-4s %-4s %10s %12s %8s" % ("flag", "stat", "sum_qty",
                                             "sum_price", "orders")
    print(header)
    for row in result.rows:
        print("   %-4s %-4s %10.0f %12.0f %8d"
              % (row[0], row[1], row[2], row[3], row[9]))

    section("DML statements (Figure 12): update 5%, delete 2%, join-update")
    statements = [("DML-a", tpch.dml_a_sql()),
                  ("DML-b", tpch.dml_b_sql()),
                  ("DML-c", tpch.dml_c_sql(SCALE.tpch_orders))]
    for label, storage, mode in SYSTEMS:
        parts = []
        for stmt_label, sql in statements:
            session = tpch_session(storage, SCALE, mode=mode)
            result = session.execute(sql)
            parts.append("%s=%s" % (stmt_label,
                                    fmt_seconds(result.sim_seconds)))
        print("   %-12s %s" % (label, "  ".join(parts)))

    section("Read-after-update (Figures 15/16): the UnionRead tax")
    for ratio in (0.01, 0.10, 0.30, 0.50):
        session = tpch_session("dualtable", SCALE, mode="edit",
                               tables=("lineitem",))
        session.execute(tpch.update_ratio_sql(ratio))
        read = session.execute(tpch.FULL_SCAN_SQL)
        print("   after %4.0f%% updates: full scan = %s"
              % (100 * ratio, fmt_seconds(read.sim_seconds)))
    print()
    print("COMPACT removes the tax:")
    session.execute("COMPACT TABLE lineitem")
    read = session.execute(tpch.FULL_SCAN_SQL)
    print("   after COMPACT:        full scan = %s"
          % fmt_seconds(read.sim_seconds))


if __name__ == "__main__":
    main()
