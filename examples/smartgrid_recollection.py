"""Smart-grid scenario: the data-recollection workflow of Section II.

The Zhejiang Grid collection system appends meter data day after day;
when recollection happens (missing/erroneous data), it must *update* a
small slice of an enormous table.  This example compares the three ways
to run that update:

* Hive(HDFS):       INSERT OVERWRITE — rewrite the whole table,
* DualTable EDIT:   write deltas into the HBase Attached Table,
* DualTable (cost): let the cost model decide per statement.

Run with::

    python examples/smartgrid_recollection.py
"""

from repro.bench.runners import SCALES, grid_session
from repro.common.units import fmt_seconds
from repro.workloads import smartgrid


def run_system(label, storage, mode, n_days):
    session = grid_session(storage, SCALES["tiny"], ["tj_gbsjwzl_mx"],
                           mode=mode)
    update = session.execute(smartgrid.update_days_sql(n_days))
    read = session.execute(smartgrid.FOLLOWING_SELECT_SQL)
    plan = update.detail.get("plan", update.plan)
    print("   %-22s update=%-10s read-after=%-10s plan=%-9s rows=%d"
          % (label, fmt_seconds(update.sim_seconds),
             fmt_seconds(read.sim_seconds), plan, update.affected))
    return update.sim_seconds


def main():
    print("Recollecting 1 day out of 36 (ratio 2.8%) — the common case:")
    hive = run_system("Hive(HDFS)", "orc", None, 1)
    edit = run_system("DualTable EDIT", "dualtable", "edit", 1)
    run_system("DualTable cost-model", "dualtable", "cost", 1)
    print("   -> DualTable speedup over Hive: %.1fx\n" % (hive / edit))

    print("Recollecting 17 of 36 days (ratio 47%) — a bulk rebuild:")
    hive = run_system("Hive(HDFS)", "orc", None, 17)
    edit = run_system("DualTable EDIT", "dualtable", "edit", 17)
    run_system("DualTable cost-model", "dualtable", "cost", 17)
    print("   -> pure EDIT is now %.1fx *slower* than Hive;"
          " the cost model falls back to OVERWRITE.\n" % (edit / hive))

    print("The eight production statements of Table IV (U#1-D#4):")
    for stmt in smartgrid.TABLE4_STATEMENTS:
        session = grid_session("dualtable", SCALES["tiny"],
                               [stmt["table"]], mode="cost")
        result = session.execute(stmt["sql"])
        print("   %-4s %-14s ratio=%-7s plan=%-9s %s"
              % (stmt["id"], stmt["table"],
                 "%.2f%%" % (stmt["ratio"] * 100),
                 result.detail.get("plan", result.plan),
                 fmt_seconds(result.sim_seconds)))


if __name__ == "__main__":
    main()
