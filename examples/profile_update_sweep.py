"""Profile an UPDATE-ratio sweep and audit the Section-IV cost model.

Runs a sequence of UPDATEs of increasing selectivity against a DualTable
TPC-H ``lineitem`` with tracing enabled, then:

* prints the cost-model audit for each statement — the model's predicted
  cost of the chosen plan vs the ledger-observed simulated seconds;
* asserts the mean relative error stays inside ``REL_ERROR_BOUND``
  (the model ignores job startup and per-task overhead, so some gap is
  expected — what we check is that it stays *bounded*);
* writes the collected spans to ``update_sweep.trace.json`` (load it in
  ``about:tracing`` or Perfetto) and validates its structure.

Run with::

    PYTHONPATH=src python examples/profile_update_sweep.py
"""

from repro import obs
from repro.bench.runners import SCALES, tpch_session
from repro.obs.export import validate_trace

#: The model omits fixed MapReduce overheads (job startup, task launch),
#: so some gap is expected — observed mean error at tiny scale is ~6%;
#: the bound leaves slack for scale changes while still catching a
#: broken model (which shows errors of 5-10x).
REL_ERROR_BOUND = 0.25

SWEEP = [
    ("l_orderkey <= %d", 0.02),
    ("l_orderkey <= %d", 0.10),
    ("l_orderkey <= %d", 0.30),
    ("l_orderkey <= %d", 0.60),
]


def run_sweep():
    scale = SCALES["tiny"]
    with obs.profiling() as collector:
        session = tpch_session("dualtable", scale)
        total = session.execute(
            "SELECT MAX(l_orderkey) FROM lineitem").scalar()
        audits = []
        print("%8s %8s %12s %12s %10s" % ("target", "plan", "predicted",
                                          "observed", "rel_error"))
        for template, fraction in SWEEP:
            where = template % int(total * fraction)
            result = session.execute(
                "UPDATE lineitem SET l_comment = 'audited' WHERE " + where)
            audit = result.detail["audit"]
            audits.append(audit)
            print("%7.0f%% %8s %11.2fs %11.2fs %9.1f%%"
                  % (100 * fraction, audit["plan"],
                     audit["predicted_seconds"], audit["observed_seconds"],
                     100 * audit["rel_error"]))
    return collector, audits


def main():
    collector, audits = run_sweep()
    mean_err = sum(a["rel_error"] for a in audits) / len(audits)
    print("\nmean relative error: %.1f%% (bound: %.0f%%)"
          % (100 * mean_err, 100 * REL_ERROR_BOUND))
    assert mean_err <= REL_ERROR_BOUND, (
        "cost model drifted: mean rel_error %.2f > %.2f"
        % (mean_err, REL_ERROR_BOUND))

    doc = collector.trace_document()
    errors = validate_trace(
        doc, require_kinds=("statement", "job", "task", "substrate"))
    assert not errors, "invalid trace: %s" % errors[:5]
    path = "update_sweep.trace.json"
    obs.export.write_trace(path, doc)
    nspans = sum(1 for ev in doc["traceEvents"] if ev.get("ph") == "X")
    print("wrote %s (%d spans) — structure valid" % (path, nspans))


if __name__ == "__main__":
    main()
