"""Quickstart: create a DualTable, update it, and watch the cost model.

Run with::

    python examples/quickstart.py
"""

from repro.bench.runners import bench_profile
from repro import HiveSession
from repro.common.units import fmt_bytes, fmt_seconds


def main():
    # One session = one simulated cluster (HDFS + HBase + MapReduce).
    # byte_scale/op_scale make the 10k generated rows stand for a
    # production-sized table (~200M narrow rows) so the cost model sees
    # realistic data volumes.
    profile = bench_profile("quickstart")
    profile.byte_scale = 100_000
    profile.op_scale = 20_000
    session = HiveSession(profile=profile)

    print("1. Create a DualTable and load some meter readings")
    # Grid tables are wide (50+ columns in production); the extra
    # payload columns below are what makes INSERT OVERWRITE so painful.
    session.execute("""
        CREATE TABLE readings (
            meter_id int, day date, kwh double, status string,
            voltage double, current double, phase string, org string,
            terminal string, fw string, lat double, lon double
        ) STORED AS DUALTABLE
        TBLPROPERTIES ('orc.rows_per_file' = '2000',
                       'orc.stripe_rows' = '500')
    """)
    rows = [(i, "2013-07-%02d" % (1 + i % 28), i * 0.25, "ok",
             220.0 + i % 10, 5.0 + (i % 7) * 0.1, "L%d" % (i % 3),
             "org%02d" % (i % 20), "term-%06d" % (i % 997),
             "fw-%d.%d" % (i % 4, i % 9), 30.0 + (i % 89) * 0.01,
             120.0 + (i % 97) * 0.01)
            for i in range(10_000)]
    load = session.load_rows("readings", rows)
    print("   loaded %d rows in %s (simulated)\n"
          % (load.affected, fmt_seconds(load.sim_seconds)))

    print("2. Query it like any Hive table")
    result = session.execute("""
        SELECT day, count(*) AS n, sum(kwh) AS total
        FROM readings WHERE day <= '2013-07-03'
        GROUP BY day ORDER BY day
    """)
    for row in result.rows:
        print("   %s  n=%-4d total=%.2f" % row)
    print("   (simulated time: %s)\n" % fmt_seconds(result.sim_seconds))

    print("3. A small UPDATE: the cost model picks the EDIT plan")
    update = session.execute(
        "UPDATE readings SET status = 'recollected' "
        "WHERE day = '2013-07-05'")
    print("   affected=%d plan=%s (estimated ratio %.3f)"
          % (update.affected, update.detail["plan"],
             update.detail["ratio"]))
    print("   EDIT cost estimate      %s" %
          fmt_seconds(update.detail["edit_seconds"]))
    print("   OVERWRITE cost estimate %s\n" %
          fmt_seconds(update.detail["overwrite_seconds"]))

    print("4. A huge UPDATE: the cost model switches to OVERWRITE")
    update = session.execute(
        "UPDATE readings SET status = 'audited' WHERE meter_id >= 0")
    print("   affected=%d plan=%s\n" % (update.affected,
                                        update.detail["plan"]))

    print("5. DELETE writes tombstone markers into the Attached Table")
    delete = session.execute(
        "DELETE FROM readings WHERE day = '2013-07-28'")
    handler = session.table("readings").handler
    print("   affected=%d plan=%s attached=%s\n"
          % (delete.affected, delete.detail["plan"],
             fmt_bytes(handler.attached.size_bytes)))

    print("6. COMPACT folds the Attached Table back into the Master")
    compact = session.execute("COMPACT TABLE readings")
    print("   plan=%s rows_written=%s attached now %s\n"
          % (compact.plan, compact.detail.get("rows_written"),
             fmt_bytes(handler.attached.size_bytes)))

    count = session.execute("SELECT count(*) FROM readings").scalar()
    print("final row count: %d (10000 - one deleted day)" % count)


if __name__ == "__main__":
    main()
