"""Replay the five Table-I business scenarios end-to-end.

The paper's hard requirement: "the computing task must be finished from
1am to 7am every day, or it will affect the business operations".  This
example replays each scenario's statement mix (Table I) on Hive and on
DualTable and reports whether the nightly batch would fit the window.

Run with::

    python examples/batch_window_replay.py
"""

from repro.bench.runners import SCALES, grid_session
from repro.common.units import fmt_seconds
from repro.workloads import scenarios
from repro.workloads.dml_stats import TABLE1_DATA, SCENARIO_NAMES

SCALE = SCALES["tiny"]
FACTOR = 0.06       # fraction of each scenario's statement count to run


def replay(storage, mode, statements):
    session = grid_session(storage, SCALE, ["tj_gbsjwzl_mx"], mode=mode)
    scenarios.prepare_session(session)
    return scenarios.run_scenario(session, statements)


def main():
    print("Replaying the five grid scenarios (Table I mixes, %.0fx scaled)"
          % (1 / FACTOR))
    print()
    header = "%-3s %-34s %5s %6s %12s %12s %8s" % (
        "id", "scenario", "stmts", "%DML", "Hive", "DualTable", "speedup")
    print(header)
    print("-" * len(header))
    totals = {"hive": 0.0, "dual": 0.0}
    for spec in TABLE1_DATA:
        statements = scenarios.build_scenario(spec.scenario,
                                              statements_factor=FACTOR)
        hive_total, _ = replay("orc", None, statements)
        dual_total, per_kind = replay("dualtable", "cost", statements)
        totals["hive"] += hive_total
        totals["dual"] += dual_total
        print("%-3d %-34s %5d %5d%% %12s %12s %7.1fx"
              % (spec.scenario, SCENARIO_NAMES[spec.scenario],
                 len(statements), spec.dml_percent,
                 fmt_seconds(hive_total), fmt_seconds(dual_total),
                 hive_total / dual_total))
    print("-" * len(header))
    print("%-45s %12s %12s %7.1fx"
          % ("nightly batch (all five scenarios)",
             fmt_seconds(totals["hive"]), fmt_seconds(totals["dual"]),
             totals["hive"] / totals["dual"]))
    print()
    # Every replayed statement runs against the *largest* grid table, so
    # this is a worst-case mix; the real procedures spread across many
    # smaller tables.  The portable conclusion is the ratio: whatever
    # fraction of the 1am-7am window Hive's DML burns, DualTable needs
    # less than half of it.
    window = 6 * 3600.0
    for label, total in (("Hive", totals["hive"]),
                         ("DualTable", totals["dual"])):
        share = 100.0 * total / window
        print("%-10s replayed batch: %-11s = %5.1f%% of the 1am-7am window"
              % (label, fmt_seconds(total), share))
    print()
    print("Headroom gained by DualTable: %s per nightly run (%.1fx)"
          % (fmt_seconds(totals["hive"] - totals["dual"]),
             totals["hive"] / totals["dual"]))


if __name__ == "__main__":
    main()
