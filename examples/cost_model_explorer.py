"""Explore the Section-IV cost model: plan regions and crossover points.

Prints (a) the paper's worked example, (b) an EDIT/OVERWRITE decision map
over update ratio × successive reads ``k``, and (c) how the crossover
moves with the Attached Table's device rates — the "other storage options
for the Attached Table" question the paper leaves as future work.

Run with::

    python examples/cost_model_explorer.py
"""

from repro.bench.runners import bench_profile
from repro.common.units import GB
from repro.core import CostModel, cost_u_paper


def worked_example():
    print("Section IV worked example")
    print("-------------------------")
    cost = cost_u_paper(d_bytes=100.0, alpha=0.01, k=30,
                        master_write_bps=1.0, attached_write_bps=0.8,
                        attached_read_bps=0.5)
    print("  D=100GB, alpha=1%, k=30, rates 1.0/0.8/0.5 GB/s")
    print("  CostU = Cost_OVERWRITE - Cost_EDIT = %.2f s" % cost)
    print("  positive => the EDIT plan is chosen (paper: 38.75 s)\n")


def decision_map():
    print("Plan decision map (update ratio x successive reads k)")
    print("-----------------------------------------------------")
    profile = bench_profile("explorer")
    d_bytes, rows = 23 * GB, 180_000_000
    ratios = [0.01, 0.05, 0.10, 0.20, 0.35, 0.50, 0.75]
    ks = [1, 2, 5, 10, 30]
    print("  %8s " % "ratio" + "".join("%10s" % ("k=%d" % k) for k in ks))
    for ratio in ratios:
        cells = []
        for k in ks:
            choice = CostModel(profile, k=k).choose_update_plan(
                d_bytes, rows, ratio, update_cell_bytes=40)
            cells.append("%10s" % choice.plan)
        print("  %7.0f%% " % (ratio * 100) + "".join(cells))
    print()


def crossover_vs_attached_speed():
    print("Crossover ratio vs Attached-Table speed (future-work question)")
    print("---------------------------------------------------------------")
    d_bytes, rows = 23 * GB, 180_000_000
    print("  %28s %12s %12s" % ("attached backend", "update x-over",
                                "delete x-over"))
    backends = [
        ("HBase (paper: 0.8/0.5 GB/s)", 0.8 * GB, 0.5 * GB),
        ("slower store (0.2/0.1 GB/s)", 0.2 * GB, 0.1 * GB),
        ("faster store (3.0/2.0 GB/s)", 3.0 * GB, 2.0 * GB),
    ]
    for label, write_bps, read_bps in backends:
        profile = bench_profile("explorer")
        profile.hbase_write_bps = write_bps
        profile.hbase_read_bps = read_bps
        model = CostModel(profile, k=1)
        upd = model.update_crossover_ratio(d_bytes, rows,
                                           update_cell_bytes=40)
        dele = model.delete_crossover_ratio(d_bytes, rows)
        print("  %28s %11.1f%% %11.1f%%" % (label, 100 * upd, 100 * dele))
    print()
    print("A faster random-access store pushes the crossover up: more")
    print("statements stay on the cheap EDIT path.")


if __name__ == "__main__":
    worked_example()
    decision_map()
    crossover_vs_attached_speed()
