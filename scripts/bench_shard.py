#!/usr/bin/env python
"""Sharded scale-out benchmark: identity, scatter-gather speedup, routing.

Three phases over ``SHARDED BY (k) INTO n`` DualTables:

* **identity** — one mixed scan/DML/point workload replayed at shards
  1/4/8 x workers 1/4 x engines row/vectorized must produce identical
  rows, ledger bytes/ops (seconds to the identity grain) and non-cache
  counters (the :mod:`repro.shard.identity` fingerprint — the same gate
  ``tests/test_shard.py`` enforces);
* **speedup** — full-table scans at 4 shards with ``workers=4`` must
  finish in at most 1/``--min-speedup`` of the 1-shard simulated time
  (scatter-gather widens map slots by the shard fan-out);
* **routing** — every seeded PRIMARY-KEY point query under ``SET
  dualtable.plan = lookup`` must route to exactly the owning shard:
  one shard's ``shard.lookups`` counter moves per query and every
  candidate file in the plan lives under that shard's master directory
  (per-query bytes charged on exactly one shard).

Usage::

    PYTHONPATH=src python scripts/bench_shard.py [--check]
        [--rows 8000] [--identity-rows 240] [--queries 24]
        [--seed 20260808] [--min-speedup 2.0] [--out BENCH_shard.json]

Exits non-zero if ``--check`` and any gate fails.
"""

import argparse
import json
import random
import sys
import time

from repro.cluster import ClusterProfile
from repro.hive import HiveSession
from repro.hive.parser import parse
from repro.hive.pushdown import extract_ranges
from repro.shard.identity import identity_fingerprint

IDENTITY_WORKLOAD = [
    "SELECT count(*), sum(v) FROM t",
    "UPDATE t SET v = 999 WHERE k < 40",
    "SELECT count(*), sum(v) FROM t WHERE v = 999",
    "DELETE FROM t WHERE k >= %(hi)d",
    "SELECT k, v FROM t WHERE k = 0",
    "SELECT grp, count(*), sum(v) FROM t GROUP BY grp ORDER BY grp",
    "SELECT count(*), sum(v) FROM t",
]


def build_session(shards, rows, workers=1, engine="row",
                  rows_per_file=50):
    session = HiveSession(profile=ClusterProfile.laptop(workers=workers),
                          engine=engine)
    session.execute(
        "CREATE TABLE t (k int, grp string, v int) PRIMARY KEY (k) "
        "STORED AS dualtable SHARDED BY (k) INTO %d "
        "TBLPROPERTIES ('orc.rows_per_file' = '%d')"
        % (shards, rows_per_file))
    session.load_rows("t", [(i, "g%d" % (i % 5), i % 11)
                            for i in range(rows)])
    return session


# ----------------------------------------------------------------------
# Phase 1: shard-count identity.
# ----------------------------------------------------------------------
def run_identity_config(shards, workers, engine, rows):
    session = build_session(shards, rows, workers=workers, engine=engine,
                            rows_per_file=10)
    transcript = []
    for template in IDENTITY_WORKLOAD:
        sql = template % {"hi": int(rows * 0.8)} \
            if "%(" in template else template
        result = session.execute(sql)
        transcript.append((sql, result.rows))
    return identity_fingerprint(session, transcript)


def identity_phase(args, failures):
    configs = [(shards, workers, engine)
               for shards in (1, 4, 8)
               for workers in (1, 4)
               for engine in ("row", "vectorized")]
    start = time.perf_counter()
    baseline = run_identity_config(*configs[0], args.identity_rows)
    checked = []
    for config in configs[1:]:
        got = run_identity_config(*config, args.identity_rows)
        parts = [label for label, a, b
                 in zip(("rows", "ledger", "counters"), baseline, got)
                 if a != b]
        ok = not parts
        if not ok:
            failures.append("identity broken at shards=%d workers=%d "
                            "engine=%s: %s differ"
                            % (*config, ", ".join(parts)))
        checked.append({"shards": config[0], "workers": config[1],
                        "engine": config[2], "identical": ok})
        print("identity shards=%d workers=%d engine=%-10s %s"
              % (*config, "OK" if ok else "MISMATCH"))
    return {"configs": checked,
            "statements": len(IDENTITY_WORKLOAD),
            "wall_s": round(time.perf_counter() - start, 3)}


# ----------------------------------------------------------------------
# Phase 2: scatter-gather scan speedup.
# ----------------------------------------------------------------------
def speedup_phase(args, failures):
    scans = ["SELECT count(*), sum(v) FROM t",
             "SELECT grp, count(*), sum(v) FROM t GROUP BY grp "
             "ORDER BY grp",
             "SELECT count(*) FROM t WHERE v < 6"]
    start = time.perf_counter()
    sim_by_shards = {}
    rows_by_shards = {}
    for shards in (1, 4, 8):
        session = build_session(shards, args.rows, workers=4)
        sim = 0.0
        transcript = []
        for sql in scans:
            result = session.execute(sql)
            sim += result.sim_seconds
            transcript.append(result.rows)
        sim_by_shards[shards] = sim
        rows_by_shards[shards] = transcript
        print("scan shards=%d workers=4: %.3f simulated seconds"
              % (shards, sim))
    if rows_by_shards[4] != rows_by_shards[1] \
            or rows_by_shards[8] != rows_by_shards[1]:
        failures.append("speedup phase: scan rows diverge across shards")
    speedup4 = sim_by_shards[1] / max(sim_by_shards[4], 1e-12)
    speedup8 = sim_by_shards[1] / max(sim_by_shards[8], 1e-12)
    print("scatter-gather speedup: %.2fx at 4 shards, %.2fx at 8"
          % (speedup4, speedup8))
    if args.check and speedup4 < args.min_speedup:
        failures.append("scan speedup %.2fx at 4 shards below gate %.1fx"
                        % (speedup4, args.min_speedup))
    return {"scan_sim_seconds": {str(k): v
                                 for k, v in sim_by_shards.items()},
            "speedup_4_shards": speedup4,
            "speedup_8_shards": speedup8,
            "wall_s": round(time.perf_counter() - start, 3)}


# ----------------------------------------------------------------------
# Phase 3: LOOKUP single-shard routing.
# ----------------------------------------------------------------------
def routing_phase(args, failures):
    start = time.perf_counter()
    session = build_session(4, args.rows, workers=4)
    handler = session.metastore.table("t").handler
    metrics = session.cluster.metrics
    session.execute("SET dualtable.plan = lookup")
    rng = random.Random(args.seed)
    keys = [rng.randrange(args.rows) for _ in range(args.queries)]
    routed, multi_shard, wrong_files = 0, 0, 0
    latencies = []
    for key in keys:
        expect = handler.shard_map.shard_of(key)
        ranges = extract_ranges(
            parse("SELECT v FROM t WHERE k = %d" % key).where)
        plan = handler.plan_lookup(ranges, hit_faults=False)
        prefix = handler.children[expect].master.location + "/"
        if plan is None or any(not f["path"].startswith(prefix)
                               for f in plan.files):
            wrong_files += 1
        before = [metrics.counter("shard.lookups.t.%d" % s)
                  for s in range(4)]
        result = session.execute("SELECT v FROM t WHERE k = %d" % key)
        after = [metrics.counter("shard.lookups.t.%d" % s)
                 for s in range(4)]
        moved = [s for s in range(4) if after[s] != before[s]]
        latencies.append(result.sim_seconds)
        if moved == [expect] and result.detail.get("shard") == expect:
            routed += 1
        else:
            multi_shard += 1
    print("lookup routing: %d/%d routed to the single owning shard"
          % (routed, len(keys)))
    if multi_shard or wrong_files:
        failures.append("lookup routing broken: %d multi-shard charges, "
                        "%d plans with foreign files"
                        % (multi_shard, wrong_files))
    return {"queries": len(keys), "routed_single_shard": routed,
            "plans_with_foreign_files": wrong_files,
            "mean_sim_s": sum(latencies) / max(1, len(latencies)),
            "wall_s": round(time.perf_counter() - start, 3)}


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Sharded DualTable identity / speedup / routing "
                    "benchmark")
    parser.add_argument("--rows", type=int, default=8_000)
    parser.add_argument("--identity-rows", type=int, default=240)
    parser.add_argument("--queries", type=int, default=24)
    parser.add_argument("--seed", type=int, default=20260808)
    parser.add_argument("--min-speedup", type=float, default=2.0)
    parser.add_argument("--check", action="store_true",
                        help="enforce the identity/speedup/routing gates")
    parser.add_argument("--out", default="BENCH_shard.json")
    args = parser.parse_args(argv)

    failures = []
    report = {
        "config": vars(args).copy(),
        "identity": identity_phase(args, failures),
        "speedup": speedup_phase(args, failures),
        "routing": routing_phase(args, failures),
    }
    report["failures"] = failures
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, default=str)
    print("wrote %s" % args.out)
    if failures:
        for failure in failures:
            print("FAIL:", failure, file=sys.stderr)
        return 1
    if args.check:
        print("all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
