#!/usr/bin/env python
"""Wall-clock benchmark: row engine vs vectorized batch engine.

Times the same queries under both engines on one session and writes
``BENCH_vectorized.json`` with rows/sec and speedups.  The simulated
side of the contract is asserted inline: result rows and simulated
seconds must be byte-identical across engines (vectorization buys wall
clock only).

Benchmarked queries:

* ``scan``          — full projection of a plain ORC table,
* ``filtered_scan`` — the same table through a compound WHERE,
* ``aggregate``     — grouped count/sum/avg,
* ``union_read_clean`` — DualTable scan right after COMPACT (zero
  attached deltas: every batch takes the fast path),
* ``union_read_dirty`` — the same data with update deltas attached to
  every master file (worst case: every batch row-merges).

Usage::

    PYTHONPATH=src python scripts/bench_wallclock.py [--quick]
        [--rows N] [--repeat N] [--out BENCH_vectorized.json]
        [--expect-speedup 2.0]

``--expect-speedup`` makes the script exit non-zero unless vectorized
beats row by the given factor on scan and filtered_scan; leave it off
on noisy shared machines (CI uses --quick without it).
"""

import argparse
import gc
import json
import sys
import time

from repro.cluster import ClusterProfile
from repro.hive import HiveSession

QUERIES = [
    ("scan", "SELECT k, grp, v, w FROM t_orc"),
    ("filtered_scan",
     "SELECT k, v FROM t_orc WHERE v < 4 AND grp = 'g1' AND w >= 0"),
    ("aggregate",
     "SELECT grp, count(*), sum(v), avg(w) FROM t_orc GROUP BY grp"),
    ("union_read_clean", "SELECT k, grp, v, w FROM t_clean"),
    ("union_read_dirty", "SELECT k, grp, v, w FROM t_dirty"),
]


def build_session(rows):
    """One session with the three benchmark tables loaded.

    ``t_clean`` and ``t_dirty`` get identical spread UPDATEs (one thin
    slice per master file, so *every* file carries deltas); ``t_clean``
    is then compacted back to zero deltas.
    """
    session = HiveSession(profile=ClusterProfile.laptop())
    rows_per_file = max(1000, rows // 16)
    stripe_rows = max(250, rows_per_file // 4)
    data = [(i, "g%d" % (i % 5), i % 7, i / 8.0) for i in range(rows)]

    session.execute(
        "CREATE TABLE t_orc (k int, grp string, v int, w double) "
        "STORED AS orc TBLPROPERTIES ('orc.rows_per_file' = '%d', "
        "'orc.stripe_rows' = '%d')" % (rows_per_file, stripe_rows))
    session.load_rows("t_orc", data)

    for name in ("t_clean", "t_dirty"):
        # mode=edit forces the EDIT plan so UPDATEs persist as attached
        # deltas instead of being compiled away by the cost model.
        session.execute(
            "CREATE TABLE %s (k int, grp string, v int, w double) "
            "STORED AS dualtable TBLPROPERTIES ("
            "'dualtable.mode' = 'edit', 'orc.rows_per_file' = '%d', "
            "'orc.stripe_rows' = '%d')" % (name, rows_per_file, stripe_rows))
        session.load_rows(name, data)
        slice_rows = max(1, rows_per_file // 20)
        for lo in range(0, rows, rows_per_file):
            session.execute(
                "UPDATE %s SET v = 99 WHERE k >= %d AND k < %d"
                % (name, lo, lo + slice_rows))
    session.execute("COMPACT TABLE t_clean")
    return session


def time_query(session, sql, repeat):
    """Best-of-``repeat`` wall time after one warmup run.

    The collector is drained before and paused during each timed run so
    a GC cycle triggered by one engine's garbage doesn't land in the
    other engine's measurement.
    """
    session.execute(sql)                       # warmup (caches, codegen)
    best_wall = float("inf")
    result = None
    for _ in range(repeat):
        gc.collect()
        gc.disable()
        try:
            started = time.perf_counter()
            result = session.execute(sql)
            best_wall = min(best_wall, time.perf_counter() - started)
        finally:
            gc.enable()
    return result, best_wall


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small data + fewer repeats (CI smoke)")
    parser.add_argument("--rows", type=int, default=None,
                        help="base table rows (default 48000; "
                             "quick 24000)")
    parser.add_argument("--repeat", type=int, default=None,
                        help="timed runs per query, best-of (default 5; "
                             "quick 3)")
    parser.add_argument("--out", default="BENCH_vectorized.json",
                        help="output JSON path")
    parser.add_argument("--expect-speedup", type=float, default=None,
                        metavar="X",
                        help="fail unless vectorized beats row by X on "
                             "scan and filtered_scan")
    args = parser.parse_args(argv)
    rows = args.rows or (24_000 if args.quick else 48_000)
    repeat = args.repeat or (3 if args.quick else 5)

    print("building tables (%d rows)..." % rows)
    session = build_session(rows)

    benchmarks = {}
    oracle = {}
    for engine in ("row", "vectorized"):
        session.set_engine(engine)
        for name, sql in QUERIES:
            result, wall = time_query(session, sql, repeat)
            stats = {"wall_s": round(wall, 6),
                     "rows_per_s": round(rows / wall, 1),
                     "sim_seconds": round(result.sim_seconds, 6)}
            benchmarks.setdefault(name, {"rows": rows})[engine] = stats
            print("%-18s %-10s wall=%8.4fs  %12s rows/s"
                  % (name, engine, wall,
                     format(int(rows / wall), ",")))
            # Simulated contract: rows and sim time match across engines.
            key = (name, tuple(map(tuple, result.rows)),
                   stats["sim_seconds"])
            if name in oracle:
                if oracle[name] != key:
                    print("FAIL: %s differs between engines (simulated "
                          "output must be identical)" % name,
                          file=sys.stderr)
                    return 1
            else:
                oracle[name] = key

    for name, entry in benchmarks.items():
        entry["speedup"] = round(
            entry["row"]["wall_s"] / entry["vectorized"]["wall_s"], 2)
    fastpath = {
        "clean_wall_s": benchmarks["union_read_clean"]["vectorized"][
            "wall_s"],
        "dirty_wall_s": benchmarks["union_read_dirty"]["vectorized"][
            "wall_s"],
    }
    fastpath["gain"] = round(
        fastpath["dirty_wall_s"] / fastpath["clean_wall_s"], 2)

    doc = {
        "config": {"rows": rows, "repeat": repeat, "quick": args.quick,
                   "python": sys.version.split()[0]},
        "benchmarks": benchmarks,
        "fastpath": fastpath,
        "contract": "result rows and sim_seconds verified identical "
                    "across engines for every query",
    }
    with open(args.out, "w") as handle:
        json.dump(doc, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print("\nwrote %s" % args.out)
    for name, entry in benchmarks.items():
        print("  %-18s speedup %5.2fx" % (name, entry["speedup"]))
    print("  zero-delta fast-path gain (dirty/clean, vectorized): %.2fx"
          % fastpath["gain"])

    if args.expect_speedup is not None:
        for name in ("scan", "filtered_scan"):
            if benchmarks[name]["speedup"] < args.expect_speedup:
                print("FAIL: %s speedup %.2fx < expected %.2fx"
                      % (name, benchmarks[name]["speedup"],
                         args.expect_speedup), file=sys.stderr)
                return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
