#!/usr/bin/env python
"""Delta-merge accelerator benchmark: overlay vs row merge on dirty scans.

Two phases over the Zipf-skewed update-heavy scenario
(:func:`repro.workloads.scenarios.build_zipf_update_scenario`):

* **identity** — the same seeded workload replayed across merge
  overlay/row x engines row/vectorized x workers 1/4 x shards 1/4 must
  produce identical rows, ledger bytes/ops (seconds to the identity
  grain), merge stats and non-cache counters.  The only counters allowed
  to differ across *merge modes* are the strategy-attribution pair
  ``unionread.batches_overlay`` / ``unionread.batches_row_fallback`` —
  their sum (dirty merge units) must still be equal, and each mode must
  attribute all of them to its own strategy.
* **wall-clock** — full scans of an update-heavy DualTable under the
  vectorized engine: the overlay merge must land within
  ``--max-dirty-ratio`` (default 1.10x) of the zero-delta fast path on a
  compacted twin of the same data, and beat the row-fallback merge by at
  least ``--min-speedup`` (default 1.15x).  Rows and simulated seconds
  are asserted byte-identical between the two merge strategies inline.

Usage::

    PYTHONPATH=src python scripts/bench_merge.py [--check] [--quick]
        [--rows N] [--repeat N] [--identity-rows N]
        [--max-dirty-ratio 1.10] [--min-speedup 1.15]
        [--out BENCH_merge.json]

Exits non-zero if ``--check`` and any gate fails.
"""

import argparse
import gc
import json
import sys
import time

from repro.cluster import ClusterProfile
from repro.hive import HiveSession
from repro.shard.identity import counter_identity_view, ledger_identity_view
from repro.workloads.scenarios import build_zipf_update_scenario

#: the strategy-attribution counters: the one sanctioned cross-merge-mode
#: difference (same dirty units, attributed to the configured strategy).
MERGE_UNIT_COUNTERS = ("unionread.batches_overlay",
                       "unionread.batches_row_fallback")


def sharded_ddl(table, shards, rows_per_file, stripe_rows):
    return ("CREATE TABLE %s (k int, grp string, v int, w double) "
            "PRIMARY KEY (k) STORED AS dualtable SHARDED BY (k) INTO %d "
            "TBLPROPERTIES ('dualtable.mode' = 'edit', "
            "'orc.rows_per_file' = '%d', 'orc.stripe_rows' = '%d')"
            % (table, shards, rows_per_file, stripe_rows))


# ----------------------------------------------------------------------
# Phase 1: merge-mode / engine / workers / shards identity.
# ----------------------------------------------------------------------
def run_identity_config(merge, engine, workers, shards, rows):
    session = HiveSession(profile=ClusterProfile.laptop(workers=workers),
                          engine=engine)
    session.execute("SET dualtable.merge = %s" % merge)
    scenario = build_zipf_update_scenario(
        rows=rows, updates=6, deletes=2, scans=3, keys_per_stmt=12,
        dirty_fraction=0.4, seed=29)
    session.execute(sharded_ddl(scenario["table"], shards,
                                rows_per_file=max(10, rows // 8),
                                stripe_rows=max(5, rows // 24)))
    session.load_rows(scenario["table"], scenario["rows"])
    transcript = []
    for _, sql in scenario["statements"]:
        result = session.execute(sql)
        transcript.append((sql, result.rows))
    final = session.execute(
        "SELECT k, grp, v, w FROM %s" % scenario["table"])
    transcript.append(("final-scan", sorted(final.rows)))
    counters = dict(counter_identity_view(session.cluster.metrics.counters))
    units = {name: counters.pop(name, 0) for name in MERGE_UNIT_COUNTERS}
    shared = (transcript,
              ledger_identity_view(session.cluster.ledger.snapshot()),
              counters, sum(units.values()))
    return shared, units


def identity_phase(args, failures):
    configs = [(merge, engine, workers, shards)
               for merge in ("overlay", "row")
               for engine in ("row", "vectorized")
               for workers in (1, 4)
               for shards in (1, 4)]
    start = time.perf_counter()
    baseline, _ = run_identity_config(*configs[0],
                                      rows=args.identity_rows)
    checked = []
    for config in configs:
        got, units = run_identity_config(*config, rows=args.identity_rows)
        parts = [label for label, a, b
                 in zip(("rows", "ledger", "counters", "dirty_units"),
                        baseline, got)
                 if a != b]
        # Each mode must attribute every dirty unit to its own strategy.
        own = ("unionread.batches_overlay" if config[0] == "overlay"
               else "unionread.batches_row_fallback")
        other = [n for n in MERGE_UNIT_COUNTERS if n != own][0]
        if units[other] != 0 or units[own] != got[3]:
            parts.append("attribution")
        ok = not parts
        if not ok:
            failures.append(
                "identity broken at merge=%s engine=%s workers=%d "
                "shards=%d: %s differ" % (*config, ", ".join(parts)))
        checked.append({"merge": config[0], "engine": config[1],
                        "workers": config[2], "shards": config[3],
                        "identical": ok})
        print("identity merge=%-8s engine=%-10s workers=%d shards=%d %s"
              % (*config, "OK" if ok else "MISMATCH"))
    return {"configs": checked,
            "statements": 11,
            "dirty_units": baseline[3],
            "wall_s": round(time.perf_counter() - start, 3)}


# ----------------------------------------------------------------------
# Phase 2: wall-clock — overlay vs fast path vs row fallback.
# ----------------------------------------------------------------------
def build_wallclock_session(rows):
    """One session with the dirty scenario table + a compacted twin."""
    session = HiveSession(profile=ClusterProfile.laptop())
    for table in ("zipf_updates", "zipf_clean"):
        scenario = build_zipf_update_scenario(rows=rows, table=table)
        session.execute(scenario["ddl"])
        session.load_rows(table, scenario["rows"])
        for kind, sql in scenario["statements"]:
            if kind != "scan":     # scans are what gets *timed* below
                session.execute(sql)
    session.execute("COMPACT TABLE zipf_clean")
    return session


def time_interleaved(session, queries, repeat):
    """Best-of-``repeat`` wall times, measured in interleaved rounds.

    ``queries`` is ``[(name, merge_mode, sql), ...]``.  Each round times
    every query once (GC paused), so slow drift in the host — CPU
    frequency, container contention — hits all strategies alike instead
    of biasing whichever block ran during the quiet stretch.  Returns
    ``({name: result}, {name: best_wall})``; results come from the
    warmup pass (caches + overlay build) and are identical to the timed
    passes by the determinism contract.
    """
    results = {}
    best = {}
    for name, merge_mode, sql in queries:       # warmup pass
        session.set_merge_mode(merge_mode)
        results[name] = session.execute(sql)
        best[name] = float("inf")
    for _ in range(repeat):
        for name, merge_mode, sql in queries:
            session.set_merge_mode(merge_mode)
            gc.collect()
            gc.disable()
            try:
                started = time.perf_counter()
                session.execute(sql)
                best[name] = min(best[name],
                                 time.perf_counter() - started)
            finally:
                gc.enable()
    return results, best


def wallclock_phase(args, failures):
    start = time.perf_counter()
    print("building tables (%d rows)..." % args.rows)
    session = build_wallclock_session(args.rows)
    dirty_sql = "SELECT k, grp, v, w FROM zipf_updates"
    clean_sql = "SELECT k, grp, v, w FROM zipf_clean"

    results, best = time_interleaved(
        session,
        [("clean", "overlay", clean_sql),
         ("overlay", "overlay", dirty_sql),
         ("row", "row", dirty_sql)],
        args.repeat)
    clean_result, clean_wall = results["clean"], best["clean"]
    overlay_result, overlay_wall = results["overlay"], best["overlay"]
    row_result, row_wall = results["row"], best["row"]

    if sorted(overlay_result.rows) != sorted(row_result.rows):
        failures.append("dirty-scan rows differ between overlay and row "
                        "merge strategies")
    if round(overlay_result.sim_seconds, 9) \
            != round(row_result.sim_seconds, 9):
        failures.append(
            "dirty-scan simulated seconds differ between merge "
            "strategies (%.9f vs %.9f)"
            % (overlay_result.sim_seconds, row_result.sim_seconds))

    dirty_ratio = overlay_wall / clean_wall
    merge_speedup = row_wall / overlay_wall
    print("clean fast path   %8.4fs  (%s rows/s)"
          % (clean_wall, format(int(args.rows / clean_wall), ",")))
    print("dirty overlay     %8.4fs  ratio to clean %.3fx"
          % (overlay_wall, dirty_ratio))
    print("dirty row merge   %8.4fs  overlay speedup %.2fx"
          % (row_wall, merge_speedup))
    if args.check:
        if dirty_ratio > args.max_dirty_ratio:
            failures.append(
                "update-heavy overlay scan is %.3fx the zero-delta fast "
                "path (gate %.2fx)" % (dirty_ratio, args.max_dirty_ratio))
        if merge_speedup < args.min_speedup:
            failures.append(
                "overlay merge is only %.2fx faster than the row merge "
                "(gate %.2fx)" % (merge_speedup, args.min_speedup))
    return {"rows": args.rows, "repeat": args.repeat,
            "clean_wall_s": round(clean_wall, 6),
            "overlay_wall_s": round(overlay_wall, 6),
            "row_wall_s": round(row_wall, 6),
            "dirty_ratio": round(dirty_ratio, 4),
            "merge_speedup": round(merge_speedup, 4),
            "sim_seconds": round(overlay_result.sim_seconds, 6),
            "clean_rows": len(clean_result.rows),
            "dirty_rows": len(overlay_result.rows),
            "wall_s": round(time.perf_counter() - start, 3)}


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Delta-merge accelerator identity / wall-clock "
                    "benchmark")
    parser.add_argument("--quick", action="store_true",
                        help="small data + fewer repeats (CI smoke)")
    parser.add_argument("--rows", type=int, default=None,
                        help="wall-clock table rows (default 48000; "
                             "quick 24000)")
    parser.add_argument("--repeat", type=int, default=None,
                        help="timed rounds, best-of per query (default 9; "
                             "quick 7)")
    parser.add_argument("--identity-rows", type=int, default=240)
    parser.add_argument("--max-dirty-ratio", type=float, default=1.10,
                        help="gate: overlay dirty scan vs clean fast "
                             "path")
    parser.add_argument("--min-speedup", type=float, default=1.15,
                        help="gate: row merge wall / overlay wall")
    parser.add_argument("--check", action="store_true",
                        help="enforce the identity and wall-clock gates")
    parser.add_argument("--out", default="BENCH_merge.json")
    args = parser.parse_args(argv)
    args.rows = args.rows or (24_000 if args.quick else 48_000)
    args.repeat = args.repeat or (7 if args.quick else 9)

    failures = []
    report = {
        "config": {"rows": args.rows, "repeat": args.repeat,
                   "identity_rows": args.identity_rows,
                   "max_dirty_ratio": args.max_dirty_ratio,
                   "min_speedup": args.min_speedup,
                   "quick": args.quick,
                   "python": sys.version.split()[0]},
        "identity": identity_phase(args, failures),
        "wallclock": wallclock_phase(args, failures),
        "contract": "rows, ledger bytes/ops, merge stats and non-cache "
                    "counters byte-identical across merge overlay/row x "
                    "engines x workers 1/4 x shards 1/4",
    }
    report["failures"] = failures
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print("wrote %s" % args.out)
    if failures:
        for failure in failures:
            print("FAIL:", failure, file=sys.stderr)
        return 1
    if args.check:
        print("all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
