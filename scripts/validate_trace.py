#!/usr/bin/env python
"""Validate a Chrome trace-event JSON file produced by ``--profile``.

Checks the structural invariants the tracer promises: every event has
the required Chrome fields, every span's parent exists, parent kinds
respect the statement -> job -> task -> substrate taxonomy, and child
spans are time-contained in their parents.  Exits nonzero (listing the
violations) when any check fails.

Usage::

    PYTHONPATH=src python scripts/validate_trace.py out/fig4.trace.json
    PYTHONPATH=src python scripts/validate_trace.py --require \
        statement,job,task,substrate out/fig4.trace.json
"""

import argparse
import sys

from repro.obs.export import (load_trace, validate_server_spans,
                              validate_trace)


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Validate a dualtable-bench --profile trace file.")
    parser.add_argument("trace", nargs="+", help="trace JSON file(s)")
    parser.add_argument("--require", default="",
                        help="comma-separated span kinds that must appear "
                             "at least once (e.g. statement,job,task)")
    parser.add_argument("--server-spans", action="store_true",
                        help="additionally validate the PR-6 server "
                             "statement spans: every server.statement "
                             "span nests an engine statement span, and "
                             "at least one has nonzero duration")
    args = parser.parse_args(argv)
    require = tuple(k for k in args.require.split(",") if k)
    failed = False
    for path in args.trace:
        try:
            doc = load_trace(path)
        except (OSError, ValueError) as exc:
            print("%s: unreadable: %s" % (path, exc))
            failed = True
            continue
        errors = validate_trace(doc, require_kinds=require)
        if args.server_spans:
            errors = errors + validate_server_spans(doc)
        nspans = sum(1 for ev in doc.get("traceEvents", [])
                     if ev.get("ph") == "X")
        if errors:
            print("%s: INVALID (%d span(s), %d error(s))"
                  % (path, nspans, len(errors)))
            for error in errors[:50]:
                print("  - %s" % error)
            if len(errors) > 50:
                print("  ... (%d more)" % (len(errors) - 50))
            failed = True
        else:
            print("%s: ok (%d span(s))" % (path, nspans))
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
