#!/usr/bin/env python
"""LOOKUP-plan benchmark: point-read latency + bytes vs the scan plan.

Replays one seeded workload of PRIMARY-KEY point / small-range / IN
queries over a 20 000-row DualTable, once per plan (`lookup` forced vs
`scan` forced), measuring per-query simulated latency and per-query
ledger bytes.  Gates (``--check``):

* **identity** — every query returns byte-identical rows across both
  plans, both engines (row / vectorized) and workers 1 / 4;
* **latency** — scan p50 / lookup p50 ≥ ``--min-ratio`` (default 20);
* **bytes** — total scan bytes / total lookup bytes ≥ ``--min-ratio``.

Usage::

    PYTHONPATH=src python scripts/bench_lookup.py [--check]
        [--rows 20000] [--queries 60] [--seed 20260808]
        [--min-ratio 20] [--out BENCH_lookup.json]

Exits non-zero if ``--check`` and any gate fails.
"""

import argparse
import json
import math
import random
import sys
import time

from repro.cluster import ClusterProfile
from repro.hive import HiveSession


def build_queries(rng, n, rows):
    """A seeded operational mix: 60% points, 25% BETWEEN, 15% IN."""
    queries = []
    for _ in range(n):
        roll = rng.random()
        if roll < 0.60:
            queries.append("SELECT v, name FROM t WHERE k = %d"
                           % rng.randrange(rows))
        elif roll < 0.85:
            lo = rng.randrange(rows - 50)
            queries.append(
                "SELECT v, name FROM t WHERE k BETWEEN %d AND %d"
                % (lo, lo + rng.randint(1, 50)))
        else:
            keys = sorted({rng.randrange(rows)
                           for _ in range(rng.randint(2, 5))})
            queries.append("SELECT v, name FROM t WHERE k IN (%s)"
                           % ", ".join(str(k) for k in keys))
    return queries


def build_session(args, engine, workers):
    session = HiveSession(
        profile=ClusterProfile.laptop(num_workers=workers), engine=engine)
    session.execute(
        "CREATE TABLE t (k int, v int, name string, PRIMARY KEY (k)) "
        "STORED AS dualtable TBLPROPERTIES "
        "('orc.rows_per_file' = '%d', 'orc.stripe_rows' = '%d', "
        "'dualtable.mode' = 'edit')"
        % (args.rows_per_file, args.stripe_rows))
    session.load_rows(
        "t", [(i, i * 10, "name-%06d" % i) for i in range(args.rows)])
    # Live deltas so the benchmark pays the attached-table probe too.
    session.execute("UPDATE t SET v = -1 WHERE k BETWEEN 100 AND 140")
    session.execute("DELETE FROM t WHERE k BETWEEN 300 AND 305")
    return session


def run_config(args, queries, plan, engine, workers):
    session = build_session(args, engine, workers)
    session.execute("SET dualtable.plan = %s" % plan)
    latencies, bytes_per_query, transcript = [], [], []
    start = time.perf_counter()
    for sql in queries:
        before = session.cluster.ledger.snapshot()
        result = session.execute(sql)
        delta = session.cluster.ledger.diff(before)
        latencies.append(result.sim_seconds)
        bytes_per_query.append(sum(delta["bytes"].values()))
        transcript.append((sql, tuple(sorted(result.rows))))
    return {
        "plan": plan, "engine": engine, "workers": workers,
        "latencies": latencies, "bytes": bytes_per_query,
        "transcript": transcript,
        "wall_s": round(time.perf_counter() - start, 3),
    }


def quantile(values, q):
    """Deterministic rank quantile (no interpolation, no numpy)."""
    ordered = sorted(values)
    rank = max(1, int(math.ceil(q * len(ordered))))
    return ordered[rank - 1]


def summarize(run):
    return {
        "plan": run["plan"], "engine": run["engine"],
        "workers": run["workers"], "queries": len(run["latencies"]),
        "p50_s": quantile(run["latencies"], 0.50),
        "p99_s": quantile(run["latencies"], 0.99),
        "total_sim_s": sum(run["latencies"]),
        "total_bytes": sum(run["bytes"]),
        "wall_s": run["wall_s"],
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="LOOKUP vs scan plan point-read benchmark")
    parser.add_argument("--rows", type=int, default=20_000)
    parser.add_argument("--rows-per-file", type=int, default=1_000)
    parser.add_argument("--stripe-rows", type=int, default=100)
    parser.add_argument("--queries", type=int, default=60)
    parser.add_argument("--seed", type=int, default=20260808)
    parser.add_argument("--min-ratio", type=float, default=20.0)
    parser.add_argument("--check", action="store_true",
                        help="enforce the identity and ratio gates")
    parser.add_argument("--out", default="BENCH_lookup.json")
    args = parser.parse_args(argv)

    queries = build_queries(random.Random(args.seed), args.queries,
                            args.rows)
    configs = [(plan, engine, workers)
               for plan in ("lookup", "scan")
               for engine in ("row", "vectorized")
               for workers in (1, 4)]
    runs = {config: run_config(args, queries, *config)
            for config in configs}

    failures = []
    baseline = runs[configs[0]]["transcript"]
    for config, run in runs.items():
        if run["transcript"] != baseline:
            failures.append("rows diverge: %r vs %r"
                            % (config, configs[0]))
    summaries = [summarize(runs[config]) for config in configs]
    for summary in summaries:
        print("%-6s %-10s workers=%d: p50=%.6fs p99=%.6fs "
              "total=%.3fs bytes=%d wall=%.2fs"
              % (summary["plan"], summary["engine"], summary["workers"],
                 summary["p50_s"], summary["p99_s"],
                 summary["total_sim_s"], summary["total_bytes"],
                 summary["wall_s"]))

    lookup = summarize(runs[("lookup", "row", 1)])
    scan = summarize(runs[("scan", "row", 1)])
    latency_ratio = scan["p50_s"] / max(lookup["p50_s"], 1e-12)
    bytes_ratio = scan["total_bytes"] / max(lookup["total_bytes"], 1)
    print("scan/lookup p50 latency ratio: %.1fx  (p99: %.1fx)"
          % (latency_ratio, scan["p99_s"] / max(lookup["p99_s"], 1e-12)))
    print("scan/lookup bytes ratio:       %.1fx" % bytes_ratio)
    if args.check:
        if latency_ratio < args.min_ratio:
            failures.append("latency ratio %.1fx below gate %.0fx"
                            % (latency_ratio, args.min_ratio))
        if bytes_ratio < args.min_ratio:
            failures.append("bytes ratio %.1fx below gate %.0fx"
                            % (bytes_ratio, args.min_ratio))

    report = {
        "config": vars(args).copy(),
        "summaries": summaries,
        "latency_ratio_p50": latency_ratio,
        "bytes_ratio": bytes_ratio,
        "failures": failures,
    }
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, default=str)
    print("wrote %s" % args.out)
    if failures:
        for failure in failures:
            print("FAIL:", failure, file=sys.stderr)
        return 1
    if args.check:
        print("all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
