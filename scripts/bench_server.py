#!/usr/bin/env python
"""Concurrent-server driver: 1000 open-loop clients + determinism gate.

Runs the seeded ledger workload (commutative ``v = v + d`` updates, so
the final ``SUM(v)`` depends only on the committed set) once per
concurrency level and gates on the server's two robustness bars:

* **determinism** — every concurrency level must produce the identical
  final ledger total (same seed ⇒ same committed set, regardless of how
  statements interleave);
* **zero lost / phantom writes** — the final total must equal the
  initial total plus exactly the deltas of the statements the server
  reported committed, at every level and optionally under chaos.

Usage::

    PYTHONPATH=src python scripts/bench_server.py [--quick]
        [--clients 1000] [--statements 400] [--accounts 64]
        [--concurrency 1,4,16] [--seed 42] [--chaos N]
        [--out BENCH_server.json]

``--chaos N`` additionally runs N seeded concurrent chaos schedules
(session kills + injected faults) and fails on any invariant violation.
Exits non-zero if any gate fails.
"""

import argparse
import json
import sys
import time

from repro.server import build_ledger_server, ledger_arrivals, run_open_loop


def run_level(args, concurrency):
    server = build_ledger_server(accounts=args.accounts, seed=args.seed,
                                 concurrency=concurrency)
    arrivals = ledger_arrivals(server, clients=args.clients,
                               statements=args.statements,
                               accounts=args.accounts, seed=args.seed)
    start = time.perf_counter()
    summary = run_open_loop(server, arrivals)
    summary["concurrency"] = concurrency
    summary["wall_s"] = round(time.perf_counter() - start, 3)
    return summary


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="concurrent server determinism benchmark")
    parser.add_argument("--clients", type=int, default=1000)
    parser.add_argument("--statements", type=int, default=400)
    parser.add_argument("--accounts", type=int, default=64)
    parser.add_argument("--concurrency", default="1,4,16",
                        help="comma-separated concurrency levels")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--chaos", type=int, default=0,
                        help="also run N concurrent chaos schedules")
    parser.add_argument("--quick", action="store_true",
                        help="small sizes for CI smoke")
    parser.add_argument("--out", default="BENCH_server.json")
    args = parser.parse_args(argv)
    if args.quick:
        args.clients = min(args.clients, 200)
        args.statements = min(args.statements, 120)
        args.accounts = min(args.accounts, 32)
    levels = [int(c) for c in args.concurrency.split(",") if c.strip()]

    report = {"config": vars(args).copy(), "levels": [], "chaos": []}
    failures = []
    totals = {}
    for concurrency in levels:
        summary = run_level(args, concurrency)
        report["levels"].append(summary)
        totals[concurrency] = summary["final_total"]
        print("concurrency %2d: total=%d committed=%d conflicts=%d "
              "retries=%d escalations=%d p95=%.3fs wall=%.2fs"
              % (concurrency, summary["final_total"],
                 summary["by_status"].get("committed", 0),
                 summary["conflicts"], summary["conflict_retries"],
                 summary["escalations"], summary["latency_p95_s"],
                 summary["wall_s"]))
        if summary["lost_writes"]:
            failures.append("concurrency %d lost %d write units"
                            % (concurrency, summary["lost_writes"]))
        if summary["phantom_writes"]:
            failures.append("concurrency %d leaked %d write units"
                            % (concurrency, summary["phantom_writes"]))
    if len(set(totals.values())) > 1:
        failures.append("ledger totals diverge across concurrency: %r"
                        % totals)
    else:
        print("ledger totals byte-identical across %r: %d"
              % (levels, next(iter(totals.values()))))

    if args.chaos:
        from repro.faults.chaos import run_server_chaos_schedule
        for seed in range(args.chaos):
            try:
                summary = run_server_chaos_schedule(args.seed + seed)
                report["chaos"].append(summary)
                print("chaos seed %d: %r fired=%r"
                      % (args.seed + seed, summary["by_status"],
                         summary["fired"]))
            except AssertionError as exc:
                failures.append("chaos seed %d: %s"
                                % (args.seed + seed, exc))

    report["failures"] = failures
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, default=str)
    print("wrote %s" % args.out)
    if failures:
        for failure in failures:
            print("FAIL:", failure, file=sys.stderr)
        return 1
    print("all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
