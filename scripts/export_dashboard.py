#!/usr/bin/env python
"""Run the canned advisor workloads and export the telemetry dashboard.

For each workload in :data:`repro.advisor.workloads.WORKLOAD_NAMES`
this writes ``<out>/<name>.advisor.json`` + ``<out>/<name>.dashboard.html``,
plus the canonical ``<out>/advisor.json`` / ``<out>/dashboard.html`` pair
(from the ``mixed`` HTAP workload, the richest document: server stats,
tenant findings, statement-latency histograms).  The ``mixed`` run is
traced and also writes ``<out>/mixed.trace.json`` so CI can validate the
server statement spans::

    PYTHONPATH=src python scripts/export_dashboard.py out/dashboard
    PYTHONPATH=src python scripts/validate_trace.py --server-spans \
        --require statement,job,task,substrate,server \
        out/dashboard/mixed.trace.json

``--check`` is the CI smoke mode: every workload must (a) produce
exactly its expected finding set, (b) schema-validate, and (c) serialize
byte-identically across a rerun, ``workers=1`` vs ``4`` and
``engine=row`` vs ``vectorized``.  Exits nonzero on any violation.
"""

import argparse
import sys

from repro.advisor import WorkloadAdvisor
from repro.advisor.workloads import (EXPECTED_FINDINGS, RUNNERS,
                                     WORKLOAD_NAMES, build_session)
from repro.obs import export
from repro.obs.dashboard import (advisor_document, to_json,
                                 validate_advisor_document,
                                 write_dashboard)


def run_and_document(name, seed=0, workers=1, engine=None, trace=False):
    """Run one canned workload; returns ``(doc, outcome-dict)``."""
    session = build_session(workers=workers, engine=engine)
    if trace:
        session.cluster.tracer.enable()
    outcome = RUNNERS[name](session, seed=seed)
    findings = WorkloadAdvisor(session).analyze()
    doc = advisor_document(session, findings=findings,
                           series=outcome["series"], workload=name)
    return doc, outcome


def check_workload(name, seed):
    """The --check battery for one workload; returns error strings."""
    errors = []
    doc, _ = run_and_document(name, seed=seed)
    baseline = to_json(doc)
    for problem in validate_advisor_document(doc):
        errors.append("%s: schema: %s" % (name, problem))
    got = sorted((f["code"], f["subject"]) for f in doc["findings"])
    want = sorted(EXPECTED_FINDINGS[name])
    if got != want:
        errors.append("%s: findings %s != expected %s"
                      % (name, got, want))
    variants = [("rerun", dict()),
                ("workers=4", dict(workers=4)),
                ("engine=vectorized", dict(engine="vectorized"))]
    for label, kwargs in variants:
        variant_doc, _ = run_and_document(name, seed=seed, **kwargs)
        if to_json(variant_doc) != baseline:
            errors.append("%s: advisor.json differs under %s "
                          "(determinism contract broken)" % (name, label))
    return errors


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Export the advisor/telemetry dashboard artifacts.")
    parser.add_argument("out", nargs="?", default="out/dashboard",
                        help="output directory (default: out/dashboard)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--check", action="store_true",
                        help="CI smoke: assert expected findings, schema "
                             "validity and byte-identical artifacts "
                             "across reruns/workers/engines")
    args = parser.parse_args(argv)
    failures = []
    for name in WORKLOAD_NAMES:
        trace = name == "mixed"
        doc, outcome = run_and_document(name, seed=args.seed, trace=trace)
        html, json_path = write_dashboard(
            args.out, doc, html_name="%s.dashboard.html" % name,
            json_name="%s.advisor.json" % name)
        print("%s: %d finding(s) -> %s, %s"
              % (name, len(doc["findings"]), html, json_path))
        if trace:
            session = outcome["session"]
            trace_doc = export.tracer_trace(
                session.cluster.tracer,
                metrics=session.cluster.metrics.snapshot(), label=name)
            trace_path = export.write_trace(
                "%s/%s.trace.json" % (args.out, name), trace_doc)
            print("%s: trace -> %s" % (name, trace_path))
            # The canonical pair CI uploads as its artifact.
            write_dashboard(args.out, doc)
            print("%s: canonical -> %s/dashboard.html, %s/advisor.json"
                  % (name, args.out, args.out))
        if args.check:
            failures.extend(check_workload(name, args.seed))
    if failures:
        print("FAILED %d check(s):" % len(failures))
        for failure in failures:
            print("  - %s" % failure)
        return 1
    if args.check:
        print("all advisor checks passed (%d workload(s))"
              % len(WORKLOAD_NAMES))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
