#!/usr/bin/env python
"""Worker-count sweep over the grid update-sweep figure (fig5).

Runs the same experiment once per worker count, asserts that every
simulated number (figure rows, columns, notes) is byte-identical, and
reports the wall-clock time of each run plus the speedup relative to
the serial run.  This is the executable form of the parallel engine's
contract: ``--workers`` buys wall-clock time only.

Usage::

    PYTHONPATH=src python scripts/bench_workers.py [--scale tiny]
        [--workers 1,4] [--experiment fig5] [--expect-speedup 2.0]

``--expect-speedup`` makes the script exit non-zero unless the widest
run beats serial by the given factor; leave it off on single-core
machines (thread parallelism cannot beat serial there — the default
asserts only equality, which must hold everywhere).
"""

import argparse
import sys
import time

from repro.bench import experiments
from repro.bench.runners import SCALES, set_workers


def run_once(name, scale, workers):
    """One fresh run of an experiment; returns (result, wall_seconds)."""
    # The sweep memo must not leak results across worker settings —
    # a cache hit would trivially (and vacuously) "match".
    experiments._SWEEP_CACHE.clear()
    set_workers(workers)
    started = time.time()
    result = experiments.EXPERIMENTS[name](scale=scale)
    return result, time.time() - started


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--experiment", default="fig5",
                        choices=sorted(experiments.EXPERIMENTS))
    parser.add_argument("--scale", default="tiny", choices=sorted(SCALES))
    parser.add_argument("--workers", default="1,4",
                        help="comma-separated worker counts (first is "
                             "the baseline; default: 1,4)")
    parser.add_argument("--expect-speedup", type=float, default=None,
                        metavar="X",
                        help="fail unless the widest run is at least X "
                             "times faster than the baseline (needs "
                             "real cores; off by default)")
    args = parser.parse_args(argv)
    counts = [max(1, int(w)) for w in args.workers.split(",")]

    baseline = None
    walls = {}
    for workers in counts:
        result, wall = run_once(args.experiment, args.scale, workers)
        walls[workers] = wall
        snapshot = (result.columns, result.rows, result.notes)
        print("workers=%-3d wall=%6.2fs rows=%d"
              % (workers, wall, len(result.rows)))
        if baseline is None:
            baseline = snapshot
        elif snapshot != baseline:
            print("FAIL: workers=%d produced different simulated output"
                  % workers, file=sys.stderr)
            return 1
    set_workers(1)
    print("simulated output identical across workers=%s"
          % ",".join(str(c) for c in counts))
    if len(counts) > 1:
        speedup = walls[counts[0]] / max(walls[counts[-1]], 1e-9)
        print("wall speedup (workers=%d vs %d): %.2fx"
              % (counts[-1], counts[0], speedup))
        if args.expect_speedup is not None \
                and speedup < args.expect_speedup:
            print("FAIL: expected >= %.2fx" % args.expect_speedup,
                  file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
