"""Tests for the Hive-ACID-style base+delta baseline."""

import pytest

from repro.cluster import ClusterProfile
from repro.hive import HiveSession


@pytest.fixture
def session():
    return HiveSession(profile=ClusterProfile.laptop())


def make_acid(session, n=100):
    session.execute(
        "CREATE TABLE a (id int, grp string, v double) STORED AS ACID "
        "TBLPROPERTIES ('orc.rows_per_file' = '40', "
        "'orc.stripe_rows' = '10')")
    session.load_rows("a", [(i, "g%d" % (i % 5), float(i))
                            for i in range(n)])
    return session.table("a").handler


class TestReads:
    def test_base_scan(self, session):
        make_acid(session)
        assert session.execute("SELECT count(*) FROM a").scalar() == 100

    def test_global_rids_unique_across_base_files(self, session):
        handler = make_acid(session)
        rids = []
        for split in handler.scan_splits():
            rids.extend(r for r, _ in
                        handler.read_split_with_rids(split, None))
        assert sorted(rids) == list(range(100))


class TestUpdates:
    def test_update_creates_delta_not_rewrites_base(self, session):
        handler = make_acid(session)
        base_before = handler.base_files()
        session.execute("UPDATE a SET v = 0 WHERE id < 10")
        assert handler.base_files() == base_before
        assert len(handler.delta_dirs()) == 1

    def test_update_visible_on_read(self, session):
        make_acid(session)
        session.execute("UPDATE a SET v = -1 WHERE grp = 'g0'")
        got = session.execute("SELECT count(*) FROM a WHERE v = -1")
        assert got.scalar() == 20

    def test_each_statement_new_delta(self, session):
        handler = make_acid(session)
        session.execute("UPDATE a SET v = 1 WHERE id = 1")
        session.execute("UPDATE a SET v = 2 WHERE id = 2")
        session.execute("DELETE FROM a WHERE id = 3")
        assert len(handler.delta_dirs()) == 3

    def test_later_delta_wins(self, session):
        make_acid(session)
        session.execute("UPDATE a SET v = 10 WHERE id = 5")
        session.execute("UPDATE a SET v = 20 WHERE id = 5")
        assert session.execute(
            "SELECT v FROM a WHERE id = 5").scalar() == 20.0

    def test_delete_masks_row(self, session):
        make_acid(session)
        session.execute("DELETE FROM a WHERE id >= 90")
        assert session.execute("SELECT count(*) FROM a").scalar() == 90
        assert session.execute("SELECT max(id) FROM a").scalar() == 89

    def test_update_after_delete_is_noop(self, session):
        make_acid(session)
        session.execute("DELETE FROM a WHERE id = 7")
        result = session.execute("UPDATE a SET v = 1 WHERE id = 7")
        assert result.affected == 0


class TestCompaction:
    def test_minor_compact_merges_deltas(self, session):
        handler = make_acid(session)
        session.execute("UPDATE a SET v = 1 WHERE id = 1")
        session.execute("UPDATE a SET v = 2 WHERE id = 2")
        session.execute("DELETE FROM a WHERE id = 3")
        expect = session.execute("SELECT * FROM a ORDER BY id").rows
        result = session.execute("COMPACT TABLE a minor")
        assert result.plan == "acid-minor-compact"
        assert len(handler.delta_dirs()) == 1
        assert session.execute("SELECT * FROM a ORDER BY id").rows == expect

    def test_major_compact_folds_into_base(self, session):
        handler = make_acid(session)
        session.execute("UPDATE a SET v = 99 WHERE id < 10")
        session.execute("DELETE FROM a WHERE id >= 95")
        expect = session.execute("SELECT * FROM a ORDER BY id").rows
        result = session.execute("COMPACT TABLE a major")
        assert result.plan == "acid-major-compact"
        assert handler.delta_dirs() == []
        assert session.execute("SELECT * FROM a ORDER BY id").rows == expect

    def test_minor_compact_single_delta_noop(self, session):
        make_acid(session)
        session.execute("UPDATE a SET v = 1 WHERE id = 1")
        result = session.execute("COMPACT TABLE a minor")
        assert result.plan == "acid-minor-noop"

    def test_major_compact_no_deltas_noop(self, session):
        make_acid(session)
        assert session.execute("COMPACT TABLE a").plan == "acid-major-noop"


class TestReadAmplification:
    def test_read_cost_grows_with_delta_count(self, session):
        """The paper's Section V-C point: every read rescans all deltas."""
        make_acid(session)
        base = session.execute("SELECT count(*) FROM a").sim_seconds
        for i in range(5):
            session.execute("UPDATE a SET v = %d WHERE id < 20" % i)
        amplified = session.execute("SELECT count(*) FROM a").sim_seconds
        assert amplified > base
        session.execute("COMPACT TABLE a major")
        recovered = session.execute("SELECT count(*) FROM a").sim_seconds
        assert recovered < amplified

    def test_update_writes_full_rows_into_delta(self, session):
        """Hive ACID puts the whole updated record into the delta even
        when a single cell changed."""
        handler = make_acid(session)
        session.execute("UPDATE a SET v = 0 WHERE id < 50")
        delta_bytes = sum(handler.fs.file_size(p)
                          for p in handler.delta_files())
        # 50 of 100 rows, all columns: the delta is a sizable fraction
        # of the base, unlike DualTable's per-cell edits.
        base_bytes = sum(handler.fs.file_size(p)
                         for p in handler.base_files())
        assert delta_bytes > base_bytes / 10
