"""System-level consistency: random DML sequences vs an in-memory oracle.

The strongest invariant in DESIGN.md: for *any* interleaving of UPDATE /
DELETE / INSERT / COMPACT, a DualTable (and the ACID baseline) must stay
logically identical to a plain dict-of-rows oracle.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterProfile
from repro.hive import HiveSession


def _fresh(storage):
    session = HiveSession(profile=ClusterProfile.laptop())
    session.execute(
        "CREATE TABLE t (id int, grp string, v int) STORED AS %s "
        "TBLPROPERTIES ('orc.rows_per_file' = '20', "
        "'orc.stripe_rows' = '5'%s)"
        % (storage,
           ", 'dualtable.mode' = 'cost'" if storage == "dualtable" else ""))
    rows = [(i, "g%d" % (i % 3), i) for i in range(60)]
    session.load_rows("t", rows)
    oracle = {i: [i, "g%d" % (i % 3), i] for i in range(60)}
    return session, oracle


operations = st.lists(st.tuples(
    st.sampled_from(["update_eq", "update_lt", "delete_eq", "delete_grp",
                     "insert", "compact"]),
    st.integers(0, 80),
    st.integers(0, 2),
), min_size=1, max_size=12)


def _apply(session, oracle, op, key, grp_i, next_id):
    grp = "g%d" % grp_i
    if op == "update_eq":
        session.execute("UPDATE t SET v = v + 1000 WHERE id = %d" % key)
        if key in oracle:
            oracle[key][2] += 1000
    elif op == "update_lt":
        session.execute("UPDATE t SET grp = 'low' WHERE id < %d" % key)
        for row in oracle.values():
            if row[0] < key:
                row[1] = "low"
    elif op == "delete_eq":
        session.execute("DELETE FROM t WHERE id = %d" % key)
        oracle.pop(key, None)
    elif op == "delete_grp":
        session.execute("DELETE FROM t WHERE grp = '%s'" % grp)
        for row_id in [i for i, row in oracle.items() if row[1] == grp]:
            del oracle[row_id]
    elif op == "insert":
        session.execute("INSERT INTO t VALUES (%d, '%s', %d)"
                        % (next_id, grp, next_id))
        oracle[next_id] = [next_id, grp, next_id]
        return next_id + 1
    elif op == "compact":
        session.execute("COMPACT TABLE t")
    return next_id


def _assert_matches(session, oracle):
    got = sorted(session.execute("SELECT * FROM t").rows)
    expect = sorted(tuple(row) for row in oracle.values())
    assert got == expect


@pytest.mark.parametrize("storage", ["dualtable", "acid"])
@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=operations)
def test_random_dml_matches_oracle(storage, ops):
    session, oracle = _fresh(storage)
    next_id = 1000
    for op, key, grp_i in ops:
        next_id = _apply(session, oracle, op, key, grp_i, next_id)
    _assert_matches(session, oracle)


@pytest.mark.parametrize("storage", ["orc", "hbase", "dualtable", "acid"])
def test_fixed_torture_sequence(storage):
    """One deterministic mixed sequence on every storage backend."""
    session, oracle = _fresh(storage)
    next_id = 1000
    script = [
        ("update_lt", 30, 0), ("delete_grp", 0, 1), ("insert", 0, 2),
        ("update_eq", 1000, 0), ("delete_eq", 2, 0), ("insert", 0, 0),
        ("update_lt", 2000, 1), ("delete_eq", 59, 2),
    ]
    if storage in ("dualtable", "acid"):
        script.insert(4, ("compact", 0, 0))
    for op, key, grp_i in script:
        next_id = _apply(session, oracle, op, key, grp_i, next_id)
    _assert_matches(session, oracle)
    # aggregates agree too
    expect_sum = sum(row[2] for row in oracle.values())
    assert session.execute("SELECT sum(v) FROM t").scalar() == expect_sum


@pytest.mark.parametrize("storage", ["dualtable", "acid"])
def test_alternating_update_compact_cycles(storage):
    session, oracle = _fresh(storage)
    for cycle in range(3):
        session.execute("UPDATE t SET v = %d WHERE grp = 'g1'" % cycle)
        for row in oracle.values():
            if row[1] == "g1":
                row[2] = cycle
        session.execute("COMPACT TABLE t")
        _assert_matches(session, oracle)
