"""Tests for the DualTable cost model (Section IV of the paper)."""

import pytest

from repro.cluster import ClusterProfile
from repro.common.units import GB
from repro.core import CostModel, cost_d_paper, cost_u_paper


class TestPaperEquations:
    def test_worked_example_from_section_iv(self):
        """The paper's example: D=100GB, α=0.01, k=30 ⇒ CostU = 38.75s."""
        cost = cost_u_paper(
            d_bytes=100.0, alpha=0.01, k=30,
            master_write_bps=1.0,       # 1 GB/s, expressed in GB units
            attached_write_bps=0.8,
            attached_read_bps=0.5)
        assert cost == pytest.approx(38.75)

    def test_eq1_positive_means_edit_for_small_alpha(self):
        small = cost_u_paper(100.0, 0.001, 1, 1.0, 0.8, 0.5)
        large = cost_u_paper(100.0, 0.9, 1, 1.0, 0.8, 0.5)
        assert small > 0           # EDIT wins
        assert large < 0           # OVERWRITE wins

    def test_eq1_monotone_in_alpha_and_k(self):
        costs_alpha = [cost_u_paper(100.0, a, 5, 1.0, 0.8, 0.5)
                       for a in (0.01, 0.1, 0.3, 0.6)]
        assert costs_alpha == sorted(costs_alpha, reverse=True)
        costs_k = [cost_u_paper(100.0, 0.1, k, 1.0, 0.8, 0.5)
                   for k in (1, 5, 20, 50)]
        assert costs_k == sorted(costs_k, reverse=True)

    def test_eq2_delete_uses_marker_fraction(self):
        # With tiny markers, EDIT stays cheap far longer than for updates.
        upd = cost_u_paper(100.0, 0.3, 1, 1.0, 0.8, 0.5)
        dele = cost_d_paper(100.0, 0.3, 1, row_bytes=100, marker_bytes=10,
                            master_write_bps=1.0, master_read_bps=1.2,
                            attached_write_bps=0.8, attached_read_bps=0.5)
        assert dele != upd

    def test_eq2_overwrite_cheapens_with_beta(self):
        # As β→1 OVERWRITE writes almost nothing, so CostD drops.
        low = cost_d_paper(100.0, 0.05, 1, 100, 10, 1.0, 1.2, 0.8, 0.5)
        high = cost_d_paper(100.0, 0.9, 1, 100, 10, 1.0, 1.2, 0.8, 0.5)
        assert high < low


@pytest.fixture
def model():
    profile = ClusterProfile(name="cm", hbase_op_latency_s=2e-6,
                             hbase_scan_row_latency_s=2e-7)
    return CostModel(profile, k=1)


D = 10 * GB
ROWS = 100_000_000


class TestPlanChoice:
    def test_small_ratio_chooses_edit(self, model):
        choice = model.choose_update_plan(D, ROWS, 0.01, 40)
        assert choice.plan == "edit"
        assert choice.cost_difference > 0

    def test_huge_ratio_chooses_overwrite(self, model):
        choice = model.choose_update_plan(D, ROWS, 0.95, 40)
        assert choice.plan == "overwrite"

    def test_choice_is_monotone_in_ratio(self, model):
        plans = [model.choose_update_plan(D, ROWS, r, 40).plan
                 for r in (0.01, 0.1, 0.3, 0.5, 0.7, 0.9)]
        # once overwrite appears it never flips back
        first_over = plans.index("overwrite") if "overwrite" in plans \
            else len(plans)
        assert all(p == "edit" for p in plans[:first_over])
        assert all(p == "overwrite" for p in plans[first_over:])

    def test_delete_crossover_not_higher_than_update(self, model):
        upd = model.update_crossover_ratio(D, ROWS, 40)
        dele = model.delete_crossover_ratio(D, ROWS)
        assert 0 < dele <= upd < 1

    def test_more_reads_lower_crossover(self, model):
        cross = [model.update_crossover_ratio(D, ROWS, 40, k=k)
                 for k in (1, 5, 30)]
        assert cross == sorted(cross, reverse=True)
        assert cross[-1] < cross[0] / 2

    def test_pruned_scan_favors_edit(self, model):
        full = model.choose_update_plan(D, ROWS, 0.4, 40,
                                        edit_scan_bytes=D)
        pruned = model.choose_update_plan(D, ROWS, 0.4, 40,
                                          edit_scan_bytes=D // 100)
        assert pruned.cost_difference > full.cost_difference

    def test_bigger_update_payload_favors_overwrite(self, model):
        slim = model.choose_update_plan(D, ROWS, 0.3, 30)
        fat = model.choose_update_plan(D, ROWS, 0.3, 3000)
        assert fat.cost_difference < slim.cost_difference

    def test_plan_choice_reports_components(self, model):
        choice = model.choose_update_plan(D, ROWS, 0.1, 40)
        assert choice.edit_seconds > 0
        assert choice.overwrite_seconds > 0
        assert choice.touched_rows == pytest.approx(0.1 * ROWS)
        assert choice.k == 1
        assert choice.d_bytes == D

    def test_byte_scale_scales_costs(self):
        base = CostModel(ClusterProfile(name="a"))
        scaled = CostModel(ClusterProfile(name="b", byte_scale=10.0))
        a = base.choose_update_plan(D, ROWS, 0.1, 40)
        b = scaled.choose_update_plan(D, ROWS, 0.1, 40)
        assert b.overwrite_seconds == pytest.approx(
            10 * a.overwrite_seconds)

    def test_zero_rows_table(self, model):
        choice = model.choose_update_plan(0, 0, 0.0, 40)
        assert choice.plan in ("edit", "overwrite")

    def test_crossover_bisection_consistent(self, model):
        cross = model.update_crossover_ratio(D, ROWS, 40)
        below = model.choose_update_plan(D, ROWS, cross * 0.9, 40)
        above = model.choose_update_plan(D, ROWS, min(1.0, cross * 1.1), 40)
        assert below.plan == "edit"
        assert above.plan == "overwrite"
