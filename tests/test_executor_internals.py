"""Unit tests for executor internals: envs, sources, split planning."""

import pytest

from repro.cluster import Cluster, ClusterProfile
from repro.hive import HiveSession
from repro.hive import ast_nodes as ast
from repro.hive.executor import (MaterializedSource, SelectExecutor,
                                 _NullsLast, _and, _iter_conjuncts,
                                 _output_name, merge_envs)
from repro.hive.expressions import Env
from repro.hive.parser import parse


class TestMergeEnvs:
    def test_offsets_right_side(self):
        left = Env()
        left.add_schema(["a", "b"], alias="l")
        right = Env()
        right.add_schema(["c"], alias="r")
        merged = merge_envs(left, right)
        assert merged.width == 3
        assert merged.try_resolve("l.a") == 0
        assert merged.try_resolve("r.c") == 2

    def test_shared_bare_names_become_ambiguous(self):
        left = Env()
        left.add_schema(["k"], alias="l")
        right = Env()
        right.add_schema(["k"], alias="r")
        merged = merge_envs(left, right)
        assert merged.try_resolve("k") is None      # ambiguous
        assert merged.try_resolve("l.k") == 0
        assert merged.try_resolve("r.k") == 1


class TestMaterializedSource:
    def test_splits_chunking(self):
        env = Env()
        env.add_schema(["a"])
        rows = [(i,) for i in range(45)]
        source = MaterializedSource(rows, env, bytes_estimate=450)
        splits = source.splits(chunk_rows=20)
        assert [len(s.payload) for s in splits] == [20, 20, 5]
        assert sum(s.size_bytes for s in splits) == 450

    def test_empty_rows_single_split(self):
        env = Env()
        env.add_schema(["a"])
        source = MaterializedSource([], env, 0)
        splits = source.splits()
        assert len(splits) == 1
        assert splits[0].payload == []

    def test_reader_charges_hdfs(self):
        cluster = Cluster(ClusterProfile.laptop())
        env = Env()
        env.add_schema(["a"])
        source = MaterializedSource([(1,), (2,)], env, 1000)
        reader = source.make_reader()

        class Ctx:
            pass
        ctx = Ctx()
        ctx.cluster = cluster
        split = source.splits()[0]
        assert list(reader(split, ctx)) == [(1,), (2,)]
        assert cluster.ledger.bytes_for("hdfs", "read") == split.size_bytes


class TestConjunctHelpers:
    def test_iter_conjuncts_flattens_nested_ands(self):
        expr = parse("SELECT a FROM t WHERE x = 1 AND (y = 2 AND z = 3)"
                     ).where
        assert len(list(_iter_conjuncts(expr))) == 3

    def test_or_is_a_single_conjunct(self):
        expr = parse("SELECT a FROM t WHERE x = 1 OR y = 2").where
        assert len(list(_iter_conjuncts(expr))) == 1

    def test_and_builder(self):
        a, b = ast.Literal(1), ast.Literal(2)
        assert _and([]) is None
        assert _and([a]) is a
        combined = _and([a, b])
        assert isinstance(combined, ast.LogicalOp)


class TestOutputNames:
    def test_alias_wins(self):
        item = parse("SELECT a + 1 AS total").items[0]
        assert _output_name(item, 0) == "total"

    def test_column_name(self):
        item = parse("SELECT t.col").items[0]
        assert _output_name(item, 0) == "col"

    def test_function_name(self):
        item = parse("SELECT sum(a)").items[0]
        assert _output_name(item, 3) == "sum_3"

    def test_fallback(self):
        item = parse("SELECT 1 + 2").items[0]
        assert _output_name(item, 2) == "_c2"


class TestNullsLastOrdering:
    def test_nulls_sort_last_ascending(self):
        values = [3, None, 1, None, 2]
        wrapped = sorted(values, key=lambda v: _NullsLast(v, False))
        assert wrapped == [1, 2, 3, None, None]

    def test_descending(self):
        values = [3, None, 1]
        wrapped = sorted(values, key=lambda v: _NullsLast(v, True))
        assert wrapped == [3, 1, None]

    def test_mixed_types_fall_back_to_repr(self):
        values = ["b", 1, "a"]
        sorted(values, key=lambda v: _NullsLast(v, False))   # must not raise


class TestSplitPlanning:
    def test_scan_splits_carry_predicate_ranges(self):
        session = HiveSession(profile=ClusterProfile.laptop())
        session.execute("CREATE TABLE t (a int, b string) "
                        "TBLPROPERTIES ('orc.rows_per_file' = '20')")
        session.load_rows("t", [(i, "s") for i in range(100)])
        executor = SelectExecutor(session)
        stmt = parse("SELECT b FROM t WHERE a >= 60")
        result = executor.run(stmt)
        assert len(result.rows) == 40
        # The scan job touched fewer bytes than a full read would have.
        full = SelectExecutor(session).run(parse("SELECT b FROM t"))
        assert len(full.rows) == 100

    def test_pruned_scan_cheaper(self):
        session = HiveSession(profile=ClusterProfile.laptop())
        session.execute("CREATE TABLE t (a int, b string) "
                        "TBLPROPERTIES ('orc.rows_per_file' = '20', "
                        "'orc.stripe_rows' = '5')")
        session.load_rows("t", [(i, "filler" * 10) for i in range(200)])
        narrow = session.execute("SELECT b FROM t WHERE a = 5")
        wide = session.execute("SELECT b FROM t")
        assert narrow.sim_seconds < wide.sim_seconds
