"""Crash-safe COMPACT (manifest 2PC) and atomic DML commits."""

import pytest

from repro.common.errors import FaultInjectedError, ReproError
from repro.faults import Fault, FaultPlan

COMPACT_POINTS = (
    "dualtable.compact.write",
    "dualtable.compact.manifest",
    "dualtable.compact.swap",
    "dualtable.compact.swap2",
    "dualtable.compact.truncate",
    "dualtable.compact.cleanup",
)


def make_dualtable(session, n=60, rows_per_file=15):
    session.execute(
        "CREATE TABLE dt (id int, day string, amount double, tag string) "
        "STORED AS DUALTABLE TBLPROPERTIES ('dualtable.mode' = 'edit', "
        "'orc.rows_per_file' = '%d', 'orc.stripe_rows' = '5')"
        % rows_per_file)
    rows = [(i, "2013-07-%02d" % (1 + i % 20), float(i), "t%d" % (i % 3))
            for i in range(n)]
    session.load_rows("dt", rows)
    return session.table("dt").handler


def _select_all(session):
    with session.cluster.faults.paused():
        return session.execute("SELECT * FROM dt ORDER BY id").rows


def _dirty(session):
    """Leave edits in the attached table so COMPACT has work to do."""
    session.execute("UPDATE dt SET tag = 'upd' WHERE id < 20")
    session.execute("DELETE FROM dt WHERE id >= 50")


class TestCompactCrashRecovery:
    @pytest.mark.parametrize("point", COMPACT_POINTS)
    def test_kill_at_each_point_then_recover(self, session, point):
        handler = make_dualtable(session)
        _dirty(session)
        expect = _select_all(session)
        session.cluster.faults.install(FaultPlan([
            Fault(point, nth_hit=1, kind="kill")]))
        with pytest.raises(ReproError):
            session.execute("COMPACT TABLE dt")
        with session.cluster.faults.paused():
            handler.recover()
        assert _select_all(session) == expect
        session.cluster.faults.uninstall()
        # Table stays fully usable after recovery.
        session.execute("UPDATE dt SET tag = 'post' WHERE id = 0")
        assert session.execute(
            "SELECT tag FROM dt WHERE id = 0").scalar() == "post"

    @pytest.mark.parametrize("point", COMPACT_POINTS)
    def test_recover_twice_is_idempotent(self, session, point):
        handler = make_dualtable(session)
        _dirty(session)
        session.cluster.faults.install(FaultPlan([
            Fault(point, nth_hit=1, kind="kill")]))
        with pytest.raises(ReproError):
            session.execute("COMPACT TABLE dt")
        session.cluster.faults.uninstall()
        handler.recover()
        files_once = sorted(handler.master.file_paths())
        rows_once = _select_all(session)
        handler.recover()
        assert sorted(handler.master.file_paths()) == files_once
        assert _select_all(session) == rows_once

    def test_pre_manifest_crash_rolls_back(self, session):
        """Before the manifest exists the old master must survive."""
        handler = make_dualtable(session)
        _dirty(session)
        files_before = sorted(handler.master.file_paths())
        session.cluster.faults.install(FaultPlan([
            Fault("dualtable.compact.write", nth_hit=1, kind="kill")]))
        with pytest.raises(ReproError):
            session.execute("COMPACT TABLE dt")
        session.cluster.faults.uninstall()
        outcome = handler.recover()
        assert outcome["compact"] in ("rolled_back", "clean")
        assert sorted(handler.master.file_paths()) == files_before
        # Edits survived the rollback: they are still in the attached.
        assert not handler.attached.is_empty()

    def test_post_manifest_crash_rolls_forward(self, session):
        """Once the manifest is durable the compaction completes."""
        handler = make_dualtable(session)
        _dirty(session)
        expect = _select_all(session)
        session.cluster.faults.install(FaultPlan([
            Fault("dualtable.compact.swap", nth_hit=1, kind="kill")]))
        with pytest.raises(ReproError):
            session.execute("COMPACT TABLE dt")
        session.cluster.faults.uninstall()
        outcome = handler.recover()
        assert outcome["compact"] == "rolled_forward"
        assert _select_all(session) == expect
        assert handler.attached.is_empty()

    def test_next_statement_auto_recovers(self, session):
        """A crashed COMPACT must not wedge the table: the next
        statement recovers implicitly via _ensure_recovered."""
        make_dualtable(session)
        _dirty(session)
        expect = _select_all(session)
        session.cluster.faults.install(FaultPlan([
            Fault("dualtable.compact.truncate", nth_hit=1, kind="kill")]))
        with pytest.raises(ReproError):
            session.execute("COMPACT TABLE dt")
        session.cluster.faults.uninstall()
        # No explicit recover() — just keep using the table.
        assert session.execute(
            "SELECT * FROM dt ORDER BY id").rows == expect


PARTIAL_POINTS = (
    "dualtable.compact.partial.write",
    "dualtable.compact.partial.manifest",
    "dualtable.compact.partial.swap",
    "dualtable.compact.partial.delta_drop",
)


class TestPartialCompactCrashRecovery:
    @pytest.mark.parametrize("point", PARTIAL_POINTS)
    def test_kill_at_each_point_then_recover(self, session, point):
        handler = make_dualtable(session)
        _dirty(session)
        expect = _select_all(session)
        session.cluster.faults.install(FaultPlan([
            Fault(point, nth_hit=1, kind="kill")]))
        with pytest.raises(ReproError):
            session.execute("COMPACT TABLE dt PARTIAL")
        with session.cluster.faults.paused():
            handler.recover()
        assert _select_all(session) == expect
        session.cluster.faults.uninstall()
        session.execute("UPDATE dt SET tag = 'post' WHERE id = 0")
        assert session.execute(
            "SELECT tag FROM dt WHERE id = 0").scalar() == "post"

    @pytest.mark.parametrize("point", PARTIAL_POINTS)
    def test_recover_twice_is_idempotent(self, session, point):
        handler = make_dualtable(session)
        _dirty(session)
        session.cluster.faults.install(FaultPlan([
            Fault(point, nth_hit=1, kind="kill")]))
        with pytest.raises(ReproError):
            session.execute("COMPACT TABLE dt PARTIAL")
        session.cluster.faults.uninstall()
        handler.recover()
        files_once = sorted(handler.master.file_paths())
        rows_once = _select_all(session)
        handler.recover()
        assert sorted(handler.master.file_paths()) == files_once
        assert _select_all(session) == rows_once

    def test_pre_manifest_crash_rolls_back(self, session):
        handler = make_dualtable(session)
        _dirty(session)
        files_before = sorted(handler.master.file_paths())
        deltas_before = handler.attached.size_bytes
        session.cluster.faults.install(FaultPlan([
            Fault("dualtable.compact.partial.write",
                  nth_hit=1, kind="kill")]))
        with pytest.raises(ReproError):
            session.execute("COMPACT TABLE dt PARTIAL")
        session.cluster.faults.uninstall()
        outcome = handler.recover()
        assert outcome["compact"] in ("rolled_back", "clean")
        assert sorted(handler.master.file_paths()) == files_before
        assert handler.attached.size_bytes == deltas_before

    def test_post_manifest_crash_rolls_forward(self, session):
        handler = make_dualtable(session)
        _dirty(session)
        expect = _select_all(session)
        session.cluster.faults.install(FaultPlan([
            Fault("dualtable.compact.partial.swap",
                  nth_hit=1, kind="kill")]))
        with pytest.raises(ReproError):
            session.execute("COMPACT TABLE dt PARTIAL")
        session.cluster.faults.uninstall()
        outcome = handler.recover()
        assert outcome["compact"] == "rolled_forward"
        assert _select_all(session) == expect
        # Partial fold: every victim's deltas dropped, table readable.
        assert handler.attached.is_empty()

    def test_max_files_keeps_other_deltas(self, session):
        """PARTIAL 1 folds only the densest file; the rest keep their
        deltas and the merged view is unchanged."""
        handler = make_dualtable(session)
        _dirty(session)
        expect = _select_all(session)
        result = session.execute("COMPACT TABLE dt PARTIAL 1")
        assert result.detail["mode"] == "partial"
        assert result.detail["files"] == 1
        assert not handler.attached.is_empty()
        assert _select_all(session) == expect
        # A second unbounded pass folds the remainder.
        result = session.execute("COMPACT TABLE dt PARTIAL")
        assert result.detail["mode"] == "partial"
        assert handler.attached.is_empty()
        assert _select_all(session) == expect

    def test_retryable_crash_mid_delta_drop_self_heals(self, session):
        """A non-fatal fault inside clear_file's hbase deletes re-enters
        the commit via run_with_retries; the manifest resume guard must
        finish phase 2 instead of double-applying the swap."""
        handler = make_dualtable(session)
        _dirty(session)
        expect = _select_all(session)
        session.cluster.faults.install(FaultPlan([
            Fault("hbase.delete", nth_hit=1, kind="crash")]))
        result = session.execute("COMPACT TABLE dt PARTIAL")
        session.cluster.faults.uninstall()
        assert result.detail["mode"] == "partial"
        assert _select_all(session) == expect
        assert handler.attached.is_empty()

    def test_chaos_schedule_converges(self, session):
        """Random kills across every partial fault point, recovering
        after each, never lose or duplicate a row."""
        handler = make_dualtable(session)
        _dirty(session)
        expect = _select_all(session)
        for i, point in enumerate(PARTIAL_POINTS):
            session.cluster.faults.install(FaultPlan([
                Fault(point, nth_hit=1, kind="kill")]))
            with pytest.raises(ReproError):
                session.execute("COMPACT TABLE dt PARTIAL 1")
            session.cluster.faults.uninstall()
            handler.recover()
            assert _select_all(session) == expect
            # Re-dirty so the next iteration has work to crash on.
            session.execute("UPDATE dt SET tag = 'c%d' WHERE id = %d"
                            % (i, i))
            expect = _select_all(session)
        session.execute("COMPACT TABLE dt PARTIAL")
        assert _select_all(session) == expect


class TestDmlCrashRecovery:
    def test_stage_kill_rolls_back(self, session):
        """A crash before the redo log is durable publishes nothing."""
        handler = make_dualtable(session)
        before = _select_all(session)
        session.cluster.faults.install(FaultPlan([
            Fault("dualtable.dml.stage", nth_hit=1, kind="kill")]))
        with pytest.raises(FaultInjectedError):
            session.execute("UPDATE dt SET tag = 'lost' WHERE id < 30")
        session.cluster.faults.uninstall()
        outcome = handler.recover()
        assert all(o != "rolled_forward" for _, o in outcome["dml"])
        assert _select_all(session) == before
        assert handler.attached.is_empty()

    def test_publish_kill_rolls_forward(self, session):
        """Once the redo log is durable the edit is committed."""
        handler = make_dualtable(session)
        session.cluster.faults.install(FaultPlan([
            Fault("dualtable.dml.publish", nth_hit=1, kind="kill")]))
        with pytest.raises(FaultInjectedError):
            session.execute("UPDATE dt SET tag = 'won' WHERE id < 30")
        session.cluster.faults.uninstall()
        outcome = handler.recover()
        assert any(o == "rolled_forward" for _, o in outcome["dml"])
        assert session.execute(
            "SELECT count(*) FROM dt WHERE tag = 'won'").scalar() == 30

    def test_dml_recovery_is_idempotent(self, session):
        handler = make_dualtable(session)
        session.cluster.faults.install(FaultPlan([
            Fault("dualtable.dml.publish", nth_hit=1, kind="kill")]))
        with pytest.raises(FaultInjectedError):
            session.execute("DELETE FROM dt WHERE id >= 40")
        session.cluster.faults.uninstall()
        handler.recover()
        rows_once = _select_all(session)
        handler.recover()
        assert _select_all(session) == rows_once
        assert session.execute("SELECT count(*) FROM dt").scalar() == 40

    def test_retryable_crash_mid_publish_self_heals(self, session):
        """A non-fatal crash during publish is retried in-statement."""
        make_dualtable(session)
        session.cluster.faults.install(FaultPlan([
            Fault("dualtable.dml.publish", nth_hit=1, kind="crash")]))
        result = session.execute("UPDATE dt SET tag = 'ok' WHERE id < 10")
        session.cluster.faults.uninstall()
        assert result.affected == 10
        assert session.execute(
            "SELECT count(*) FROM dt WHERE tag = 'ok'").scalar() == 10

    def test_no_acked_edit_lost_across_region_crash(self, session):
        """Acked DML survives a region-server crash (WAL replay)."""
        make_dualtable(session)
        session.execute("UPDATE dt SET tag = 'acked' WHERE id < 25")
        session.hbase.crash_region_server()
        assert session.execute(
            "SELECT count(*) FROM dt WHERE tag = 'acked'").scalar() == 25
