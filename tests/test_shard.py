"""Sharded DualTable tests: identity, routing, rebalance, advisor.

The load-bearing contract is *shard-count identity* (INTERNALS §13): a
logical table ``SHARDED BY (k) INTO n`` returns the same rows, charges
the same ledger bytes/ops, and moves the same non-cache counters for
every ``n`` — sharding changes placement and simulated makespan only.
The comparison goes through :mod:`repro.shard.identity` so the test and
``scripts/bench_shard.py --check`` enforce the exact same gate.
"""

import pytest

from repro.cluster import ClusterProfile
from repro.hive import HiveSession
from repro.hive import ast_nodes as ast
from repro.hive.parser import parse
from repro.advisor import WorkloadAdvisor, apply_findings
from repro.server import Arrival, build_ledger_server
from repro.shard import NUM_BUCKETS, ShardMap
from repro.shard.identity import identity_fingerprint


def make_session(shards, workers=1, engine="row", rows=90,
                 rows_per_file=10):
    session = HiveSession(profile=ClusterProfile.laptop(workers=workers),
                          engine=engine)
    session.execute(
        "CREATE TABLE t (k int, grp string, v int) PRIMARY KEY (k) "
        "STORED AS dualtable SHARDED BY (k) INTO %d "
        "TBLPROPERTIES ('orc.rows_per_file' = '%d')"
        % (shards, rows_per_file))
    session.load_rows("t", [(i, "g%d" % (i % 3), i % 7)
                            for i in range(rows)])
    return session


def handler_of(session, name="t"):
    return session.metastore.table(name).handler


# ---------------------------------------------------------------------------
# Shard-count identity: INTO 1/4/8 x workers 1/4 x both engines.
# ---------------------------------------------------------------------------
IDENTITY_WORKLOAD = [
    "SELECT count(*), sum(v) FROM t",
    "UPDATE t SET v = 999 WHERE k < 20",
    "SELECT count(*), sum(v) FROM t WHERE v = 999",
    "DELETE FROM t WHERE k >= 70",
    "SELECT k, v FROM t WHERE k = 0",
    "SELECT grp, count(*), sum(v) FROM t GROUP BY grp ORDER BY grp",
    "SELECT count(*), sum(v) FROM t",
]


def run_identity(shards, workers=1, engine="row"):
    session = make_session(shards, workers=workers, engine=engine)
    transcript = []
    for sql in IDENTITY_WORKLOAD:
        result = session.execute(sql)
        transcript.append((sql, result.rows))
    return identity_fingerprint(session, transcript)


@pytest.fixture(scope="module")
def identity_baseline():
    return run_identity(1, workers=1, engine="row")


class TestShardCountIdentity:
    @pytest.mark.parametrize("shards,workers,engine", [
        (1, 1, "vectorized"),
        (1, 4, "row"),
        (1, 4, "vectorized"),
        (4, 1, "row"),
        (4, 1, "vectorized"),
        (4, 4, "row"),
        (4, 4, "vectorized"),
        (8, 1, "row"),
        (8, 1, "vectorized"),
        (8, 4, "row"),
        (8, 4, "vectorized"),
    ])
    def test_fingerprint_matches_serial_single_shard(
            self, identity_baseline, shards, workers, engine):
        transcript, ledger, counters = run_identity(shards, workers,
                                                    engine)
        base_transcript, base_ledger, base_counters = identity_baseline
        for (sql, rows), (_, expect) in zip(transcript, base_transcript):
            assert rows == expect, sql
        assert ledger == base_ledger
        assert counters == base_counters

    def test_baseline_rerun_is_self_consistent(self, identity_baseline):
        assert run_identity(1, workers=1, engine="row") \
            == identity_baseline

    def test_physical_file_set_is_shard_count_invariant(self):
        """Bucket-grouped layout: same basenames, sizes and row counts
        for every INTO n — only the owning directory differs."""
        def file_set(shards):
            handler = handler_of(make_session(shards))
            fs = handler.env.fs
            out = []
            for path in sorted(handler.master.file_paths(),
                               key=lambda p: p.rsplit("/", 1)[-1]):
                file_id, num_rows = handler.master.file_meta(path)
                out.append((path.rsplit("/", 1)[-1], file_id,
                            fs.file_size(path), num_rows))
            return out
        base = file_set(1)
        assert len(base) > 8
        assert file_set(4) == base
        assert file_set(8) == base

    def test_rows_survive_compact_at_every_shard_count(self):
        """COMPACT folds per region server, so the *file layout* after
        it is placement-dependent (per-child consolidation) — but the
        logical rows must stay identical at every INTO n."""
        def rows_after_compact(shards):
            session = make_session(shards)
            session.execute("UPDATE t SET v = 999 WHERE k < 20")
            session.execute("COMPACT TABLE t")
            return session.execute(
                "SELECT k, grp, v FROM t ORDER BY k").rows
        base = rows_after_compact(1)
        assert len(base) == 90
        assert rows_after_compact(4) == base
        assert rows_after_compact(8) == base


# ---------------------------------------------------------------------------
# LOOKUP routing: exactly the owning shard is planned, read and charged.
# ---------------------------------------------------------------------------
class TestLookupRouting:
    def test_point_read_routed_to_single_owning_shard(self):
        session = make_session(4)
        handler = handler_of(session)
        key = 17
        owner = handler.shard_map.shard_of(key)
        session.execute("SET dualtable.plan = lookup")
        result = session.execute("SELECT k, v FROM t WHERE k = %d" % key)
        assert result.rows == [(17, 17 % 7)]
        assert result.plan == "lookup"
        assert result.detail["shard"] == owner
        metrics = session.cluster.metrics
        for shard in range(4):
            expect = 1 if shard == owner else 0
            assert metrics.counter("shard.lookups.t.%d" % shard) == expect

    def test_lookup_plan_reads_only_owning_shard_files(self):
        """Every candidate file in the routed plan lives under the
        owning child's master directory — the per-query bytes are
        charged on exactly one shard."""
        session = make_session(4)
        handler = handler_of(session)
        key = 17
        owner = handler.shard_map.shard_of(key)
        plan = handler.plan_lookup(
            {"k": _point_range(session, key)}, hit_faults=False)
        assert plan is not None and plan.shard == owner
        prefix = handler.children[owner].master.location + "/"
        assert plan.files
        assert all(f["path"].startswith(prefix) for f in plan.files)

    def test_open_range_fans_out_to_scan(self):
        session = make_session(4)
        handler = handler_of(session)
        assert handler.plan_lookup(
            {"k": _open_range(session)}, hit_faults=False) is None
        session.execute("SET dualtable.plan = cost")
        result = session.execute("SELECT count(*) FROM t WHERE k < 50")
        assert result.rows == [(50,)]
        assert result.plan.startswith("select(")


def _point_range(session, key):
    from repro.hive.pushdown import extract_ranges
    stmt = parse("SELECT k FROM t WHERE k = %d" % key)
    return extract_ranges(stmt.where)["k"]


def _open_range(session):
    from repro.hive.pushdown import extract_ranges
    stmt = parse("SELECT k FROM t WHERE k < 50")
    return extract_ranges(stmt.where)["k"]


# ---------------------------------------------------------------------------
# SHOW SHARDS / REBALANCE.
# ---------------------------------------------------------------------------
class TestShowShardsAndRebalance:
    def test_show_shards_accounts_for_every_bucket_and_row(self):
        session = make_session(4)
        result = session.execute("SHOW SHARDS t")
        assert result.names == ["shard", "buckets", "files", "rows",
                                "master_bytes", "attached_bytes", "heat"]
        assert len(result.rows) == 4
        assert sum(r[1] for r in result.rows) == NUM_BUCKETS
        assert sum(r[3] for r in result.rows) == 90

    def test_rebalance_is_a_noop_when_heat_is_balanced(self):
        session = make_session(4)
        result = session.execute("ALTER TABLE t REBALANCE")
        assert result.plan == "rebalance-noop"
        assert result.affected == 0

    def test_rebalance_moves_hot_bucket_and_resets_heat(self):
        session = make_session(4)
        handler = handler_of(session)
        hot_key = 17
        src = handler.shard_map.shard_of(hot_key)
        session.execute("SET dualtable.plan = lookup")
        for _ in range(12):
            session.execute("SELECT v FROM t WHERE k = %d" % hot_key)
        session.execute("SET dualtable.plan = cost")
        heats = handler.shard_heats()
        assert heats[src] == 12
        before_rows = session.execute(
            "SELECT k, grp, v FROM t ORDER BY k").rows
        result = session.execute("ALTER TABLE t REBALANCE")
        assert result.plan == "rebalance"
        assert result.detail["src"] == src
        moved_bucket = result.detail["bucket"]
        assert handler.shard_map.assignment[moved_bucket] \
            == result.detail["dst"]
        # Data-neutral: the logical table is unchanged.
        assert session.execute(
            "SELECT k, grp, v FROM t ORDER BY k").rows == before_rows
        # Heat measurement restarts from zero.
        assert handler.shard_heats() == [0] * 4

    def test_rebalance_decision_is_deterministic(self):
        def run_once():
            session = make_session(4)
            session.execute("SET dualtable.plan = lookup")
            for key in (17, 17, 17, 17, 5, 41):
                session.execute("SELECT v FROM t WHERE k = %d" % key)
            session.execute("SET dualtable.plan = cost")
            result = session.execute("ALTER TABLE t REBALANCE")
            handler = handler_of(session)
            return (result.detail, list(handler.shard_map.assignment))
        assert run_once() == run_once()

    def test_shard_map_survives_reopen(self):
        session = make_session(4)
        handler = handler_of(session)
        session.execute("SET dualtable.plan = lookup")
        for _ in range(12):
            session.execute("SELECT v FROM t WHERE k = 17")
        session.execute("SET dualtable.plan = cost")
        session.execute("ALTER TABLE t REBALANCE")
        moved = list(handler.shard_map.assignment)
        assert moved != [b % 4 for b in range(NUM_BUCKETS)]
        reloaded = ShardMap(handler.env.fs, "t", 4)
        assert reloaded.assignment == moved


# ---------------------------------------------------------------------------
# Advisor: shard-skew finding closes the loop through REBALANCE.
# ---------------------------------------------------------------------------
class TestShardSkewAdvisor:
    def _skewed_session(self):
        session = make_session(4)
        handler = handler_of(session)
        hot_key = 17
        session.execute("SET dualtable.plan = lookup")
        for _ in range(12):
            session.execute("SELECT v FROM t WHERE k = %d" % hot_key)
        session.execute("SET dualtable.plan = cost")
        return session, handler, handler.shard_map.shard_of(hot_key)

    def test_skew_surfaces_with_rebalance_remediation(self):
        session, handler, hot = self._skewed_session()
        findings = [f for f in WorkloadAdvisor(session).analyze()
                    if f.code == "shard-skew"]
        assert len(findings) == 1
        finding = findings[0]
        assert finding.subject == "t"
        assert finding.evidence["hot_shard"] == hot
        assert finding.remediation == ["ALTER TABLE t REBALANCE"]

    def test_apply_clears_the_finding(self):
        session, handler, _ = self._skewed_session()
        findings = [f for f in WorkloadAdvisor(session).analyze()
                    if f.code == "shard-skew"]
        applied = apply_findings(session, findings)
        assert [sql for sql, _ in applied] == ["ALTER TABLE t REBALANCE"]
        assert not [f for f in WorkloadAdvisor(session).analyze()
                    if f.code == "shard-skew"]

    def test_balanced_table_stays_quiet(self):
        session = make_session(4)
        assert not [f for f in WorkloadAdvisor(session).analyze()
                    if f.code == "shard-skew"]


# ---------------------------------------------------------------------------
# SQL surface.
# ---------------------------------------------------------------------------
class TestShardSQL:
    def test_create_sharded_parses_into_properties(self):
        stmt = parse("CREATE TABLE t (k int, v int) PRIMARY KEY (k) "
                     "STORED AS dualtable SHARDED BY (k) INTO 8")
        assert stmt.shard_key == "k"
        assert stmt.shard_count == 8
        # The clause is position-flexible: before STORED AS too.
        alt = parse("CREATE TABLE t (k int, v int) PRIMARY KEY (k) "
                    "SHARDED BY (k) INTO 8 STORED AS dualtable")
        assert (alt.shard_key, alt.shard_count) == ("k", 8)

    def test_show_shards_and_rebalance_parse(self):
        assert isinstance(parse("SHOW SHARDS t"), ast.ShowShardsStmt)
        assert isinstance(parse("ALTER TABLE t REBALANCE"),
                          ast.AlterRebalanceStmt)

    def test_sharded_requires_known_key_column(self):
        session = HiveSession(profile=ClusterProfile.laptop())
        with pytest.raises(Exception):
            session.execute(
                "CREATE TABLE bad (k int, v int) PRIMARY KEY (k) "
                "STORED AS dualtable SHARDED BY (missing) INTO 4")


# ---------------------------------------------------------------------------
# Repeatable analytic reads (server snapshot_seq).
# ---------------------------------------------------------------------------
class TestRepeatableServerReads:
    def test_reads_resolve_against_dispatch_time_snapshot(self):
        """Every outcome carries the commit-log seq its snapshot was
        taken at, and a read's rows are fully determined by that seq:
        before the writer's commit_seq it sees the old total, at or
        after it the new one — never a mix."""
        server = build_ledger_server(accounts=8, seed=11)
        writer, reader = server.connect("w"), server.connect("r")
        arrivals = [Arrival(0.0, writer,
                            "UPDATE ledger SET v = v + 10 WHERE id < 8")]
        arrivals += [Arrival(0.001 * (i + 1), reader,
                             "SELECT SUM(v) FROM ledger")
                     for i in range(6)]
        arrivals += [Arrival(5.0, reader, "SELECT SUM(v) FROM ledger")]
        outcomes = server.run(arrivals, concurrency=4)
        write = next(o for o in outcomes
                     if o["sql"].startswith("UPDATE"))
        assert write["status"] == "committed"
        assert write["snapshot_seq"] is not None
        commit_seq = write["commit_seq"]
        reads = [o for o in outcomes if o["sql"].startswith("SELECT")]
        assert reads and all(o["snapshot_seq"] is not None
                             for o in reads)
        for o in reads:
            total = o["result"].scalar() or 0
            expect = 80 if o["snapshot_seq"] >= commit_seq else 0
            assert total == expect, o
        # The late read ran after the commit and must see it.
        assert reads[-1]["snapshot_seq"] >= commit_seq
