"""Tests for predicate-range extraction, pruning and selectivity."""

from repro.hive.parser import parse
from repro.hive.pushdown import (ColumnRange, estimate_selection,
                                 extract_ranges, make_stripe_filter)
from repro.orc import OrcReader, write_orc


def ranges_of(sql_where):
    stmt = parse("SELECT a FROM t WHERE " + sql_where)
    return extract_ranges(stmt.where)


class TestExtractRanges:
    def test_equality(self):
        r = ranges_of("a = 5")["a"]
        assert r.low == 5 and r.high == 5
        assert r.in_set == frozenset([5])

    def test_flipped_operand_order(self):
        r = ranges_of("5 < a")["a"]
        assert r.low == 5 and not r.low_inclusive

    def test_range_pair_intersects(self):
        r = ranges_of("a >= 3 AND a < 9")["a"]
        assert r.low == 3 and r.low_inclusive
        assert r.high == 9 and not r.high_inclusive

    def test_between(self):
        r = ranges_of("a BETWEEN 2 AND 4")["a"]
        assert (r.low, r.high) == (2, 4)

    def test_in_list(self):
        r = ranges_of("a IN (3, 1, 7)")["a"]
        assert r.in_set == frozenset([1, 3, 7])
        assert r.low == 1 and r.high == 7

    def test_in_with_materialized_set(self):
        from repro.hive import ast_nodes as ast
        expr = ast.InList(operand=ast.ColumnRef("a"),
                          items=[ast.Literal(frozenset([2, 4]))])
        r = extract_ranges(expr)["a"]
        assert r.in_set == frozenset([2, 4])

    def test_multiple_columns(self):
        got = ranges_of("a = 1 AND b >= 'x'")
        assert set(got) == {"a", "b"}

    def test_or_not_extracted(self):
        assert ranges_of("a = 1 OR a = 2") == {}

    def test_negated_in_not_extracted(self):
        assert ranges_of("a NOT IN (1)") == {}

    def test_column_vs_column_not_extracted(self):
        assert ranges_of("a = b") == {}

    def test_negative_literal(self):
        r = ranges_of("a > -5")["a"]
        assert r.low == -5

    def test_none_where(self):
        assert extract_ranges(None) == {}


class TestColumnRange:
    def test_may_overlap(self):
        r = ColumnRange(low=10, high=20)
        assert r.may_overlap(5, 15)
        assert r.may_overlap(15, 25)
        assert not r.may_overlap(0, 9)
        assert not r.may_overlap(21, 30)

    def test_exclusive_bounds(self):
        r = ColumnRange(low=10, low_inclusive=False)
        assert not r.may_overlap(5, 10)
        assert r.may_overlap(5, 11)

    def test_unknown_stats_never_pruned(self):
        r = ColumnRange(low=10)
        assert r.may_overlap(None, None)

    def test_mixed_types_never_pruned(self):
        r = ColumnRange(low=10)
        assert r.may_overlap("a", "z")

    def test_in_set_overlap(self):
        r = ColumnRange(in_set=frozenset([5, 100]), low=5, high=100)
        assert r.may_overlap(90, 110)
        assert not r.may_overlap(6, 80)

    def test_overlap_fraction_uniform(self):
        r = ColumnRange(low=0, high=50)
        stats = {"min": 0, "max": 100, "ndv": 100}
        assert abs(r.overlap_fraction(stats, 1000) - 0.5) < 0.01

    def test_overlap_fraction_equality_uses_ndv(self):
        r = ColumnRange(low="x", high="x", in_set=frozenset(["x"]))
        stats = {"min": "a", "max": "z", "ndv": 20}
        assert r.overlap_fraction(stats, 1000) == 1 / 20

    def test_overlap_fraction_zero_when_disjoint(self):
        r = ColumnRange(low=10, high=20)
        assert r.overlap_fraction({"min": 30, "max": 40, "ndv": 5},
                                  100) == 0.0

    def test_intersect(self):
        a = ColumnRange(low=0, high=10)
        b = ColumnRange(low=5, high=20)
        c = a.intersect(b)
        assert (c.low, c.high) == (5, 10)


class TestStripeFiltering:
    SCHEMA = [("id", "int"), ("day", "string")]

    def _reader(self):
        rows = [(i, "2013-07-%02d" % (1 + i // 25)) for i in range(100)]
        return OrcReader(write_orc(self.SCHEMA, rows, stripe_rows=25))

    def test_filter_prunes_stripes(self):
        reader = self._reader()
        ranges = ranges_of("id >= 50")
        flt = make_stripe_filter([n for n, _ in reader.schema],
                                 {"id": ranges["id"]})
        kept = [s.index for s in reader.stripes if flt(s)]
        assert kept == [2, 3]

    def test_filter_on_sorted_string_column(self):
        reader = self._reader()
        ranges = ranges_of("day = '2013-07-03'")
        flt = make_stripe_filter([n for n, _ in reader.schema], ranges)
        kept = [s.index for s in reader.stripes if flt(s)]
        assert kept == [2]

    def test_no_constrained_columns_returns_none(self):
        reader = self._reader()
        assert make_stripe_filter([n for n, _ in reader.schema], {}) is None
        assert make_stripe_filter(["other"], ranges_of("id = 1")) is None

    def test_pruning_never_loses_matches(self):
        """Safety: rows matching the predicate survive pruning."""
        reader = self._reader()
        ranges = ranges_of("id >= 37 AND id <= 61")
        flt = make_stripe_filter([n for n, _ in reader.schema], ranges)
        kept_rows = [v for _, v in reader.rows(stripe_filter=flt)]
        matching = [v for v in kept_rows if 37 <= v[0] <= 61]
        assert len(matching) == 25

    def test_estimate_selection_sorted_column(self):
        reader = self._reader()
        selected, total = estimate_selection([reader],
                                             ranges_of("id < 25"))
        assert total == 100
        assert selected <= 30       # one stripe's worth

    def test_estimate_selection_equality_ndv(self):
        rows = [(i % 50, "x") for i in range(1000)]
        reader = OrcReader(write_orc(self.SCHEMA, rows, stripe_rows=250))
        selected, total = estimate_selection([reader], ranges_of("id = 7"))
        assert abs(selected / total - 1 / 50) < 0.01

    def test_estimate_conjunct_independence(self):
        rows = [(i % 10, "d%d" % (i % 5)) for i in range(1000)]
        reader = OrcReader(write_orc(self.SCHEMA, rows, stripe_rows=500))
        ranges = ranges_of("id = 3 AND day = 'd2'")
        selected, total = estimate_selection([reader], ranges)
        assert abs(selected / total - (1 / 10) * (1 / 5)) < 0.005
