"""WAL durability: region-server crashes lose no acknowledged edit."""

import pytest

from repro.cluster import Cluster, ClusterProfile
from repro.hbase import HBaseService


@pytest.fixture
def service():
    return HBaseService(Cluster(ClusterProfile.laptop()))


def _rows(table):
    return {row: {q: v for q, v in cells.items()}
            for row, cells in table.scan()}


class TestRegionWAL:
    def test_crash_wipes_memstore_recover_replays(self, service):
        table = service.create_table("t")
        table.put(b"r1", {b"q": b"v1"})
        table.put(b"r2", {b"q": b"v2"})
        region = table.regions[0]
        lost = region.crash()
        assert lost == 2
        assert region.memstore.size_bytes == 0
        replayed = region.recover()
        assert replayed > 0
        assert _rows(table) == {b"r1": {b"q": b"v1"}, b"r2": {b"q": b"v2"}}

    def test_region_recover_is_idempotent(self, service):
        table = service.create_table("t")
        table.put(b"r", {b"q": b"v"})
        region = table.regions[0]
        region.crash()
        region.recover()
        region.recover()
        assert _rows(table) == {b"r": {b"q": b"v"}}
        assert len(list(region.memstore.scan())) == 1

    def test_flush_clears_wal(self, service):
        table = service.create_table("t")
        table.put(b"r", {b"q": b"v"})
        region = table.regions[0]
        assert region.wal
        region.flush()
        assert region.wal == []
        # Post-flush crash loses nothing: data lives in an HFile.
        assert region.crash() == 0
        assert _rows(table) == {b"r": {b"q": b"v"}}

    def test_wal_covers_only_unflushed_tail(self, service):
        table = service.create_table("t")
        table.put(b"r1", {b"q": b"old"})
        table.flush()
        table.put(b"r2", {b"q": b"new"})
        region = table.regions[0]
        region.crash()
        region.recover()
        assert _rows(table) == {b"r1": {b"q": b"old"},
                                b"r2": {b"q": b"new"}}


class TestServiceCrash:
    def test_acked_edits_survive_service_crash(self, service):
        table = service.create_table("t")
        for i in range(10):
            table.put(b"row%02d" % i, {b"q": b"v%d" % i})
        before = _rows(table)
        assert service.crash_region_server() == 10
        # No explicit recover call: the next read auto-replays.
        assert _rows(table) == before

    def test_deletes_survive_crash(self, service):
        table = service.create_table("t")
        table.put(b"a", {b"q": b"v"})
        table.put(b"b", {b"q": b"v"})
        table.delete_row(b"a")
        service.crash_region_server()
        assert _rows(table) == {b"b": {b"q": b"v"}}

    def test_wal_replay_charged_to_ledger(self, service):
        table = service.create_table("t")
        table.put(b"r", {b"q": b"value-bytes"})
        service.crash_region_server()
        service.recover()
        assert service.cluster.ledger.seconds_for(
            "hbase", "wal_replay") > 0

    def test_system_table_replay_uncharged(self, service):
        table = service.create_table("meta", system=True)
        table.put(b"r", {b"q": b"v"})
        service.crash_region_server()
        service.recover()
        assert service.cluster.ledger.seconds_for(
            "hbase", "wal_replay") == 0
        assert _rows(table) == {b"r": {b"q": b"v"}}

    def test_service_recover_is_idempotent(self, service):
        table = service.create_table("t")
        table.put(b"r", {b"q": b"v"})
        service.crash_region_server()
        service.recover()
        service.recover()
        assert _rows(table) == {b"r": {b"q": b"v"}}

    def test_multi_region_crash_recovery(self, service):
        table = service.create_table("t", split_points=(b"m",))
        table.put(b"a", {b"q": b"left"})
        table.put(b"z", {b"q": b"right"})
        assert len(table.regions) == 2
        service.crash_region_server()
        assert _rows(table) == {b"a": {b"q": b"left"},
                                b"z": {b"q": b"right"}}
