"""Session-level behaviours not covered elsewhere: reports, engine edges."""

import pytest

from repro.cluster import Cluster, ClusterProfile
from repro.common.errors import HiveError
from repro.hive import HiveSession
from repro.hive import ast_nodes as ast


@pytest.fixture
def session():
    return HiveSession(profile=ClusterProfile.laptop())


class TestIoReport:
    def test_report_shape(self, session):
        session.execute("CREATE TABLE t (a int)")
        session.execute("INSERT INTO t VALUES (1), (2)")
        session.execute("SELECT count(*) FROM t")
        report = session.io_report()
        assert report["total_seconds"] > 0
        assert ("hdfs", "write") in report
        assert report[("hdfs", "write")]["bytes"] > 0
        assert ("mapreduce", "job_startup") in report

    def test_report_accumulates(self, session):
        session.execute("CREATE TABLE t (a int)")
        session.execute("INSERT INTO t VALUES (1)")
        first = session.io_report()["total_seconds"]
        session.execute("SELECT * FROM t")
        assert session.io_report()["total_seconds"] > first


class TestSessionConstruction:
    def test_accepts_explicit_cluster(self):
        cluster = Cluster(ClusterProfile.laptop())
        session = HiveSession(cluster=cluster)
        assert session.cluster is cluster

    def test_default_cluster(self):
        assert HiveSession().cluster is not None

    def test_executes_preparsed_ast(self, session):
        session.execute("CREATE TABLE t (a int)")
        stmt = ast.SelectStmt(items=[ast.SelectItem(expr=ast.Star())],
                              source=ast.TableRef(name="t"))
        assert session.execute(stmt).rows == []

    def test_unsupported_statement_type(self, session):
        class Oddball(ast.Statement):
            pass
        with pytest.raises(HiveError):
            session.execute_statement(Oddball())


class TestEngineEdges:
    def test_three_way_join_with_side_filters(self, session):
        session.execute("CREATE TABLE a (k int, av string)")
        session.execute("CREATE TABLE b (k int, bv string)")
        session.execute("CREATE TABLE c (k int, cv string)")
        session.load_rows("a", [(i, "a%d" % i) for i in range(10)])
        session.load_rows("b", [(i, "b%d" % i) for i in range(10)])
        session.load_rows("c", [(i, "c%d" % i) for i in range(10)])
        got = session.execute(
            "SELECT a.av, c.cv FROM a JOIN b ON a.k = b.k "
            "JOIN c ON b.k = c.k "
            "WHERE a.k > 2 AND b.bv != 'b9' AND c.k < 8")
        assert sorted(got.rows) == [("a%d" % i, "c%d" % i)
                                    for i in range(3, 8)]

    def test_in_subquery_inside_join_query(self, session):
        session.execute("CREATE TABLE t (k int, grp string)")
        session.load_rows("t", [(i, "g%d" % (i % 3)) for i in range(12)])
        got = session.execute(
            "SELECT count(*) FROM t WHERE grp IN "
            "(SELECT grp FROM t WHERE k = 0)")
        assert got.scalar() == 4

    def test_order_by_expression(self, session):
        session.execute("CREATE TABLE t (a int)")
        session.load_rows("t", [(3,), (1,), (2,)])
        got = session.execute("SELECT a FROM t ORDER BY 0 - a")
        assert got.rows == [(3,), (2,), (1,)]

    def test_group_by_having_on_aggregate_expression(self, session):
        session.execute("CREATE TABLE t (g string, v int)")
        session.load_rows("t", [("a", 1), ("a", 2), ("b", 10)])
        got = session.execute(
            "SELECT g FROM t GROUP BY g HAVING sum(v) + 1 > 4")
        assert got.rows == [("b",)]

    def test_select_distinct_like_via_group_by(self, session):
        session.execute("CREATE TABLE t (g string)")
        session.load_rows("t", [("x",), ("y",), ("x",)])
        got = session.execute("SELECT g FROM t GROUP BY g ORDER BY g")
        assert got.rows == [("x",), ("y",)]

    def test_union_read_during_join(self, session):
        """Joins read DualTables through UNION READ (edits visible)."""
        session.execute("CREATE TABLE dt (k int, v string) "
                        "STORED AS DUALTABLE "
                        "TBLPROPERTIES ('dualtable.mode' = 'edit')")
        session.load_rows("dt", [(i, "old") for i in range(10)])
        session.execute("CREATE TABLE ref (k int)")
        session.load_rows("ref", [(3,), (4,)])
        session.execute("UPDATE dt SET v = 'new' WHERE k = 3")
        session.execute("DELETE FROM dt WHERE k = 4")
        got = session.execute(
            "SELECT dt.k, dt.v FROM dt JOIN ref ON dt.k = ref.k")
        assert got.rows == [(3, "new")]

    def test_insert_select_between_storage_kinds(self, session):
        session.execute("CREATE TABLE src (a int, b string) "
                        "STORED AS HBASE")
        session.load_rows("src", [(1, "x"), (2, "y")])
        session.execute("CREATE TABLE dst (a int, b string) "
                        "STORED AS DUALTABLE")
        session.execute("INSERT INTO dst SELECT a, b FROM src")
        assert session.execute(
            "SELECT count(*) FROM dst").scalar() == 2

    def test_aggregate_over_join_of_dualtables(self, session):
        for name in ("x", "y"):
            session.execute("CREATE TABLE %s (k int, v int) "
                            "STORED AS DUALTABLE" % name)
            session.load_rows(name, [(i, i) for i in range(20)])
        got = session.execute(
            "SELECT sum(x.v + y.v) FROM x JOIN y ON x.k = y.k")
        assert got.scalar() == 2 * sum(range(20))

    def test_empty_table_queries(self, session):
        session.execute("CREATE TABLE t (a int, b string)")
        assert session.execute("SELECT * FROM t").rows == []
        assert session.execute("SELECT count(*) FROM t").scalar() == 0
        assert session.execute(
            "SELECT b, count(*) FROM t GROUP BY b").rows == []

    def test_update_empty_table(self, session):
        session.execute("CREATE TABLE t (a int) STORED AS DUALTABLE")
        result = session.execute("UPDATE t SET a = 1")
        assert result.affected == 0

    def test_where_true_and_false_literals(self, session):
        session.execute("CREATE TABLE t (a int)")
        session.load_rows("t", [(1,), (2,)])
        assert len(session.execute("SELECT a FROM t WHERE true").rows) == 2
        assert session.execute("SELECT a FROM t WHERE false").rows == []

    def test_column_named_like_keyword_fragment(self, session):
        # 'values'/'tables' are keywords; backticks allow them as names.
        session.execute("CREATE TABLE t (`values` int)")
        session.execute("INSERT INTO t VALUES (5)")
        assert session.execute("SELECT `values` FROM t").scalar() == 5


class TestViews:
    def test_create_and_query_view(self, session):
        session.execute("CREATE TABLE t (k int, g string)")
        session.load_rows("t", [(i, "g%d" % (i % 2)) for i in range(10)])
        session.execute(
            "CREATE VIEW evens AS SELECT k, g FROM t WHERE k % 2 = 0")
        assert session.execute("SELECT count(*) FROM evens").scalar() == 5

    def test_view_reflects_underlying_changes(self, session):
        session.execute("CREATE TABLE t (k int) STORED AS DUALTABLE")
        session.load_rows("t", [(i,) for i in range(10)])
        session.execute("CREATE VIEW big AS SELECT k FROM t WHERE k >= 5")
        assert session.execute("SELECT count(*) FROM big").scalar() == 5
        session.execute("DELETE FROM t WHERE k = 7")
        assert session.execute("SELECT count(*) FROM big").scalar() == 4

    def test_view_with_scalar_subquery_not_frozen(self, session):
        session.execute("CREATE TABLE t (k int)")
        session.load_rows("t", [(1,), (2,), (3,)])
        session.execute(
            "CREATE VIEW tops AS SELECT k FROM t "
            "WHERE k = (SELECT max(k) FROM t)")
        assert session.execute("SELECT k FROM tops").rows == [(3,)]
        session.execute("INSERT INTO t VALUES (9)")
        assert session.execute("SELECT k FROM tops").rows == [(9,)]

    def test_view_in_join(self, session):
        session.execute("CREATE TABLE t (k int)")
        session.load_rows("t", [(1,), (2,)])
        session.execute("CREATE VIEW v AS SELECT k FROM t WHERE k = 2")
        got = session.execute(
            "SELECT t.k FROM t JOIN v ON t.k = v.k")
        assert got.rows == [(2,)]

    def test_view_over_union(self, session):
        session.execute("CREATE TABLE a (k int)")
        session.execute("CREATE TABLE b (k int)")
        session.load_rows("a", [(1,)])
        session.load_rows("b", [(2,)])
        session.execute("CREATE VIEW u AS "
                        "SELECT k FROM a UNION ALL SELECT k FROM b")
        assert session.execute(
            "SELECT count(*) FROM u").scalar() == 2

    def test_duplicate_view_name(self, session):
        session.execute("CREATE TABLE t (k int)")
        session.execute("CREATE VIEW v AS SELECT k FROM t")
        from repro.common.errors import AnalysisError
        with pytest.raises(AnalysisError):
            session.execute("CREATE VIEW v AS SELECT k FROM t")
        session.execute("CREATE VIEW IF NOT EXISTS v AS SELECT k FROM t")

    def test_view_name_cannot_shadow_table(self, session):
        session.execute("CREATE TABLE t (k int)")
        from repro.common.errors import AnalysisError
        with pytest.raises(AnalysisError):
            session.execute("CREATE VIEW t AS SELECT k FROM t")

    def test_drop_view(self, session):
        session.execute("CREATE TABLE t (k int)")
        session.execute("CREATE VIEW v AS SELECT k FROM t")
        session.execute("DROP TABLE v")
        from repro.common.errors import CatalogError
        with pytest.raises(CatalogError):
            session.execute("SELECT * FROM v")


class TestShowTablesWithViews:
    def test_views_listed(self, session):
        session.execute("CREATE TABLE t (k int)")
        session.execute("CREATE VIEW v AS SELECT k FROM t")
        rows = session.execute("SHOW TABLES").rows
        assert ("t",) in rows and ("v",) in rows
