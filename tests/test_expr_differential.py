"""Differential test: batch-compiled expressions vs the row interpreter.

Generates ~500 seeded random expressions (arithmetic, comparisons,
three-valued logic, LIKE, IN, CASE, scalar functions) and evaluates
each over a NULL-rich row set twice — once with the row compiler
(:func:`compile_expr`, the semantic oracle) and once with the batch
compiler (:func:`compile_batch`).  Results must match value-for-value;
an expression that raises must raise the same exception type either
way (the batch compiler's fallback shield re-runs the row path, so
even error *sites* agree).
"""

import random

from repro.hive.expressions import Env, compile_expr
from repro.hive.parser import parse
from repro.hive.vexpr import compile_batch

SEED = 20140831
N_EXPRESSIONS = 500
COLUMNS = ["i", "j", "s", "f"]

STRINGS = ["g1", "g2", "abc", "", "2013-07-05", "xy"]


def make_rows(rng, n=48):
    rows = []
    for _ in range(n):
        rows.append((
            None if rng.random() < 0.2 else rng.randint(-5, 20),
            None if rng.random() < 0.2 else rng.randint(0, 7),
            None if rng.random() < 0.2 else rng.choice(STRINGS),
            None if rng.random() < 0.2 else round(rng.uniform(-3, 9), 3),
        ))
    return rows


# ----------------------------------------------------------------------
# Random expression grammar (emits HiveQL text).
# ----------------------------------------------------------------------
def num_expr(rng, depth):
    if depth <= 0 or rng.random() < 0.3:
        return rng.choice(["i", "j", "f", "null", "2.5",
                           str(rng.randint(-3, 9))])
    kind = rng.choice(["binop", "binop", "unary", "func", "case", "if"])
    if kind == "binop":
        op = rng.choice(["+", "-", "*", "/", "%"])
        return "(%s %s %s)" % (num_expr(rng, depth - 1), op,
                               num_expr(rng, depth - 1))
    if kind == "unary":
        return "(- %s)" % num_expr(rng, depth - 1)
    if kind == "func":
        name = rng.choice(["abs", "floor", "ceil", "sqrt", "sign"])
        return "%s(%s)" % (name, num_expr(rng, depth - 1))
    if kind == "if":
        return "if(%s, %s, %s)" % (bool_expr(rng, depth - 1),
                                   num_expr(rng, depth - 1),
                                   num_expr(rng, depth - 1))
    return ("CASE WHEN %s THEN %s WHEN %s THEN %s ELSE %s END"
            % (bool_expr(rng, depth - 1), num_expr(rng, depth - 1),
               bool_expr(rng, depth - 1), num_expr(rng, depth - 1),
               num_expr(rng, depth - 1)))


def str_expr(rng, depth):
    if depth <= 0 or rng.random() < 0.4:
        return rng.choice(["s", "'g1'", "'abc'", "''", "null"])
    kind = rng.choice(["func1", "concat", "substr"])
    if kind == "func1":
        name = rng.choice(["lower", "upper", "trim", "reverse"])
        return "%s(%s)" % (name, str_expr(rng, depth - 1))
    if kind == "concat":
        return "(%s || %s)" % (str_expr(rng, depth - 1),
                               str_expr(rng, depth - 1))
    return "substr(%s, 1, 2)" % str_expr(rng, depth - 1)


def bool_expr(rng, depth):
    if depth <= 0 or rng.random() < 0.3:
        kind = rng.choice(["numcmp", "numcmp", "strcmp", "isnull",
                           "inlist", "like", "lit"])
        if kind == "numcmp":
            op = rng.choice(["=", "!=", "<", "<=", ">", ">="])
            return "(%s %s %s)" % (num_expr(rng, 0), op, num_expr(rng, 0))
        if kind == "strcmp":
            return "(%s = %s)" % (str_expr(rng, 0), str_expr(rng, 0))
        if kind == "isnull":
            column = rng.choice(COLUMNS)
            negated = rng.choice(["", " NOT"])
            return "(%s IS%s NULL)" % (column, negated)
        if kind == "inlist":
            negated = rng.choice(["", " NOT"])
            return "(j%s IN (1, 2, 3))" % negated
        if kind == "like":
            pattern = rng.choice(["g%", "%1", "a_c", "%"])
            return "(s LIKE '%s')" % pattern
        return rng.choice(["true", "false", "null"])
    kind = rng.choice(["and", "or", "not", "cmp"])
    if kind == "and":
        return "(%s AND %s)" % (bool_expr(rng, depth - 1),
                                bool_expr(rng, depth - 1))
    if kind == "or":
        return "(%s OR %s)" % (bool_expr(rng, depth - 1),
                               bool_expr(rng, depth - 1))
    if kind == "not":
        return "(NOT %s)" % bool_expr(rng, depth - 1)
    op = rng.choice(["=", "<", ">="])
    return "(%s %s %s)" % (num_expr(rng, depth - 1), op,
                           num_expr(rng, depth - 1))


def gen_expr(rng):
    roll = rng.random()
    depth = rng.randint(1, 3)
    if roll < 0.45:
        return num_expr(rng, depth)
    if roll < 0.85:
        return bool_expr(rng, depth)
    return str_expr(rng, depth)


# ----------------------------------------------------------------------
# The differential harness.
# ----------------------------------------------------------------------
def evaluate_both(text, env, rows, cols):
    expr = parse("SELECT %s" % text).items[0].expr
    row_fn = compile_expr(expr, env)
    batch_fn = compile_batch(expr, env)
    try:
        expected = ("ok", [row_fn(values) for values in rows])
    except Exception as exc:                          # noqa: BLE001
        expected = ("err", type(exc).__name__)
    try:
        got = ("ok", batch_fn(cols, len(rows)))
    except Exception as exc:                          # noqa: BLE001
        got = ("err", type(exc).__name__)
    return expected, got


def test_differential_row_vs_batch():
    rng = random.Random(SEED)
    rows = make_rows(rng)
    cols = [list(column) for column in zip(*rows)]
    env = Env().add_schema(COLUMNS)
    mismatches = []
    interesting = 0
    for _ in range(N_EXPRESSIONS):
        text = gen_expr(rng)
        expected, got = evaluate_both(text, env, rows, cols)
        if expected != got:
            mismatches.append((text, expected, got))
        if expected[0] == "ok" \
                and any(v is not None for v in expected[1]):
            interesting += 1
    assert not mismatches, mismatches[:5]
    # Generator sanity: most expressions evaluate and produce values
    # (the suite must not pass vacuously on an all-error corpus).
    assert interesting > N_EXPRESSIONS // 2


def test_differential_split_batches_match_single_batch():
    """Evaluating in several small batches equals one big batch."""
    rng = random.Random(SEED + 1)
    rows = make_rows(rng, n=30)
    env = Env().add_schema(COLUMNS)
    for _ in range(60):
        text = gen_expr(rng)
        expr = parse("SELECT %s" % text).items[0].expr
        batch_fn = compile_batch(expr, env)
        try:
            whole = batch_fn([list(c) for c in zip(*rows)], len(rows))
        except Exception:                             # noqa: BLE001
            continue
        pieces = []
        for lo in range(0, len(rows), 7):
            chunk = rows[lo:lo + 7]
            pieces.extend(batch_fn([list(c) for c in zip(*chunk)],
                                   len(chunk)))
        assert pieces == whole, text
