"""End-to-end DML tests: INSERT / UPDATE / DELETE on every storage kind."""

import pytest

from repro.cluster import ClusterProfile
from repro.common.errors import AnalysisError, CatalogError
from repro.hive import HiveSession


@pytest.fixture
def session():
    return HiveSession(profile=ClusterProfile.laptop())


def make_table(session, storage, properties=""):
    session.execute("CREATE TABLE items (id int, cat string, qty int, "
                    "note string) STORED AS %s %s" % (storage, properties))
    session.load_rows("items", [
        (i, "cat%d" % (i % 4), i * 10, "note%d" % i) for i in range(100)
    ])


STORAGES = ["orc", "hbase", "dualtable", "acid"]


class TestInsert:
    def test_insert_values(self, session):
        session.execute("CREATE TABLE t (a int, b string)")
        session.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        assert session.execute("SELECT count(*) FROM t").scalar() == 2

    def test_insert_select(self, session):
        make_table(session, "orc")
        session.execute("CREATE TABLE copy (id int, cat string)")
        session.execute("INSERT INTO copy SELECT id, cat FROM items "
                        "WHERE id < 10")
        assert session.execute("SELECT count(*) FROM copy").scalar() == 10

    def test_insert_overwrite_replaces(self, session):
        session.execute("CREATE TABLE t (a int)")
        session.execute("INSERT INTO t VALUES (1), (2)")
        session.execute("INSERT OVERWRITE TABLE t VALUES (9)")
        assert session.execute("SELECT * FROM t").rows == [(9,)]

    def test_insert_coerces_types(self, session):
        session.execute("CREATE TABLE t (a double, b string)")
        session.execute("INSERT INTO t VALUES (1, 2)")
        assert session.execute("SELECT * FROM t").rows == [(1.0, "2")]

    def test_insert_arity_mismatch(self, session):
        session.execute("CREATE TABLE t (a int, b int)")
        with pytest.raises(AnalysisError):
            session.execute("INSERT INTO t VALUES (1)")


@pytest.mark.parametrize("storage", STORAGES)
class TestUpdateAcrossStorages:
    def test_update_applies(self, session, storage):
        make_table(session, storage)
        result = session.execute(
            "UPDATE items SET note = 'changed' WHERE id < 7")
        assert result.affected == 7
        check = session.execute(
            "SELECT count(*) FROM items WHERE note = 'changed'")
        assert check.scalar() == 7

    def test_update_expression_uses_old_values(self, session, storage):
        make_table(session, storage)
        session.execute("UPDATE items SET qty = qty + 1 WHERE id = 3")
        got = session.execute("SELECT qty FROM items WHERE id = 3")
        assert got.rows == [(31,)]

    def test_update_multiple_columns(self, session, storage):
        make_table(session, storage)
        session.execute("UPDATE items SET cat = 'x', qty = 0 WHERE id = 5")
        got = session.execute("SELECT cat, qty FROM items WHERE id = 5")
        assert got.rows == [("x", 0)]

    def test_update_no_match(self, session, storage):
        make_table(session, storage)
        result = session.execute("UPDATE items SET qty = 0 WHERE id = 999")
        assert result.affected == 0
        assert session.execute("SELECT count(*) FROM items").scalar() == 100

    def test_update_all_rows(self, session, storage):
        make_table(session, storage)
        result = session.execute("UPDATE items SET note = 'all'")
        assert result.affected == 100


@pytest.mark.parametrize("storage", STORAGES)
class TestDeleteAcrossStorages:
    def test_delete_applies(self, session, storage):
        make_table(session, storage)
        result = session.execute("DELETE FROM items WHERE cat = 'cat1'")
        assert result.affected == 25
        assert session.execute("SELECT count(*) FROM items").scalar() == 75

    def test_delete_then_update_interleave(self, session, storage):
        make_table(session, storage)
        session.execute("DELETE FROM items WHERE id < 50")
        session.execute("UPDATE items SET note = 'kept' WHERE id >= 50")
        result = session.execute(
            "SELECT count(*) FROM items WHERE note = 'kept'")
        assert result.scalar() == 50

    def test_deleted_rows_not_updatable(self, session, storage):
        make_table(session, storage)
        session.execute("DELETE FROM items WHERE id = 10")
        result = session.execute("UPDATE items SET qty = 1 WHERE id = 10")
        assert result.affected == 0

    def test_delete_everything(self, session, storage):
        make_table(session, storage)
        session.execute("DELETE FROM items")
        assert session.execute("SELECT count(*) FROM items").scalar() == 0


class TestDmlWithSubqueries:
    def test_update_with_scalar_subquery(self, session):
        make_table(session, "dualtable")
        session.execute("UPDATE items SET qty = (SELECT max(qty) "
                        "FROM items) WHERE id = 0")
        assert session.execute(
            "SELECT qty FROM items WHERE id = 0").scalar() == 990

    def test_delete_with_in_subquery(self, session):
        make_table(session, "orc")
        session.execute("CREATE TABLE doomed (id int)")
        session.execute("INSERT INTO doomed VALUES (1), (2), (3)")
        result = session.execute(
            "DELETE FROM items WHERE id IN (SELECT id FROM doomed)")
        assert result.affected == 3


class TestDdl:
    def test_create_drop(self, session):
        session.execute("CREATE TABLE t (a int)")
        assert session.metastore.has_table("t")
        session.execute("DROP TABLE t")
        assert not session.metastore.has_table("t")

    def test_create_duplicate(self, session):
        session.execute("CREATE TABLE t (a int)")
        with pytest.raises(CatalogError):
            session.execute("CREATE TABLE t (a int)")
        session.execute("CREATE TABLE IF NOT EXISTS t (a int)")   # no raise

    def test_drop_missing(self, session):
        with pytest.raises(CatalogError):
            session.execute("DROP TABLE nope")
        session.execute("DROP TABLE IF EXISTS nope")              # no raise

    def test_unknown_storage_kind(self, session):
        with pytest.raises(CatalogError):
            session.execute("CREATE TABLE t (a int) STORED AS floppy")

    def test_show_tables(self, session):
        session.execute("CREATE TABLE b (a int)")
        session.execute("CREATE TABLE a (a int)")
        result = session.execute("SHOW TABLES")
        assert result.rows == [("a",), ("b",)]

    def test_describe(self, session):
        session.execute("CREATE TABLE t (a int, b string) STORED AS ACID")
        result = session.execute("DESCRIBE t")
        assert ("a", "int") in result.rows
        assert ("# storage", "acid") in result.rows

    def test_drop_cleans_storage(self, session):
        make_table(session, "dualtable")
        handler = session.table("items").handler
        location = handler.master.location
        assert session.fs.exists(location)
        session.execute("DROP TABLE items")
        assert not session.fs.exists(location)


class TestCostShape:
    """The paper's core claim at unit scale: EDIT beats OVERWRITE for
    small ratios once per-byte costs dominate."""

    def test_dualtable_edit_cheaper_than_hive_small_update(self):
        times = {}
        props = ("TBLPROPERTIES('orc.rows_per_file' = '10', "
                 "'orc.stripe_rows' = '5'%s)")
        for storage, mode in (("orc", props % ""),
                              ("dualtable",
                               props % ", 'dualtable.mode' = 'edit'")):
            session = HiveSession(profile=ClusterProfile(
                name="t", num_workers=2, byte_scale=200_000.0,
                op_scale=200_000.0))
            make_table(session, storage, mode)
            result = session.execute(
                "UPDATE items SET note = 'x' WHERE id < 2")
            times[storage] = result.sim_seconds
        assert times["dualtable"] < times["orc"]

    def test_update_plan_reported(self, session):
        make_table(session, "dualtable",
                   "TBLPROPERTIES('dualtable.mode'='edit')")
        result = session.execute("UPDATE items SET qty = 1 WHERE id = 1")
        assert result.detail["plan"] == "edit"
        assert "ratio" in result.detail
