"""Strict cache invalidation: a cached read is never stale.

The ORC footer/stripe cache and the Attached-Table delta-range cache
trade wall-clock time only; every mutation of the backing store must
drop the affected entries.  Each test warms the caches with a read,
mutates through a different path (EDIT commit, COMPACT, INSERT
OVERWRITE, region-server crash mid-statement), reads again, and checks
the answer against ``fresh_rows`` — the same query re-run with every
cache forcibly emptied.  Cached == fresh is the staleness oracle.
"""

import pytest

from repro.cluster import ClusterProfile
from repro.common.errors import ReproError
from repro.core import encode_record_id
from repro.faults import Fault, FaultPlan
from repro.hive import HiveSession

ROWS = [(i, i * 10) for i in range(40)]


def build_session(workers=1, mode="edit", rows=ROWS, rows_per_file=10):
    session = HiveSession(profile=ClusterProfile.laptop(workers=workers))
    session.execute(
        "CREATE TABLE t (k int, v int) STORED AS dualtable "
        "TBLPROPERTIES ('orc.rows_per_file' = '%d', "
        "'dualtable.mode' = '%s')" % (rows_per_file, mode))
    session.load_rows("t", rows)
    return session


def select_all(session):
    return session.execute("SELECT k, v FROM t ORDER BY k").rows


def fresh_rows(session):
    """The same read with every cache dropped — the staleness oracle."""
    session.cluster.orc_cache.clear()
    session.cluster.delta_cache.clear()
    return select_all(session)


class TestCacheWarming:
    def test_repeated_select_hits_both_caches(self):
        session = build_session()
        first = select_all(session)
        counters = session.cluster.metrics.counters
        orc_hits = counters.get("cache.orc.hits", 0)
        delta_hits = counters.get("cache.delta.hits", 0)
        second = select_all(session)
        assert second == first
        assert counters["cache.orc.hits"] > orc_hits
        assert counters["cache.delta.hits"] > delta_hits

    def test_cache_hits_do_not_change_simulated_seconds(self):
        session = build_session()
        cold = session.execute("SELECT k, v FROM t ORDER BY k")
        warm = session.execute("SELECT k, v FROM t ORDER BY k")
        assert warm.sim_seconds == cold.sim_seconds

    def test_zero_budget_disables_caching(self):
        session = HiveSession(profile=ClusterProfile.laptop(
            orc_cache_bytes=0, delta_cache_bytes=0))
        session.execute("CREATE TABLE t (k int, v int) STORED AS "
                        "dualtable TBLPROPERTIES "
                        "('orc.rows_per_file' = '10')")
        session.load_rows("t", ROWS)
        first = select_all(session)
        assert select_all(session) == first
        counters = session.cluster.metrics.counters
        assert counters.get("cache.orc.hits", 0) == 0
        assert counters.get("cache.delta.hits", 0) == 0


@pytest.mark.parametrize("workers", [1, 4])
class TestInvalidationPaths:
    def test_read_after_edit_commit(self, workers):
        session = build_session(workers=workers)
        select_all(session)                       # warm
        session.execute("UPDATE t SET v = 7 WHERE k < 15")
        expect = sorted((k, 7 if k < 15 else v) for k, v in ROWS)
        assert select_all(session) == expect
        assert fresh_rows(session) == expect
        counters = session.cluster.metrics.counters
        assert counters["cache.delta.invalidations"] > 0

    def test_read_after_delete_commit(self, workers):
        session = build_session(workers=workers)
        select_all(session)
        session.execute("DELETE FROM t WHERE k >= 30")
        expect = sorted((k, v) for k, v in ROWS if k < 30)
        assert select_all(session) == expect
        assert fresh_rows(session) == expect

    def test_read_after_compact(self, workers):
        session = build_session(workers=workers)
        session.execute("UPDATE t SET v = 1 WHERE k < 20")
        select_all(session)                       # warm on deltas
        session.execute("COMPACT TABLE t")
        handler = session.table("t").handler
        assert handler.attached.is_empty()
        expect = sorted((k, 1 if k < 20 else v) for k, v in ROWS)
        assert select_all(session) == expect
        assert fresh_rows(session) == expect

    def test_read_after_insert_overwrite(self, workers):
        session = build_session(workers=workers)
        select_all(session)                       # warm on the old files
        session.execute("INSERT OVERWRITE TABLE t "
                        "VALUES (1, 100), (2, 200)")
        assert select_all(session) == [(1, 100), (2, 200)]
        assert fresh_rows(session) == [(1, 100), (2, 200)]

    def test_read_after_insert_append(self, workers):
        session = build_session(workers=workers)
        select_all(session)
        session.execute("INSERT INTO t VALUES (900, 9000)")
        expect = sorted(ROWS + [(900, 9000)])
        assert select_all(session) == expect
        assert fresh_rows(session) == expect


class TestMidStatementInvalidation:
    def test_region_crash_mid_update_never_leaves_stale_entries(self):
        """A region-server crash fired from inside an UPDATE's commit
        wipes the delta cache (cached recorders embed pre-crash
        charges); after recovery the cached read equals the uncached
        one, whichever way the statement resolved."""
        session = build_session()
        before = select_all(session)              # warm
        faults = session.cluster.faults
        faults.install(FaultPlan([
            Fault("hbase.put", nth_hit=2, kind="region_crash")]))
        # The crash may be absorbed by task retry (statement commits)
        # or surface (statement rolls forward or back on recover) —
        # staleness must be impossible either way.
        try:
            session.execute("UPDATE t SET v = 5 WHERE k < 25")
        except ReproError:
            pass
        handler = session.table("t").handler
        with faults.paused():
            handler.recover()
            after = select_all(session)
        faults.install(None)
        updated = sorted((k, 5 if k < 25 else v) for k, v in ROWS)
        assert after in (before, updated)         # atomic either way
        assert after == fresh_rows(session)
        counters = session.cluster.metrics.counters
        assert counters["cache.delta.invalidations"] > 0

    def test_direct_region_crash_clears_delta_cache(self):
        session = build_session()
        session.execute("UPDATE t SET v = 3 WHERE k < 10")
        select_all(session)                       # cache delta ranges
        cache = session.cluster.delta_cache
        assert len(cache) > 0
        handler = session.table("t").handler
        handler.attached._service.crash_region_server()
        assert len(cache) == 0
        expect = sorted((k, 3 if k < 10 else v) for k, v in ROWS)
        # WAL replay restores the acknowledged deltas; no stale reads.
        assert select_all(session) == expect
        assert fresh_rows(session) == expect


class TestStripeIndexInvalidation:
    """The LOOKUP plan's stripe min/max index lives in the delta cache
    keyed by the attached table's name, so every invalidation path that
    protects delta ranges must protect it too.  Each test warms the
    index with a point LOOKUP, mutates through one path, and re-checks
    the lookup answer against the same query with every cache dropped."""

    ROWS3 = [(i, i * 10, "s%02d" % i) for i in range(40)]

    def build(self, workers=1):
        session = HiveSession(
            profile=ClusterProfile.laptop(workers=workers))
        session.execute(
            "CREATE TABLE t (k int, v int, s string, PRIMARY KEY (k)) "
            "STORED AS dualtable TBLPROPERTIES "
            "('orc.rows_per_file' = '10', 'orc.stripe_rows' = '5', "
            "'dualtable.mode' = 'edit')")
        session.load_rows("t", self.ROWS3)
        return session

    def point(self, session, k):
        session.execute("SET dualtable.plan = lookup")
        try:
            return session.execute(
                "SELECT k, v, s FROM t WHERE k = %d" % k).rows
        finally:
            session.execute("SET dualtable.plan = cost")

    def fresh_point(self, session, k):
        session.cluster.orc_cache.clear()
        session.cluster.delta_cache.clear()
        return self.point(session, k)

    def warmed(self, session, expect=(17, 170, "s17")):
        rows = self.point(session, 17)
        assert rows == [expect]
        cache = session.cluster.delta_cache
        assert any(key[1] == "stripe-index" for key in cache._entries)
        return cache

    def test_index_survives_cacheable_rereads(self):
        session = self.build()
        self.warmed(session)
        assert self.point(session, 17) == [(17, 170, "s17")]

    def test_index_dropped_by_dml(self):
        session = self.build()
        self.warmed(session)
        session.execute("UPDATE t SET v = -1 WHERE k = 17")
        assert self.point(session, 17) == [(17, -1, "s17")]
        assert self.fresh_point(session, 17) == [(17, -1, "s17")]

    def test_index_dropped_by_pk_moving_update(self):
        """After ``SET k = ...`` the warmed index's pruning verdicts are
        only safe because the pk-dirty probe is re-run — the moved row
        must be found at its new key and gone from its old one."""
        session = self.build()
        self.warmed(session)
        session.execute("UPDATE t SET k = 900 WHERE k = 17")
        assert self.point(session, 900) == [(900, 170, "s17")]
        assert self.point(session, 17) == []
        assert self.fresh_point(session, 900) == [(900, 170, "s17")]

    def test_index_dropped_by_compact(self):
        session = self.build()
        session.execute("UPDATE t SET v = 1 WHERE k < 20")
        self.warmed(session, expect=(17, 1, "s17"))
        session.execute("COMPACT TABLE t")
        assert self.point(session, 17) == [(17, 1, "s17")]
        assert self.fresh_point(session, 17) == [(17, 1, "s17")]

    def test_index_dropped_by_insert_overwrite(self):
        session = self.build()
        self.warmed(session)
        session.execute("INSERT OVERWRITE TABLE t "
                        "VALUES (17, 5, 'new'), (99, 6, 'other')")
        assert self.point(session, 17) == [(17, 5, "new")]
        assert self.fresh_point(session, 17) == [(17, 5, "new")]

    def test_index_dropped_by_region_crash(self):
        session = self.build()
        session.execute("UPDATE t SET v = 2 WHERE k = 17")
        cache = self.warmed(session, expect=(17, 2, "s17"))
        session.hbase.crash_region_server()
        assert len(cache) == 0            # whole cache, index included
        # WAL replay restores the delta; the rebuilt index must agree.
        assert self.point(session, 17) == [(17, 2, "s17")]
        assert self.fresh_point(session, 17) == [(17, 2, "s17")]


class TestOverlayInvalidation:
    """The memoized DeltaOverlay (INTERNALS §14) lives in the delta
    cache keyed ``(table, backend, file_id, "overlay")``, so every
    invalidation path that protects delta ranges must drop it too.
    Each test warms the overlay with a scan, mutates through one path,
    and re-checks the cached answer against the all-caches-dropped
    oracle."""

    def build(self, workers=1):
        session = build_session(workers=workers, mode="edit")
        session.execute("UPDATE t SET v = -5 WHERE k = 3")
        return session

    def warmed(self, session):
        select_all(session)
        cache = session.cluster.delta_cache
        assert any(len(key) == 4 and key[3] == "overlay"
                   for key in cache._entries)
        return cache

    def test_overlay_cached_and_reused(self):
        session = self.build()
        self.warmed(session)
        counters = session.cluster.metrics.counters
        hits = counters.get("cache.delta.hits", 0)
        expect = sorted((k, -5 if k == 3 else v) for k, v in ROWS)
        assert select_all(session) == expect
        assert counters["cache.delta.hits"] > hits

    def test_overlay_dropped_by_dml(self):
        session = self.build()
        self.warmed(session)
        session.execute("UPDATE t SET v = 9 WHERE k < 5")
        expect = sorted((k, 9 if k < 5 else v) for k, v in ROWS)
        assert select_all(session) == expect
        assert fresh_rows(session) == expect

    def test_overlay_dropped_by_delete(self):
        session = self.build()
        self.warmed(session)
        session.execute("DELETE FROM t WHERE k = 3")
        expect = sorted((k, v) for k, v in ROWS if k != 3)
        assert select_all(session) == expect
        assert fresh_rows(session) == expect

    def test_overlay_dropped_by_compact(self):
        session = self.build()
        self.warmed(session)
        session.execute("COMPACT TABLE t")
        expect = sorted((k, -5 if k == 3 else v) for k, v in ROWS)
        assert select_all(session) == expect
        assert fresh_rows(session) == expect

    def test_overlay_dropped_by_insert_overwrite(self):
        session = self.build()
        self.warmed(session)
        session.execute("INSERT OVERWRITE TABLE t VALUES (1, 100)")
        assert select_all(session) == [(1, 100)]
        assert fresh_rows(session) == [(1, 100)]

    def test_overlay_dropped_by_region_crash(self):
        session = self.build()
        cache = self.warmed(session)
        session.hbase.crash_region_server()
        assert len(cache) == 0
        expect = sorted((k, -5 if k == 3 else v) for k, v in ROWS)
        # WAL replay restores the delta; the rebuilt overlay must agree.
        assert select_all(session) == expect
        assert fresh_rows(session) == expect

    def test_overlay_identical_under_zero_budget(self):
        """With caching disabled the overlay is rebuilt per read —
        results and simulated seconds cannot depend on the cache."""
        cached = self.build()
        uncached = HiveSession(profile=ClusterProfile.laptop(
            orc_cache_bytes=0, delta_cache_bytes=0))
        uncached.execute(
            "CREATE TABLE t (k int, v int) STORED AS dualtable "
            "TBLPROPERTIES ('orc.rows_per_file' = '10', "
            "'dualtable.mode' = 'edit')")
        uncached.load_rows("t", ROWS)
        uncached.execute("UPDATE t SET v = -5 WHERE k = 3")
        a = cached.execute("SELECT k, v FROM t ORDER BY k")
        b = uncached.execute("SELECT k, v FROM t ORDER BY k")
        assert a.rows == b.rows
        assert a.sim_seconds == b.sim_seconds


class TestTrailingDeltas:
    def test_trailing_delta_is_counted_not_dropped_silently(self):
        """An attached entry beyond the last master row (e.g. left by a
        file that shrank) cannot affect UNION READ output, but it must
        be surfaced through the merge stats and metrics."""
        session = build_session(rows=ROWS[:10], rows_per_file=10)
        handler = session.table("t").handler
        path = handler.master.file_paths()[0]
        file_id = handler.master.file_id_of(path)
        handler.attached.put_update(encode_record_id(file_id, 99),
                                    {1: 777})
        assert select_all(session) == sorted(ROWS[:10])
        counters = session.cluster.metrics.counters
        assert counters["unionread.trailing_deltas"] == 1
        assert counters.get("unionread.deltas_applied", 0) == 0
        # The counter keeps counting on re-reads (cached or not).
        select_all(session)
        assert counters["unionread.trailing_deltas"] == 2

    def test_in_range_orphan_delta_counted_as_skipped(self):
        """A delta whose id sorts inside the master range but matches no
        master row is counted as skipped."""
        session = build_session(rows=ROWS[:10], rows_per_file=10)
        handler = session.table("t").handler
        # A second, later file makes row ids from the *first* file's
        # tail sort inside the overall attached range for that file.
        session.execute("INSERT INTO t VALUES (500, 5000)")
        path = handler.master.file_paths()[0]
        file_id = handler.master.file_id_of(path)
        handler.attached.put_update(encode_record_id(file_id, 4),
                                    {1: 444})
        handler.attached.put_update(encode_record_id(file_id, 55),
                                    {1: 555})
        expect = sorted([(k, 444 if k == 4 else v)
                         for k, v in ROWS[:10]] + [(500, 5000)])
        assert select_all(session) == expect
        counters = session.cluster.metrics.counters
        assert counters["unionread.deltas_applied"] == 1
        assert counters["unionread.trailing_deltas"] == 1
