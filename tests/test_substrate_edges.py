"""Second-pass edge tests across the substrates."""

import pytest

from repro.cluster import Cluster, ClusterProfile
from repro.common.errors import HdfsError
from repro.hbase import HBaseService
from repro.hdfs import HdfsFileSystem
from repro.mapreduce import InputSplit, Job, JobRunner, estimate_record_bytes
from repro.orc import OrcReader, OrcWriter, write_orc


@pytest.fixture
def cluster():
    return Cluster(ClusterProfile(name="edge", num_workers=3))


class TestHdfsEdges:
    def test_exact_block_boundary(self, cluster):
        fs = HdfsFileSystem(cluster, num_datanodes=3)
        fs.block_size = 100
        data = b"x" * 300                        # exactly 3 blocks
        fs.write_file("/f", data)
        inode = fs.namenode.lookup("/f")
        assert [b.length for b in inode.blocks] == [100, 100, 100]
        assert fs.read_file("/f") == data

    def test_streaming_write_across_blocks(self, cluster):
        fs = HdfsFileSystem(cluster, num_datanodes=3)
        fs.block_size = 64
        with fs.create("/f") as handle:
            for i in range(10):
                handle.write(bytes([i]) * 25)    # 250 bytes in dribbles
        assert fs.file_size("/f") == 250
        assert len(fs.namenode.lookup("/f").blocks) == 4

    def test_empty_file(self, cluster):
        fs = HdfsFileSystem(cluster, num_datanodes=3)
        fs.write_file("/empty", b"")
        assert fs.file_size("/empty") == 0
        assert fs.read_file("/empty") == b""

    def test_mkdirs_idempotent_and_nested(self, cluster):
        fs = HdfsFileSystem(cluster, num_datanodes=3)
        fs.mkdirs("/a/b/c")
        fs.mkdirs("/a/b/c")
        fs.mkdirs("/a/b")
        assert fs.is_dir("/a/b/c")

    def test_cannot_create_file_under_file(self, cluster):
        fs = HdfsFileSystem(cluster, num_datanodes=3)
        fs.write_file("/f", b"x")
        with pytest.raises(HdfsError):
            fs.write_file("/f/child", b"y")

    def test_delete_root_children_only(self, cluster):
        fs = HdfsFileSystem(cluster, num_datanodes=3)
        fs.write_file("/a", b"x")
        fs.delete("/a")
        assert fs.listdir("/") == []

    def test_trailing_slash_normalized(self, cluster):
        fs = HdfsFileSystem(cluster, num_datanodes=3)
        fs.mkdirs("/dir/")
        assert fs.is_dir("/dir")

    def test_double_slash_normalized(self, cluster):
        fs = HdfsFileSystem(cluster, num_datanodes=3)
        fs.write_file("/a//b", b"x")
        assert fs.read_file("/a/b") == b"x"


class TestOrcEdges:
    SCHEMA = [("a", "int"), ("s", "string")]

    def test_single_row_file(self):
        data = write_orc(self.SCHEMA, [(1, "only")])
        reader = OrcReader(data)
        assert reader.read_all() == [(0, (1, "only"))]

    def test_stripe_rows_of_one(self):
        data = write_orc(self.SCHEMA, [(i, "r") for i in range(5)],
                         stripe_rows=1)
        reader = OrcReader(data)
        assert len(reader.stripes) == 5

    def test_huge_integers_roundtrip(self):
        values = [(2**50, "big"), (-2**50, "neg"), (0, "zero")]
        data = write_orc(self.SCHEMA, values)
        assert [v for _, v in OrcReader(data).rows()] == values

    def test_unicode_strings(self):
        values = [(1, "héllo"), (2, "电网"), (3, "emoji ✓")]
        data = write_orc(self.SCHEMA, values)
        assert [v for _, v in OrcReader(data).rows()] == values

    def test_column_index_lookup(self):
        reader = OrcReader(write_orc(self.SCHEMA, [(1, "x")]))
        assert reader.column_index("s") == 1
        from repro.common.errors import CorruptOrcFileError
        with pytest.raises(CorruptOrcFileError):
            reader.column_index("nope")

    def test_dictionary_threshold_behaviour(self):
        # Few distinct values -> dictionary smaller than direct storage.
        repeats = [(i, "v%d" % (i % 4)) for i in range(2000)]
        distinct = [(i, "value-%06d" % i) for i in range(2000)]
        assert len(write_orc(self.SCHEMA, repeats)) < len(
            write_orc(self.SCHEMA, distinct))

    def test_writer_num_rows_property(self):
        writer = OrcWriter(self.SCHEMA)
        writer.write_rows([(1, "a"), (2, "b")])
        assert writer.num_rows == 2


class TestHBaseEdges:
    def test_scan_empty_table(self, cluster):
        table = HBaseService(cluster).create_table("t")
        assert table.scan_all() == []

    def test_scan_from_midpoint_key_not_present(self, cluster):
        table = HBaseService(cluster).create_table("t")
        table.put(b"a", {b"q": b"1"})
        table.put(b"c", {b"q": b"2"})
        assert [r for r, _ in table.scan(b"b")] == [b"c"]

    def test_put_same_row_multiple_qualifiers_one_ts(self, cluster):
        table = HBaseService(cluster).create_table("t")
        ts = table.put(b"r", {b"a": b"1", b"b": b"2"})
        got = table.get(b"r", versions=2)
        assert got[b"a"] == [(ts, b"1")]

    def test_explicit_timestamps_respected(self, cluster):
        table = HBaseService(cluster).create_table("t")
        table.put(b"r", {b"q": b"late"}, ts=100)
        table.put(b"r", {b"q": b"early"}, ts=50)
        assert table.get(b"r") == {b"q": b"late"}

    def test_delete_then_put_same_ts_put_loses(self, cluster):
        table = HBaseService(cluster).create_table("t")
        table.put(b"r", {b"q": b"v"}, ts=10)
        table.delete_column(b"r", b"q", ts=10)
        assert table.get(b"r") is None

    def test_region_split_points_route_writes(self, cluster):
        table = HBaseService(cluster).create_table(
            "t", split_points=[b"h", b"p"])
        for row in (b"a", b"k", b"z"):
            table.put(row, {b"q": row})
        sizes = [r.cell_count() for r in table.regions]
        assert sizes == [1, 1, 1]


class TestMapReduceEdges:
    def test_estimate_record_bytes_empty(self):
        assert estimate_record_bytes([]) == 0

    def test_estimate_scales_with_count(self):
        small = estimate_record_bytes([("abc", 1)] * 10)
        large = estimate_record_bytes([("abc", 1)] * 1000)
        assert large == pytest.approx(small * 100, rel=0.01)

    def test_reduce_with_single_reducer_many_keys(self, cluster):
        runner = JobRunner(cluster)

        def map_fn(split, ctx):
            for v in split.payload:
                yield v, 1

        def reduce_fn(key, values, ctx):
            yield key, sum(values)

        job = Job("one-reducer",
                  [InputSplit(payload=list(range(50)), size_bytes=400)],
                  map_fn, reduce_fn, num_reducers=1)
        result = runner.run(job)
        assert len(result.outputs) == 50
        assert result.num_reduce_tasks == 1

    def test_mixed_key_types_partition_deterministically(self, cluster):
        runner = JobRunner(cluster)

        def map_fn(split, ctx):
            yield ("tuple", 1), "a"
            yield 7, "b"
            yield "string", "c"
            yield None, "d"

        def reduce_fn(key, values, ctx):
            yield key

        job = Job("mixed", [InputSplit(payload=None, size_bytes=0)],
                  map_fn, reduce_fn, num_reducers=4)
        result = runner.run(job)
        assert len(result.outputs) == 4
