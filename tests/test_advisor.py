"""Advisor end-to-end: profiles, findings, APPLY, determinism, dashboard.

The canned workloads in :mod:`repro.advisor.workloads` are the
acceptance oracle — each must trip exactly its expected finding set,
and the exported advisor document must serialize byte-identically
across reruns, worker counts and execution engines.
"""

import dataclasses
import json

import pytest

from repro.advisor import (FINDING_COLUMNS, Finding, WorkloadAdvisor,
                           apply_findings, build_profiles)
from repro.advisor.analyzer import DRIFT_REL_ERROR, MIN_AUDITS
from repro.advisor.workloads import (EXPECTED_FINDINGS, WORKLOAD_NAMES,
                                     build_session, run_workload)
from repro.cluster import ClusterProfile
from repro.hive import HiveSession
from repro.obs import export
from repro.obs.dashboard import (advisor_document, metrics_document,
                                 render_dashboard_html, to_json,
                                 validate_advisor_document,
                                 write_dashboard)


def finding_pairs(findings):
    return sorted((f.code, f.subject) for f in findings)


def small_update_session(n_updates=5, **profile_overrides):
    session = HiveSession(
        profile=ClusterProfile.laptop(**profile_overrides))
    session.execute(
        "CREATE TABLE t (id INT, v INT) STORED AS DUALTABLE "
        "TBLPROPERTIES ('orc.rows_per_file' = 64, 'orc.stripe_rows' = 16)")
    session.load_rows("t", [(i, i) for i in range(320)])
    for i in range(n_updates):
        session.execute("UPDATE t SET v = v + 1 WHERE id %% 80 = %d" % i)
    return session


# ----------------------------------------------------------------------
# Findings and profiles.
# ----------------------------------------------------------------------
class TestFindings:
    def test_sorted_by_severity_then_subject(self):
        findings = sorted([
            Finding("b-code", "info", "a", "s"),
            Finding("a-code", "critical", "z", "s"),
            Finding("a-code", "warn", "m", "s"),
        ], key=lambda f: f.sort_key())
        assert [f.severity for f in findings] == \
            ["critical", "warn", "info"]

    def test_rejects_unknown_severity(self):
        with pytest.raises(ValueError):
            Finding("c", "fatal", "t", "s")

    def test_row_and_dict_shapes(self):
        finding = Finding("c", "warn", "t", "s",
                          evidence={"pi": 3.14159265},
                          remediation=["COMPACT TABLE t"])
        assert len(finding.row()) == len(FINDING_COLUMNS)
        d = finding.as_dict()
        assert d["evidence"]["pi"] == round(3.14159265, 6)
        assert d["remediation"] == ["COMPACT TABLE t"]


class TestProfiles:
    def test_profile_reflects_workload(self):
        session = small_update_session(n_updates=4)
        for _ in range(3):
            session.execute("SELECT count(*) FROM t")
        (profile,) = build_profiles(session)
        assert profile.table == "t"
        assert profile.dmls == 4 and profile.updates == 4
        assert profile.scans >= 3
        assert profile.audits == 4
        assert profile.scan_bytes_hist["count"] >= 3
        assert profile.dml_seconds_hist["count"] == 4
        assert profile.attached_bytes > 0  # deltas not yet compacted
        assert profile.reads_per_dml > 0

    def test_only_dualtable_tables_profiled(self):
        session = small_update_session(n_updates=0)
        session.execute("CREATE TABLE plain (a INT) STORED AS ORC")
        names = [p.table for p in build_profiles(session)]
        assert names == ["t"]


# ----------------------------------------------------------------------
# Canned workloads: the acceptance oracle.
# ----------------------------------------------------------------------
class TestCannedWorkloads:
    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_expected_finding_set(self, name):
        outcome = run_workload(name)
        findings = WorkloadAdvisor(outcome["session"]).analyze()
        assert finding_pairs(findings) == sorted(EXPECTED_FINDINGS[name])

    def test_finding_sets_are_distinct(self):
        sets = [tuple(sorted(EXPECTED_FINDINGS[n])) for n in WORKLOAD_NAMES]
        assert len(set(sets)) == len(sets)

    def test_show_advisor_statement(self):
        outcome = run_workload("scan_heavy")
        result = outcome["session"].execute("SHOW ADVISOR")
        assert result.names == list(FINDING_COLUMNS)
        codes = sorted(row[0] for row in result.rows)
        assert codes == sorted(
            c for c, _ in EXPECTED_FINDINGS["scan_heavy"])

    def test_analyze_workload_apply_resolves_findings(self):
        session = run_workload("scan_heavy")["session"]
        result = session.execute("ANALYZE WORKLOAD APPLY")
        assert result.detail["applied"]  # knobs actually flipped
        assert any("AUTOCOMPACT" in sql for sql in result.detail["applied"])
        remaining = WorkloadAdvisor(session).analyze()
        # Everything with a knob resolves; only the knob-less drift
        # diagnosis (a property of the tiny scale) may remain.
        assert {f.code for f in remaining} <= {"cost-model-drift"}

    def test_apply_resolves_forced_overwrite(self):
        session = run_workload("update_heavy")["session"]
        findings = WorkloadAdvisor(session).analyze()
        assert any(f.code == "overwrite-plan-regret" for f in findings)
        apply_findings(session, findings)
        remaining = WorkloadAdvisor(session).analyze()
        assert not any(f.code == "overwrite-plan-regret"
                       for f in remaining)
        info = session.metastore.table("audit_log")
        assert info.properties["dualtable.mode"] == "cost"


# ----------------------------------------------------------------------
# Determinism: byte-identical documents across runs/workers/engines.
# ----------------------------------------------------------------------
class TestDeterminism:
    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_document_byte_identical(self, name):
        def doc_bytes(**kwargs):
            outcome = run_workload(name, **kwargs)
            return to_json(advisor_document(
                outcome["session"], series=outcome["series"],
                workload=name))

        baseline = doc_bytes()
        assert doc_bytes() == baseline                       # rerun
        assert doc_bytes(workers=4) == baseline              # workers
        assert doc_bytes(engine="vectorized") == baseline    # engine


# ----------------------------------------------------------------------
# Cost-model drift rule (threshold behaviour, both arms).
# ----------------------------------------------------------------------
class TestDriftRule:
    def test_drift_fires_above_threshold(self):
        session = small_update_session(n_updates=MIN_AUDITS + 1)
        (profile,) = build_profiles(session)
        assert profile.rel_error_mean > DRIFT_REL_ERROR
        codes = [f.code for f in WorkloadAdvisor(session).analyze()]
        assert "cost-model-drift" in codes

    def test_no_drift_below_min_audits(self):
        session = small_update_session(n_updates=MIN_AUDITS - 1)
        codes = [f.code for f in WorkloadAdvisor(session).analyze()]
        assert "cost-model-drift" not in codes

    def test_no_drift_within_threshold(self):
        session = small_update_session(n_updates=MIN_AUDITS + 1)
        advisor = WorkloadAdvisor(session)
        (profile,) = build_profiles(session)
        healthy = dataclasses.replace(
            profile, rel_error_mean=DRIFT_REL_ERROR / 2,
            rel_error_max=DRIFT_REL_ERROR)
        assert advisor._drift_rule(healthy) == []
        # Exactly at the threshold the model still counts as tracking.
        at_edge = dataclasses.replace(
            profile, rel_error_mean=DRIFT_REL_ERROR)
        assert advisor._drift_rule(at_edge) == []
        drifted = dataclasses.replace(
            profile, rel_error_mean=DRIFT_REL_ERROR * 2)
        (finding,) = advisor._drift_rule(drifted)
        assert finding.code == "cost-model-drift"
        assert finding.evidence["audits"] == profile.audits


# ----------------------------------------------------------------------
# Dashboard document + HTML.
# ----------------------------------------------------------------------
class TestDashboard:
    def test_document_schema_valid(self):
        outcome = run_workload("mixed")
        doc = advisor_document(outcome["session"],
                               series=outcome["series"], workload="mixed")
        assert validate_advisor_document(doc) == []
        assert doc["server"] is not None  # went through the server
        assert "statement.seconds" in doc["histograms"]
        # cache.* counters are wall-clock shaped; they must stay out.
        assert not any(name.startswith("cache.")
                       for name in doc["counters"])

    def test_validator_catches_corruption(self):
        outcome = run_workload("scan_heavy")
        doc = advisor_document(outcome["session"], workload="scan_heavy")
        doc["findings"][0]["severity"] = "shrug"
        del doc["tables"][0]["scan_bytes_hist"]
        errors = validate_advisor_document(doc)
        assert any("severity" in e for e in errors)
        assert any("scan_bytes_hist" in e for e in errors)

    def test_html_renders_findings_and_sparklines(self):
        outcome = run_workload("scan_heavy")
        doc = advisor_document(outcome["session"],
                               series=outcome["series"],
                               workload="scan_heavy")
        html = render_dashboard_html(doc)
        for code, _ in EXPECTED_FINDINGS["scan_heavy"]:
            assert code in html
        assert "<svg" in html and "polyline" in html
        assert "statement.seconds" in html

    def test_write_dashboard_roundtrip(self, tmp_path):
        outcome = run_workload("scan_heavy")
        doc = advisor_document(outcome["session"], workload="scan_heavy")
        html_path, json_path = write_dashboard(str(tmp_path), doc)
        loaded = json.load(open(json_path))
        assert validate_advisor_document(loaded) == []
        assert open(html_path).read().startswith("<!DOCTYPE html>")

    def test_metrics_document_from_bare_snapshot(self):
        session = small_update_session(n_updates=2)
        doc = metrics_document(session.cluster.metrics.snapshot(),
                               workload="fig4")
        assert validate_advisor_document(doc) == []
        assert doc["tables"] == [] and doc["findings"] == []
        render_dashboard_html(doc)  # must not raise


# ----------------------------------------------------------------------
# Server statement spans in the traced mixed workload (S3).
# ----------------------------------------------------------------------
class TestServerSpans:
    def test_traced_mixed_workload_validates(self):
        session = build_session()
        session.cluster.tracer.enable()
        from repro.advisor.workloads import run_mixed
        run_mixed(session)
        doc = export.tracer_trace(session.cluster.tracer)
        assert export.validate_trace(
            doc, require_kinds=("statement", "job", "task",
                                "substrate", "server")) == []
        assert export.validate_server_spans(doc) == []

    def test_validator_requires_server_spans(self):
        session = small_update_session(n_updates=1)
        session.cluster.tracer.enable()
        session.execute("SELECT count(*) FROM t")
        doc = export.tracer_trace(session.cluster.tracer)
        errors = export.validate_server_spans(doc)
        assert errors and "no server.statement spans" in errors[0]

    def test_validator_flags_childless_server_span(self):
        doc = {"traceEvents": [
            {"name": "statement", "cat": "server", "ph": "X", "pid": 1,
             "tid": 1, "ts": 0.0, "dur": 5.0,
             "args": {"span_id": 1, "parent_id": None}},
        ]}
        errors = export.validate_server_spans(doc)
        assert any("no child statement span" in e for e in errors)
