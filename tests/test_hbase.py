"""Tests for the simulated HBase: cells, LSM semantics, client API."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, ClusterProfile
from repro.common.errors import TableExistsError, TableNotFoundError
from repro.hbase import (CellType, HBaseService, HFile, KeyValue, MemStore,
                         Region, row_tombstone)


@pytest.fixture
def service():
    return HBaseService(Cluster(ClusterProfile.laptop()))


# ----------------------------------------------------------------------
# Cells.
# ----------------------------------------------------------------------
class TestCells:
    def test_sort_order_rows_then_qualifiers(self):
        a = KeyValue(b"a", b"q1", 1, CellType.PUT, b"v")
        b = KeyValue(b"a", b"q2", 1, CellType.PUT, b"v")
        c = KeyValue(b"b", b"q1", 1, CellType.PUT, b"v")
        assert sorted([c, b, a]) == [a, b, c]

    def test_newer_versions_sort_first(self):
        old = KeyValue(b"a", b"q", 1, CellType.PUT, b"old")
        new = KeyValue(b"a", b"q", 2, CellType.PUT, b"new")
        assert sorted([old, new]) == [new, old]

    def test_tombstone_sorts_before_put_at_same_ts(self):
        put = KeyValue(b"a", b"q", 5, CellType.PUT, b"v")
        dele = KeyValue(b"a", b"q", 5, CellType.DELETE_COLUMN)
        assert sorted([put, dele]) == [dele, put]

    def test_row_tombstone_qualifier_sorts_first(self):
        tomb = row_tombstone(b"a", 1)
        put = KeyValue(b"a", b"q", 9, CellType.PUT, b"v")
        assert sorted([put, tomb]) == [tomb, put]

    def test_type_validation(self):
        with pytest.raises(TypeError):
            KeyValue("str-row", b"q", 1, CellType.PUT)
        with pytest.raises(TypeError):
            KeyValue(b"row", "q", 1, CellType.PUT)

    def test_size_bytes(self):
        cell = KeyValue(b"rr", b"qq", 1, CellType.PUT, b"vvv")
        assert cell.size_bytes() == 2 + 2 + 9 + 3


# ----------------------------------------------------------------------
# MemStore / HFile.
# ----------------------------------------------------------------------
class TestMemStore:
    def test_sorted_scan(self):
        store = MemStore()
        for row in (b"c", b"a", b"b"):
            store.add(KeyValue(row, b"q", 1, CellType.PUT, b"v"))
        assert [c.row for c in store.scan()] == [b"a", b"b", b"c"]

    def test_range_scan(self):
        store = MemStore()
        for row in (b"a", b"b", b"c", b"d"):
            store.add(KeyValue(row, b"q", 1, CellType.PUT, b"v"))
        assert [c.row for c in store.scan(b"b", b"d")] == [b"b", b"c"]

    def test_drain_empties(self):
        store = MemStore()
        store.add(KeyValue(b"a", b"q", 1, CellType.PUT, b"v"))
        cells = store.drain()
        assert len(cells) == 1
        assert len(store) == 0
        assert store.size_bytes == 0


class TestHFile:
    def test_sorted_and_bounds(self):
        cells = [KeyValue(row, b"q", 1, CellType.PUT, b"v")
                 for row in (b"m", b"a", b"z")]
        hfile = HFile(cells)
        assert hfile.min_row == b"a"
        assert hfile.max_row == b"z"
        assert [c.row for c in hfile.scan()] == [b"a", b"m", b"z"]

    def test_may_contain_row(self):
        hfile = HFile([KeyValue(b"d", b"q", 1, CellType.PUT, b"v")])
        assert hfile.may_contain_row(b"d")
        assert not hfile.may_contain_row(b"a")

    def test_bytes_in_range(self):
        cells = [KeyValue(bytes([i]), b"q", 1, CellType.PUT, b"v")
                 for i in range(10)]
        hfile = HFile(cells)
        full = hfile.bytes_in_range()
        part = hfile.bytes_in_range(bytes([3]), bytes([6]))
        assert part == full * 3 // 10


# ----------------------------------------------------------------------
# Region semantics.
# ----------------------------------------------------------------------
class TestRegion:
    def test_latest_version_wins(self):
        region = Region()
        region.put(b"r", b"q", b"v1", 1)
        region.put(b"r", b"q", b"v2", 2)
        assert region.get(b"r") == {b"q": b"v2"}

    def test_column_delete_shadows_older_puts(self):
        region = Region()
        region.put(b"r", b"q", b"v1", 1)
        region.delete_column(b"r", b"q", 2)
        assert region.get(b"r") is None
        region.put(b"r", b"q", b"v3", 3)
        assert region.get(b"r") == {b"q": b"v3"}

    def test_row_delete_shadows_all_columns(self):
        region = Region()
        region.put(b"r", b"q1", b"a", 1)
        region.put(b"r", b"q2", b"b", 1)
        region.delete_row(b"r", 2)
        assert region.get(b"r") is None

    def test_row_delete_then_newer_put(self):
        region = Region()
        region.put(b"r", b"q", b"old", 1)
        region.delete_row(b"r", 2)
        region.put(b"r", b"q", b"new", 3)
        assert region.get(b"r") == {b"q": b"new"}

    def test_semantics_preserved_across_flush(self):
        region = Region()
        region.put(b"r", b"q", b"v1", 1)
        region.flush()
        region.delete_column(b"r", b"q", 2)
        region.flush()
        region.put(b"r", b"q", b"v3", 3)
        assert region.get(b"r") == {b"q": b"v3"}
        assert len(region.hfiles) == 2

    def test_minor_compact_merges_files_keeps_semantics(self):
        region = Region()
        region.put(b"a", b"q", b"1", 1)
        region.flush()
        region.put(b"b", b"q", b"2", 2)
        region.delete_row(b"a", 3)
        region.flush()
        region.compact(major=False)
        assert len(region.hfiles) == 1
        assert region.get(b"a") is None
        assert region.get(b"b") == {b"q": b"2"}

    def test_major_compact_drops_tombstones(self):
        region = Region()
        region.put(b"a", b"q", b"1", 1)
        region.delete_row(b"a", 2)
        region.put(b"b", b"q", b"2", 3)
        region.compact(major=True)
        assert region.cell_count() == 1       # only b's put survives
        assert region.get(b"b") == {b"q": b"2"}

    def test_versions_api(self):
        region = Region()
        for ts, val in ((1, b"v1"), (2, b"v2"), (3, b"v3")):
            region.put(b"r", b"q", val, ts)
        history = region.get(b"r", versions=2)
        assert history == {b"q": [(3, b"v3"), (2, b"v2")]}

    def test_auto_flush_on_threshold(self):
        region = Region(flush_threshold_bytes=100)
        for i in range(20):
            region.put(b"r%02d" % i, b"q", b"v" * 10, i)
        assert region.hfiles     # flushed at least once


# Oracle-based property: arbitrary op sequence == dict replay.
_ops = st.lists(st.tuples(
    st.sampled_from(["put", "del_col", "del_row"]),
    st.integers(0, 5),        # row
    st.integers(0, 2),        # qualifier
    st.integers(0, 100),      # value payload
), max_size=60)


@given(_ops, st.sets(st.integers(0, 59)))
@settings(max_examples=50, deadline=None)
def test_region_matches_dict_oracle(ops, flush_points):
    region = Region()
    oracle = {}
    for ts, (op, row_i, qual_i, payload) in enumerate(ops, start=1):
        row, qual = b"r%d" % row_i, b"q%d" % qual_i
        if op == "put":
            value = b"v%d" % payload
            region.put(row, qual, value, ts)
            oracle.setdefault(row, {})[qual] = value
        elif op == "del_col":
            region.delete_column(row, qual, ts)
            oracle.get(row, {}).pop(qual, None)
        else:
            region.delete_row(row, ts)
            oracle.pop(row, None)
        if ts in flush_points:
            region.flush()
    expected = {row: cells for row, cells in oracle.items() if cells}
    got = {row: cells for row, cells in region.scan()}
    assert got == expected
    region.compact(major=True)
    assert {row: cells for row, cells in region.scan()} == expected


# ----------------------------------------------------------------------
# HTable / service.
# ----------------------------------------------------------------------
class TestHTable:
    def test_put_get_roundtrip(self, service):
        table = service.create_table("t")
        table.put(b"row", {b"a": b"1", b"b": b"2"})
        assert table.get(b"row") == {b"a": b"1", b"b": b"2"}

    def test_get_missing_row(self, service):
        table = service.create_table("t")
        assert table.get(b"nope") is None

    def test_scan_sorted_across_regions(self, service):
        table = service.create_table("t", split_points=[b"m"])
        for row in (b"z", b"a", b"q", b"m"):
            table.put(row, {b"c": row})
        assert [r for r, _ in table.scan()] == [b"a", b"m", b"q", b"z"]

    def test_scan_range(self, service):
        table = service.create_table("t", split_points=[b"m"])
        for row in (b"a", b"h", b"p", b"z"):
            table.put(row, {b"c": b"v"})
        assert [r for r, _ in table.scan(b"h", b"z")] == [b"h", b"p"]

    def test_delete_row_and_column(self, service):
        table = service.create_table("t")
        table.put(b"r", {b"a": b"1", b"b": b"2"})
        table.delete_column(b"r", b"a")
        assert table.get(b"r") == {b"b": b"2"}
        table.delete_row(b"r")
        assert table.get(b"r") is None

    def test_multi_version_get(self, service):
        table = service.create_table("t")
        table.put(b"r", {b"c": b"v1"})
        table.put(b"r", {b"c": b"v2"})
        history = table.get(b"r", versions=5)
        assert [v for _, v in history[b"c"]] == [b"v2", b"v1"]

    def test_truncate(self, service):
        table = service.create_table("t")
        table.put(b"r", {b"c": b"v"})
        table.truncate()
        assert table.is_empty()

    def test_count_rows_excludes_deleted(self, service):
        table = service.create_table("t")
        table.put(b"a", {b"c": b"v"})
        table.put(b"b", {b"c": b"v"})
        table.delete_row(b"a")
        assert table.count_rows() == 1

    def test_charging_on_ops(self, service):
        table = service.create_table("t")
        ledger = service.cluster.ledger
        table.put(b"r", {b"c": b"v"})
        assert ledger.bytes_for("hbase", "write") > 0
        table.get(b"r")
        assert ledger.bytes_for("hbase", "read") > 0
        list(table.scan())
        assert ledger.ops_for("hbase", "scan") > 0

    def test_system_table_not_charged(self, service):
        table = service.create_table("meta", system=True)
        table.put(b"r", {b"c": b"v"})
        table.get(b"r")
        list(table.scan())
        assert service.cluster.ledger.seconds_for("hbase") == 0.0

    def test_compact_reduces_store_bytes(self, service):
        table = service.create_table("t")
        for i in range(50):
            table.put(b"r", {b"c": b"version%d" % i})
        table.flush()
        before = table.store_bytes
        table.compact(major=True)
        assert table.store_bytes < before
        assert table.get(b"r") == {b"c": b"version49"}


class TestService:
    def test_create_duplicate_rejected(self, service):
        service.create_table("t")
        with pytest.raises(TableExistsError):
            service.create_table("t")

    def test_missing_table_rejected(self, service):
        with pytest.raises(TableNotFoundError):
            service.table("nope")
        with pytest.raises(TableNotFoundError):
            service.drop_table("nope")

    def test_ensure_table_idempotent(self, service):
        a = service.ensure_table("t")
        b = service.ensure_table("t")
        assert a is b

    def test_drop_and_list(self, service):
        service.create_table("a")
        service.create_table("b")
        service.drop_table("a")
        assert service.list_tables() == ["b"]

    def test_logical_clock_monotonic(self, service):
        assert service.next_ts() < service.next_ts() < service.next_ts()
