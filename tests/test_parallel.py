"""Unit tests for repro.parallel: pool, capture/replay, cache, gating."""

import threading

import pytest

from repro.cluster import Cluster, ClusterProfile
from repro.common.errors import TaskFailedError
from repro.faults import Fault, FaultPlan
from repro.mapreduce import InputSplit, Job, JobRunner
from repro.obs import MetricsRegistry
from repro.parallel import (ByteBudgetLRU, TaskRecorder, WorkerPool,
                            in_worker, parallel_map)


def make_cluster(workers=1):
    return Cluster(profile=ClusterProfile.laptop(workers=workers))


class TestWorkerPool:
    def test_results_in_submission_order(self):
        pool = WorkerPool(4)
        try:
            outcomes = pool.map([lambda i=i: i * i for i in range(20)])
            assert [o.unwrap() for o in outcomes] == [i * i
                                                     for i in range(20)]
        finally:
            pool.close()

    def test_serial_pool_runs_inline(self):
        pool = WorkerPool(1)
        assert not pool.parallel
        seen = []
        pool.map([lambda: seen.append(threading.current_thread().name)])
        assert seen == [threading.main_thread().name]

    def test_errors_are_outcomes_not_crashes(self):
        pool = WorkerPool(3)
        try:
            outcomes = pool.map([lambda: 1,
                                 lambda: 1 // 0,
                                 lambda: 3])
            assert outcomes[0].unwrap() == 1
            assert isinstance(outcomes[1].error, ZeroDivisionError)
            assert outcomes[2].unwrap() == 3
            with pytest.raises(ZeroDivisionError):
                outcomes[1].unwrap()
        finally:
            pool.close()

    def test_workers_are_tagged(self):
        pool = WorkerPool(2)
        try:
            assert not in_worker()
            flags = [o.unwrap()
                     for o in pool.map([in_worker, in_worker])]
            assert flags == [True, True]
            assert not in_worker()
        finally:
            pool.close()

    def test_nested_map_runs_inline(self):
        pool = WorkerPool(2)

        def outer():
            inner = [o.unwrap() for o in pool.map(
                [lambda: in_worker(), lambda: in_worker()])]
            return inner

        try:
            outcomes = pool.map([outer, outer])
            # Nested fan-out runs on the worker thread itself (still
            # tagged), never waits on fresh pool slots.
            assert [o.unwrap() for o in outcomes] == [[True, True]] * 2
        finally:
            pool.close()


class TestCaptureReplay:
    def test_capture_buffers_charges_then_replay_applies(self):
        cluster = make_cluster()
        with cluster.capture() as recorder:
            cluster.charge_hdfs_read(1000)
            cluster.metrics.incr("x.events", 2)
        assert cluster.ledger.total_seconds == 0.0
        assert cluster.metrics.counter("x.events") == 0
        assert len(recorder.charges) == 1
        recorder.replay(cluster)
        assert cluster.ledger.total_seconds > 0.0
        assert cluster.metrics.counter("x.events") == 2

    def test_replay_lands_in_active_scope(self):
        cluster = make_cluster()
        with cluster.capture() as recorder:
            cluster.charge_hdfs_read(4096)
        with cluster.cost_scope("t") as scope:
            recorder.replay(cluster)
        assert scope.seconds == pytest.approx(
            cluster.ledger.total_seconds)

    def test_nested_capture_bubbles_one_level(self):
        cluster = make_cluster()
        with cluster.capture() as outer:
            with cluster.capture() as inner:
                cluster.charge_hdfs_read(100)
            assert len(inner.charges) == 1 and not outer.charges
            inner.replay(cluster)
            assert len(outer.charges) == 1
        assert cluster.ledger.total_seconds == 0.0

    def test_capture_is_per_thread(self):
        cluster = make_cluster()
        seen = {}

        def worker():
            cluster.charge_hdfs_read(100)
            seen["seconds"] = cluster.ledger.total_seconds

        with cluster.capture() as recorder:
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        # The other thread had no capture: its charge went straight to
        # the ledger; the main thread's recorder stayed empty.
        assert seen["seconds"] > 0.0
        assert not recorder.charges

    def test_replay_preserves_metric_event_kinds(self):
        cluster = make_cluster()
        with cluster.capture() as recorder:
            cluster.metrics.incr("c", 3)
            cluster.metrics.gauge("g", 7)
            cluster.metrics.observe("h", 1.5)
        recorder.replay(cluster)
        assert cluster.metrics.counter("c") == 3
        assert cluster.metrics.gauges["g"] == 7
        assert cluster.metrics.histogram("h").count == 1


class TestByteBudgetLRU:
    def test_hit_miss_and_counters(self):
        metrics = MetricsRegistry()
        cache = ByteBudgetLRU(100, metrics=metrics, name="cache.t")
        assert cache.get(("a",)) is None
        cache.put(("a",), "value", 10)
        assert cache.get(("a",)) == "value"
        assert metrics.counter("cache.t.misses") == 1
        assert metrics.counter("cache.t.hits") == 1

    def test_evicts_lru_past_budget(self):
        metrics = MetricsRegistry()
        cache = ByteBudgetLRU(100, metrics=metrics, name="cache.t")
        cache.put(("a",), 1, 40)
        cache.put(("b",), 2, 40)
        cache.get(("a",))               # refresh a; b is now LRU
        cache.put(("c",), 3, 40)
        assert ("b",) not in cache
        assert ("a",) in cache and ("c",) in cache
        assert metrics.counter("cache.t.evictions") == 1
        assert cache.used_bytes == 80

    def test_oversized_value_not_stored(self):
        cache = ByteBudgetLRU(10)
        cache.put(("big",), "x", 11)
        assert len(cache) == 0

    def test_zero_budget_stores_nothing(self):
        cache = ByteBudgetLRU(0)
        cache.put(("a",), 1, 1)
        assert cache.get(("a",)) is None

    def test_invalidate_group_by_prefix(self):
        metrics = MetricsRegistry()
        cache = ByteBudgetLRU(1000, metrics=metrics, name="cache.t")
        cache.put(("/w/t1/master/f1", "footer"), 1, 10)
        cache.put(("/w/t1/master/f2", "footer"), 2, 10)
        cache.put(("/w/t2/master/f1", "footer"), 3, 10)
        assert cache.invalidate_group("/w/t1/master") == 2
        assert ("/w/t2/master/f1", "footer") in cache
        assert cache.used_bytes == 10
        assert metrics.counter("cache.t.invalidations") == 2

    def test_invalidate_group_non_string_tag_by_equality(self):
        cache = ByteBudgetLRU(1000)
        cache.put((7, "x"), 1, 10)
        cache.put((77, "x"), 2, 10)
        assert cache.invalidate_group(7) == 1
        assert (77, "x") in cache

    def test_clear(self):
        cache = ByteBudgetLRU(1000)
        cache.put(("a",), 1, 10)
        assert cache.clear() == 1
        assert len(cache) == 0 and cache.used_bytes == 0


class TestParallelMap:
    def test_matches_inline_results_and_charges(self):
        serial = make_cluster(workers=1)
        parallel = make_cluster(workers=4)
        items = list(range(8))

        def work(cluster):
            def fn(i):
                cluster.charge_hdfs_read(100 * (i + 1))
                cluster.metrics.incr("work.items")
                return i * 2
            return fn

        assert parallel_map(serial, work(serial), items) \
            == parallel_map(parallel, work(parallel), items) \
            == [i * 2 for i in items]
        assert parallel.ledger.snapshot() == serial.ledger.snapshot()
        assert parallel.metrics.counter("work.items") == len(items)

    def test_error_falls_back_to_inline_without_double_charges(self):
        cluster = make_cluster(workers=4)

        def fn(i):
            cluster.charge_hdfs_read(100)
            if i == 5:
                raise ValueError("boom")
            return i

        with pytest.raises(ValueError):
            parallel_map(cluster, fn, range(8))
        # Only the inline re-run's charges applied: items 0..5 charged
        # once each before the raise (captured charges were discarded).
        key = ("hdfs", "read")
        assert cluster.ledger.bytes_by_key[key] == 600


class TestRunnerParallelGating:
    def _word_count_job(self, n_splits=6):
        splits = [InputSplit(payload=list(range(i, i + 3)), label=str(i))
                  for i in range(n_splits)]

        def map_fn(split, ctx):
            ctx.incr("mapped")
            for value in split.payload:
                yield value % 2, value

        def reduce_fn(key, values, ctx):
            yield key, sum(values)

        return Job(name="wc", splits=splits, map_fn=map_fn,
                   reduce_fn=reduce_fn, num_reducers=2)

    def _run(self, cluster, job=None):
        runner = JobRunner(cluster)
        result = runner.run(job or self._word_count_job())
        return result

    def test_parallel_result_identical_to_serial(self):
        serial = self._run(make_cluster(workers=1))
        parallel = self._run(make_cluster(workers=4))
        assert sorted(parallel.outputs) == sorted(serial.outputs)
        assert parallel.outputs == serial.outputs
        assert parallel.sim_seconds == serial.sim_seconds
        assert parallel.counters == serial.counters

    def test_parallel_ledger_identical_to_serial(self):
        c1, c4 = make_cluster(1), make_cluster(4)
        self._run(c1)
        self._run(c4)
        assert c4.ledger.snapshot() == c1.ledger.snapshot()
        assert c4.metrics.counters == c1.metrics.counters

    def test_job_can_opt_out_of_parallelism(self):
        cluster = make_cluster(workers=4)
        names = []

        def map_fn(split, ctx):
            names.append(threading.current_thread().name)
            return ()

        job = Job(name="serial-only",
                  splits=[InputSplit(payload=i) for i in range(4)],
                  map_fn=map_fn, reduce_fn=None,
                  properties={"parallel": False})
        JobRunner(cluster).run(job)
        assert set(names) == {threading.main_thread().name}

    def test_armed_faults_disable_parallelism(self):
        cluster = make_cluster(workers=4)
        cluster.faults.install(FaultPlan([
            Fault("hbase.put", nth_hit=10**9)]))
        names = []

        def map_fn(split, ctx):
            names.append(threading.current_thread().name)
            return ()

        job = Job(name="faulty",
                  splits=[InputSplit(payload=i) for i in range(4)],
                  map_fn=map_fn, reduce_fn=None)
        JobRunner(cluster).run(job)
        assert set(names) == {threading.main_thread().name}

    def test_worker_failure_falls_back_to_serial_retry_path(self):
        cluster = make_cluster(workers=4)
        attempts = []

        def map_fn(split, ctx):
            attempts.append(split.payload)
            if split.payload == 2:
                raise RuntimeError("always broken")
            return ()

        job = Job(name="broken",
                  splits=[InputSplit(payload=i) for i in range(4)],
                  map_fn=map_fn, reduce_fn=None)
        with pytest.raises(TaskFailedError) as err:
            JobRunner(cluster).run(job)
        assert "map task 2" in str(err.value)
        # The serial rerun retried the broken task max_task_attempts
        # times, exactly as a workers=1 run would.
        serial = make_cluster(workers=1)
        serial_attempts = []

        def serial_map_fn(split, ctx):
            serial_attempts.append(split.payload)
            if split.payload == 2:
                raise RuntimeError("always broken")
            return ()

        with pytest.raises(TaskFailedError):
            JobRunner(serial).run(Job(
                name="broken",
                splits=[InputSplit(payload=i) for i in range(4)],
                map_fn=serial_map_fn, reduce_fn=None))
        # Parallel ran one extra sweep (the abandoned concurrent pass).
        assert attempts[len(attempts) - len(serial_attempts):] \
            == serial_attempts
        assert cluster.ledger.snapshot() == serial.ledger.snapshot()

    def test_pool_resizes_with_profile(self):
        cluster = make_cluster(workers=1)
        assert cluster.pool.workers == 1
        cluster.profile.workers = 4
        assert cluster.pool.workers == 4
