"""Shared fixtures for the test suite."""

import pytest

from repro.cluster import Cluster, ClusterProfile
from repro.hive import HiveSession


@pytest.fixture
def cluster():
    """A small, unscaled cluster for unit tests."""
    return Cluster(ClusterProfile.laptop())


@pytest.fixture
def session():
    """A fresh HiveSession on a laptop-profile cluster."""
    return HiveSession(profile=ClusterProfile.laptop())


@pytest.fixture
def multi_node_cluster():
    """A cluster with several datanodes (for replication tests)."""
    return Cluster(ClusterProfile(name="test-multi", num_workers=5))
