"""Tests for expression compilation/evaluation with SQL NULL semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import AnalysisError
from repro.hive import ast_nodes as ast
from repro.hive.expressions import (Env, compile_expr, contains_aggregate,
                                    is_true, like_to_regex,
                                    referenced_columns, walk)
from repro.hive.parser import parse


def evaluate(text, row=None, columns=None):
    """Helper: compile 'SELECT <expr>' against a one-row env."""
    expr = parse("SELECT %s" % text).items[0].expr
    env = Env()
    if columns:
        env.add_schema(columns)
    fn = compile_expr(expr, env)
    return fn(tuple(row or ()))


class TestLiteralsAndArithmetic:
    def test_literals(self):
        assert evaluate("42") == 42
        assert evaluate("'hi'") == "hi"
        assert evaluate("true") is True
        assert evaluate("null") is None

    def test_arithmetic(self):
        assert evaluate("2 + 3 * 4") == 14
        assert evaluate("10 / 4") == 2.5
        assert evaluate("10 % 3") == 1
        assert evaluate("-(2 + 3)") == -5

    def test_division_by_zero_is_null(self):
        assert evaluate("1 / 0") is None
        assert evaluate("1 % 0") is None

    def test_null_propagates_through_arithmetic(self):
        assert evaluate("1 + null") is None
        assert evaluate("null * 3") is None

    def test_concat_operator(self):
        assert evaluate("'a' || 'b'") == "ab"


class TestComparisons:
    def test_basic(self):
        assert evaluate("1 < 2") is True
        assert evaluate("2 <= 2") is True
        assert evaluate("3 != 4") is True
        assert evaluate("'abc' = 'abc'") is True

    def test_null_comparisons_are_null(self):
        assert evaluate("null = null") is None
        assert evaluate("1 < null") is None

    def test_string_date_ordering(self):
        assert evaluate("'2013-07-02' > '2013-07-01'") is True

    def test_numeric_string_coercion(self):
        assert evaluate("'5' = 5") is True
        assert evaluate("'abc' = 5") is False


class TestThreeValuedLogic:
    def test_and(self):
        assert evaluate("true AND true") is True
        assert evaluate("true AND false") is False
        assert evaluate("false AND null") is False   # short-circuit false
        assert evaluate("true AND null") is None

    def test_or(self):
        assert evaluate("false OR true") is True
        assert evaluate("false OR false") is False
        assert evaluate("true OR null") is True
        assert evaluate("false OR null") is None

    def test_not(self):
        assert evaluate("NOT true") is False
        assert evaluate("NOT null") is None

    def test_is_true_filter_semantics(self):
        assert is_true(True)
        assert not is_true(False)
        assert not is_true(None)
        assert not is_true(0)
        assert is_true(1)


class TestPredicates:
    def test_between(self):
        assert evaluate("5 BETWEEN 1 AND 10") is True
        assert evaluate("15 BETWEEN 1 AND 10") is False

    def test_in_list(self):
        assert evaluate("2 IN (1, 2, 3)") is True
        assert evaluate("9 IN (1, 2, 3)") is False
        assert evaluate("9 NOT IN (1, 2)") is True
        assert evaluate("null IN (1, 2)") is None

    def test_like(self):
        assert evaluate("'hello' LIKE 'he%'") is True
        assert evaluate("'hello' LIKE 'h_llo'") is True
        assert evaluate("'hello' LIKE 'x%'") is False
        assert evaluate("'hello' NOT LIKE 'x%'") is True
        assert evaluate("null LIKE 'x%'") is None

    def test_like_escapes_regex_chars(self):
        assert evaluate("'a.b' LIKE 'a.b'") is True
        assert evaluate("'axb' LIKE 'a.b'") is False

    def test_is_null(self):
        assert evaluate("null IS NULL") is True
        assert evaluate("1 IS NULL") is False
        assert evaluate("1 IS NOT NULL") is True

    def test_case_when(self):
        assert evaluate("CASE WHEN 1 = 1 THEN 'a' ELSE 'b' END") == "a"
        assert evaluate("CASE WHEN 1 = 2 THEN 'a' ELSE 'b' END") == "b"
        assert evaluate("CASE WHEN 1 = 2 THEN 'a' END") is None


class TestFunctions:
    def test_if(self):
        assert evaluate("IF(1 < 2, 'yes', 'no')") == "yes"
        assert evaluate("IF(null, 'yes', 'no')") == "no"

    def test_coalesce_and_nvl(self):
        assert evaluate("coalesce(null, null, 7)") == 7
        assert evaluate("nvl(null, 3)") == 3

    def test_math(self):
        assert evaluate("abs(-4)") == 4
        assert evaluate("round(3.456, 1)") == 3.5
        assert evaluate("floor(3.9)") == 3
        assert evaluate("ceil(3.1)") == 4

    def test_strings(self):
        assert evaluate("upper('ab')") == "AB"
        assert evaluate("lower('AB')") == "ab"
        assert evaluate("length('abc')") == 3
        assert evaluate("concat('a', 1, 'b')") == "a1b"
        assert evaluate("substr('hello', 2, 3)") == "ell"

    def test_date_parts(self):
        assert evaluate("year('2013-07-02')") == 2013
        assert evaluate("month('2013-07-02')") == 7
        assert evaluate("day('2013-07-02')") == 2

    def test_null_guard(self):
        assert evaluate("abs(null)") is None
        assert evaluate("upper(null)") is None

    def test_unknown_function(self):
        with pytest.raises(AnalysisError):
            evaluate("frobnicate(1)")


class TestColumnResolution:
    def test_bare_and_qualified(self):
        env = Env()
        env.add_schema(["a", "b"], alias="t")
        row = (10, 20)
        assert compile_expr(ast.ColumnRef("a"), env)(row) == 10
        assert compile_expr(ast.ColumnRef("b", "t"), env)(row) == 20

    def test_case_insensitive(self):
        env = Env()
        env.add_schema(["Amount"])
        assert compile_expr(ast.ColumnRef("AMOUNT"), env)((5,)) == 5

    def test_unknown_column(self):
        env = Env()
        env.add_schema(["a"])
        with pytest.raises(AnalysisError, match="unknown column"):
            compile_expr(ast.ColumnRef("z"), env)

    def test_ambiguous_column(self):
        env = Env()
        env.add_schema(["k"], alias="t1")
        env.add_schema(["k"], alias="t2")
        with pytest.raises(AnalysisError, match="ambiguous"):
            compile_expr(ast.ColumnRef("k"), env)
        # qualified stays fine
        assert compile_expr(ast.ColumnRef("k", "t2"), env)((1, 2)) == 2

    def test_aggregate_in_scalar_context_rejected(self):
        env = Env()
        env.add_schema(["a"])
        expr = parse("SELECT sum(a)").items[0].expr
        with pytest.raises(AnalysisError):
            compile_expr(expr, env)


class TestAstUtilities:
    def test_referenced_columns(self):
        expr = parse("SELECT a + t.b * IF(c = 1, d, 2)").items[0].expr
        assert referenced_columns(expr) == {"a", "b", "c", "d"}

    def test_contains_aggregate(self):
        assert contains_aggregate(parse("SELECT sum(a) + 1").items[0].expr)
        assert not contains_aggregate(parse("SELECT a + 1").items[0].expr)

    def test_walk_covers_case(self):
        expr = parse("SELECT CASE WHEN a THEN b ELSE c END").items[0].expr
        names = {n.name for n in walk(expr)
                 if isinstance(n, ast.ColumnRef)}
        assert names == {"a", "b", "c"}

    def test_like_to_regex(self):
        assert like_to_regex("a%b_").match("aXYZbQ")
        assert not like_to_regex("a%b_").match("aXYZb")


@given(st.one_of(st.none(), st.integers(-100, 100)),
       st.one_of(st.none(), st.integers(-100, 100)))
@settings(max_examples=60)
def test_arithmetic_null_safety_property(a, b):
    """a + b is NULL iff either side is NULL; otherwise exact."""
    env = Env()
    env.add_schema(["a", "b"])
    expr = parse("SELECT a + b").items[0].expr
    result = compile_expr(expr, env)((a, b))
    if a is None or b is None:
        assert result is None
    else:
        assert result == a + b


@given(st.one_of(st.none(), st.booleans()),
       st.one_of(st.none(), st.booleans()))
@settings(max_examples=40)
def test_three_valued_and_or_property(p, q):
    """AND/OR match Kleene logic truth tables."""
    env = Env()
    env.add_schema(["p", "q"])
    and_fn = compile_expr(parse("SELECT p AND q").items[0].expr, env)
    or_fn = compile_expr(parse("SELECT p OR q").items[0].expr, env)
    row = (p, q)

    def kleene_and(x, y):
        if x is False or y is False:
            return False
        if x is None or y is None:
            return None
        return True

    def kleene_or(x, y):
        if x is True or y is True:
            return True
        if x is None or y is None:
            return None
        return False

    assert and_fn(row) == kleene_and(p, q)
    assert or_fn(row) == kleene_or(p, q)


class TestExtendedFunctions:
    def test_trim_family(self):
        assert evaluate("trim('  x  ')") == "x"
        assert evaluate("ltrim('  x  ')") == "x  "
        assert evaluate("rtrim('  x  ')") == "  x"

    def test_reverse_and_instr(self):
        assert evaluate("reverse('abc')") == "cba"
        assert evaluate("instr('hello', 'll')") == 3
        assert evaluate("instr('hello', 'zz')") == 0

    def test_pad(self):
        assert evaluate("lpad('7', 3, '0')") == "007"
        assert evaluate("rpad('7', 3, '0')") == "700"

    def test_concat_ws_skips_nulls(self):
        assert evaluate("concat_ws('-', 'a', null, 'b')") == "a-b"
        assert evaluate("concat_ws(null, 'a', 'b')") is None

    def test_date_arithmetic(self):
        assert evaluate("date_add('2013-07-30', 3)") == "2013-08-02"
        assert evaluate("date_sub('2013-01-01', 1)") == "2012-12-31"
        assert evaluate("datediff('2013-07-05', '2013-07-01')") == 4
        assert evaluate("datediff('2013-07-01', '2013-07-05')") == -4

    def test_greatest_least_ignore_nulls(self):
        assert evaluate("greatest(1, 9, 4)") == 9
        assert evaluate("least(3, null, 2)") == 2
        assert evaluate("greatest(null, null)") is None

    def test_math(self):
        assert evaluate("pow(2, 10)") == 1024
        assert evaluate("sqrt(16)") == 4.0
        assert evaluate("sqrt(-1)") is None
        assert evaluate("mod(10, 3)") == 1
        assert evaluate("mod(10, 0)") is None
        assert evaluate("sign(-5)") == -1
        assert evaluate("sign(0)") == 0

    def test_null_guards(self):
        assert evaluate("date_add(null, 1)") is None
        assert evaluate("datediff('2013-01-01', null)") is None
