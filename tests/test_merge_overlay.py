"""Differential tests: overlay merge vs row merge (INTERNALS §14).

The overlay merge (:func:`repro.core.union_read_overlay`) must be
indistinguishable from the row-fallback merge
(:func:`repro.core.union_read_batches`) in everything except wall-clock:
same yielded rows, same merge-stats dict, same charges and counters.
These tests drive both implementations over hand-built adversarial delta
distributions and a seeded fuzz sweep at the unit level, then replay the
same DML through SQL under ``SET dualtable.merge = overlay`` vs ``row``.
"""

import pytest

from repro.cluster import ClusterProfile
from repro.common.rng import make_rng
from repro.core import (build_overlay, union_read_batches, union_read_file,
                        union_read_overlay)
from repro.core.attached import DeltaRecord
from repro.core.record_id import encode_record_id
from repro.hive import HiveSession
from repro.vector import ColumnBatch

FILE_ID = 3
WIDTH = 3           # schema columns 0, 1, 2


def delta(deleted=False, updates=None):
    record = DeltaRecord()
    record.deleted = deleted
    if updates:
        record.updates.update(updates)
    return record


def items_for(entries):
    """Sorted ``(record_id, DeltaRecord)`` items from {row: delta}."""
    return [(encode_record_id(FILE_ID, row), entries[row])
            for row in sorted(entries)]


def cell(row, column):
    return row * 10 + column


def make_batches(spans, projection):
    """ColumnBatches over ``(first_row, num_rows)`` spans (projected)."""
    return [ColumnBatch([[cell(r, c) for r in range(first, first + n)]
                         for c in projection], n, row_base=first)
            for first, n in spans]


def run_all_paths(spans, entries, projection=(0, 1, 2)):
    """Rows + stats from the overlay, batch-fallback and row merges.

    Asserts the three implementations agree exactly before returning
    ``(rows, stats)`` — every test's core oracle.
    """
    items = items_for(entries)
    projection_map = {c: i for i, c in enumerate(projection)}
    overlay = build_overlay(items)

    o_stats, b_stats, r_stats = {}, {}, {}
    o_batches = list(union_read_overlay(
        FILE_ID, iter(make_batches(spans, projection)), overlay,
        projection_map, stats=o_stats))
    o_rows = [tuple(row) for batch in o_batches for row in batch.rows()]
    b_batches = list(union_read_batches(
        FILE_ID, iter(make_batches(spans, projection)), items,
        projection_map, stats=b_stats))
    b_rows = [tuple(row) for batch in b_batches for row in batch.rows()]
    orc_rows = [(r, tuple(cell(r, c) for c in projection))
                for first, n in spans for r in range(first, first + n)]
    r_rows = [values for _, values in union_read_file(
        FILE_ID, iter(orc_rows), items, projection_map, stats=r_stats)]

    assert o_rows == b_rows == r_rows
    assert o_stats == b_stats == r_stats
    assert all(len(batch) > 0 for batch in o_batches + b_batches)
    return o_rows, o_stats


class TestAdversarialDistributions:
    def test_no_deltas_streams_through(self):
        rows, stats = run_all_paths([(0, 4), (4, 4)], {})
        assert len(rows) == 8
        assert stats == {"deltas_applied": 0, "rows_deleted": 0,
                         "deltas_skipped": 0, "trailing_deltas": 0}

    def test_every_row_in_batch_deleted(self):
        entries = {row: delta(deleted=True) for row in range(4, 8)}
        rows, stats = run_all_paths([(0, 4), (4, 4), (8, 4)], entries)
        assert [r[0] for r in rows] == [cell(r, 0) for r in
                                        (0, 1, 2, 3, 8, 9, 10, 11)]
        assert stats["rows_deleted"] == 4

    def test_whole_file_deleted(self):
        entries = {row: delta(deleted=True) for row in range(8)}
        rows, stats = run_all_paths([(0, 4), (4, 4)], entries)
        assert rows == []
        assert stats["rows_deleted"] == 8

    def test_delta_on_last_row_of_file(self):
        entries = {7: delta(updates={1: "last"})}
        rows, stats = run_all_paths([(0, 4), (4, 4)], entries)
        assert rows[-1] == (cell(7, 0), "last", cell(7, 2))
        assert stats["deltas_applied"] == 1

    def test_trailing_deltas_counted(self):
        entries = {5: delta(updates={0: "x"}),
                   20: delta(deleted=True),
                   21: delta(updates={1: "y"})}
        rows, stats = run_all_paths([(0, 4), (4, 4)], entries)
        assert stats["trailing_deltas"] == 2
        assert stats["deltas_applied"] == 1
        assert len(rows) == 8

    def test_pruned_stripe_gap_counts_skipped(self):
        # Stripe (4, 4) pruned away: its delta ids are passed over.
        entries = {5: delta(updates={0: "gone"}),
                   6: delta(deleted=True),
                   9: delta(updates={2: "kept"})}
        rows, stats = run_all_paths([(0, 4), (8, 4)], entries)
        assert stats["deltas_skipped"] == 2
        assert stats["deltas_applied"] == 1
        assert stats["rows_deleted"] == 0
        assert (cell(9, 0), cell(9, 1), "kept") in rows

    def test_deltas_straddling_batch_boundary(self):
        entries = {3: delta(updates={0: "a"}),
                   4: delta(updates={0: "b"}),
                   7: delta(deleted=True),
                   8: delta(deleted=True)}
        rows, stats = run_all_paths([(0, 4), (4, 4), (8, 4)], entries)
        assert stats == {"deltas_applied": 2, "rows_deleted": 2,
                         "deltas_skipped": 0, "trailing_deltas": 0}
        assert ("a", cell(3, 1), cell(3, 2)) in rows
        assert ("b", cell(4, 1), cell(4, 2)) in rows
        assert len(rows) == 10

    def test_noop_delta_changes_nothing_but_dirties_batch(self):
        rows, stats = run_all_paths([(0, 4)], {2: delta()})
        assert rows == [tuple(cell(r, c) for c in (0, 1, 2))
                        for r in range(4)]
        assert stats == {"deltas_applied": 0, "rows_deleted": 0,
                         "deltas_skipped": 0, "trailing_deltas": 0}

    def test_update_on_unprojected_column_still_counts(self):
        entries = {1: delta(updates={1: "invisible"})}
        rows, stats = run_all_paths([(0, 4)], entries, projection=(0, 2))
        assert rows[1] == (cell(1, 0), cell(1, 2))
        assert stats["deltas_applied"] == 1

    def test_delete_wins_over_update(self):
        record = delta(deleted=True, updates={0: "dead"})
        rows, stats = run_all_paths([(0, 4)], {1: record})
        assert len(rows) == 3
        assert stats["rows_deleted"] == 1
        assert stats["deltas_applied"] == 0

    def test_overlay_shares_untouched_columns_zero_copy(self):
        projection = (0, 1, 2)
        items = items_for({1: delta(updates={1: "patched"})})
        overlay = build_overlay(items)
        source = make_batches([(0, 4)], projection)
        out = list(union_read_overlay(
            FILE_ID, iter(source), overlay,
            {c: i for i, c in enumerate(projection)}))
        assert out[0].columns[0] is source[0].columns[0]
        assert out[0].columns[2] is source[0].columns[2]
        assert out[0].columns[1] is not source[0].columns[1]


class TestDifferentialFuzz:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_distributions_agree(self, seed):
        rng = make_rng("merge-overlay-fuzz", seed)
        total_rows = rng.randrange(20, 200)
        # Random stripe spans, some randomly pruned (gaps -> skipped).
        spans = []
        first = 0
        while first < total_rows:
            n = min(rng.randrange(1, 40), total_rows - first)
            if rng.random() > 0.2:
                spans.append((first, n))
            first += n
        entries = {}
        hi = total_rows + rng.randrange(0, 8)    # some trailing ids
        for row in range(hi):
            roll = rng.random()
            if roll < 0.12:
                entries[row] = delta(deleted=True)
            elif roll < 0.3:
                updates = {c: "u%d:%d" % (row, c)
                           for c in range(WIDTH) if rng.random() < 0.6}
                entries[row] = delta(updates=updates)   # may be a noop
        projection = rng.choice([(0, 1, 2), (2, 0), (1,), (0, 2)])
        rows, stats = run_all_paths(spans if spans else [(0, 1)],
                                    entries, projection=projection)
        assert stats["rows_deleted"] <= len(
            [d for d in entries.values() if d.deleted])
        assert len(rows) <= total_rows


class TestMergeModeSQL:
    """End-to-end: both strategies through real statements."""

    ROWS = [(i, i * 10) for i in range(60)]

    def build(self, merge):
        session = HiveSession(profile=ClusterProfile.laptop())
        session.execute("SET dualtable.merge = %s" % merge)
        session.execute(
            "CREATE TABLE t (k int, v int) STORED AS dualtable "
            "TBLPROPERTIES ('orc.rows_per_file' = '20', "
            "'orc.stripe_rows' = '5', 'dualtable.mode' = 'edit')")
        session.load_rows("t", self.ROWS)
        session.execute("UPDATE t SET v = 1 WHERE k < 7")
        session.execute("DELETE FROM t WHERE k >= 50 AND k < 55")
        session.execute("UPDATE t SET v = 2 WHERE k >= 58")
        return session

    @pytest.mark.parametrize("engine", ["row", "vectorized"])
    def test_strategies_agree_end_to_end(self, engine):
        results = {}
        for merge in ("overlay", "row"):
            session = self.build(merge)
            session.set_engine(engine)
            result = session.execute("SELECT k, v FROM t ORDER BY k")
            counters = session.cluster.metrics.counters
            results[merge] = (result.rows, result.sim_seconds,
                              counters.get("unionread.deltas_applied", 0),
                              counters.get("unionread.rows_deleted", 0))
        assert results["overlay"] == results["row"]

    def test_dirty_units_attributed_to_configured_strategy(self):
        for merge, own, other in (
                ("overlay", "unionread.batches_overlay",
                 "unionread.batches_row_fallback"),
                ("row", "unionread.batches_row_fallback",
                 "unionread.batches_overlay")):
            session = self.build(merge)
            session.execute("SELECT k, v FROM t")
            counters = session.cluster.metrics.counters
            assert counters.get(own, 0) > 0
            assert counters.get(other, 0) == 0
            assert counters.get("unionread.batches_fast", 0) > 0

    def test_merge_unit_sum_identical_across_strategies(self):
        units = {}
        for merge in ("overlay", "row"):
            session = self.build(merge)
            session.execute("SELECT k, v FROM t")
            counters = session.cluster.metrics.counters
            units[merge] = (
                counters.get("unionread.batches_fast", 0),
                counters.get("unionread.batches_overlay", 0)
                + counters.get("unionread.batches_row_fallback", 0))
        assert units["overlay"] == units["row"]

    def test_set_merge_rejects_unknown_strategy(self):
        session = HiveSession(profile=ClusterProfile.laptop())
        with pytest.raises(Exception):
            session.execute("SET dualtable.merge = eager")

    def test_merge_mode_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_MERGE", "row")
        session = HiveSession(profile=ClusterProfile.laptop())
        assert session.merge_mode == "row"
