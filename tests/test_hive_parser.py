"""Tests for the HiveQL lexer and parser."""

import pytest

from repro.common.errors import ParseError
from repro.hive import ast_nodes as ast
from repro.hive.lexer import tokenize
from repro.hive.parser import parse, parse_script


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("SeLeCt FROM where")
        assert [t.value for t in tokens[:-1]] == ["select", "from", "where"]

    def test_identifiers_preserved(self):
        tokens = tokenize("tj_TqXs_r")
        assert tokens[0].kind == "ident"
        assert tokens[0].value == "tj_TqXs_r"

    def test_numbers(self):
        tokens = tokenize("42 3.14 1e6 2.5e-3")
        assert [t.value for t in tokens[:-1]] == [42, 3.14, 1e6, 2.5e-3]

    def test_string_literals_and_escapes(self):
        tokens = tokenize("'it''s' \"double\"")
        assert tokens[0].value == "it's"
        assert tokens[1].value == "double"

    def test_unterminated_string_fails(self):
        with pytest.raises(ParseError):
            tokenize("'oops")

    def test_operators_normalized(self):
        tokens = tokenize("a <> b == c")
        ops = [t.value for t in tokens if t.kind == "op"]
        assert ops == ["!=", "="]

    def test_line_comments_skipped(self):
        tokens = tokenize("select -- comment\n 1")
        assert [t.value for t in tokens[:-1]] == ["select", 1]

    def test_block_comments_skipped(self):
        tokens = tokenize("select /* hi\nthere */ 1")
        assert [t.value for t in tokens[:-1]] == ["select", 1]

    def test_backtick_identifiers(self):
        tokens = tokenize("`select`")
        assert tokens[0].kind == "ident"
        assert tokens[0].value == "select"

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            tokenize("select @")


class TestSelectParsing:
    def test_simple(self):
        stmt = parse("SELECT a, b FROM t")
        assert isinstance(stmt, ast.SelectStmt)
        assert len(stmt.items) == 2
        assert stmt.source.name == "t"

    def test_star(self):
        stmt = parse("SELECT * FROM t")
        assert isinstance(stmt.items[0].expr, ast.Star)

    def test_qualified_star(self):
        stmt = parse("SELECT t.* FROM t")
        assert stmt.items[0].expr.qualifier == "t"

    def test_aliases(self):
        stmt = parse("SELECT a AS x, b y FROM t u")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"
        assert stmt.source.alias == "u"

    def test_where_group_having_order_limit(self):
        stmt = parse("SELECT a, count(*) c FROM t WHERE a > 1 "
                     "GROUP BY a HAVING count(*) > 2 "
                     "ORDER BY c DESC LIMIT 5")
        assert stmt.where is not None
        assert len(stmt.group_by) == 1
        assert stmt.having is not None
        assert stmt.order_by[0].descending
        assert stmt.limit == 5

    def test_join_kinds(self):
        stmt = parse("SELECT a FROM t1 JOIN t2 ON t1.k = t2.k "
                     "LEFT OUTER JOIN t3 ON t2.k = t3.k")
        assert [j.kind for j in stmt.joins] == ["inner", "left"]

    def test_derived_table(self):
        stmt = parse("SELECT x FROM (SELECT a x FROM t) sub")
        assert stmt.source.subquery is not None
        assert stmt.source.alias == "sub"

    def test_scalar_subquery(self):
        stmt = parse("SELECT a FROM t WHERE a > (SELECT max(a) FROM t)")
        assert isinstance(stmt.where.right, ast.SubQueryExpr)

    def test_in_subquery(self):
        stmt = parse("SELECT a FROM t WHERE a IN (SELECT b FROM u)")
        assert isinstance(stmt.where, ast.InList)
        assert isinstance(stmt.where.items[0], ast.SubQueryExpr)

    def test_constant_select_without_from(self):
        stmt = parse("SELECT 1 + 2")
        assert stmt.source is None


class TestExpressionParsing:
    def _expr(self, text):
        return parse("SELECT %s" % text).items[0].expr

    def test_precedence_mul_over_add(self):
        expr = self._expr("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_parentheses(self):
        expr = self._expr("(1 + 2) * 3")
        assert expr.op == "*"

    def test_and_or_precedence(self):
        expr = self._expr("a = 1 OR b = 2 AND c = 3")
        assert isinstance(expr, ast.LogicalOp) and expr.op == "or"
        assert expr.operands[1].op == "and"

    def test_not(self):
        expr = self._expr("NOT a = 1")
        assert isinstance(expr, ast.NotOp)

    def test_between_desugars(self):
        expr = self._expr("a BETWEEN 1 AND 5")
        assert isinstance(expr, ast.LogicalOp) and expr.op == "and"
        assert expr.operands[0].op == ">="
        assert expr.operands[1].op == "<="

    def test_not_between(self):
        expr = self._expr("a NOT BETWEEN 1 AND 5")
        assert isinstance(expr, ast.NotOp)

    def test_in_list(self):
        expr = self._expr("a IN (1, 2, 3)")
        assert isinstance(expr, ast.InList)
        assert len(expr.items) == 3

    def test_not_in(self):
        expr = self._expr("a NOT IN (1)")
        assert expr.negated

    def test_like(self):
        expr = self._expr("name LIKE 'a%'")
        assert isinstance(expr, ast.LikeOp)

    def test_is_null_and_is_not_null(self):
        assert not self._expr("a IS NULL").negated
        assert self._expr("a IS NOT NULL").negated

    def test_case_when(self):
        expr = self._expr("CASE WHEN a = 1 THEN 'x' ELSE 'y' END")
        assert isinstance(expr, ast.CaseWhen)
        assert len(expr.whens) == 1
        assert expr.default is not None

    def test_if_function(self):
        expr = self._expr("IF(a = 1, 'x', 'y')")
        assert isinstance(expr, ast.FuncCall)
        assert expr.name == "if"

    def test_count_star_and_distinct(self):
        star = self._expr("count(*)")
        assert isinstance(star.args[0], ast.Star)
        distinct = self._expr("count(DISTINCT a)")
        assert distinct.distinct

    def test_qualified_column(self):
        expr = self._expr("t.col")
        assert expr.qualifier == "t" and expr.name == "col"

    def test_unary_minus(self):
        expr = self._expr("-a")
        assert isinstance(expr, ast.UnaryMinus)

    def test_string_concat_operator(self):
        expr = self._expr("a || b")
        assert expr.op == "||"


class TestDmlDdlParsing:
    def test_update(self):
        stmt = parse("UPDATE t SET a = 1, b = b + 1 WHERE c = 'x'")
        assert isinstance(stmt, ast.UpdateStmt)
        assert [name for name, _ in stmt.assignments] == ["a", "b"]
        assert stmt.where is not None

    def test_update_with_alias(self):
        stmt = parse("UPDATE t u SET u.a = 1 WHERE u.b = 2")
        assert stmt.alias == "u"
        assert stmt.assignments[0][0] == "a"

    def test_delete(self):
        stmt = parse("DELETE FROM t WHERE a < 5")
        assert isinstance(stmt, ast.DeleteStmt)
        assert stmt.table == "t"

    def test_delete_without_where(self):
        stmt = parse("DELETE FROM t")
        assert stmt.where is None

    def test_insert_select(self):
        stmt = parse("INSERT OVERWRITE TABLE t SELECT * FROM u")
        assert stmt.overwrite
        assert stmt.query is not None

    def test_insert_values(self):
        stmt = parse("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
        assert not stmt.overwrite
        assert len(stmt.values) == 2

    def test_create_table(self):
        stmt = parse("CREATE TABLE t (a int, b string, c double) "
                     "STORED AS DUALTABLE "
                     "TBLPROPERTIES ('dualtable.mode' = 'edit')")
        assert stmt.storage == "dualtable"
        assert stmt.columns == [("a", "int"), ("b", "string"),
                                ("c", "double")]
        assert stmt.properties == {"dualtable.mode": "edit"}

    def test_create_if_not_exists(self):
        stmt = parse("CREATE TABLE IF NOT EXISTS t (a int)")
        assert stmt.if_not_exists

    def test_drop(self):
        assert not parse("DROP TABLE t").if_exists
        assert parse("DROP TABLE IF EXISTS t").if_exists

    def test_compact(self):
        stmt = parse("COMPACT TABLE t")
        assert isinstance(stmt, ast.CompactStmt) and stmt.major
        assert not parse("COMPACT TABLE t minor").major

    def test_show_and_describe(self):
        assert isinstance(parse("SHOW TABLES"), ast.ShowTablesStmt)
        assert parse("DESCRIBE t").table == "t"

    def test_show_metrics_like(self):
        stmt = parse("SHOW METRICS")
        assert isinstance(stmt, ast.ShowMetricsStmt) and stmt.like is None
        stmt = parse("SHOW METRICS LIKE 'dualtable.*'")
        assert stmt.like == "dualtable.*"

    def test_advisor_statements(self):
        assert isinstance(parse("SHOW ADVISOR"), ast.ShowAdvisorStmt)
        stmt = parse("ANALYZE WORKLOAD")
        assert isinstance(stmt, ast.AnalyzeWorkloadStmt) and not stmt.apply
        assert parse("ANALYZE WORKLOAD APPLY").apply

    def test_alter_dualtable(self):
        stmt = parse("ALTER TABLE t SET DUALTABLE "
                     "(read_factor = 5, mode = 'cost')")
        assert isinstance(stmt, ast.AlterDualTableStmt)
        assert stmt.table == "t"
        assert stmt.options == {"read_factor": 5, "mode": "cost"}

    @pytest.mark.parametrize("sql", [
        "ANALYZE",                          # missing WORKLOAD
        "ANALYZE TABLE t",                  # unsupported form
        "SHOW METRICS LIKE",                # dangling LIKE
        "ALTER TABLE t SET DUALTABLE",      # missing options
    ])
    def test_advisor_parse_errors(self, sql):
        with pytest.raises(ParseError):
            parse(sql)

    def test_script_parsing(self):
        stmts = parse_script("SELECT 1; SELECT 2;; SELECT 3")
        assert len(stmts) == 3


class TestParseErrors:
    @pytest.mark.parametrize("sql", [
        "SELECT",                          # empty select list
        "SELECT a FROM",                   # missing table
        "UPDATE t",                        # missing SET
        "DELETE t",                        # missing FROM
        "CREATE TABLE t",                  # missing columns
        "SELECT a FROM t WHERE",           # dangling where
        "FROB the table",                  # unknown statement
        "SELECT a FROM t GROUP a",         # missing BY
        "SELECT a b c FROM t",             # junk after alias
    ])
    def test_bad_statements(self, sql):
        with pytest.raises(ParseError):
            parse(sql)
