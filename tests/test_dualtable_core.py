"""Tests for DualTable internals: record IDs, attached table, union read,
metadata, master table."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, ClusterProfile
from repro.core import (AttachedTable, DeltaRecord, DualTableMetadata,
                        MasterTable, RECORD_ID_BYTES, decode_record_id,
                        encode_record_id, file_key_range, union_read_file)
from repro.core.attached import (DELETE_MARKER, parse_qualifier,
                                 update_qualifier)
from repro.core.union_read import apply_delta_to_row
from repro.hbase import HBaseService
from repro.hdfs import HdfsFileSystem
from repro.hive.types import TableSchema


@pytest.fixture
def hbase():
    return HBaseService(Cluster(ClusterProfile.laptop()))


# ----------------------------------------------------------------------
# Record IDs.
# ----------------------------------------------------------------------
class TestRecordId:
    def test_roundtrip(self):
        key = encode_record_id(7, 12345)
        assert decode_record_id(key) == (7, 12345)
        assert len(key) == RECORD_ID_BYTES

    def test_byte_order_matches_tuple_order(self):
        pairs = [(0, 5), (0, 6), (1, 0), (1, 10), (2, 3)]
        keys = [encode_record_id(f, r) for f, r in pairs]
        assert sorted(keys) == keys

    def test_file_key_range_covers_exactly_one_file(self):
        start, stop = file_key_range(3)
        assert start <= encode_record_id(3, 0) < stop
        assert start <= encode_record_id(3, 2**40) < stop
        assert encode_record_id(2, 2**40) < start
        assert encode_record_id(4, 0) >= stop


@given(st.lists(st.tuples(st.integers(0, 2**32 - 1),
                          st.integers(0, 2**63 - 1)),
                min_size=2, max_size=50))
@settings(max_examples=50)
def test_record_id_order_property(pairs):
    """encode preserves lexicographic (file, row) order for any ids."""
    keys = [encode_record_id(f, r) for f, r in pairs]
    assert sorted(keys) == [encode_record_id(f, r)
                            for f, r in sorted(pairs)]


# ----------------------------------------------------------------------
# Attached table.
# ----------------------------------------------------------------------
class TestQualifiers:
    def test_update_qualifier_roundtrip(self):
        kind, idx = parse_qualifier(update_qualifier(37))
        assert (kind, idx) == ("update", 37)

    def test_delete_marker(self):
        assert parse_qualifier(DELETE_MARKER) == ("delete", None)

    def test_unknown(self):
        assert parse_qualifier(b"zz")[0] == "unknown"


class TestAttachedTable:
    def _attached(self, hbase):
        attached = AttachedTable(hbase, "dt_t_attached")
        attached.create()
        return attached

    def test_update_then_get(self, hbase):
        attached = self._attached(hbase)
        rid = encode_record_id(0, 5)
        attached.put_update(rid, {1: "new", 3: 42})
        delta = attached.get(rid)
        assert not delta.deleted
        assert delta.updates == {1: "new", 3: 42}

    def test_delete_marker_resolves(self, hbase):
        attached = self._attached(hbase)
        rid = encode_record_id(0, 5)
        attached.put_update(rid, {1: "x"})
        attached.put_delete(rid)
        delta = attached.get(rid)
        assert delta.deleted

    def test_scan_file_is_sorted_and_scoped(self, hbase):
        attached = self._attached(hbase)
        attached.put_update(encode_record_id(1, 9), {0: "a"})
        attached.put_update(encode_record_id(1, 2), {0: "b"})
        attached.put_update(encode_record_id(2, 0), {0: "c"})
        items = list(attached.scan_file(1))
        assert [decode_record_id(k)[1] for k, _ in items] == [2, 9]

    def test_latest_update_wins(self, hbase):
        attached = self._attached(hbase)
        rid = encode_record_id(0, 1)
        attached.put_update(rid, {2: "old"})
        attached.put_update(rid, {2: "new"})
        assert attached.get(rid).updates[2] == "new"

    def test_history_multiversion(self, hbase):
        attached = self._attached(hbase)
        rid = encode_record_id(0, 1)
        attached.put_update(rid, {2: "v1"})
        attached.put_update(rid, {2: "v2"})
        history = attached.history(rid)
        assert [v for _, v in history[2]] == ["v2", "v1"]

    def test_has_entries_in_file(self, hbase):
        attached = self._attached(hbase)
        attached.put_update(encode_record_id(5, 1), {0: "x"})
        assert attached.has_entries_in_file(5)
        assert not attached.has_entries_in_file(4)

    def test_clear(self, hbase):
        attached = self._attached(hbase)
        attached.put_delete(encode_record_id(0, 0))
        attached.clear()
        assert attached.is_empty()
        assert attached.entry_count() == 0

    def test_null_value_update(self, hbase):
        attached = self._attached(hbase)
        rid = encode_record_id(0, 0)
        attached.put_update(rid, {1: None})
        assert attached.get(rid).updates == {1: None}


# ----------------------------------------------------------------------
# Union read.
# ----------------------------------------------------------------------
class TestUnionRead:
    def _merge(self, orc_rows, deltas, projection_map=None):
        projection_map = projection_map or {0: 0, 1: 1}
        return list(union_read_file(0, orc_rows, deltas, projection_map))

    def test_no_deltas_passthrough(self):
        rows = [(0, ("a", 1)), (1, ("b", 2))]
        merged = self._merge(iter(rows), iter([]))
        assert [v for _, v in merged] == [("a", 1), ("b", 2)]

    def test_update_applied(self):
        rows = [(0, ("a", 1)), (1, ("b", 2))]
        deltas = [(encode_record_id(0, 1),
                   DeltaRecord(updates={1: 99}))]
        merged = self._merge(iter(rows), iter(deltas))
        assert merged[1][1] == ("b", 99)

    def test_delete_skipped(self):
        rows = [(0, ("a", 1)), (1, ("b", 2)), (2, ("c", 3))]
        deltas = [(encode_record_id(0, 1), DeltaRecord(deleted=True))]
        merged = self._merge(iter(rows), iter(deltas))
        assert [v for _, v in merged] == [("a", 1), ("c", 3)]

    def test_update_outside_projection_ignored(self):
        rows = [(0, ("a",))]
        deltas = [(encode_record_id(0, 0), DeltaRecord(updates={5: "x"}))]
        merged = self._merge(iter(rows), iter(deltas),
                             projection_map={0: 0})
        assert merged[0][1] == ("a",)

    def test_stale_deltas_before_rows_skipped(self):
        # deltas for row numbers below the first ORC row (pruned stripes).
        rows = [(10, ("k",))]
        deltas = [(encode_record_id(0, 2), DeltaRecord(updates={0: "z"})),
                  (encode_record_id(0, 10), DeltaRecord(updates={0: "y"}))]
        merged = self._merge(iter(rows), iter(deltas),
                             projection_map={0: 0})
        assert merged == [(encode_record_id(0, 10), ("y",))]

    def test_apply_delta_to_row(self):
        assert apply_delta_to_row(("a", 1), None, {0: 0}) == ("a", 1)
        assert apply_delta_to_row(("a", 1),
                                  DeltaRecord(deleted=True), {0: 0}) is None
        assert apply_delta_to_row(
            ("a", 1), DeltaRecord(updates={1: 9}), {0: 0, 1: 1}) == ("a", 9)


@given(st.lists(st.integers(0, 2), min_size=0, max_size=40),
       st.integers(2, 10))
@settings(max_examples=50)
def test_union_read_matches_oracle_property(row_ops, n_rows):
    """union_read(master, deltas) == oracle dict replay, any op pattern.

    row_ops[i] applies to row i % n_rows: 0 = no-op, 1 = update, 2 = delete.
    """
    master = [(i, ("val%d" % i, i)) for i in range(n_rows)]
    oracle = {i: list(v) for i, v in master}
    deltas = {}
    for step, op in enumerate(row_ops):
        row = step % n_rows
        rid = encode_record_id(0, row)
        if op == 1:
            deltas.setdefault(rid, DeltaRecord()).updates[1] = 1000 + step
            if row in oracle:
                oracle[row][1] = 1000 + step
        elif op == 2:
            deltas.setdefault(rid, DeltaRecord()).deleted = True
            oracle.pop(row, None)
    # A deleted row stays deleted even if updated earlier/later.
    for rid, delta in deltas.items():
        if delta.deleted:
            oracle.pop(decode_record_id(rid)[1], None)
    merged = list(union_read_file(0, iter(master),
                                  iter(sorted(deltas.items())),
                                  {0: 0, 1: 1}))
    got = {decode_record_id(rid)[1]: list(values) for rid, values in merged}
    assert got == oracle


# ----------------------------------------------------------------------
# Metadata manager.
# ----------------------------------------------------------------------
class TestMetadata:
    def test_file_ids_unique_and_incremental(self, hbase):
        meta = DualTableMetadata(hbase)
        meta.register_table("t")
        ids = [meta.next_file_id("t") for _ in range(5)]
        assert ids == [0, 1, 2, 3, 4]

    def test_counters_independent_per_table(self, hbase):
        meta = DualTableMetadata(hbase)
        meta.register_table("a")
        meta.register_table("b")
        assert meta.next_file_id("a") == 0
        assert meta.next_file_id("b") == 0
        assert meta.next_file_id("a") == 1

    def test_ratio_history(self, hbase):
        meta = DualTableMetadata(hbase)
        meta.register_table("t")
        assert meta.mean_historical_ratio("t") is None
        meta.record_ratio("t", 0.1)
        meta.record_ratio("t", 0.3)
        assert meta.mean_historical_ratio("t") == pytest.approx(0.2)

    def test_history_bounded(self, hbase):
        meta = DualTableMetadata(hbase)
        meta.register_table("t")
        for i in range(50):
            meta.record_ratio("t", float(i))
        assert len(meta.ratio_history("t")) == 32

    def test_unregister(self, hbase):
        meta = DualTableMetadata(hbase)
        meta.register_table("t")
        meta.next_file_id("t")
        meta.unregister_table("t")
        meta.register_table("t")
        assert meta.next_file_id("t") == 0


# ----------------------------------------------------------------------
# Master table.
# ----------------------------------------------------------------------
class TestMasterTable:
    def _master(self, rows_per_file=10):
        cluster = Cluster(ClusterProfile.laptop())
        fs = HdfsFileSystem(cluster)
        hbase = HBaseService(cluster)
        meta = DualTableMetadata(hbase)
        meta.register_table("t")
        schema = TableSchema([("id", "int"), ("v", "string")])
        master = MasterTable(fs, "/warehouse/t/master", schema, meta, "t",
                             rows_per_file=rows_per_file, stripe_rows=5)
        master.create()
        return master

    def test_write_splits_into_files_with_unique_ids(self):
        master = self._master(rows_per_file=10)
        master.write_rows([(i, "v%d" % i) for i in range(25)])
        paths = master.file_paths()
        assert len(paths) == 3
        ids = [master.file_id_of(p) for p in paths]
        assert len(set(ids)) == 3

    def test_row_count_and_bytes(self):
        master = self._master()
        master.write_rows([(i, "v") for i in range(25)])
        assert master.row_count() == 25
        assert master.data_bytes() > 0
        assert master.avg_row_bytes() > 0

    def test_replace_with_swaps_atomically(self):
        master = self._master()
        master.write_rows([(i, "old") for i in range(5)])
        old_ids = {master.file_id_of(p) for p in master.file_paths()}
        master.replace_with([(9, "new")])
        assert master.row_count() == 1
        new_ids = {master.file_id_of(p) for p in master.file_paths()}
        assert not (old_ids & new_ids)     # fresh file ids after rewrite
