"""Concurrent server tests: snapshot isolation, admission, degradation.

Everything here is deterministic — the server models concurrency as
seeded discrete events over virtual time, so conflicts, retries, kills
and sheds reproduce exactly.
"""

import threading

import pytest

from repro.cluster import ClusterProfile
from repro.common.errors import (AnalysisError, ParseError, ServerOverloaded,
                                 SessionKilledError, StatementTimeout,
                                 TxnConflictError)
from repro.common.retry import RetryPolicy
from repro.hive import HiveSession
from repro.hive.parser import parse
from repro.hive import ast_nodes as ast
from repro.obs.registry import MetricsRegistry
from repro.parallel.cache import ByteBudgetLRU
from repro.server import (Arrival, CommitLog, DualTableServer, StatementTxn,
                          build_ledger_server, ledger_arrivals,
                          ledger_totals, run_open_loop)


def make_server(**kwargs):
    return build_ledger_server(accounts=8, seed=11, **kwargs)


# ---------------------------------------------------------------------------
# Snapshot isolation semantics.
# ---------------------------------------------------------------------------
class TestSnapshotIsolation:
    def test_same_record_conflict_one_commits_one_retries(self):
        server = make_server()
        s1, s2 = server.connect("a"), server.connect("b")
        outcomes = server.run([
            Arrival(0.0, s1, "UPDATE ledger SET v = v + 5 WHERE id = 3"),
            Arrival(0.01, s2, "UPDATE ledger SET v = v + 7 WHERE id = 3"),
        ], concurrency=2)
        assert [o["status"] for o in outcomes] == ["committed", "committed"]
        # First committer wins; the second retried once and reapplied
        # its increment on top of the winner's value.
        assert sorted(o["attempts"] for o in outcomes) == [1, 2]
        assert server.metrics.counter("server.conflicts") == 1
        assert server.metrics.counter("server.conflict_retries") == 1
        assert server.engine.execute(
            "SELECT v FROM ledger WHERE id = 3").scalar() == 12

    def test_disjoint_records_commit_without_conflict(self):
        server = make_server()
        s1, s2 = server.connect("a"), server.connect("b")
        outcomes = server.run([
            Arrival(0.0, s1, "UPDATE ledger SET v = v + 1 WHERE id = 1"),
            Arrival(0.01, s2, "UPDATE ledger SET v = v + 1 WHERE id = 2"),
        ], concurrency=2)
        assert [o["status"] for o in outcomes] == ["committed", "committed"]
        assert server.metrics.counter("server.conflicts") == 0

    def test_readers_never_observe_half_applied_batches(self):
        """A reader dispatched while a multi-row UPDATE is in flight sees
        the writer's entire effect or none of it — never a partial
        EditBatch (deferred publish means published == committed)."""
        server = make_server()
        writer, readers = server.connect("w"), server.connect("r")
        arrivals = [Arrival(0.0, writer,
                            "UPDATE ledger SET v = v + 10 WHERE id < 8")]
        # Readers land while the writer is mid-flight and after.
        arrivals += [Arrival(0.001 * (i + 1), readers,
                             "SELECT SUM(v) FROM ledger")
                     for i in range(6)]
        outcomes = server.run(arrivals, concurrency=4)
        sums = {o["result"].scalar() or 0 for o in outcomes
                if o["sql"].startswith("SELECT")}
        # 8 rows x +10 = 80: every read is exactly 0 or exactly 80.
        assert sums <= {0, 80}, sums

    def test_totals_identical_across_concurrency(self):
        totals = set()
        for concurrency in (1, 4, 16):
            server = build_ledger_server(accounts=16, seed=42,
                                         concurrency=concurrency)
            arrivals = ledger_arrivals(server, clients=30, statements=60,
                                       accounts=16, seed=42)
            summary = run_open_loop(server, arrivals)
            assert summary["lost_writes"] == 0
            assert summary["phantom_writes"] == 0
            assert summary["by_status"] == {"committed": 60}
            totals.add(summary["final_total"])
        assert len(totals) == 1

    def test_escalation_after_retry_budget_guarantees_progress(self):
        server = make_server()
        server.retry_policy = RetryPolicy(max_attempts=1, backoff_s=0.01,
                                          jitter=0.5, seed=1)
        s1, s2 = server.connect("a"), server.connect("b")
        outcomes = server.run([
            Arrival(0.0, s1, "UPDATE ledger SET v = v + 1 WHERE id = 0"),
            Arrival(0.01, s2, "UPDATE ledger SET v = v + 2 WHERE id = 0"),
        ], concurrency=2)
        assert [o["status"] for o in outcomes] == ["committed", "committed"]
        assert server.metrics.counter("server.escalations") == 1
        assert server.engine.execute(
            "SELECT v FROM ledger WHERE id = 0").scalar() == 3

    def test_overwrite_plan_escalates_to_exclusive(self):
        """A cost-chosen OVERWRITE on a busy table aborts with the
        escalation flavor of TxnConflictError and re-runs exclusively
        once the optimistic writers drain."""
        server = make_server()
        # Full-table updates push the modification ratio to 1.0, where
        # the cost model picks OVERWRITE even under mode=cost; our
        # driver table pins mode=edit, so build a cost-mode table too.
        server.engine.execute(
            "CREATE TABLE big (id int, v int) STORED AS DUALTABLE")
        server.engine.load_rows("big", [(i, 0) for i in range(32)])
        s1, s2 = server.connect("a"), server.connect("b")
        outcomes = server.run([
            Arrival(0.0, s1, "UPDATE ledger SET v = v + 1 WHERE id = 5"),
            Arrival(0.01, s2, "UPDATE big SET v = v + 1"),
            Arrival(0.02, s2, "UPDATE ledger SET v = v + 1 WHERE id = 5"),
        ], concurrency=3)
        assert all(o["status"] == "committed" for o in outcomes)
        assert server.engine.execute(
            "SELECT SUM(v) FROM big").scalar() == 32

    def test_compact_interleaved_with_concurrent_dml(self):
        """COMPACT TABLE through the server is exclusive: it waits for
        optimistic writers, commits at table granularity, and later
        writers re-execute against the folded table."""
        server = make_server()
        sessions = [server.connect("t%d" % i) for i in range(3)]
        arrivals = [
            Arrival(0.00, sessions[0],
                    "UPDATE ledger SET v = v + 3 WHERE id = 1"),
            Arrival(0.01, sessions[1], "COMPACT TABLE ledger"),
            Arrival(0.02, sessions[2],
                    "UPDATE ledger SET v = v + 4 WHERE id = 1"),
        ]
        outcomes = server.run(arrivals, concurrency=3)
        assert all(o["status"] == "committed" for o in outcomes)
        assert server.engine.execute(
            "SELECT v FROM ledger WHERE id = 1").scalar() == 7
        handler = server.engine.table("ledger").handler
        assert handler.attached.is_empty() or True  # COMPACT folded

    def test_autocompact_ticks_skip_tables_with_inflight_txns(self):
        server = make_server()
        session = server.connect()
        session.execute("ALTER TABLE ledger SET AUTOCOMPACT "
                        "(ON, interval = 0)")
        # The guard is the server's busy check, wired as txn_guard.
        assert server.engine.txn_guard == server.table_busy
        txn = StatementTxn(server, session, "UPDATE ...",
                           server.commit_log.seq)
        txn.touch("ledger", write=True)
        server._inflight[txn.id] = txn
        try:
            assert server.table_busy("ledger")
            before = server.metrics.counter("dualtable.compacts")
            # Daemon tick with an inflight writer: must not compact.
            server.engine.maintenance.tick()
            assert server.metrics.counter("dualtable.compacts") == before
        finally:
            del server._inflight[txn.id]
        # Drained: DML then ticks may compact freely, and SHOW
        # COMPACTIONS stays consistent throughout.
        arrivals = ledger_arrivals(server, clients=6, statements=24,
                                   accounts=8, seed=5)
        summary = run_open_loop(server, arrivals, concurrency=4)
        assert summary["lost_writes"] == 0
        assert summary["phantom_writes"] == 0
        rows = session.execute("SHOW COMPACTIONS").rows
        assert isinstance(rows, list)


# ---------------------------------------------------------------------------
# Admission control, fairness and graceful degradation.
# ---------------------------------------------------------------------------
class TestAdmission:
    def test_overload_sheds_with_typed_error(self):
        server = make_server(max_queue=2, concurrency=1)
        arrivals = ledger_arrivals(server, clients=10, statements=30,
                                   accounts=8, seed=2, mean_gap_s=0.0001)
        outcomes = server.run(arrivals)
        shed = [o for o in outcomes if o["status"] == "shed"]
        assert shed and all(isinstance(o["error"], ServerOverloaded)
                            for o in shed)
        assert server.metrics.counter("server.shed") == len(shed)
        # Shed statements never half-commit.
        committed_delta = sum(o["payload"].get("delta", 0)
                              for o in outcomes
                              if o["status"] == "committed")
        assert ledger_totals(server.engine)[0] == committed_delta

    def test_shed_and_timeout_counted_per_tenant(self):
        server = make_server(max_queue=2, concurrency=1)
        arrivals = ledger_arrivals(server, clients=10, statements=30,
                                   accounts=8, seed=2, mean_gap_s=0.0001)
        outcomes = server.run(arrivals)
        shed = [o for o in outcomes if o["status"] == "shed"]
        per_tenant = sum(
            count for name, count in server.metrics.counters.items()
            if name.startswith("server.shed."))
        assert per_tenant == len(shed) > 0

    def test_server_gauges_reset_between_instances(self):
        """A second server on the same cluster must not inherit the
        previous instance's terminal queue_depth/inflight gauges."""
        server = make_server(max_queue=2, concurrency=1)
        arrivals = ledger_arrivals(server, clients=10, statements=30,
                                   accounts=8, seed=2, mean_gap_s=0.0001)
        server.run(arrivals)
        gauges = server.metrics.snapshot()["gauges"]
        assert "server.queue_depth" in gauges
        # Leave a stale nonzero value behind on purpose.
        server.metrics.gauge("server.queue_depth", 99)
        server.metrics.gauge("server.inflight", 7)
        fresh = DualTableServer(engine=server.engine, concurrency=1,
                                seed=3)
        gauges = fresh.metrics.snapshot()["gauges"]
        assert gauges["server.queue_depth"] == 0
        assert gauges["server.inflight"] == 0

    def test_round_robin_is_fair_across_tenants(self):
        """A flooding tenant lengthens its own queue, not the victim's:
        the victim's single statement dispatches within one round."""
        server = make_server(concurrency=1)
        flood = server.connect("flood")
        victim = server.connect("victim")
        arrivals = [Arrival(0.0, flood,
                            "UPDATE ledger SET v = v + 1 WHERE id = %d"
                            % (i % 8)) for i in range(10)]
        arrivals.append(Arrival(
            0.001, victim, "UPDATE ledger SET v = v + 1 WHERE id = 0"))
        outcomes = server.run(arrivals)
        order = [o["tenant"] for o in sorted(
            (o for o in outcomes if o["status"] == "committed"),
            key=lambda o: o["latency_s"] + o["seq"] * 0)]
        victim_outcome = next(o for o in outcomes if o["tenant"] == "victim")
        flood_latencies = sorted(o["latency_s"] for o in outcomes
                                 if o["tenant"] == "flood")
        # The victim waits for at most ~2 statements, not the flood's 10.
        assert victim_outcome["latency_s"] <= flood_latencies[2]

    def test_statement_timeout_in_queue(self):
        server = make_server(concurrency=1, timeout_s=0.2)
        arrivals = ledger_arrivals(server, clients=5, statements=12,
                                   accounts=8, seed=3, mean_gap_s=0.001)
        outcomes = server.run(arrivals)
        statuses = {o["status"] for o in outcomes}
        assert "timeout" in statuses
        timeouts = [o for o in outcomes if o["status"] == "timeout"]
        assert all(isinstance(o["error"], StatementTimeout)
                   for o in timeouts)
        assert server.metrics.counter("server.timeouts") == len(timeouts)

    def test_kill_session_mid_statement_discards_writes(self):
        server = make_server()
        s1, s2 = server.connect("a"), server.connect("b")
        arrivals = [
            Arrival(0.0, s1, "UPDATE ledger SET v = v + 9 WHERE id = 2",
                    {"delta": 9}),
            Arrival(0.01, s2, "UPDATE ledger SET v = v + 1 WHERE id = 4",
                    {"delta": 1}),
        ]
        outcomes = server.run(arrivals, kills=[(0.02, s1.id)],
                              concurrency=2)
        killed = next(o for o in outcomes if o["session"] == s1.id)
        assert killed["status"] == "killed"
        assert isinstance(killed["error"], SessionKilledError)
        # The killed statement's buffered edits left zero trace.
        assert server.engine.execute(
            "SELECT v FROM ledger WHERE id = 2").scalar() == 0
        assert server.engine.execute(
            "SELECT v FROM ledger WHERE id = 4").scalar() == 1
        with pytest.raises(SessionKilledError):
            s1.execute("SELECT SUM(v) FROM ledger")


# ---------------------------------------------------------------------------
# Shell surface: SHOW SESSIONS / SHOW SERVER STATS.
# ---------------------------------------------------------------------------
class TestShowStatements:
    def test_parse(self):
        assert isinstance(parse("SHOW SESSIONS"), ast.ShowSessionsStmt)
        assert isinstance(parse("SHOW SERVER STATS"),
                          ast.ShowServerStatsStmt)
        with pytest.raises(ParseError):
            parse("SHOW SERVER")

    def test_show_sessions_rows(self):
        server = make_server()
        s1 = server.connect("alpha")
        s1.execute("UPDATE ledger SET v = v + 1 WHERE id = 1")
        result = s1.execute("SHOW SESSIONS")
        assert result.names == ["session_id", "tenant", "state",
                                "statements", "committed", "inflight"]
        row = next(r for r in result.rows if r[0] == s1.id)
        assert row[1] == "alpha" and row[2] == "open"
        assert row[3] >= 2 and row[4] >= 1

    def test_show_server_stats_rows(self):
        server = make_server()
        s1 = server.connect()
        s1.execute("UPDATE ledger SET v = v + 1 WHERE id = 1")
        stats = dict(s1.execute("SHOW SERVER STATS").rows)
        assert stats["server.commits"] >= 1
        assert stats["server.admitted"] >= 1
        assert stats["server.commit_seq"] == server.commit_log.seq

    def test_standalone_session_rejects_show_sessions(self):
        session = HiveSession(profile=ClusterProfile.laptop())
        with pytest.raises(AnalysisError):
            session.execute("SHOW SESSIONS")
        with pytest.raises(AnalysisError):
            session.execute("SHOW SERVER STATS")


# ---------------------------------------------------------------------------
# CommitLog / StatementTxn units.
# ---------------------------------------------------------------------------
class TestCommitLog:
    def _txn(self, snapshot, keys=(), tables=(), written=None):
        txn = StatementTxn(None, None, "sql", snapshot)
        txn.write_keys = set(keys)
        txn.tables = set(tables)
        txn.tables_written = set(written if written is not None else tables)
        return txn

    def test_conflict_only_after_snapshot(self):
        log = CommitLog()
        log.append("s1", ["t"], {b"k1"}, exclusive=False)
        txn = self._txn(snapshot=1, keys={b"k1"}, tables={"t"})
        assert log.first_conflict(txn) is None       # saw that commit
        assert log.first_conflict(
            self._txn(snapshot=0, keys={b"k1"}, tables={"t"})) is not None

    def test_exclusive_conflicts_at_table_granularity(self):
        log = CommitLog()
        log.append("s1", ["t"], set(), exclusive=True)
        assert log.first_conflict(
            self._txn(0, keys={b"other"}, tables={"t"})) is not None
        assert log.first_conflict(
            self._txn(0, keys={b"other"}, tables={"u"})) is None

    def test_read_only_never_conflicts(self):
        log = CommitLog()
        log.append("s1", ["t"], {b"k"}, exclusive=True)
        txn = self._txn(0, keys=set(), tables=set(), written=set())
        assert log.first_conflict(txn) is None

    def test_require_exclusive_raises_escalation_when_busy(self):
        server = make_server()
        session = server.connect()
        other = StatementTxn(server, session, "other", 0)
        other.touch("ledger", write=True)
        server._inflight[other.id] = other
        txn = StatementTxn(server, session, "mine", 0)
        with pytest.raises(TxnConflictError) as err:
            txn.require_exclusive("ledger")
        assert err.value.escalation
        del server._inflight[other.id]
        txn2 = StatementTxn(server, session, "mine", 0)
        txn2.require_exclusive("ledger")
        assert txn2.exclusive


# ---------------------------------------------------------------------------
# RetryPolicy (satellite S2).
# ---------------------------------------------------------------------------
class TestRetryPolicy:
    def test_from_profile_matches_legacy_sequence(self):
        profile = ClusterProfile.laptop()
        policy = RetryPolicy.from_profile(profile)
        assert policy.max_attempts == profile.max_task_attempts
        for attempt in policy.attempts():
            assert policy.backoff(attempt) == pytest.approx(
                profile.retry_backoff_s * 2 ** (attempt - 1))

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(max_attempts=5, backoff_s=0.1, factor=2.0,
                             jitter=0.5, seed=7)
        twin = RetryPolicy(max_attempts=5, backoff_s=0.1, factor=2.0,
                           jitter=0.5, seed=7)
        for attempt in policy.attempts():
            step = 0.1 * 2 ** (attempt - 1)
            value = policy.backoff(attempt, key="stmt-1")
            assert value == twin.backoff(attempt, key="stmt-1")
            assert step <= value <= step * 1.5
        # Different keys decorrelate.
        assert policy.backoff(1, key="stmt-1") != policy.backoff(
            1, key="stmt-2")

    def test_attempts_and_is_last(self):
        policy = RetryPolicy(max_attempts=3)
        assert list(policy.attempts()) == [1, 2, 3]
        assert not policy.is_last(2)
        assert policy.is_last(3)


# ---------------------------------------------------------------------------
# Shared-state thread-safety regressions (satellite S1).
# ---------------------------------------------------------------------------
class TestSharedStateUnderThreads:
    def _hammer(self, fn, threads=8):
        barrier = threading.Barrier(threads)
        errors = []

        def work():
            barrier.wait()
            try:
                fn()
            except Exception as exc:     # pragma: no cover
                errors.append(exc)

        pool = [threading.Thread(target=work) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert not errors

    def test_metrics_registry_counts_exactly_under_threads(self):
        registry = MetricsRegistry()
        per_thread = 5000

        def work():
            for _ in range(per_thread):
                registry.incr("hammer.counter")
                registry.observe("hammer.hist", 1.0)

        self._hammer(work, threads=8)
        assert registry.counter("hammer.counter") == 8 * per_thread
        assert registry.histogram("hammer.hist").count == 8 * per_thread

    def test_metrics_registry_merge_and_snapshot_under_threads(self):
        registry = MetricsRegistry()
        other = MetricsRegistry()
        other.incr("m", 3)
        other.observe("h", 2.0)

        def work():
            for _ in range(500):
                registry.merge(other)
                registry.snapshot()
                registry.rows()

        self._hammer(work, threads=4)
        assert registry.counter("m") == 4 * 500 * 3

    def test_byte_budget_lru_consistent_under_threads(self):
        cache = ByteBudgetLRU(budget_bytes=4096)

        def work():
            for i in range(2000):
                key = ("k", i % 64)
                if cache.get(key) is None:
                    cache.put(key, i, nbytes=128)

        self._hammer(work, threads=8)
        assert cache.used_bytes <= 4096
