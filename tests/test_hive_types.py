"""Tests for the Hive type system and schema validation."""

import pytest

from repro.common.errors import AnalysisError
from repro.hive.types import Column, HiveType, TableSchema
from repro.hive.valuecodec import decode_value, encode_value


class TestHiveType:
    def test_parse_canonical(self):
        assert HiveType.parse("int") is HiveType.INT
        assert HiveType.parse("STRING") is HiveType.STRING

    def test_parse_aliases(self):
        assert HiveType.parse("integer") is HiveType.INT
        assert HiveType.parse("varchar") is HiveType.STRING
        assert HiveType.parse("float") is HiveType.DOUBLE
        assert HiveType.parse("bool") is HiveType.BOOLEAN
        assert HiveType.parse("long") is HiveType.BIGINT

    def test_parse_unknown(self):
        with pytest.raises(AnalysisError):
            HiveType.parse("blob")

    def test_physical_kinds(self):
        assert Column("a", HiveType.BIGINT).physical_kind == "int"
        assert Column("a", HiveType.DATE).physical_kind == "string"
        assert Column("a", HiveType.DECIMAL).physical_kind == "double"


class TestTableSchema:
    def test_from_tuples(self):
        schema = TableSchema([("a", "int"), ("b", "string")])
        assert schema.names == ["a", "b"]
        assert len(schema) == 2

    def test_index_lookup_case_insensitive(self):
        schema = TableSchema([("Amount", "double")])
        assert schema.index_of("amount") == 0
        assert schema.column("AMOUNT").name == "Amount"

    def test_unknown_column(self):
        schema = TableSchema([("a", "int")])
        with pytest.raises(AnalysisError):
            schema.index_of("b")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(AnalysisError):
            TableSchema([("a", "int"), ("A", "string")])

    def test_empty_schema_rejected(self):
        with pytest.raises(AnalysisError):
            TableSchema([])

    def test_orc_schema(self):
        schema = TableSchema([("a", "bigint"), ("d", "date")])
        assert schema.orc_schema() == [("a", "int"), ("d", "string")]

    def test_coerce_row(self):
        schema = TableSchema([("a", "int"), ("b", "double"),
                              ("c", "string")])
        assert schema.coerce_row(("5", 2, 3)) == (5, 2.0, "3")

    def test_coerce_preserves_none(self):
        schema = TableSchema([("a", "int")])
        assert schema.coerce_row((None,)) == (None,)

    def test_coerce_arity_mismatch(self):
        schema = TableSchema([("a", "int")])
        with pytest.raises(AnalysisError):
            schema.coerce_row((1, 2))

    def test_coerce_bad_value(self):
        schema = TableSchema([("a", "int")])
        with pytest.raises(AnalysisError):
            schema.coerce_row(("not a number",))


class TestValueCodec:
    @pytest.mark.parametrize("value", [
        None, True, False, 0, -17, 2**40, 3.5, -0.0, "", "héllo",
    ])
    def test_roundtrip(self, value):
        assert decode_value(encode_value(value)) == value

    def test_bool_not_confused_with_int(self):
        assert decode_value(encode_value(True)) is True
        assert decode_value(encode_value(1)) == 1

    def test_unencodable(self):
        from repro.common.errors import HBaseError
        with pytest.raises(HBaseError):
            encode_value([1, 2])

    def test_undecodable(self):
        from repro.common.errors import HBaseError
        with pytest.raises(HBaseError):
            decode_value(b"")
        with pytest.raises(HBaseError):
            decode_value(b"\x99junk")
