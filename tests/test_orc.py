"""Tests for the ORC-like columnar format: encodings, writer, reader."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, ClusterProfile
from repro.common.errors import CorruptOrcFileError, OrcError
from repro.hdfs import HdfsFileSystem
from repro.orc import OrcReader, OrcWriter, write_orc
from repro.orc.encodings import (decode_boolean_column, decode_double_column,
                                 decode_int_column, decode_string_column,
                                 encode_boolean_column, encode_double_column,
                                 encode_int_column, encode_string_column)


# ----------------------------------------------------------------------
# Encodings: round-trip properties.
# ----------------------------------------------------------------------
int_values = st.lists(st.one_of(st.none(),
                                st.integers(-2**50, 2**50)), max_size=300)
double_values = st.lists(
    st.one_of(st.none(), st.floats(allow_nan=False, allow_infinity=False)),
    max_size=200)
string_values = st.lists(st.one_of(st.none(), st.text(max_size=20)),
                         max_size=200)
bool_values = st.lists(st.one_of(st.none(), st.booleans()), max_size=200)


class TestEncodings:
    @given(int_values)
    @settings(max_examples=60)
    def test_int_roundtrip(self, values):
        assert decode_int_column(encode_int_column(values)) == values

    @given(double_values)
    @settings(max_examples=40)
    def test_double_roundtrip(self, values):
        assert decode_double_column(encode_double_column(values)) == values

    @given(string_values)
    @settings(max_examples=40)
    def test_string_roundtrip(self, values):
        assert decode_string_column(encode_string_column(values)) == values

    @given(bool_values)
    @settings(max_examples=40)
    def test_boolean_roundtrip(self, values):
        assert decode_boolean_column(encode_boolean_column(values)) == values

    def test_int_rle_compresses_runs(self):
        run = list(range(10000))                 # perfect delta run
        random_ish = [((i * 2654435761) % 99991) - 50000
                      for i in range(10000)]
        assert len(encode_int_column(run)) < len(
            encode_int_column(random_ish)) / 5

    def test_string_dictionary_compresses_repeats(self):
        repeats = ["alpha", "beta", "gamma"] * 1000
        unique = ["s%d" % i for i in range(3000)]
        assert len(encode_string_column(repeats)) < len(
            encode_string_column(unique)) / 3

    def test_all_null_columns(self):
        nulls = [None] * 50
        assert decode_int_column(encode_int_column(nulls)) == nulls
        assert decode_string_column(encode_string_column(nulls)) == nulls

    def test_empty_columns(self):
        assert decode_int_column(encode_int_column([])) == []
        assert decode_double_column(encode_double_column([])) == []


# ----------------------------------------------------------------------
# Writer/reader.
# ----------------------------------------------------------------------
SCHEMA = [("id", "int"), ("name", "string"), ("score", "double"),
          ("flag", "boolean")]


def _rows(n):
    return [(i, "name%d" % (i % 7), i * 1.5, i % 2 == 0) for i in range(n)]


class TestWriter:
    def test_roundtrip_bytes(self):
        rows = _rows(100)
        data = write_orc(SCHEMA, rows, stripe_rows=30)
        reader = OrcReader(data)
        assert [v for _, v in reader.rows()] == rows

    def test_row_numbers_sequential(self):
        data = write_orc(SCHEMA, _rows(75), stripe_rows=20)
        reader = OrcReader(data)
        assert [rn for rn, _ in reader.rows()] == list(range(75))

    def test_stripe_count(self):
        data = write_orc(SCHEMA, _rows(100), stripe_rows=30)
        reader = OrcReader(data)
        assert len(reader.stripes) == 4       # 30+30+30+10
        assert [s.num_rows for s in reader.stripes] == [30, 30, 30, 10]

    def test_metadata_carried(self):
        data = write_orc(SCHEMA, _rows(5), metadata={"file_id": 42})
        assert OrcReader(data).metadata["file_id"] == 42

    def test_empty_file(self):
        data = write_orc(SCHEMA, [])
        reader = OrcReader(data)
        assert reader.num_rows == 0
        assert reader.read_all() == []

    def test_arity_mismatch_rejected(self):
        writer = OrcWriter(SCHEMA)
        with pytest.raises(OrcError):
            writer.write_row((1, "x"))

    def test_bad_schema_rejected(self):
        with pytest.raises(OrcError):
            OrcWriter([("a", "blob")])
        with pytest.raises(OrcError):
            OrcWriter([])

    def test_finish_twice_rejected(self):
        writer = OrcWriter(SCHEMA)
        writer.finish()
        with pytest.raises(OrcError):
            writer.finish()

    def test_write_after_finish_rejected(self):
        writer = OrcWriter(SCHEMA)
        writer.finish()
        with pytest.raises(OrcError):
            writer.write_row((1, "a", 1.0, True))


class TestStatistics:
    def test_stripe_stats_min_max(self):
        data = write_orc(SCHEMA, _rows(60), stripe_rows=20)
        reader = OrcReader(data)
        first = reader.stripes[0]
        assert first.stats(0)["min"] == 0
        assert first.stats(0)["max"] == 19
        assert reader.stripes[2].stats(0)["min"] == 40

    def test_stats_include_nulls_and_ndv(self):
        rows = [(None, "a", 1.0, True), (3, "a", None, None),
                (5, "b", 2.0, False)]
        data = write_orc(SCHEMA, rows)
        stats = OrcReader(data).stripes[0].stats(0)
        assert stats["nulls"] == 1
        assert stats["min"] == 3 and stats["max"] == 5
        assert stats["ndv"] == 2
        assert OrcReader(data).stripes[0].stats(1)["ndv"] == 2

    def test_numeric_sum(self):
        data = write_orc(SCHEMA, _rows(10))
        stats = OrcReader(data).stripes[0].stats(0)
        assert stats["sum"] == sum(range(10))

    def test_file_level_stats_merged(self):
        data = write_orc(SCHEMA, _rows(60), stripe_rows=20)
        reader = OrcReader(data)
        file_stats = reader.column_stats[0]
        assert file_stats["min"] == 0
        assert file_stats["max"] == 59
        assert file_stats["count"] == 60


class TestProjectionAndPruning:
    def test_projection_returns_requested_columns(self):
        data = write_orc(SCHEMA, _rows(10))
        rows = OrcReader(data).read_all(projection=["score", "id"])
        assert rows[2][1] == (3.0, 2)

    def test_unknown_projection_column_fails(self):
        data = write_orc(SCHEMA, _rows(3))
        with pytest.raises(CorruptOrcFileError):
            OrcReader(data).read_all(projection=["nope"])

    def test_stripe_filter_skips(self):
        data = write_orc(SCHEMA, _rows(100), stripe_rows=25)
        reader = OrcReader(data)
        got = reader.read_all(
            projection=["id"],
            stripe_filter=lambda s: s.stats(0)["min"] >= 50)
        assert [rn for rn, _ in got] == list(range(50, 100))

    def test_projected_bytes_less_than_full(self):
        data = write_orc(SCHEMA, _rows(1000), stripe_rows=100)
        reader = OrcReader(data)
        one = reader.projected_bytes(["id"])
        full = reader.projected_bytes(None)
        assert 0 < one < full

    def test_projection_charging(self):
        cluster = Cluster(ClusterProfile.laptop())
        fs = HdfsFileSystem(cluster)
        fs.write_file("/t/f.orc", write_orc(SCHEMA, _rows(2000),
                                            stripe_rows=200))
        reader = OrcReader(fs, "/t/f.orc")
        base = cluster.ledger.bytes_for("hdfs", "read")
        reader.read_all(projection=["id"])
        narrow = cluster.ledger.bytes_for("hdfs", "read") - base
        reader2 = OrcReader(fs, "/t/f.orc")
        base = cluster.ledger.bytes_for("hdfs", "read")
        reader2.read_all()
        wide = cluster.ledger.bytes_for("hdfs", "read") - base
        assert narrow < wide


class TestCorruption:
    def test_bad_magic(self):
        with pytest.raises(CorruptOrcFileError):
            OrcReader(b"this is not an orc file at all..........")

    def test_truncated_file(self):
        data = write_orc(SCHEMA, _rows(10))
        with pytest.raises(CorruptOrcFileError):
            OrcReader(data[:len(data) // 2])

    def test_garbage_footer(self):
        data = bytearray(write_orc(SCHEMA, _rows(10)))
        data[-30] ^= 0xFF
        with pytest.raises(CorruptOrcFileError):
            OrcReader(bytes(data))


@given(st.lists(st.tuples(
    st.one_of(st.none(), st.integers(-10**9, 10**9)),
    st.one_of(st.none(), st.text(max_size=12)),
    st.one_of(st.none(),
              st.floats(allow_nan=False, allow_infinity=False,
                        width=32)),
    st.one_of(st.none(), st.booleans())), max_size=120))
@settings(max_examples=30)
def test_orc_file_roundtrip_property(rows):
    """Whole-file invariant: write → read == identity (arbitrary rows)."""
    data = write_orc(SCHEMA, rows, stripe_rows=17)
    got = [v for _, v in OrcReader(data).rows()]
    assert got == rows
