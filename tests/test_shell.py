"""Tests for the interactive SQL shell."""

import io

import pytest

from repro.cluster import ClusterProfile
from repro.hive import HiveSession
from repro.hive.shell import HiveShell


@pytest.fixture
def shell():
    session = HiveSession(profile=ClusterProfile.laptop())
    out = io.StringIO()
    return HiveShell(session=session, out=out), out


class TestHandleLine:
    def test_ddl_and_dml_flow(self, shell):
        sh, out = shell
        assert sh.handle_line("CREATE TABLE t (a int) STORED AS DUALTABLE;")
        assert sh.handle_line("INSERT INTO t VALUES (1), (2);")
        assert sh.handle_line("SELECT count(*) FROM t;")
        text = out.getvalue()
        assert "OK" in text
        assert "2 row(s) affected" in text
        assert "count_0" in text

    def test_error_reported_not_raised(self, shell):
        sh, out = shell
        assert sh.handle_line("SELECT * FROM missing;")
        assert "ERROR" in out.getvalue()

    def test_parse_error_reported(self, shell):
        sh, out = shell
        assert sh.handle_line("FROB the table;")
        assert "ERROR" in out.getvalue()

    def test_quit_returns_false(self, shell):
        sh, _ = shell
        assert sh.handle_line("quit") is False
        assert sh.handle_line("EXIT") is False

    def test_empty_line_noop(self, shell):
        sh, out = shell
        assert sh.handle_line("   ;")
        assert out.getvalue() == ""

    def test_row_output_capped(self, shell):
        sh, out = shell
        sh.handle_line("CREATE TABLE t (a int);")
        sh.session.load_rows("t", [(i,) for i in range(150)])
        sh.handle_line("SELECT a FROM t;")
        assert "more rows" in out.getvalue()


class TestShellCommands:
    def test_tables(self, shell):
        sh, out = shell
        sh.handle_line("!tables")
        assert "(no tables)" in out.getvalue()
        sh.handle_line("CREATE TABLE t (a int) STORED AS ACID;")
        sh.handle_line("!tables")
        assert "acid" in out.getvalue()

    def test_ledger(self, shell):
        sh, out = shell
        sh.handle_line("CREATE TABLE t (a int);")
        sh.handle_line("INSERT INTO t VALUES (1);")
        sh.handle_line("!ledger")
        assert "total simulated seconds" in out.getvalue()

    def test_scale(self, shell):
        sh, out = shell
        sh.handle_line("!scale 5000")
        assert sh.session.cluster.profile.byte_scale == 5000
        assert sh.session.cluster.profile.op_scale == 5000

    def test_help_and_unknown(self, shell):
        sh, out = shell
        sh.handle_line("!help")
        assert "Shell commands" in out.getvalue()
        sh.handle_line("!bogus")
        assert "unknown shell command" in out.getvalue()


class TestObservabilityCommands:
    def test_trace_on_shows_io_deltas(self, shell):
        sh, out = shell
        sh.handle_line("TRACE ON;")
        assert "tracing ON" in out.getvalue()
        assert sh.session.cluster.tracer.enabled
        sh.handle_line("CREATE TABLE t (a int) STORED AS DUALTABLE;")
        sh.handle_line("INSERT INTO t VALUES (1), (2);")
        sh.handle_line("SELECT count(*) FROM t;")
        assert "io: " in out.getvalue()
        sh.handle_line("TRACE OFF;")
        assert "tracing OFF" in out.getvalue()
        assert not sh.session.cluster.tracer.enabled

    def test_trace_export(self, shell, tmp_path):
        from repro.obs.export import load_trace, validate_trace

        sh, out = shell
        sh.handle_line("TRACE ON;")
        sh.handle_line("CREATE TABLE t (a int);")
        sh.handle_line("INSERT INTO t VALUES (1);")
        path = tmp_path / "shell.trace.json"
        sh.handle_line("TRACE EXPORT %s" % path)
        assert "wrote" in out.getvalue()
        assert validate_trace(load_trace(str(path))) == []

    def test_trace_usage(self, shell):
        sh, out = shell
        sh.handle_line("TRACE sideways;")
        assert "usage: TRACE" in out.getvalue()

    def test_show_metrics(self, shell):
        sh, out = shell
        sh.handle_line("CREATE TABLE t (a int);")
        sh.handle_line("SHOW METRICS;")
        text = out.getvalue()
        assert "session.statements" in text
        assert "counter" in text

    def test_explain_analyze_renders_audit(self, shell):
        sh, out = shell
        sh.handle_line("CREATE TABLE t (a int, b string) "
                       "STORED AS DUALTABLE;")
        sh.session.load_rows("t", [(i, "v") for i in range(200)])
        sh.handle_line("EXPLAIN ANALYZE UPDATE t SET b = 'x' "
                       "WHERE a < 20;")
        text = out.getvalue()
        assert "== observed (statement executed) ==" in text
        assert "cost-model audit" in text

    def test_no_io_deltas_when_tracing_off(self, shell):
        sh, out = shell
        sh.handle_line("CREATE TABLE t (a int);")
        sh.handle_line("INSERT INTO t VALUES (1);")
        assert "io: " not in out.getvalue()


class TestRunLoop:
    def test_scripted_session(self):
        session = HiveSession(profile=ClusterProfile.laptop())
        out = io.StringIO()
        shell = HiveShell(session=session, out=out)
        script = io.StringIO(
            "CREATE TABLE t (a int, b string) STORED AS DUALTABLE;\n"
            "INSERT INTO t VALUES (1, 'x');\n"
            "UPDATE t\n"
            "SET b = 'y'\n"
            "WHERE a = 1;\n"
            "SELECT b FROM t;\n"
            "quit\n")
        shell.run(stdin=script)
        text = out.getvalue()
        assert "1 row(s) affected" in text
        assert "y" in text
        assert "bye" in text

    def test_multiline_statement_accumulates(self):
        session = HiveSession(profile=ClusterProfile.laptop())
        out = io.StringIO()
        shell = HiveShell(session=session, out=out)
        shell.run(stdin=io.StringIO(
            "CREATE TABLE t\n(a int);\nSELECT 1\n+ 2;\n"))
        assert "3" in out.getvalue()
