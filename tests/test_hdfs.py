"""Tests for the simulated HDFS: namespace, blocks, replication, failure."""

import pytest

from repro.cluster import Cluster, ClusterProfile
from repro.common.errors import (FileAlreadyExistsError,
                                 FileNotFoundHdfsError, HdfsError,
                                 ImmutableFileError)
from repro.hdfs import HdfsFileSystem


@pytest.fixture
def fs():
    cluster = Cluster(ClusterProfile(name="t", num_workers=5))
    return HdfsFileSystem(cluster, num_datanodes=5, replication=3)


class TestNamespace:
    def test_write_and_read_roundtrip(self, fs):
        data = b"hello hdfs" * 100
        fs.write_file("/a/b/file.txt", data)
        assert fs.read_file("/a/b/file.txt") == data

    def test_mkdirs_and_listdir(self, fs):
        fs.mkdirs("/w/x/y")
        fs.write_file("/w/x/f1", b"1")
        fs.write_file("/w/x/f2", b"2")
        assert fs.listdir("/w/x") == ["f1", "f2", "y"]

    def test_exists_and_kinds(self, fs):
        fs.write_file("/d/f", b"x")
        assert fs.exists("/d/f")
        assert fs.is_file("/d/f")
        assert fs.is_dir("/d")
        assert not fs.is_file("/d")
        assert not fs.exists("/nope")

    def test_parent_dirs_created_implicitly(self, fs):
        fs.write_file("/p/q/r/s.txt", b"x")
        assert fs.is_dir("/p/q/r")

    def test_create_over_existing_fails(self, fs):
        fs.write_file("/f", b"x")
        with pytest.raises(FileAlreadyExistsError):
            fs.create("/f")

    def test_read_missing_fails(self, fs):
        with pytest.raises(FileNotFoundHdfsError):
            fs.read_file("/missing")

    def test_relative_path_rejected(self, fs):
        with pytest.raises(HdfsError):
            fs.write_file("relative/path", b"x")

    def test_delete_file(self, fs):
        fs.write_file("/f", b"x")
        fs.delete("/f")
        assert not fs.exists("/f")

    def test_delete_dir_requires_recursive(self, fs):
        fs.write_file("/d/f", b"x")
        with pytest.raises(HdfsError):
            fs.delete("/d")
        fs.delete("/d", recursive=True)
        assert not fs.exists("/d")
        assert not fs.exists("/d/f")

    def test_rename_file(self, fs):
        fs.write_file("/old", b"data")
        fs.rename("/old", "/new/place")
        assert not fs.exists("/old")
        assert fs.read_file("/new/place") == b"data"

    def test_rename_directory_moves_children(self, fs):
        fs.write_file("/src/a", b"1")
        fs.write_file("/src/b", b"2")
        fs.rename("/src", "/dst")
        assert fs.read_file("/dst/a") == b"1"
        assert fs.read_file("/dst/b") == b"2"
        assert not fs.exists("/src/a")

    def test_rename_over_existing_fails(self, fs):
        fs.write_file("/a", b"1")
        fs.write_file("/b", b"2")
        with pytest.raises(FileAlreadyExistsError):
            fs.rename("/a", "/b")

    def test_list_files_sorted(self, fs):
        fs.write_file("/t/part-2", b"2")
        fs.write_file("/t/part-1", b"1")
        fs.write_file("/t/sub/part-3", b"3")
        assert fs.list_files("/t") == ["/t/part-1", "/t/part-2",
                                       "/t/sub/part-3"]

    def test_file_and_dir_size(self, fs):
        fs.write_file("/t/a", b"x" * 10)
        fs.write_file("/t/b", b"x" * 20)
        assert fs.file_size("/t/a") == 10
        assert fs.dir_size("/t") == 30


class TestWriteOnce:
    def test_write_after_close_rejected(self, fs):
        handle = fs.create("/f")
        handle.write(b"x")
        handle.close()
        with pytest.raises(ImmutableFileError):
            handle.write(b"y")

    def test_context_manager_closes(self, fs):
        with fs.create("/f") as handle:
            handle.write(b"abc")
        assert fs.read_file("/f") == b"abc"

    def test_double_close_is_noop(self, fs):
        handle = fs.create("/f")
        handle.close()
        handle.close()


class TestBlocks:
    def test_large_file_splits_into_blocks(self):
        cluster = Cluster(ClusterProfile(name="t", num_workers=3,
                                         hdfs_block_size=1024))
        fs = HdfsFileSystem(cluster, num_datanodes=3)
        data = bytes(range(256)) * 20     # 5120 bytes = 5 blocks
        fs.write_file("/big", data)
        inode = fs.namenode.lookup("/big")
        assert len(inode.blocks) == 5
        assert fs.read_file("/big") == data

    def test_replication_factor_respected(self, fs):
        fs.write_file("/f", b"x" * 100)
        inode = fs.namenode.lookup("/f")
        for block in inode.blocks:
            assert len(block.replicas) == 3

    def test_replication_capped_by_live_nodes(self):
        cluster = Cluster(ClusterProfile(name="t", num_workers=2))
        fs = HdfsFileSystem(cluster, num_datanodes=2, replication=3)
        fs.write_file("/f", b"x")
        block = fs.namenode.lookup("/f").blocks[0]
        assert len(block.replicas) == 2


class TestCharging:
    def test_writes_and_reads_charged(self, fs):
        before = fs.cluster.ledger.bytes_for("hdfs", "write")
        fs.write_file("/f", b"x" * 1000)
        assert fs.cluster.ledger.bytes_for("hdfs", "write") - before == 1000
        fs.read_file("/f")
        assert fs.cluster.ledger.bytes_for("hdfs", "read") >= 1000

    def test_silent_read_not_charged(self, fs):
        fs.write_file("/f", b"x" * 1000)
        before = fs.cluster.ledger.bytes_for("hdfs", "read")
        fs.read_file_silent("/f")
        assert fs.cluster.ledger.bytes_for("hdfs", "read") == before

    def test_replication_traffic_tracked_separately(self, fs):
        fs.write_file("/f", b"x" * 100)
        assert fs.cluster.ledger.bytes_for("hdfs", "replicate") == 200


class TestFailureInjection:
    def test_read_survives_single_datanode_failure(self, fs):
        data = b"important" * 50
        fs.write_file("/f", data)
        fs.kill_datanode(0)
        assert fs.read_file("/f") == data

    def test_re_replication_restores_factor(self, fs):
        fs.write_file("/f", b"x" * 100)
        fs.kill_datanode(0)
        created = fs.re_replicate()
        block = fs.namenode.lookup("/f").blocks[0]
        live_holders = [nid for nid in block.replicas
                        if fs.namenode.datanodes[nid].alive]
        assert len(live_holders) == 3
        # Some blocks may not have lived on dn0, so created >= 0; at
        # least the replication invariant holds for every block.
        assert created >= 0

    def test_total_loss_raises(self, fs):
        fs.write_file("/f", b"x")
        for i in range(5):
            fs.kill_datanode(i)
        with pytest.raises(HdfsError):
            fs.read_file("/f")

    def test_revive_brings_replicas_back(self, fs):
        fs.write_file("/f", b"x")
        for i in range(5):
            fs.kill_datanode(i)
        for i in range(5):
            fs.revive_datanode(i)
        assert fs.read_file("/f") == b"x"

    def test_delete_drops_replicas(self, fs):
        fs.write_file("/f", b"x" * 100)
        used_before = sum(dn.used_bytes for dn in fs.datanodes)
        fs.delete("/f")
        used_after = sum(dn.used_bytes for dn in fs.datanodes)
        assert used_before > 0
        assert used_after == 0
