"""Chaos property tests: randomized fault schedules, seeded end-to-end.

Each schedule installs a random :class:`FaultPlan`, runs a random DML
script against a DualTable, and checks after every statement that UNION
READ matches a plain-dict replay oracle — with crashed statements
resolved through :meth:`DualTableHandler.recover` (redo log durable ⇒
rolled forward, else rolled back).  ``CHAOS_SCHEDULES`` controls the
seed count (default 50; CI's smoke job runs 10).
"""

import os

import pytest

from repro.faults.chaos import run_chaos_schedule

N_SCHEDULES = int(os.environ.get("CHAOS_SCHEDULES", "50"))


@pytest.mark.parametrize("seed", range(N_SCHEDULES))
def test_chaos_schedule_invariants(seed):
    summary = run_chaos_schedule(seed)
    assert summary["statements"] == 6
    assert summary["failed"] >= summary["rolled_forward"]


def test_chaos_schedules_are_reproducible():
    a = run_chaos_schedule(3)
    b = run_chaos_schedule(3)
    assert a["fired"] == b["fired"]
    assert (a["failed"], a["rolled_forward"]) == \
        (b["failed"], b["rolled_forward"])


def test_chaos_coverage_across_seeds():
    """The default seed range must actually exercise the fault layer."""
    fired = []
    for seed in range(min(N_SCHEDULES, 30)):
        fired.extend(run_chaos_schedule(seed)["fired"])
    assert fired, "no faults fired across the chaos seed range"
    points = {point for point, _ in fired}
    assert len(points) >= 3, "chaos schedules hit too few injection points"
