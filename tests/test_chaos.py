"""Chaos property tests: randomized fault schedules, seeded end-to-end.

Each schedule installs a random :class:`FaultPlan`, runs a random DML
script against a DualTable, and checks after every statement that UNION
READ matches a plain-dict replay oracle — with crashed statements
resolved through :meth:`DualTableHandler.recover` (redo log durable ⇒
rolled forward, else rolled back).  ``CHAOS_SCHEDULES`` controls the
seed count (default 50; CI's smoke job runs 10).
"""

import os

import pytest

from repro.faults.chaos import (run_chaos_schedule,
                                run_lookup_chaos_schedule,
                                run_server_chaos_schedule,
                                run_shard_chaos_schedule)

N_SCHEDULES = int(os.environ.get("CHAOS_SCHEDULES", "50"))
N_SERVER_SCHEDULES = int(os.environ.get("SERVER_CHAOS_SCHEDULES", "12"))
N_LOOKUP_SCHEDULES = int(os.environ.get("LOOKUP_CHAOS_SCHEDULES", "30"))
N_SHARD_SCHEDULES = int(os.environ.get("SHARD_CHAOS_SCHEDULES", "20"))


@pytest.mark.parametrize("seed", range(N_SCHEDULES))
def test_chaos_schedule_invariants(seed):
    summary = run_chaos_schedule(seed)
    assert summary["statements"] == 6
    assert summary["failed"] >= summary["rolled_forward"]


def test_chaos_schedules_are_reproducible():
    a = run_chaos_schedule(3)
    b = run_chaos_schedule(3)
    assert a["fired"] == b["fired"]
    assert (a["failed"], a["rolled_forward"]) == \
        (b["failed"], b["rolled_forward"])


def test_chaos_coverage_across_seeds():
    """The default seed range must actually exercise the fault layer."""
    fired = []
    for seed in range(min(N_SCHEDULES, 30)):
        fired.extend(run_chaos_schedule(seed)["fired"])
    assert fired, "no faults fired across the chaos seed range"
    points = {point for point, _ in fired}
    assert len(points) >= 3, "chaos schedules hit too few injection points"


@pytest.mark.parametrize("seed", range(N_SERVER_SCHEDULES))
def test_server_chaos_schedule_invariants(seed):
    """Concurrent chaos: kills + faults under a multi-session server.

    All invariants (zero lost/phantom writes, no orphaned txn state,
    recover() idempotence) are asserted inside the schedule runner;
    here we only sanity-check the shape of the summary it returns.
    """
    summary = run_server_chaos_schedule(seed)
    assert summary["seed"] == seed
    assert 1 <= summary["kills"] <= 3
    assert summary["statements"] == sum(summary["by_status"].values())


def test_server_chaos_schedules_are_reproducible():
    a = run_server_chaos_schedule(5)
    b = run_server_chaos_schedule(5)
    assert a["fired"] == b["fired"]
    assert a["by_status"] == b["by_status"]
    assert a["final_total"] == b["final_total"]


@pytest.mark.parametrize("seed", range(N_LOOKUP_SCHEDULES))
def test_lookup_chaos_schedule_invariants(seed):
    """LOOKUP-plan chaos: faults at ``lookup.index_read`` and
    ``lookup.hbase_probe`` mid-point-read.

    The runner asserts the load-bearing invariants itself: every forced
    LOOKUP that hit a fault fell back to the MR scan plan with the
    correct rows, every statement's output matched the dict oracle, and
    the fallback counter equals the number of lookup faults fired (no
    double-charged, half-run lookups).  Here we sanity-check the shape.
    """
    summary = run_lookup_chaos_schedule(seed)
    assert summary["seed"] == seed
    assert summary["statements"] == 10
    assert summary["fallbacks"] <= summary["lookups"]


def test_lookup_chaos_schedules_are_reproducible():
    a = run_lookup_chaos_schedule(7)
    b = run_lookup_chaos_schedule(7)
    assert a["fired"] == b["fired"]
    assert (a["lookups"], a["fallbacks"]) == (b["lookups"], b["fallbacks"])


def test_lookup_chaos_coverage_across_seeds():
    """The seed range must actually crash lookups and force fallbacks."""
    fired, fallbacks = [], 0
    for seed in range(min(N_LOOKUP_SCHEDULES, 20)):
        summary = run_lookup_chaos_schedule(seed)
        fired.extend(summary["fired"])
        fallbacks += summary["fallbacks"]
    lookup_points = {point for point, _ in fired
                     if point.startswith("lookup.")}
    assert lookup_points, "no lookup faults fired across the seed range"
    assert fallbacks, "no scan fallback exercised across the seed range"


@pytest.mark.parametrize("seed", range(N_SHARD_SCHEDULES))
def test_shard_chaos_schedule_invariants(seed):
    """Shard-kill chaos: region-server crashes mid-LOOKUP/mid-commit and
    ``kill``s inside the rebalance 2PC, over a 4-shard table.

    The runner asserts the invariants itself (routed reads return the
    oracle's rows after failover, rebalance recovery is data-neutral,
    recover() is idempotent); here we sanity-check the summary shape.
    """
    summary = run_shard_chaos_schedule(seed)
    assert summary["seed"] == seed
    assert summary["statements"] == 12
    assert summary["failed"] >= summary["rolled_forward"]


def test_shard_chaos_schedules_are_reproducible():
    a = run_shard_chaos_schedule(2)
    b = run_shard_chaos_schedule(2)
    assert a["fired"] == b["fired"]
    assert (a["failed"], a["rolled_forward"], a["rebalances"]) == \
        (b["failed"], b["rolled_forward"], b["rebalances"])


def test_shard_chaos_coverage_across_seeds():
    """The seed range must crash region servers and both 2PC arms."""
    fired, rolled_forward, failed = [], 0, 0
    for seed in range(min(N_SHARD_SCHEDULES, 12)):
        summary = run_shard_chaos_schedule(seed)
        fired.extend(summary["fired"])
        rolled_forward += summary["rolled_forward"]
        failed += summary["failed"]
    kinds = {kind for _, kind in fired}
    assert "region_crash" in kinds, "no region server died across seeds"
    points = {point for point, _ in fired}
    assert any(p.startswith("dualtable.rebalance.") for p in points), (
        "no rebalance 2PC fault fired across the seed range")
    assert rolled_forward, "no rebalance rolled forward across seeds"
    assert failed > rolled_forward, "no statement rolled back across seeds"


def test_server_chaos_coverage_across_seeds():
    """The server seed range must fire faults and land kills."""
    fired, kills = [], 0
    for seed in range(min(N_SERVER_SCHEDULES, 8)):
        summary = run_server_chaos_schedule(seed)
        fired.extend(summary["fired"])
        kills += summary["by_status"].get("killed", 0)
    assert fired, "no faults fired across the server chaos seed range"
    assert kills, "no session kill landed mid-statement across seeds"
