"""Tests for the MapReduce engine: execution, shuffle, makespan model."""

import pytest

from repro.cluster import Cluster, ClusterProfile
from repro.common.errors import TaskFailedError
from repro.mapreduce import InputSplit, Job, JobRunner, stable_hash
from repro.mapreduce.runner import _makespan


@pytest.fixture
def runner():
    return JobRunner(Cluster(ClusterProfile.laptop()))


def _splits(n_splits=4, per_split=50):
    return [InputSplit(payload=list(range(i * per_split,
                                          (i + 1) * per_split)),
                       size_bytes=per_split * 8, label="s%d" % i)
            for i in range(n_splits)]


class TestExecution:
    def test_map_only_preserves_split_order(self, runner):
        job = Job("scan", _splits(), lambda s, ctx: iter(s.payload), None)
        result = runner.run(job)
        assert result.outputs == list(range(200))
        assert result.num_map_tasks == 4
        assert result.num_reduce_tasks == 0

    def test_wordcount_style_aggregation(self, runner):
        def map_fn(split, ctx):
            for v in split.payload:
                yield v % 5, 1

        def reduce_fn(key, values, ctx):
            yield key, sum(values)

        result = runner.run(Job("count", _splits(), map_fn, reduce_fn,
                                num_reducers=3))
        assert sorted(result.outputs) == [(i, 40) for i in range(5)]

    def test_counters_aggregated(self, runner):
        def map_fn(split, ctx):
            for v in split.payload:
                ctx.incr("seen")
                yield v % 2, v

        def reduce_fn(key, values, ctx):
            ctx.incr("groups")
            yield key

        result = runner.run(Job("c", _splits(), map_fn, reduce_fn))
        assert result.counters["seen"] == 200
        assert result.counters["groups"] == 2

    def test_combiner_reduces_shuffle_volume(self, runner):
        def map_fn(split, ctx):
            for v in split.payload:
                yield v % 2, 1

        def combiner(key, values, ctx):
            yield key, sum(values)

        def reduce_fn(key, values, ctx):
            yield key, sum(values)

        plain = runner.run(Job("plain", _splits(), map_fn, reduce_fn))
        combined = runner.run(Job("comb", _splits(), map_fn, reduce_fn,
                                  combiner_fn=combiner))
        assert sorted(plain.outputs) == sorted(combined.outputs)
        assert combined.shuffle_bytes < plain.shuffle_bytes

    def test_map_failure_wrapped(self, runner):
        def bad_map(split, ctx):
            raise ValueError("boom")
            yield  # pragma: no cover

        with pytest.raises(TaskFailedError, match="map task 0"):
            runner.run(Job("bad", _splits(1), bad_map, None))

    def test_reduce_failure_wrapped(self, runner):
        def map_fn(split, ctx):
            yield 1, 1

        def bad_reduce(key, values, ctx):
            raise RuntimeError("kaput")
            yield  # pragma: no cover

        with pytest.raises(TaskFailedError, match="reduce task"):
            runner.run(Job("bad", _splits(1), map_fn, bad_reduce))

    def test_empty_splits(self, runner):
        result = runner.run(Job("empty", [], lambda s, c: iter(()), None))
        assert result.outputs == []
        assert result.num_map_tasks == 0

    def test_history_recorded(self, runner):
        runner.run(Job("a", _splits(1), lambda s, c: iter(()), None))
        runner.run(Job("b", _splits(1), lambda s, c: iter(()), None))
        assert [r.name for r in runner.history] == ["a", "b"]

    def test_map_failure_chains_cause_and_names_task(self, runner):
        def bad_map(split, ctx):
            raise ValueError("boom")
            yield  # pragma: no cover

        with pytest.raises(TaskFailedError) as err:
            runner.run(Job("badjob", _splits(2), bad_map, None))
        assert isinstance(err.value.__cause__, ValueError)
        assert "map task 0 of badjob" in str(err.value)
        assert "boom" in str(err.value)

    def test_reduce_failure_names_key_and_chains_cause(self, runner):
        def map_fn(split, ctx):
            yield "k", 1

        def bad_reduce(key, values, ctx):
            raise RuntimeError("kaput")
            yield  # pragma: no cover

        with pytest.raises(TaskFailedError) as err:
            runner.run(Job("badjob", _splits(1), map_fn, bad_reduce))
        assert isinstance(err.value.__cause__, RuntimeError)
        assert "'k'" in str(err.value)

    def test_history_consistent_after_failure(self, runner):
        runner.run(Job("ok", _splits(1), lambda s, c: iter(()), None))

        def bad_map(split, ctx):
            raise ValueError("boom")
            yield  # pragma: no cover

        with pytest.raises(TaskFailedError):
            runner.run(Job("bad", _splits(1), bad_map, None))
        assert [r.name for r in runner.history] == ["ok"]
        runner.run(Job("after", _splits(1), lambda s, c: iter(()), None))
        assert [r.name for r in runner.history] == ["ok", "after"]

    def test_mixed_type_reduce_keys_sort_deterministically(self, runner):
        """Python 3 cannot order int vs str keys; the runner must."""
        def map_fn(split, ctx):
            yield 2, "int-key"
            yield "b", "str-key"
            yield (1, "x"), "tuple-key"
            yield None, "none-key"

        def reduce_fn(key, values, ctx):
            yield key, len(list(values))

        result = runner.run(Job("mixed", _splits(2), map_fn, reduce_fn,
                                num_reducers=1))
        assert len(result.outputs) == 4
        # Deterministic across runs: keys grouped by (type name, repr).
        again = runner.run(Job("mixed2", _splits(2), map_fn, reduce_fn,
                               num_reducers=1))
        assert result.outputs == again.outputs


class TestTiming:
    def test_job_includes_startup(self, runner):
        result = runner.run(Job("t", _splits(1),
                                lambda s, c: iter(()), None))
        assert result.sim_seconds >= runner.cluster.profile.job_startup_s

    def test_more_io_means_longer_job(self):
        cluster = Cluster(ClusterProfile.laptop())
        runner = JobRunner(cluster)

        def cheap(split, ctx):
            return iter(())

        def expensive(split, ctx):
            ctx.cluster.charge_hdfs_read(10_000_000)
            return iter(())

        fast = runner.run(Job("fast", _splits(2), cheap, None))
        slow = runner.run(Job("slow", _splits(2), expensive, None))
        assert slow.sim_seconds > fast.sim_seconds

    def test_hbase_time_serialized_not_parallelized(self):
        """HBase charges add to the job serially (shared region servers)."""
        profile = ClusterProfile(name="t", num_workers=4,
                                 map_slots_per_node=6,
                                 job_startup_s=0.0, task_overhead_s=0.0,
                                 hbase_write_bps=1024 * 1024,
                                 hbase_op_latency_s=0.0)
        runner = JobRunner(Cluster(profile))

        def map_fn(split, ctx):
            ctx.cluster.charge_hbase_write(1024 * 1024)    # 1s each
            return iter(())

        result = runner.run(Job("hb", _splits(8), map_fn, None))
        # 8 tasks x 1s of HBase time: parallel would be ~1s; serialized is 8.
        assert result.sim_seconds == pytest.approx(8.0, abs=0.2)

    def test_hdfs_time_parallelized_over_slots(self):
        profile = ClusterProfile(name="t", num_workers=4,
                                 map_slots_per_node=2,
                                 job_startup_s=0.0, task_overhead_s=0.0,
                                 hdfs_read_bps=8 * 1024 * 1024)
        runner = JobRunner(Cluster(profile))

        def map_fn(split, ctx):
            # 1 MB at a per-slot rate of 1 MB/s -> 1s per task.
            ctx.cluster.charge_hdfs_read(1024 * 1024)
            return iter(())

        result = runner.run(Job("io", _splits(8), map_fn, None))
        # 8 tasks over 8 slots in one wave -> ~1s.
        assert result.sim_seconds == pytest.approx(1.0, abs=0.2)


class TestMakespan:
    def test_single_slot_is_sum(self):
        assert _makespan([1.0, 2.0, 3.0], 1) == 6.0

    def test_enough_slots_is_max(self):
        assert _makespan([1.0, 2.0, 3.0], 3) == 3.0

    def test_two_slots_greedy(self):
        # FIFO onto earliest-free slot: [3] and [1,2] -> makespan 3.
        assert _makespan([3.0, 1.0, 2.0], 2) == 3.0

    def test_empty(self):
        assert _makespan([], 4) == 0.0


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash(("a", 1)) == stable_hash(("a", 1))

    def test_distinct(self):
        values = {stable_hash(("key", i)) for i in range(100)}
        assert len(values) > 90

    def test_handles_mixed_types(self):
        for key in (None, 1.5, "x", (1, "a", None), True):
            assert isinstance(stable_hash(key), int)
