"""The vectorized engine contract: wall clock only, nothing else.

Runs one mixed workload (DML, scans with LIKE/IN/CASE predicates,
grouped aggregation, HAVING, ORDER BY ... LIMIT, outer joins, COMPACT)
under ``row`` and ``vectorized`` engines at 1 and 4 workers, demanding
byte-identical result rows, simulated seconds, cost-ledger snapshots
and metric counters (``cache.*`` excluded, the one documented
exclusion).  Also covered here: UNION READ merge-stat parity between
the batch fast path and the row merge, the exception-divergence
fallback, the interpreted fallback for unvectorizable nodes, the
``batch_rows`` knob, and the top-k ORDER BY ... LIMIT heap.
"""

import pytest

from repro.cluster import ClusterProfile
from repro.core import encode_record_id
from repro.hive import HiveSession
from repro.hive import ast_nodes as ast
from repro.hive import vexpr
from repro.vector import (DEFAULT_BATCH_ROWS, MAX_BATCH_ROWS,
                          MIN_BATCH_ROWS, ColumnBatch, batch_from_rows,
                          batches_from_rows, validate_batch_rows)

LEFT_ROWS = [(i, None if i % 4 == 0 else i % 5, "l%d" % i)
             for i in range(24)]
RIGHT_ROWS = [(i, None if i % 3 == 0 else i % 5, i * 10)
              for i in range(18)]

WORKLOAD = [
    "SELECT count(*), sum(v), min(grp), max(grp) FROM t",
    "SELECT k, v FROM t WHERE v < 4 AND grp = 'g1' AND w >= 0 "
    "ORDER BY k",
    "SELECT k FROM t WHERE grp LIKE 'g%' AND v IN (1, 2, 5) ORDER BY k",
    "SELECT k, CASE WHEN v < 3 THEN 'lo' ELSE 'hi' END FROM t "
    "WHERE k < 12 ORDER BY k",
    "UPDATE t SET v = 111 WHERE k < 20",
    "SELECT count(*), sum(v) FROM t WHERE v = 111",
    "DELETE FROM t WHERE k >= 70",
    "INSERT INTO t VALUES (200, 'z', 5, 0.5), (201, 'z', 6, 1.5)",
    "SELECT grp, count(*), sum(v), avg(w), min(v), max(w) FROM t "
    "GROUP BY grp ORDER BY grp",
    "SELECT grp, count(*) FROM t GROUP BY grp "
    "HAVING count(*) > 5 ORDER BY grp",
    "SELECT count(*), sum(v + 1), avg(v * 2) FROM t WHERE v IS NOT NULL",
    "COMPACT TABLE t",
    "SELECT count(*), sum(v) FROM t",
    "SELECT k, grp, v FROM t ORDER BY grp, k LIMIT 7",
    "SELECT a.k, a.j, b.v FROM a LEFT JOIN b ON a.j = b.j "
    "ORDER BY a.k, b.v",
    "SELECT a.tag, b.v FROM a FULL JOIN b ON a.j = b.j "
    "ORDER BY a.tag, b.v",
    "SELECT count(*) FROM a JOIN b ON a.j = b.j",
]


def run_workload(engine, workers=1, batch_rows=None):
    """Run the workload; return everything that must be identical."""
    session = HiveSession(profile=ClusterProfile.laptop(workers=workers),
                          engine=engine, batch_rows=batch_rows)
    session.execute(
        "CREATE TABLE t (k int, grp string, v int, w double) "
        "STORED AS dualtable "
        "TBLPROPERTIES ('orc.rows_per_file' = '10')")
    session.load_rows("t", [(i, "g%d" % (i % 3), i % 7, i / 8.0)
                            for i in range(90)])
    session.execute(
        "CREATE TABLE a (k int, j int, tag string) STORED AS orc "
        "TBLPROPERTIES ('orc.rows_per_file' = '6')")
    session.load_rows("a", LEFT_ROWS)
    session.execute(
        "CREATE TABLE b (k int, j int, v int) STORED AS orc "
        "TBLPROPERTIES ('orc.rows_per_file' = '6')")
    session.load_rows("b", RIGHT_ROWS)

    transcript = []
    for sql in WORKLOAD:
        result = session.execute(sql)
        transcript.append((sql, result.rows, result.sim_seconds))
    cluster = session.cluster
    counters = {name: value
                for name, value in cluster.metrics.counters.items()
                if not name.startswith("cache.")}
    return transcript, cluster.ledger.snapshot(), counters


@pytest.fixture(scope="module")
def row_run():
    return run_workload("row", workers=1)


def assert_same_run(run, baseline):
    transcript, ledger, counters = run
    expect_transcript, expect_ledger, expect_counters = baseline
    for (sql, rows, seconds), (_, expect_rows, expect_seconds) \
            in zip(transcript, expect_transcript):
        assert rows == expect_rows, sql
        assert seconds == expect_seconds, sql
    assert ledger == expect_ledger
    assert counters == expect_counters


class TestEngineEquivalence:
    def test_vectorized_serial_matches_row(self, row_run):
        assert_same_run(run_workload("vectorized", workers=1), row_run)

    def test_vectorized_parallel_matches_row(self, row_run):
        assert_same_run(run_workload("vectorized", workers=4), row_run)

    def test_row_parallel_matches_row_serial(self, row_run):
        assert_same_run(run_workload("row", workers=4), row_run)

    def test_engines_match_at_odd_batch_size(self):
        # batch_rows changes split chunking (hence sim time), so both
        # engines run at the same odd size and must still agree.
        assert_same_run(run_workload("vectorized", batch_rows=97),
                        run_workload("row", batch_rows=97))


# ----------------------------------------------------------------------
# UNION READ merge-stat parity: batch fast path vs row merge.
# ----------------------------------------------------------------------
UNIONREAD_COUNTERS = ("unionread.files", "unionread.rows",
                      "unionread.deltas_applied", "unionread.rows_deleted",
                      "unionread.deltas_skipped",
                      "unionread.trailing_deltas")


def unionread_scenario(engine, compacted=False):
    """Dualtable with update/delete deltas plus one trailing orphan."""
    session = HiveSession(profile=ClusterProfile.laptop(), engine=engine)
    session.execute(
        "CREATE TABLE t (k int, v int) STORED AS dualtable "
        "TBLPROPERTIES ('orc.rows_per_file' = '10', "
        "'dualtable.mode' = 'edit')")
    session.load_rows("t", [(i, i * 10) for i in range(40)])
    session.execute("UPDATE t SET v = 1 WHERE k < 5")
    session.execute("UPDATE t SET v = 2 WHERE k >= 20 AND k < 23")
    session.execute("DELETE FROM t WHERE k >= 12 AND k < 15")
    if compacted:
        session.execute("COMPACT TABLE t")
    else:
        handler = session.table("t").handler
        path = handler.master.file_paths()[0]
        file_id = handler.master.file_id_of(path)
        # Orphan id beyond the file's last row: trailing, never merged.
        handler.attached.put_update(encode_record_id(file_id, 99),
                                    {1: 777})
    counters = session.cluster.metrics.counters
    before = {name: counters.get(name, 0) for name in UNIONREAD_COUNTERS}
    rows = session.execute("SELECT k, v FROM t ORDER BY k").rows
    return rows, {name: counters.get(name, 0) - before[name]
                  for name in UNIONREAD_COUNTERS}


class TestUnionReadStatsParity:
    def test_dirty_table_counters_match_row_path(self):
        row_rows, row_stats = unionread_scenario("row")
        vec_rows, vec_stats = unionread_scenario("vectorized")
        assert vec_rows == row_rows
        assert vec_stats == row_stats
        # The final SELECT genuinely exercises every classification:
        # 5 + 3 updates applied, 3 deletes, the one trailing orphan.
        assert row_stats["unionread.deltas_applied"] == 8
        assert row_stats["unionread.rows_deleted"] == 3
        assert row_stats["unionread.trailing_deltas"] == 1
        assert row_stats["unionread.deltas_skipped"] == 0

    def test_zero_delta_counters_match_row_path(self):
        row_rows, row_stats = unionread_scenario("row", compacted=True)
        vec_rows, vec_stats = unionread_scenario("vectorized",
                                                 compacted=True)
        assert vec_rows == row_rows
        assert vec_stats == row_stats
        assert row_stats["unionread.files"] > 0
        assert row_stats["unionread.rows"] == len(row_rows)
        assert row_stats["unionread.deltas_applied"] == 0
        assert row_stats["unionread.trailing_deltas"] == 0


# ----------------------------------------------------------------------
# Fallback shields.
# ----------------------------------------------------------------------
def small_session(engine):
    session = HiveSession(profile=ClusterProfile.laptop(), engine=engine)
    session.execute("CREATE TABLE t (k int, grp string, v int) "
                    "STORED AS orc "
                    "TBLPROPERTIES ('orc.rows_per_file' = '8')")
    session.load_rows("t", [(i, "g%d" % (i % 3), i % 5)
                            for i in range(30)])
    return session


class TestFallbacks:
    def test_eager_conjunct_error_falls_back_to_row_semantics(self):
        # The row path short-circuits past the erroring conjunct
        # ((v + 0) = -1 is false everywhere); eager batch evaluation
        # raises, and the shield must reproduce the row result.
        sql = ("SELECT k FROM t WHERE (v + 0) = -1 AND ('a' + 1) > 0")
        expect = small_session("row").execute(sql).rows
        got = small_session("vectorized").execute(sql).rows
        assert got == expect == []

    def test_error_reached_by_both_engines_raises_identically(self):
        sql = "SELECT ('a' + k) FROM t"
        with pytest.raises(Exception) as row_err:
            small_session("row").execute(sql)
        with pytest.raises(Exception) as vec_err:
            small_session("vectorized").execute(sql)
        assert type(vec_err.value) is type(row_err.value)

    def test_unvectorizable_node_uses_interpreted_fallback(self,
                                                           monkeypatch):
        sql = ("SELECT k, v * 2 FROM t "
               "WHERE grp LIKE 'g1%' AND v > 0 ORDER BY k")
        expect = small_session("row").execute(sql).rows
        monkeypatch.delitem(vexpr.VECTORIZERS, ast.LikeOp)
        monkeypatch.delitem(vexpr.VECTORIZERS, ast.BinaryOp)
        assert small_session("vectorized").execute(sql).rows == expect

    def test_compile_batch_interpret_equals_vectorized(self):
        from repro.hive.expressions import Env
        from repro.hive.parser import parse

        expr = parse("SELECT v * 2 + k").items[0].expr
        env = Env().add_schema(["k", "v"])
        cols = [[1, 2, None, 4], [10, None, 30, 40]]
        fast = vexpr.compile_batch(expr, env)(cols, 4)
        try:
            saved = vexpr.VECTORIZERS.pop(ast.BinaryOp)
            slow = vexpr.compile_batch(expr, env)(cols, 4)
        finally:
            vexpr.VECTORIZERS[ast.BinaryOp] = saved
        assert fast == slow == [21, None, None, 84]


# ----------------------------------------------------------------------
# The batch_rows knob.
# ----------------------------------------------------------------------
class TestBatchRowsKnob:
    def test_bounds_validation(self):
        assert validate_batch_rows(MIN_BATCH_ROWS) == MIN_BATCH_ROWS
        assert validate_batch_rows(MAX_BATCH_ROWS) == MAX_BATCH_ROWS
        assert validate_batch_rows("256") == 256
        for bad in (MIN_BATCH_ROWS - 1, 0, -5, MAX_BATCH_ROWS + 1,
                    "not-a-number", None):
            with pytest.raises(ValueError):
                validate_batch_rows(bad)

    def test_session_knob(self):
        session = HiveSession(profile=ClusterProfile.laptop())
        assert session.batch_rows == DEFAULT_BATCH_ROWS
        assert session.set_batch_rows(128).batch_rows == 128
        with pytest.raises(ValueError):
            session.set_batch_rows(1)
        session = HiveSession(profile=ClusterProfile.laptop(),
                              batch_rows=512)
        assert session.batch_rows == 512

    def test_engine_knob(self):
        session = HiveSession(profile=ClusterProfile.laptop())
        assert session.engine == "vectorized"
        assert session.set_engine("ROW").engine == "row"
        with pytest.raises(ValueError):
            session.set_engine("turbo")


# ----------------------------------------------------------------------
# Top-k ORDER BY ... LIMIT.
# ----------------------------------------------------------------------
class TestTopKOrderLimit:
    @pytest.fixture(scope="class")
    def session(self):
        session = HiveSession(profile=ClusterProfile.laptop())
        session.execute("CREATE TABLE t (k int, grp string, v int) "
                        "STORED AS orc "
                        "TBLPROPERTIES ('orc.rows_per_file' = '9')")
        # Heavy duplication in grp and v: ties must match a full sort.
        session.load_rows("t", [(i, "g%d" % (i % 3),
                                 None if i % 11 == 0 else i % 4)
                                for i in range(60)])
        return session

    @pytest.mark.parametrize("order", ["grp", "grp DESC", "v, grp",
                                       "v DESC, k", "grp, v DESC"])
    @pytest.mark.parametrize("k", [1, 5, 59, 60, 200])
    def test_limit_equals_full_sort_prefix(self, session, order, k):
        full = session.execute(
            "SELECT k, grp, v FROM t ORDER BY %s" % order).rows
        limited = session.execute(
            "SELECT k, grp, v FROM t ORDER BY %s LIMIT %d"
            % (order, k)).rows
        assert limited == full[:k]

    def test_limit_zero(self, session):
        assert session.execute(
            "SELECT k FROM t ORDER BY k LIMIT 0").rows == []


# ----------------------------------------------------------------------
# ColumnBatch plumbing.
# ----------------------------------------------------------------------
class TestColumnBatch:
    def test_rows_roundtrip(self):
        batch = batch_from_rows([(1, "a"), (2, "b")], 2)
        assert list(batch.rows()) == [(1, "a"), (2, "b")]
        assert len(batch) == 2

    def test_zero_width_batch(self):
        batch = batch_from_rows([(), (), ()], 0)
        assert batch.length == 3
        assert list(batch.rows()) == [(), (), ()]

    def test_take_copies(self):
        batch = batch_from_rows([(1, "a"), (2, "b"), (3, "c")], 2)
        taken = batch.take([0, 2])
        assert list(taken.rows()) == [(1, "a"), (3, "c")]
        taken.columns[0][0] = 99
        assert batch.columns[0][0] == 1

    def test_batches_from_rows_chunks(self):
        rows = [(i,) for i in range(10)]
        batches = list(batches_from_rows(rows, 1, batch_rows=4))
        assert [b.length for b in batches] == [4, 4, 2]
        assert [v for b in batches for (v,) in b.rows()] \
            == list(range(10))

    def test_reader_batches_carry_row_base(self):
        session = small_session("vectorized")
        handler = session.table("t").handler
        for split in handler.scan_splits():
            batches = list(handler.read_split_batches(split, None))
            base = 0
            for batch in batches:
                assert batch.row_base == base
                base += batch.length

    def test_reader_batches_respect_batch_rows(self):
        session = small_session("vectorized")
        handler = session.table("t").handler
        split = handler.scan_splits()[0]
        batches = list(handler.read_split_batches(split, None,
                                                  batch_rows=3))
        assert all(b.length <= 3 for b in batches)
        rows = [values for b in batches for values in b.rows()]
        expect = [values for values in handler.read_split(split, None)]
        assert rows == expect
