"""Smoke tests for the bench harness: runners, experiments, CLI, report."""

import pytest

from repro.bench import EXPERIMENTS, SCALES, format_table, render
from repro.bench.cli import main
from repro.bench.experiments import (ExperimentResult, ablation_k, fig4,
                                     table1, table2, table3)
from repro.bench.runners import (bench_profile, grid_session, resolve_scale,
                                 tpch_session)


class TestRunners:
    def test_scales_defined(self):
        assert {"tiny", "small", "medium"} <= set(SCALES)

    def test_resolve_scale(self):
        assert resolve_scale("tiny").name == "tiny"
        assert resolve_scale(SCALES["tiny"]) is SCALES["tiny"]
        with pytest.raises(ValueError):
            resolve_scale("galactic")

    def test_bench_profile_shape(self):
        profile = bench_profile()
        assert profile.total_map_slots == 24
        assert profile.total_reduce_slots == 8

    def test_tpch_session_scaled(self):
        session = tpch_session("orc", SCALES["tiny"],
                               tables=("lineitem",))
        profile = session.cluster.profile
        assert profile.byte_scale > 1000
        assert profile.op_scale > 1000
        assert session.execute(
            "SELECT count(*) FROM lineitem").scalar() > 0

    def test_grid_session_loads_tables(self):
        session = grid_session("orc", SCALES["tiny"], ["tj_sjwzl_y"])
        assert session.execute(
            "SELECT count(*) FROM tj_sjwzl_y").scalar() >= 200

    def test_dualtable_mode_property_applied(self):
        session = tpch_session("dualtable", SCALES["tiny"], mode="edit",
                               tables=("lineitem",))
        assert session.table("lineitem").handler.mode == "edit"


class TestExperimentRegistry:
    def test_every_paper_artifact_covered(self):
        expected = {"table1", "table2", "table3", "table4"} | {
            "fig%d" % i for i in range(4, 19)}
        assert expected <= set(EXPERIMENTS)

    def test_ablations_present(self):
        assert {"ablation-costmodel", "ablation-acid", "ablation-compact",
                "ablation-k"} <= set(EXPERIMENTS)


class TestCheapExperiments:
    def test_table1(self):
        result = table1()
        assert len(result.rows) == 5
        assert result.rows[0][-1] == 62

    def test_table2_and_3_row_counts(self):
        assert len(table2(scale="tiny").rows) == 6
        assert len(table3(scale="tiny").rows) == 6

    def test_fig4_shape(self):
        result = fig4(scale="tiny")
        assert len(result.rows) == 4
        systems = {r[0] for r in result.rows}
        assert systems == {"Hive(HDFS)", "DualTable"}
        # DualTable read overhead exists but is bounded (paper: ~8-12%).
        by_key = {(r[0], r[1]): r[2] for r in result.rows}
        hive = by_key[("Hive(HDFS)", "query2_count")]
        dual = by_key[("DualTable", "query2_count")]
        assert hive <= dual <= hive * 1.3

    def test_ablation_k_monotone(self):
        result = ablation_k(scale="tiny")
        crossovers = [float(r[1].rstrip("%")) for r in result.rows]
        assert crossovers == sorted(crossovers, reverse=True)


class TestReport:
    def test_format_table_aligns(self):
        text = format_table(["a", "long_header"], [(1, 2.5), (30, "x")])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1

    def test_render_includes_notes(self):
        result = ExperimentResult(experiment="x", title="T",
                                  columns=["c"], rows=[(1,)], notes="N")
        out = render(result)
        assert "== T ==" in out and "note: N" in out


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out and "table4" in out

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2

    def test_runs_one_experiment(self, capsys):
        assert main(["table1", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
