"""Tests for repro.obs: tracer spans, metrics registry, trace export."""

import json

import pytest

from repro import obs
from repro.cluster import Cluster, ClusterProfile
from repro.hive import HiveSession
from repro.obs.export import (load_trace, span_event, tracer_trace,
                              validate_trace, write_trace)
from repro.obs.registry import (Histogram, MetricsRegistry, bucket_index,
                                bucket_upper_bound)


@pytest.fixture
def dual_session():
    s = HiveSession(profile=ClusterProfile.laptop())
    s.execute("CREATE TABLE dt (id int, day string, v double) "
              "STORED AS DUALTABLE")
    s.load_rows("dt", [(i, "2013-07-%02d" % (1 + i % 20), float(i))
                       for i in range(400)])
    return s


# ----------------------------------------------------------------------
# Metrics registry.
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counters_and_gauges(self):
        reg = MetricsRegistry()
        reg.incr("a")
        reg.incr("a", 4)
        reg.gauge("g", 7.5)
        assert reg.counter("a") == 5
        assert reg.snapshot()["gauges"]["g"] == 7.5

    def test_histogram_stats(self):
        hist = Histogram()
        for v in (1.0, 2.0, 3.0):
            hist.observe(v)
        assert hist.count == 3
        assert hist.mean == 2.0
        assert hist.vmin == 1.0 and hist.vmax == 3.0

    def test_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.incr("x", 2)
        b.incr("x", 3)
        b.observe("h", 1.0)
        a.merge(b)
        assert a.counter("x") == 5
        assert a.histogram("h").count == 1

    def test_rows_sorted_and_typed(self):
        reg = MetricsRegistry()
        reg.incr("z.counter")
        reg.gauge("a.gauge", 1)
        reg.observe("m.hist", 2.0)
        rows = reg.rows()
        assert [r[0] for r in rows] == ["a.gauge", "m.hist", "z.counter"]
        assert {r[1] for r in rows} == {"gauge", "histogram", "counter"}

    def test_reset(self):
        reg = MetricsRegistry()
        reg.incr("x")
        reg.reset()
        assert reg.counter("x") == 0

    def test_bucket_index_brackets_value(self):
        # Every positive value lands in the bucket whose upper bound is
        # the smallest 10**(i/5) >= value.
        for value in (1e-6, 0.004, 0.99, 1.0, 1.0001, 7.3, 1e4):
            i = bucket_index(value)
            assert value <= bucket_upper_bound(i) * (1 + 1e-12)
            assert value > bucket_upper_bound(i - 1) * (1 - 1e-12)
        assert bucket_index(0.0) is None
        assert bucket_index(-3.0) is None

    def test_quantiles_hit_bucket_upper_bounds(self):
        hist = Histogram()
        for v in (0.001, 0.01, 0.1, 1.0, 10.0):
            hist.observe(v)
        # p50 -> rank 3 of 5 -> the 0.1 bucket's upper bound.
        assert hist.p50 == pytest.approx(bucket_upper_bound(
            bucket_index(0.1)))
        assert hist.p99 == pytest.approx(bucket_upper_bound(
            bucket_index(10.0)))

    def test_quantiles_insensitive_to_observation_order(self):
        values = [0.003, 7.0, 0.2, 0.2, 55.0, 0.0, 1.0, 0.03]
        a, b = Histogram(), Histogram()
        for v in values:
            a.observe(v)
        for v in reversed(values):
            b.observe(v)
        # Merge order must not matter either (worker merge path).
        c, d = Histogram(), Histogram()
        for v in values[:4]:
            c.observe(v)
        for v in values[4:]:
            d.observe(v)
        c.merge(d)
        for h in (b, c):
            assert (h.p50, h.p95, h.p99) == (a.p50, a.p95, a.p99)
            assert h.buckets == a.buckets
            assert (h.count, h.vmin, h.vmax) == (a.count, a.vmin, a.vmax)
            # Float addition is not associative, so only the running
            # total is approximate across orders.
            assert h.total == pytest.approx(a.total)

    @pytest.mark.parametrize("seed", range(12))
    def test_merge_order_independence_property(self, seed):
        """Property: partition any observation stream into per-worker
        partial histograms, merge the partials in ANY order, and the
        quantiles (plus count/min/max/buckets) come out identical to the
        single-histogram reference — the per-shard/per-worker metrics
        merge path can never smear a percentile."""
        import itertools
        import random

        rng = random.Random(seed)
        n = rng.randint(1, 200)
        values = [0.0 if rng.random() < 0.1
                  else 10 ** rng.uniform(-6, 4) for _ in range(n)]
        reference = Histogram()
        for v in values:
            reference.observe(v)
        # Split into k partials at random cut points.
        k = rng.randint(1, 6)
        cuts = sorted(rng.randint(0, n) for _ in range(k - 1))
        parts = []
        for lo, hi in zip([0] + cuts, cuts + [n]):
            part = Histogram()
            for v in values[lo:hi]:
                part.observe(v)
            parts.append(part)
        orders = (list(itertools.permutations(range(len(parts))))
                  if len(parts) <= 3
                  else [rng.sample(range(len(parts)), len(parts))
                        for _ in range(6)])
        for order in orders:
            merged = Histogram()
            for index in order:
                merged.merge(parts[index])
            assert (merged.p50, merged.p95, merged.p99) \
                == (reference.p50, reference.p95, reference.p99), order
            assert merged.buckets == reference.buckets
            assert (merged.count, merged.vmin, merged.vmax) \
                == (reference.count, reference.vmin, reference.vmax)

    def test_rows_like_glob(self):
        reg = MetricsRegistry()
        reg.incr("dualtable.scans.t1")
        reg.incr("dualtable.scans.t2")
        reg.incr("mapreduce.jobs")
        reg.observe("statement.seconds", 0.5)
        # Bare prefix gets an implicit trailing *.
        names = [r[0] for r in reg.rows(like="dualtable.")]
        assert names == ["dualtable.scans.t1", "dualtable.scans.t2"]
        # Explicit glob is used verbatim.
        names = [r[0] for r in reg.rows(like="*.seconds")]
        assert names == ["statement.seconds"]
        assert reg.rows(like="nothing.*") == []

    def test_reset_gauges_by_prefix(self):
        reg = MetricsRegistry()
        reg.gauge("server.inflight", 3)
        reg.gauge("server.queue_depth", 2)
        reg.gauge("dualtable.attached_bytes.t", 10)
        reg.reset_gauges("server.")
        gauges = reg.snapshot()["gauges"]
        assert "server.inflight" not in gauges
        assert gauges["dualtable.attached_bytes.t"] == 10


# ----------------------------------------------------------------------
# Tracer.
# ----------------------------------------------------------------------
class TestTracer:
    def test_disabled_returns_null_span_and_charges_nothing(self):
        cluster = Cluster(ClusterProfile.laptop())
        span = cluster.tracer.span("phase", "x")
        assert span is obs.NULL_SPAN
        with span:
            span.annotate(anything=1)
        assert cluster.ledger.total_seconds == 0.0
        assert cluster.tracer.spans == []

    def test_span_captures_charges_and_nesting(self):
        cluster = Cluster(ClusterProfile.laptop())
        cluster.tracer.enable()
        with cluster.tracer.span("statement", "outer") as outer:
            cluster.charge_hdfs_write(10 * 1024 * 1024)
            with cluster.tracer.span("phase", "inner") as inner:
                cluster.charge_hbase_read(1024 * 1024)
        assert inner.parent_id == outer.span_id
        assert inner.hbase_seconds > 0
        assert outer.seconds > inner.seconds
        assert outer.start_s <= inner.start_s <= inner.end_s <= outer.end_s
        assert [s.name for s in cluster.tracer.spans] == ["inner", "outer"]

    def test_disabled_tracing_does_not_change_costs(self):
        def run(trace):
            s = HiveSession(profile=ClusterProfile.laptop())
            if trace:
                s.cluster.tracer.enable()
            s.execute("CREATE TABLE t (a int, b string) "
                      "STORED AS DUALTABLE")
            s.load_rows("t", [(i, "v%d" % i) for i in range(300)])
            s.execute("UPDATE t SET b = 'x' WHERE a < 30")
            s.execute("SELECT count(*) FROM t WHERE b = 'x'")
            return s.cluster.ledger.total_seconds

        assert run(trace=False) == run(trace=True)

    def test_statement_trace_has_full_hierarchy(self, dual_session):
        tracer = dual_session.cluster.tracer
        tracer.enable()
        dual_session.execute("UPDATE dt SET v = 0 WHERE id < 40")
        kinds = {s.kind for s in tracer.spans}
        assert {"statement", "job", "task", "phase"} <= kinds
        stmt = [s for s in tracer.spans if s.kind == "statement"]
        assert len(stmt) == 1 and stmt[0].name == "update"
        assert "update" in stmt[0].attrs["plan"]
        jobs = [s for s in tracer.spans if s.kind == "job"]
        assert all(j.parent_id for j in jobs)

    def test_clear(self):
        cluster = Cluster(ClusterProfile.laptop())
        cluster.tracer.enable()
        with cluster.tracer.span("phase", "x"):
            pass
        cluster.tracer.clear()
        assert cluster.tracer.spans == []


# ----------------------------------------------------------------------
# Session-level metrics.
# ----------------------------------------------------------------------
class TestSessionMetrics:
    def test_plan_choice_and_audit_recorded(self, dual_session):
        result = dual_session.execute("UPDATE dt SET v = 1 WHERE id < 10")
        metrics = dual_session.cluster.metrics
        plan = result.detail["plan"]
        assert metrics.counter("dualtable.plan.%s" % plan) == 1
        assert metrics.counter("costmodel.audits") == 1
        assert metrics.histogram("costmodel.rel_error").count == 1
        audit = result.detail["audit"]
        assert audit["plan"] == plan
        assert audit["observed_seconds"] == pytest.approx(
            result.sim_seconds)
        assert audit["rel_error"] >= 0

    def test_statement_counters(self, dual_session):
        before = dual_session.cluster.metrics.counter("session.statements")
        dual_session.execute("SELECT count(*) FROM dt")
        metrics = dual_session.cluster.metrics
        assert metrics.counter("session.statements") == before + 1
        assert metrics.counter("session.statements.select") >= 1
        assert metrics.counter("mapreduce.jobs") >= 1
        assert metrics.counter("mapreduce.tasks") >= 1

    def test_unionread_and_compact_metrics(self):
        s = HiveSession(profile=ClusterProfile.laptop())
        s.execute("CREATE TABLE et (id int, v double) STORED AS DUALTABLE "
                  "TBLPROPERTIES ('dualtable.mode' = 'edit')")
        s.load_rows("et", [(i, float(i)) for i in range(300)])
        s.execute("UPDATE et SET v = 9 WHERE id < 5")
        s.execute("SELECT count(*) FROM et WHERE v = 9")
        metrics = s.cluster.metrics
        assert metrics.counter("unionread.files") > 0
        assert metrics.counter("unionread.deltas_applied") > 0
        s.execute("COMPACT TABLE et")
        assert metrics.counter("dualtable.compacts") == 1
        assert metrics.histogram("dualtable.compact.folded_bytes") \
                      .count == 1
        assert metrics.snapshot()["gauges"][
            "dualtable.attached_bytes.et"] == 0

    def test_clock_advances_by_statement_seconds(self, dual_session):
        start = dual_session.cluster.clock.now
        result = dual_session.execute("SELECT count(*) FROM dt")
        assert dual_session.cluster.clock.now == pytest.approx(
            start + result.sim_seconds)

    def test_show_metrics_statement(self, dual_session):
        dual_session.execute("SELECT count(*) FROM dt")
        result = dual_session.execute("SHOW METRICS")
        assert result.names == ["metric", "type", "value"]
        names = [row[0] for row in result.rows]
        assert "session.statements" in names
        assert "mapreduce.jobs" in names

    def test_show_metrics_like_filters_and_sorts(self, dual_session):
        dual_session.execute("SELECT count(*) FROM dt")
        dual_session.execute("UPDATE dt SET v = 0 WHERE id = 1")
        result = dual_session.execute("SHOW METRICS LIKE 'dualtable.'")
        names = [row[0] for row in result.rows]
        assert names == sorted(names)
        assert names and all(n.startswith("dualtable.") for n in names)
        # The filtered view is exactly the matching slice of the
        # unfiltered, deterministically-sorted listing.
        everything = dual_session.execute("SHOW METRICS").rows
        assert [r for r in everything
                if r[0].startswith("dualtable.")] == result.rows

    def test_statement_latency_histograms(self, dual_session):
        dual_session.execute("SELECT count(*) FROM dt")
        dual_session.execute("UPDATE dt SET v = 1 WHERE id = 2")
        metrics = dual_session.cluster.metrics
        overall = metrics.histogram("statement.seconds")
        assert overall.count >= 2
        assert metrics.histogram("statement.seconds.select").count == 1
        assert metrics.histogram("statement.seconds.update").count == 1
        assert overall.p95 >= overall.p50 > 0

    def test_fault_firings_counted(self):
        from repro.faults import Fault, FaultPlan

        session = HiveSession(profile=ClusterProfile.laptop())
        session.execute("CREATE TABLE t (a int)")
        session.load_rows("t", [(i,) for i in range(50)])
        session.cluster.faults.install(FaultPlan([
            Fault(point="mapreduce.map", nth_hit=1, kind="crash")]))
        session.execute("SELECT count(*) FROM t")
        metrics = session.cluster.metrics
        assert metrics.counter("faults.fired") >= 1
        assert metrics.counter("faults.fired.crash") >= 1
        assert metrics.counter("mapreduce.task_retries") >= 1


# ----------------------------------------------------------------------
# Export + validation.
# ----------------------------------------------------------------------
class TestExport:
    def test_span_event_fields(self):
        cluster = Cluster(ClusterProfile.laptop())
        cluster.tracer.enable()
        with cluster.tracer.span("phase", "x", color="red"):
            cluster.charge_hdfs_read(1024)
        event = span_event(cluster.tracer.spans[0], pid=1, tid=1)
        assert event["ph"] == "X" and event["name"] == "x"
        assert event["cat"] == "phase"
        assert event["args"]["color"] == "red"
        assert event["args"]["bytes"] == 1024
        assert event["dur"] >= 0

    def test_roundtrip_and_validate(self, dual_session, tmp_path):
        tracer = dual_session.cluster.tracer
        tracer.enable()
        dual_session.execute("UPDATE dt SET v = 2 WHERE id < 80")
        doc = tracer_trace(
            tracer, metrics=dual_session.cluster.metrics.snapshot())
        path = tmp_path / "t.trace.json"
        write_trace(str(path), doc)
        loaded = load_trace(str(path))
        errors = validate_trace(
            loaded,
            require_kinds=("statement", "job", "task", "substrate"))
        assert errors == []

    def test_validate_catches_orphans_and_bad_nesting(self):
        doc = {"traceEvents": [
            {"name": "a", "ph": "X", "pid": 1, "tid": 1, "ts": 0.0,
             "dur": 10.0, "cat": "task",
             "args": {"span_id": 1, "parent_id": 99}},
        ]}
        errors = validate_trace(doc)
        assert any("parent" in e for e in errors)

    def test_validate_catches_time_escape(self):
        doc = {"traceEvents": [
            {"name": "p", "ph": "X", "pid": 1, "tid": 1, "ts": 0.0,
             "dur": 5.0, "cat": "job",
             "args": {"span_id": 1, "parent_id": None}},
            {"name": "c", "ph": "X", "pid": 1, "tid": 1, "ts": 2.0,
             "dur": 10.0, "cat": "task",
             "args": {"span_id": 2, "parent_id": 1}},
        ]}
        errors = validate_trace(doc)
        assert any("contain" in e or "extends" in e for e in errors)

    def test_profiling_collector_adopts_new_clusters(self):
        with obs.profiling() as collector:
            session = HiveSession(profile=ClusterProfile.laptop())
            assert session.cluster.tracer.enabled
            session.execute("CREATE TABLE t (a int)")
            session.load_rows("t", [(1,), (2,)])
            session.execute("SELECT count(*) FROM t")
        assert obs.active_collector() is None
        assert collector.span_count() > 0
        doc = collector.trace_document()
        assert validate_trace(doc) == []
        merged = collector.merged_metrics()
        assert merged.counter("session.statements") >= 2

    def test_trace_json_serializable(self, dual_session):
        tracer = dual_session.cluster.tracer
        tracer.enable()
        dual_session.execute("SELECT count(*) FROM dt")
        doc = tracer_trace(tracer)
        json.dumps(doc)  # must not raise
