"""Tests for Hive-style partitioned ORC tables."""

import pytest

from repro.cluster import ClusterProfile
from repro.common.errors import AnalysisError
from repro.hive import HiveSession


@pytest.fixture
def session():
    return HiveSession(profile=ClusterProfile.laptop())


def make_table(session, days=5, per_day=60):
    session.execute(
        "CREATE TABLE m (id int, v double) PARTITIONED BY (day string) "
        "STORED AS ORC TBLPROPERTIES ('orc.rows_per_file' = '40', "
        "'orc.stripe_rows' = '10')")
    rows = [(i, float(i), "2013-07-%02d" % (1 + i % days))
            for i in range(days * per_day)]
    session.load_rows("m", rows)
    return session.table("m").handler, rows


class TestLayout:
    def test_one_directory_per_partition(self, session):
        handler, _ = make_table(session)
        keys = [key for key, _ in handler.partitions()]
        assert keys == [("2013-07-%02d" % d,) for d in range(1, 6)]

    def test_partition_values_not_stored_in_files(self, session):
        handler, _ = make_table(session)
        _, directory = handler.partitions()[0]
        from repro.orc import OrcReader
        reader = OrcReader(session.fs, handler._partition_files(directory)[0])
        assert [n for n, _ in reader.schema] == ["id", "v"]

    def test_dynamic_partition_insert(self, session):
        make_table(session)
        session.execute(
            "INSERT INTO m VALUES (999, 1.0, '2013-08-01')")
        handler = session.table("m").handler
        keys = [key for key, _ in handler.partitions()]
        assert ("2013-08-01",) in keys

    def test_partitioned_by_requires_orc(self, session):
        with pytest.raises(AnalysisError):
            session.execute(
                "CREATE TABLE bad (a int) PARTITIONED BY (p string) "
                "STORED AS DUALTABLE")

    def test_special_characters_in_values(self, session):
        session.execute("CREATE TABLE t (a int) PARTITIONED BY (p string)")
        session.load_rows("t", [(1, "a/b=c"), (2, "plain")])
        got = session.execute(
            "SELECT a FROM t WHERE p = 'a/b=c'")
        assert got.rows == [(1,)]

    def test_multi_column_partitioning(self, session):
        session.execute("CREATE TABLE t (a int) "
                        "PARTITIONED BY (y int, m int)")
        session.load_rows("t", [(1, 2013, 7), (2, 2013, 8), (3, 2014, 7)])
        handler = session.table("t").handler
        assert [k for k, _ in handler.partitions()] == [
            (2013, 7), (2013, 8), (2014, 7)]
        got = session.execute("SELECT a FROM t WHERE y = 2013 AND m = 8")
        assert got.rows == [(2,)]


class TestQueries:
    def test_partition_column_queryable(self, session):
        make_table(session)
        result = session.execute(
            "SELECT day, count(*) c FROM m GROUP BY day ORDER BY day")
        assert len(result.rows) == 5
        assert all(c == 60 for _, c in result.rows)

    def test_select_star_includes_partition_column(self, session):
        _, rows = make_table(session)
        got = session.execute("SELECT * FROM m").rows
        assert sorted(got) == sorted(rows)

    def test_partition_pruning_reduces_cost(self, session):
        make_table(session)
        full = session.execute("SELECT sum(v) FROM m")
        pruned = session.execute(
            "SELECT sum(v) FROM m WHERE day = '2013-07-03'")
        assert pruned.sim_seconds < full.sim_seconds

    def test_pruning_is_sound(self, session):
        _, rows = make_table(session)
        got = session.execute(
            "SELECT id FROM m WHERE day >= '2013-07-04'").rows
        expect = [(r[0],) for r in rows if r[2] >= "2013-07-04"]
        assert sorted(got) == sorted(expect)

    def test_partition_only_projection(self, session):
        make_table(session)
        got = session.execute("SELECT day FROM m WHERE day = '2013-07-01'")
        assert got.rows == [("2013-07-01",)] * 60

    def test_join_on_partition_column(self, session):
        make_table(session)
        session.execute("CREATE TABLE ref (day string, label string)")
        session.load_rows("ref", [("2013-07-02", "two")])
        got = session.execute(
            "SELECT count(*), r.label FROM m "
            "JOIN ref r ON m.day = r.day GROUP BY r.label")
        assert got.rows == [(60, "two")]


class TestPartitionScopedDml:
    def test_update_rewrites_only_affected_partitions(self, session):
        handler, _ = make_table(session)
        untouched_dir = handler._partition_dir(("2013-07-01",))
        files_before = handler._partition_files(untouched_dir)
        result = session.execute(
            "UPDATE m SET v = -1 WHERE day = '2013-07-02'")
        assert result.affected == 60
        assert handler._partition_files(untouched_dir) == files_before
        assert session.execute(
            "SELECT count(*) FROM m WHERE v = -1").scalar() == 60
        assert session.execute("SELECT count(*) FROM m").scalar() == 300

    def test_partition_update_cheaper_than_unpartitioned(self):
        times = {}
        for label, ddl in (
                ("flat", "CREATE TABLE m (id int, v double, day string) "
                         "STORED AS ORC"),
                ("partitioned",
                 "CREATE TABLE m (id int, v double) "
                 "PARTITIONED BY (day string) STORED AS ORC")):
            session = HiveSession(profile=ClusterProfile.laptop())
            session.execute(ddl)
            rows = [(i, float(i), "2013-07-%02d" % (1 + i % 10))
                    for i in range(1000)]
            session.load_rows("m", rows)
            result = session.execute(
                "UPDATE m SET v = 0 WHERE day = '2013-07-01'")
            times[label] = result.sim_seconds
        assert times["partitioned"] < times["flat"]

    def test_update_within_partition_still_works(self, session):
        make_table(session)
        result = session.execute(
            "UPDATE m SET v = -5 WHERE day = '2013-07-02' AND id < 20")
        assert result.affected == len(
            [i for i in range(300) if i % 5 == 1 and i < 20])
        # rows of the partition not matching the row predicate survive
        assert session.execute(
            "SELECT count(*) FROM m WHERE day = '2013-07-02'"
        ).scalar() == 60

    def test_delete_whole_partition_removes_directory(self, session):
        handler, _ = make_table(session)
        result = session.execute(
            "DELETE FROM m WHERE day = '2013-07-04'")
        assert result.affected == 60
        assert ("2013-07-04",) not in [k for k, _ in handler.partitions()]
        assert session.execute("SELECT count(*) FROM m").scalar() == 240

    def test_delete_without_partition_predicate(self, session):
        make_table(session)
        result = session.execute("DELETE FROM m WHERE id < 10")
        assert result.affected == 10
        assert session.execute("SELECT count(*) FROM m").scalar() == 290

    def test_insert_overwrite_replaces_everything(self, session):
        make_table(session)
        session.execute(
            "INSERT OVERWRITE TABLE m VALUES (1, 1.0, '2099-01-01')")
        assert session.execute("SELECT count(*) FROM m").scalar() == 1


class TestDropPartition:
    def test_drop_partition(self, session):
        make_table(session)
        result = session.execute(
            "ALTER TABLE m DROP PARTITION (day = '2013-07-05')")
        assert result.affected == 1
        assert session.execute("SELECT count(*) FROM m").scalar() == 240

    def test_drop_missing_partition(self, session):
        make_table(session)
        result = session.execute(
            "ALTER TABLE m DROP PARTITION (day = '2099-12-31')")
        assert result.affected == 0

    def test_drop_partition_on_unpartitioned_table(self, session):
        session.execute("CREATE TABLE plain (a int)")
        with pytest.raises(AnalysisError):
            session.execute("ALTER TABLE plain DROP PARTITION (a = 1)")

    def test_drop_partition_requires_all_columns(self, session):
        session.execute("CREATE TABLE t (a int) "
                        "PARTITIONED BY (y int, m int)")
        with pytest.raises(AnalysisError):
            session.execute("ALTER TABLE t DROP PARTITION (y = 2013)")


class TestPartitionStatements:
    def test_show_partitions(self, session):
        make_table(session, days=3)
        result = session.execute("SHOW PARTITIONS m")
        assert result.rows == [("day=2013-07-%02d" % d,)
                               for d in range(1, 4)]

    def test_show_partitions_unpartitioned(self, session):
        session.execute("CREATE TABLE plain (a int)")
        with pytest.raises(AnalysisError):
            session.execute("SHOW PARTITIONS plain")

    def test_static_partition_insert_values(self, session):
        make_table(session)
        session.execute(
            "INSERT INTO m PARTITION (day = '2099-01-01') "
            "VALUES (1, 1.0), (2, 2.0)")
        assert session.execute(
            "SELECT count(*) FROM m WHERE day = '2099-01-01'").scalar() == 2

    def test_static_partition_insert_select(self, session):
        make_table(session)
        session.execute("CREATE TABLE src (id int, v double)")
        session.load_rows("src", [(7, 7.0)])
        session.execute("INSERT INTO m PARTITION (day = '2099-02-02') "
                        "SELECT id, v FROM src")
        got = session.execute(
            "SELECT id FROM m WHERE day = '2099-02-02'")
        assert got.rows == [(7,)]

    def test_partition_spec_on_unpartitioned_rejected(self, session):
        session.execute("CREATE TABLE plain (a int)")
        with pytest.raises(AnalysisError):
            session.execute(
                "INSERT INTO plain PARTITION (p = 'x') VALUES (1)")

    def test_partition_spec_missing_column_rejected(self, session):
        session.execute("CREATE TABLE t (a int) "
                        "PARTITIONED BY (y int, m int)")
        with pytest.raises(AnalysisError):
            session.execute(
                "INSERT INTO t PARTITION (y = 2013) VALUES (1)")
