"""Property test: the SQL engine vs a pure-Python reference evaluator.

Random simple queries (filter / projection / global and grouped
aggregation) are generated against a random table; the engine's answer
must equal a direct in-memory computation over the same rows, for every
storage backend.

The differential fuzz section at the bottom goes further: a seeded
stream of ~200 UPDATE / DELETE / INSERT / COMPACT / SELECT statements
runs against a DualTable while a plain Python list is mutated in
lockstep, with row-for-row equality checked after *every* statement —
serial and with a 4-thread worker pool.
"""

import math
import os
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterProfile
from repro.hive import HiveSession

COLUMNS = [("k", "int"), ("grp", "string"), ("v", "int"),
           ("w", "double")]

rows_strategy = st.lists(
    st.tuples(st.integers(-50, 50),
              st.sampled_from(["a", "b", "c"]),
              st.one_of(st.none(), st.integers(-100, 100)),
              st.floats(min_value=-100, max_value=100,
                        allow_nan=False, width=32)),
    min_size=0, max_size=40)

predicate_strategy = st.one_of(
    st.none(),
    st.tuples(st.sampled_from(["k", "v"]),
              st.sampled_from(["<", "<=", ">", ">=", "=", "!="]),
              st.integers(-40, 40)))


def _build(storage, rows):
    session = HiveSession(profile=ClusterProfile.laptop())
    cols = ", ".join("%s %s" % (n, t) for n, t in COLUMNS)
    extra = ""
    if storage == "dualtable":
        extra = " TBLPROPERTIES ('orc.rows_per_file' = '15')"
    session.execute("CREATE TABLE t (%s) STORED AS %s%s"
                    % (cols, storage, extra))
    session.load_rows("t", rows)
    return session


def _matches(row, predicate):
    if predicate is None:
        return True
    column, op, literal = predicate
    value = row[0] if column == "k" else row[2]
    if value is None:
        return False
    return {"<": value < literal, "<=": value <= literal,
            ">": value > literal, ">=": value >= literal,
            "=": value == literal, "!=": value != literal}[op]


def _where(predicate):
    if predicate is None:
        return ""
    column, op, literal = predicate
    return " WHERE %s %s %d" % (column, op, literal)


@pytest.mark.parametrize("storage", ["orc", "dualtable"])
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(rows=rows_strategy, predicate=predicate_strategy)
def test_filter_and_global_aggregates_match_oracle(storage, rows,
                                                   predicate):
    session = _build(storage, rows)
    survivors = [r for r in rows if _matches(r, predicate)]
    result = session.execute(
        "SELECT count(*), count(v), sum(v), min(k), max(k) FROM t"
        + _where(predicate))
    count_star, count_v, sum_v, min_k, max_k = result.rows[0]
    assert count_star == len(survivors)
    vs = [r[2] for r in survivors if r[2] is not None]
    assert count_v == len(vs)
    assert sum_v == (sum(vs) if vs else None)
    assert min_k == (min(r[0] for r in survivors) if survivors else None)
    assert max_k == (max(r[0] for r in survivors) if survivors else None)


@pytest.mark.parametrize("storage", ["orc", "dualtable"])
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(rows=rows_strategy, predicate=predicate_strategy)
def test_group_by_matches_oracle(storage, rows, predicate):
    session = _build(storage, rows)
    survivors = [r for r in rows if _matches(r, predicate)]
    result = session.execute(
        "SELECT grp, count(*), avg(w) FROM t%s GROUP BY grp ORDER BY grp"
        % _where(predicate))
    oracle = {}
    for row in survivors:
        oracle.setdefault(row[1], []).append(row[3])
    assert [r[0] for r in result.rows] == sorted(oracle)
    for grp, count, avg in result.rows:
        ws = oracle[grp]
        assert count == len(ws)
        assert math.isclose(avg, sum(ws) / len(ws), rel_tol=1e-9,
                            abs_tol=1e-9)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(rows=rows_strategy, predicate=predicate_strategy,
       descending=st.booleans())
def test_projection_and_order_match_oracle(rows, predicate, descending):
    session = _build("orc", rows)
    survivors = [r for r in rows if _matches(r, predicate)]
    result = session.execute(
        "SELECT k, grp FROM t%s ORDER BY k %s, grp %s"
        % (_where(predicate), "DESC" if descending else "ASC",
           "DESC" if descending else "ASC"))
    expect = sorted(((r[0], r[1]) for r in survivors),
                    reverse=descending)
    assert result.rows == expect


# ----------------------------------------------------------------------
# Differential fuzz: seeded DML stream vs an in-memory reference.
# ----------------------------------------------------------------------
#: statements per fuzz run (CI can widen via the environment).
N_FUZZ_STATEMENTS = int(os.environ.get("ORACLE_FUZZ_STATEMENTS", "200"))

_OPS = {"<": lambda a, b: a < b, "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b, ">=": lambda a, b: a >= b,
        "=": lambda a, b: a == b, "!=": lambda a, b: a != b}


def _fuzz_predicate(rng):
    """A random ``k``/``v`` comparison as (sql, row_fn).

    NULL comparisons are false (SQL three-valued logic collapses to
    "not matched" for these operators), which the row_fn mirrors.
    """
    column, index = rng.choice([("k", 0), ("v", 2)])
    op = rng.choice(sorted(_OPS))
    literal = rng.randint(-20, 110)
    sql = "%s %s %d" % (column, op, literal)

    def row_fn(row, _fn=_OPS[op]):
        return row[index] is not None and _fn(row[index], literal)

    return sql, row_fn


def _fuzz_insert_rows(rng, n):
    return [(rng.randint(0, 99),
             rng.choice(["a", "b", "c"]),
             None if rng.random() < 0.15 else rng.randint(-100, 100),
             float(rng.randint(-100, 100)))
            for _ in range(n)]


def _values_sql(rows):
    def lit(value):
        if value is None:
            return "NULL"
        if isinstance(value, str):
            return "'%s'" % value
        return repr(value)
    return ", ".join("(%s)" % ", ".join(lit(v) for v in row)
                     for row in rows)


def _fuzz_statement(rng, session, reference):
    """Run one random statement, mutate the reference in lockstep."""
    roll = rng.random()
    if roll < 0.18:
        pred_sql, pred = _fuzz_predicate(rng)
        new_v = rng.randint(-100, 100)
        sql = "UPDATE t SET v = %d WHERE %s" % (new_v, pred_sql)
        session.execute(sql)
        reference[:] = [(r[0], r[1], new_v, r[3]) if pred(r) else r
                        for r in reference]
    elif roll < 0.32:
        pred_sql, pred = _fuzz_predicate(rng)
        grp = rng.choice(["x", "y", "z"])
        new_w = float(rng.randint(-50, 50))
        sql = ("UPDATE t SET grp = '%s', w = %r WHERE %s"
               % (grp, new_w, pred_sql))
        session.execute(sql)
        reference[:] = [(r[0], grp, r[2], new_w) if pred(r) else r
                        for r in reference]
    elif roll < 0.50:
        pred_sql, pred = _fuzz_predicate(rng)
        sql = "DELETE FROM t WHERE %s" % pred_sql
        session.execute(sql)
        reference[:] = [r for r in reference if not pred(r)]
    elif roll < 0.72:
        rows = _fuzz_insert_rows(rng, rng.randint(1, 3))
        sql = "INSERT INTO t VALUES %s" % _values_sql(rows)
        session.execute(sql)
        reference.extend(rows)
    elif roll < 0.78:
        sql = "COMPACT TABLE t"
        session.execute(sql)
    else:
        pred_sql, pred = _fuzz_predicate(rng)
        sql = "SELECT k, grp, v, w FROM t WHERE %s" % pred_sql
        got = session.execute(sql).rows
        expect = [r for r in reference if pred(r)]
        assert sorted(got, key=repr) == sorted(expect, key=repr), sql
    return sql


# ----------------------------------------------------------------------
# LOOKUP-plan differential fuzz: the same seeded PK workload must be
# byte-identical whichever plan serves the point reads.
# ----------------------------------------------------------------------
#: statements per LOOKUP fuzz run (CI can widen via the environment).
N_LOOKUP_FUZZ = int(os.environ.get("LOOKUP_FUZZ_STATEMENTS", "200"))

#: initial PK rows; SELECT keys are drawn from [0, 2 * LOOKUP_KEYS).
LOOKUP_KEYS = 120


def _lookup_fuzz_script(rng, n):
    """A deterministic statement script over a PRIMARY KEY table.

    Mixes eligible point/range/IN SELECTs with value updates, PK-moving
    updates (which dirty stripe pruning), point deletes, inserts and
    compactions.  Fresh keys are allocated monotonically above the
    initial range so PK moves and inserts never collide.
    """
    script = []
    next_key = 10 * LOOKUP_KEYS
    for _ in range(n):
        roll = rng.random()
        if roll < 0.30:
            script.append(("point", rng.randrange(2 * LOOKUP_KEYS)))
        elif roll < 0.40:
            lo = rng.randrange(2 * LOOKUP_KEYS)
            script.append(("range", lo, lo + rng.randint(1, 8)))
        elif roll < 0.48:
            keys = tuple(rng.randrange(2 * LOOKUP_KEYS)
                         for _ in range(rng.randint(1, 4)))
            script.append(("in", keys))
        elif roll < 0.64:
            lo = rng.randrange(2 * LOOKUP_KEYS)
            script.append(("update_v", lo, lo + rng.randint(1, 10),
                           rng.randint(-999, 999)))
        elif roll < 0.72:
            script.append(("update_pk", rng.randrange(2 * LOOKUP_KEYS),
                           next_key))
            next_key += 1
        elif roll < 0.82:
            script.append(("delete", rng.randrange(2 * LOOKUP_KEYS)))
        elif roll < 0.92:
            script.append(("insert", next_key, rng.randint(-999, 999)))
            next_key += 1
        else:
            script.append(("compact",))
    return script


def _run_lookup_script(script, plan, engine, workers):
    """One (plan, engine, workers) replay; returns what must be equal.

    SELECT results are checked against a dict reference as they run;
    the returned transcript plus the (cache-counter-free) metric and
    ledger fingerprints let the caller assert cross-config identity.
    """
    session = HiveSession(
        profile=ClusterProfile.laptop(workers=workers), engine=engine)
    session.execute(
        "CREATE TABLE t (k int, v int, PRIMARY KEY (k)) "
        "STORED AS dualtable TBLPROPERTIES "
        "('orc.rows_per_file' = '15', 'orc.stripe_rows' = '5', "
        "'dualtable.mode' = 'edit')")
    rows = [(i, i * 10) for i in range(LOOKUP_KEYS)]
    session.load_rows("t", rows)
    reference = dict(rows)
    session.execute("SET dualtable.plan = %s" % plan)

    def check_select(sql, expect):
        result = session.execute(sql)
        if plan == "lookup":
            assert result.plan == "lookup", sql
        else:
            assert result.plan.startswith("select("), sql
        assert sorted(result.rows) == expect, sql
        transcript.append((sql, tuple(expect)))

    transcript = []
    for op in script:
        kind = op[0]
        if kind == "point":
            k = op[1]
            check_select("SELECT k, v FROM t WHERE k = %d" % k,
                         [(k, reference[k])] if k in reference else [])
        elif kind == "range":
            _, lo, hi = op
            check_select(
                "SELECT k, v FROM t WHERE k BETWEEN %d AND %d" % (lo, hi),
                sorted((k, v) for k, v in reference.items()
                       if lo <= k <= hi))
        elif kind == "in":
            keys = op[1]
            check_select(
                "SELECT k, v FROM t WHERE k IN (%s)"
                % ", ".join(str(k) for k in sorted(set(keys))),
                sorted((k, reference[k]) for k in set(keys)
                       if k in reference))
        elif kind == "update_v":
            _, lo, hi, value = op
            session.execute(
                "UPDATE t SET v = %d WHERE k >= %d AND k < %d"
                % (value, lo, hi))
            for k in reference:
                if lo <= k < hi:
                    reference[k] = value
        elif kind == "update_pk":
            _, old, new = op
            session.execute("UPDATE t SET k = %d WHERE k = %d"
                            % (new, old))
            if old in reference:
                reference[new] = reference.pop(old)
        elif kind == "delete":
            k = op[1]
            session.execute("DELETE FROM t WHERE k = %d" % k)
            reference.pop(k, None)
        elif kind == "insert":
            _, k, v = op
            session.execute("INSERT INTO t VALUES (%d, %d)" % (k, v))
            reference[k] = v
        else:
            session.execute("COMPACT TABLE t")
    session.execute("SET dualtable.plan = cost")
    final = session.execute("SELECT k, v FROM t").rows
    assert sorted(final) == sorted(reference.items())
    counters = {name: value
                for name, value in session.cluster.metrics.counters.items()
                if not name.startswith("cache.")}
    return (transcript, tuple(sorted(final)),
            session.cluster.ledger.snapshot(), counters)


@pytest.mark.slow
def test_lookup_plan_differential_fuzz():
    """The seeded PK workload is invariant three ways at once:

    * SELECT results and final table identical across every
      (plan, engine, workers) combination;
    * ledger and metric counters byte-identical across engine and
      worker count *within* each plan (the totals necessarily differ
      *between* plans — skipping MapReduce is the feature);
    * per-statement oracle checks hold throughout (inside the runner).
    """
    script = _lookup_fuzz_script(random.Random(20260808), N_LOOKUP_FUZZ)
    runs = {}
    for plan in ("lookup", "scan"):
        for engine in ("row", "vectorized"):
            for workers in (1, 4):
                runs[(plan, engine, workers)] = _run_lookup_script(
                    script, plan, engine, workers)
    baseline = runs[("lookup", "row", 1)]
    for config, (transcript, final, ledger, counters) in runs.items():
        assert transcript == baseline[0], config
        assert final == baseline[1], config
    for plan in ("lookup", "scan"):
        _, _, ledger0, counters0 = runs[(plan, "row", 1)]
        for engine in ("row", "vectorized"):
            for workers in (1, 4):
                _, _, ledger, counters = runs[(plan, engine, workers)]
                assert ledger == ledger0, (plan, engine, workers)
                assert counters == counters0, (plan, engine, workers)


@pytest.mark.slow
@pytest.mark.parametrize("workers", [1, 4])
def test_differential_fuzz_dml_stream(workers):
    from repro.cluster import ClusterProfile

    rng = random.Random(20260806 + workers)
    session = HiveSession(profile=ClusterProfile.laptop(workers=workers))
    cols = ", ".join("%s %s" % (n, t) for n, t in COLUMNS)
    session.execute(
        "CREATE TABLE t (%s) STORED AS dualtable "
        "TBLPROPERTIES ('orc.rows_per_file' = '15')" % cols)
    reference = _fuzz_insert_rows(rng, 30)
    session.load_rows("t", reference)
    reference = list(reference)

    for step in range(N_FUZZ_STATEMENTS):
        sql = _fuzz_statement(rng, session, reference)
        got = session.execute("SELECT k, grp, v, w FROM t").rows
        assert sorted(got, key=repr) == sorted(reference, key=repr), \
            "diverged at step %d after %r" % (step, sql)
    assert reference, "fuzz stream emptied the table; weights are off"
