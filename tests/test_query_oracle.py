"""Property test: the SQL engine vs a pure-Python reference evaluator.

Random simple queries (filter / projection / global and grouped
aggregation) are generated against a random table; the engine's answer
must equal a direct in-memory computation over the same rows, for every
storage backend.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterProfile
from repro.hive import HiveSession

COLUMNS = [("k", "int"), ("grp", "string"), ("v", "int"),
           ("w", "double")]

rows_strategy = st.lists(
    st.tuples(st.integers(-50, 50),
              st.sampled_from(["a", "b", "c"]),
              st.one_of(st.none(), st.integers(-100, 100)),
              st.floats(min_value=-100, max_value=100,
                        allow_nan=False, width=32)),
    min_size=0, max_size=40)

predicate_strategy = st.one_of(
    st.none(),
    st.tuples(st.sampled_from(["k", "v"]),
              st.sampled_from(["<", "<=", ">", ">=", "=", "!="]),
              st.integers(-40, 40)))


def _build(storage, rows):
    session = HiveSession(profile=ClusterProfile.laptop())
    cols = ", ".join("%s %s" % (n, t) for n, t in COLUMNS)
    extra = ""
    if storage == "dualtable":
        extra = " TBLPROPERTIES ('orc.rows_per_file' = '15')"
    session.execute("CREATE TABLE t (%s) STORED AS %s%s"
                    % (cols, storage, extra))
    session.load_rows("t", rows)
    return session


def _matches(row, predicate):
    if predicate is None:
        return True
    column, op, literal = predicate
    value = row[0] if column == "k" else row[2]
    if value is None:
        return False
    return {"<": value < literal, "<=": value <= literal,
            ">": value > literal, ">=": value >= literal,
            "=": value == literal, "!=": value != literal}[op]


def _where(predicate):
    if predicate is None:
        return ""
    column, op, literal = predicate
    return " WHERE %s %s %d" % (column, op, literal)


@pytest.mark.parametrize("storage", ["orc", "dualtable"])
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(rows=rows_strategy, predicate=predicate_strategy)
def test_filter_and_global_aggregates_match_oracle(storage, rows,
                                                   predicate):
    session = _build(storage, rows)
    survivors = [r for r in rows if _matches(r, predicate)]
    result = session.execute(
        "SELECT count(*), count(v), sum(v), min(k), max(k) FROM t"
        + _where(predicate))
    count_star, count_v, sum_v, min_k, max_k = result.rows[0]
    assert count_star == len(survivors)
    vs = [r[2] for r in survivors if r[2] is not None]
    assert count_v == len(vs)
    assert sum_v == (sum(vs) if vs else None)
    assert min_k == (min(r[0] for r in survivors) if survivors else None)
    assert max_k == (max(r[0] for r in survivors) if survivors else None)


@pytest.mark.parametrize("storage", ["orc", "dualtable"])
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(rows=rows_strategy, predicate=predicate_strategy)
def test_group_by_matches_oracle(storage, rows, predicate):
    session = _build(storage, rows)
    survivors = [r for r in rows if _matches(r, predicate)]
    result = session.execute(
        "SELECT grp, count(*), avg(w) FROM t%s GROUP BY grp ORDER BY grp"
        % _where(predicate))
    oracle = {}
    for row in survivors:
        oracle.setdefault(row[1], []).append(row[3])
    assert [r[0] for r in result.rows] == sorted(oracle)
    for grp, count, avg in result.rows:
        ws = oracle[grp]
        assert count == len(ws)
        assert math.isclose(avg, sum(ws) / len(ws), rel_tol=1e-9,
                            abs_tol=1e-9)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(rows=rows_strategy, predicate=predicate_strategy,
       descending=st.booleans())
def test_projection_and_order_match_oracle(rows, predicate, descending):
    session = _build("orc", rows)
    survivors = [r for r in rows if _matches(r, predicate)]
    result = session.execute(
        "SELECT k, grp FROM t%s ORDER BY k %s, grp %s"
        % (_where(predicate), "DESC" if descending else "ASC",
           "DESC" if descending else "ASC"))
    expect = sorted(((r[0], r[1]) for r in survivors),
                    reverse=descending)
    assert result.rows == expect
