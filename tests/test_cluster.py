"""Tests for the cluster substrate: clock, ledger, profile, charging."""

import pytest

from repro.cluster import Cluster, ClusterProfile, MetricsLedger
from repro.cluster.clock import SimClock
from repro.cluster.ledger import Charge
from repro.common.units import GB, MB


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_advance(self):
        clock = SimClock()
        clock.advance(2.5)
        clock.advance(1.5)
        assert clock.now == 4.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1)

    def test_reset(self):
        clock = SimClock(10)
        clock.advance(5)
        clock.reset()
        assert clock.now == 0.0


class TestLedger:
    def _charge(self, subsystem="hdfs", op="read", nbytes=100, seconds=1.0):
        return Charge(subsystem=subsystem, op=op, nbytes=nbytes, nops=1,
                      seconds=seconds)

    def test_record_accumulates(self):
        ledger = MetricsLedger()
        ledger.record(self._charge())
        ledger.record(self._charge())
        assert ledger.bytes_for("hdfs", "read") == 200
        assert ledger.seconds_for("hdfs", "read") == 2.0
        assert ledger.total_seconds == 2.0

    def test_subsystem_rollup(self):
        ledger = MetricsLedger()
        ledger.record(self._charge(op="read"))
        ledger.record(self._charge(op="write"))
        assert ledger.bytes_for("hdfs") == 200
        assert ledger.ops_for("hdfs") == 2

    def test_scope_captures_only_active_window(self):
        ledger = MetricsLedger()
        ledger.record(self._charge())
        scope = ledger.push_scope("s")
        ledger.record(self._charge(seconds=3.0))
        ledger.pop_scope(scope)
        ledger.record(self._charge())
        assert scope.seconds == 3.0
        assert ledger.total_seconds == 5.0

    def test_nested_scopes_both_capture(self):
        ledger = MetricsLedger()
        outer = ledger.push_scope("outer")
        inner = ledger.push_scope("inner")
        ledger.record(self._charge(seconds=2.0))
        ledger.pop_scope(inner)
        ledger.record(self._charge(seconds=1.0))
        ledger.pop_scope(outer)
        assert inner.seconds == 2.0
        assert outer.seconds == 3.0

    def test_scope_lifo_enforced(self):
        ledger = MetricsLedger()
        outer = ledger.push_scope("outer")
        ledger.push_scope("inner")
        with pytest.raises(ValueError):
            ledger.pop_scope(outer)

    def test_scope_separates_hbase_seconds(self):
        ledger = MetricsLedger()
        scope = ledger.push_scope("s")
        ledger.record(self._charge(subsystem="hdfs", seconds=1.0))
        ledger.record(self._charge(subsystem="hbase", seconds=2.0))
        ledger.pop_scope(scope)
        assert scope.hbase_seconds == 2.0
        assert scope.parallel_seconds == 1.0
        assert scope.seconds == 3.0

    def test_reset(self):
        ledger = MetricsLedger()
        ledger.record(self._charge())
        ledger.reset()
        assert ledger.total_seconds == 0.0
        assert ledger.bytes_for("hdfs") == 0

    def test_snapshot(self):
        ledger = MetricsLedger()
        ledger.record(self._charge())
        snap = ledger.snapshot()
        assert snap["total_seconds"] == 1.0
        assert snap["bytes"][("hdfs", "read")] == 100

    def test_diff_since_snapshot_drops_zero_keys(self):
        ledger = MetricsLedger()
        ledger.record(self._charge(op="read"))
        before = ledger.snapshot()
        ledger.record(self._charge(op="write", nbytes=50, seconds=0.5))
        delta = ledger.diff(before)
        assert delta["total_seconds"] == 0.5
        assert delta["bytes"] == {("hdfs", "write"): 50}
        assert ("hdfs", "read") not in delta["seconds"]

    def test_scope_lookup_by_label(self):
        ledger = MetricsLedger()
        outer = ledger.push_scope("job")
        inner = ledger.push_scope("job")
        assert ledger.scope("job") is inner
        assert ledger.scope("missing") is None
        ledger.pop_scope(inner)
        assert ledger.scope("job") is outer
        assert ledger.active_scope_labels() == ["job"]

    def test_attached_scope_detaches_out_of_order(self):
        ledger = MetricsLedger()
        pushed = ledger.push_scope("task")
        span = ledger.attach_scope("span:x")
        ledger.record(self._charge(seconds=2.0))
        # attached scope above a pushed one does not break LIFO popping
        ledger.pop_scope(pushed)
        assert span.seconds == 2.0
        ledger.detach_scope(span)
        ledger.detach_scope(span)  # idempotent
        assert ledger.active_scope_labels() == []

    def test_attached_scope_tracks_hbase_split(self):
        ledger = MetricsLedger()
        span = ledger.attach_scope("span:hb")
        ledger.record(self._charge(subsystem="hbase", seconds=3.0))
        ledger.record(self._charge(subsystem="hdfs", seconds=1.0))
        ledger.detach_scope(span)
        assert span.hbase_seconds == 3.0
        assert span.parallel_seconds == 1.0


class TestProfile:
    def test_slot_totals(self):
        profile = ClusterProfile(num_workers=9, map_slots_per_node=6,
                                 reduce_slots_per_node=2)
        assert profile.total_map_slots == 54
        assert profile.total_reduce_slots == 18

    def test_per_slot_rate(self):
        profile = ClusterProfile(num_workers=2, map_slots_per_node=5)
        assert profile.per_slot_rate(100.0) == 10.0

    def test_factories(self):
        assert ClusterProfile.paper_grid_cluster().num_workers == 25
        assert ClusterProfile.paper_tpch_cluster().num_workers == 9
        assert ClusterProfile.laptop().num_workers == 1

    def test_factory_overrides(self):
        profile = ClusterProfile.paper_grid_cluster(num_workers=3)
        assert profile.num_workers == 3


class TestClusterCharging:
    def test_hdfs_read_rate(self):
        profile = ClusterProfile(num_workers=1, map_slots_per_node=1,
                                 hdfs_read_bps=100 * MB)
        cluster = Cluster(profile)
        charge = cluster.charge_hdfs_read(100 * MB)
        assert charge.seconds == pytest.approx(1.0)

    def test_hdfs_per_slot_division(self):
        profile = ClusterProfile(num_workers=2, map_slots_per_node=5,
                                 hdfs_read_bps=100 * MB)
        cluster = Cluster(profile)
        charge = cluster.charge_hdfs_read(10 * MB)
        assert charge.seconds == pytest.approx(1.0)   # 10 slots share

    def test_hbase_uses_aggregate_rate(self):
        profile = ClusterProfile(num_workers=4, map_slots_per_node=6,
                                 hbase_write_bps=100 * MB,
                                 hbase_op_latency_s=0.0)
        cluster = Cluster(profile)
        charge = cluster.charge_hbase_write(100 * MB)
        assert charge.seconds == pytest.approx(1.0)

    def test_byte_scale_multiplies_time_not_bytes(self):
        profile = ClusterProfile(num_workers=1, map_slots_per_node=1,
                                 hdfs_read_bps=100 * MB, byte_scale=10.0)
        cluster = Cluster(profile)
        charge = cluster.charge_hdfs_read(100 * MB)
        assert charge.seconds == pytest.approx(10.0)
        assert cluster.ledger.bytes_for("hdfs", "read") == 100 * MB

    def test_op_scale_multiplies_op_latency(self):
        profile = ClusterProfile(hbase_write_bps=1 * GB,
                                 hbase_op_latency_s=1e-3, op_scale=10.0)
        cluster = Cluster(profile)
        charge = cluster.charge_hbase_write(0, nops=5)
        assert charge.seconds == pytest.approx(5 * 10 * 1e-3)

    def test_cpu_rows(self):
        profile = ClusterProfile(cpu_row_cost_s=1e-6)
        cluster = Cluster(profile)
        charge = cluster.charge_cpu_rows(1_000_000)
        assert charge.seconds == pytest.approx(1.0)

    def test_fixed_charge(self):
        cluster = Cluster(ClusterProfile())
        cluster.charge_fixed("mapreduce", "job_startup", 8.0)
        assert cluster.ledger.seconds_for("mapreduce",
                                          "job_startup") == 8.0

    def test_cost_scope_context_manager(self):
        cluster = Cluster(ClusterProfile.laptop())
        with cluster.cost_scope("x") as scope:
            cluster.charge_fixed("cpu", "misc", 2.0)
        assert scope.seconds == 2.0

    def test_reset_accounting(self):
        cluster = Cluster(ClusterProfile.laptop())
        cluster.charge_fixed("cpu", "misc", 2.0)
        cluster.reset_accounting()
        assert cluster.ledger.total_seconds == 0.0
