"""Task retry, backoff accounting, and speculative execution."""

import pytest

from repro.cluster import Cluster, ClusterProfile
from repro.common.errors import FaultInjectedError, TaskFailedError
from repro.faults import Fault, FaultPlan
from repro.mapreduce import InputSplit, Job, JobRunner


def _splits(n_splits=4, per_split=20):
    return [InputSplit(payload=list(range(i * per_split,
                                          (i + 1) * per_split)),
                       size_bytes=per_split * 8, label="s%d" % i)
            for i in range(n_splits)]


def _runner(**overrides):
    return JobRunner(Cluster(ClusterProfile.laptop(**overrides)))


def _scan_job(name="scan", n_splits=4):
    return Job(name, _splits(n_splits), lambda s, ctx: iter(s.payload), None)


class TestRetry:
    def test_injected_crash_is_retried_to_success(self):
        runner = _runner()
        runner.cluster.faults.install(FaultPlan([
            Fault("mapreduce.map", nth_hit=2, kind="crash")]))
        result = runner.run(_scan_job())
        assert result.outputs == list(range(80))
        assert result.counters["task_retries"] == 1

    def test_retry_makes_sim_seconds_strictly_greater(self):
        """Acceptance criterion: recovery is visible in the time model."""
        clean = _runner().run(_scan_job())
        runner = _runner()
        runner.cluster.faults.install(FaultPlan([
            Fault("mapreduce.map", nth_hit=2, kind="crash")]))
        faulty = runner.run(_scan_job())
        assert faulty.outputs == clean.outputs
        assert faulty.sim_seconds > clean.sim_seconds
        # ...by roughly the first backoff step.
        backoff = runner.cluster.profile.retry_backoff_s
        assert faulty.sim_seconds - clean.sim_seconds >= 0.99 * backoff

    def test_backoff_charged_to_ledger(self):
        runner = _runner()
        runner.cluster.faults.install(FaultPlan([
            Fault("mapreduce.map", nth_hit=1, kind="crash")]))
        runner.run(_scan_job())
        ledger = runner.cluster.ledger
        assert ledger.seconds_for("mapreduce", "retry_backoff") == \
            pytest.approx(runner.cluster.profile.retry_backoff_s)

    def test_backoff_is_exponential(self):
        runner = _runner()
        # Same task fails on its first two attempts.
        runner.cluster.faults.install(FaultPlan([
            Fault("mapreduce.map", nth_hit=1, kind="crash"),
            Fault("mapreduce.map", nth_hit=2, kind="crash")]))
        runner.run(_scan_job(n_splits=1))
        base = runner.cluster.profile.retry_backoff_s
        assert runner.cluster.ledger.seconds_for(
            "mapreduce", "retry_backoff") == pytest.approx(base + 2 * base)

    def test_permanent_failure_exhausts_attempts(self):
        runner = _runner()
        calls = []

        def bad_map(split, ctx):
            calls.append(1)
            raise ValueError("boom")

        with pytest.raises(TaskFailedError, match="map task 0 of bad"):
            runner.run(Job("bad", _splits(1), bad_map, None))
        assert len(calls) == runner.cluster.profile.max_task_attempts

    def test_fatal_kill_is_not_retried(self):
        runner = _runner()
        runner.cluster.faults.install(FaultPlan([
            Fault("mapreduce.map", nth_hit=1, kind="kill")]))
        calls = []

        def map_fn(split, ctx):
            calls.append(1)
            return iter(())

        with pytest.raises(TaskFailedError) as err:
            runner.run(Job("killed", _splits(1), map_fn, None))
        assert isinstance(err.value.__cause__, FaultInjectedError)
        assert err.value.__cause__.fatal
        assert calls == []    # the kill fired before the attempt body ran

    def test_reduce_attempts_are_retried_too(self):
        runner = _runner()
        runner.cluster.faults.install(FaultPlan([
            Fault("mapreduce.reduce", nth_hit=1, kind="crash")]))

        def map_fn(split, ctx):
            for v in split.payload:
                yield v % 3, v

        def reduce_fn(key, values, ctx):
            yield key, sum(values)

        result = runner.run(Job("agg", _splits(), map_fn, reduce_fn))
        assert len(result.outputs) == 3
        assert result.counters["task_retries"] == 1

    def test_retried_task_counters_not_double_counted(self):
        runner = _runner()
        runner.cluster.faults.install(FaultPlan([
            Fault("mapreduce.map", nth_hit=1, kind="crash")]))

        def map_fn(split, ctx):
            for v in split.payload:
                ctx.incr("seen")
                yield v

        result = runner.run(Job("cnt", _splits(), map_fn, None))
        # 4 splits x 20 rows, counted once despite the retried attempt.
        assert result.counters["seen"] == 80

    def test_failed_job_not_recorded_in_history(self):
        runner = _runner()
        runner.run(_scan_job("ok"))
        with pytest.raises(TaskFailedError):
            runner.run(Job("bad", _splits(1),
                           lambda s, c: (_ for _ in ()).throw(ValueError()),
                           None))
        assert [r.name for r in runner.history] == ["ok"]


class TestSpeculation:
    @staticmethod
    def _profile(**overrides):
        params = dict(name="t", num_workers=1, map_slots_per_node=8,
                      job_startup_s=0.0, task_overhead_s=0.0,
                      hdfs_read_bps=8 * 1024 * 1024)
        params.update(overrides)
        return ClusterProfile(**params)

    def test_straggler_clamped_by_speculative_copy(self):
        runner = JobRunner(Cluster(self._profile()))
        runner.cluster.faults.install(FaultPlan([
            Fault("mapreduce.map", nth_hit=1, kind="slow", factor=16.0)]))

        def map_fn(split, ctx):
            ctx.cluster.charge_hdfs_read(1024 * 1024)   # 1s per task
            return iter(())

        result = runner.run(Job("spec", _splits(8), map_fn, None))
        # The straggler would run 16s; the backup copy finishes around
        # the 1s median instead of dominating the makespan.
        assert result.sim_seconds < 4.0
        assert result.counters["speculative_tasks"] == 1
        assert runner.cluster.ledger.seconds_for(
            "mapreduce", "speculative") > 0

    def test_speculation_disabled_leaves_straggler(self):
        runner = JobRunner(Cluster(
            self._profile(speculative_execution=False)))
        runner.cluster.faults.install(FaultPlan([
            Fault("mapreduce.map", nth_hit=1, kind="slow", factor=16.0)]))

        def map_fn(split, ctx):
            ctx.cluster.charge_hdfs_read(1024 * 1024)
            return iter(())

        result = runner.run(Job("nospec", _splits(8), map_fn, None))
        assert result.sim_seconds == pytest.approx(16.0, abs=0.5)

    def test_speculation_never_clamps_retry_penalty(self):
        """Failed-attempt work + backoff stay in the task duration."""
        profile = self._profile()
        clean = JobRunner(Cluster(profile))

        def map_fn(split, ctx):
            ctx.cluster.charge_hdfs_read(1024 * 1024)
            return iter(())

        baseline = clean.run(Job("base", _splits(8), map_fn, None))
        runner = JobRunner(Cluster(profile))
        runner.cluster.faults.install(FaultPlan([
            Fault("mapreduce.map", nth_hit=1, kind="crash")]))
        faulty = runner.run(Job("retry", _splits(8), map_fn, None))
        assert faulty.sim_seconds >= (baseline.sim_seconds
                                      + profile.retry_backoff_s)
