"""Tests for MERGE INTO (the grid's proprietary upsert, Table I)."""

import pytest

from repro.cluster import ClusterProfile
from repro.common.errors import AnalysisError, ParseError
from repro.hive import HiveSession
from repro.hive import ast_nodes as ast
from repro.hive.parser import parse


@pytest.fixture
def session():
    return HiveSession(profile=ClusterProfile.laptop())


STORAGES = ["orc", "hbase", "dualtable", "acid"]


def setup_tables(session, storage):
    session.execute(
        "CREATE TABLE archive (dev_id int, model string, fw double) "
        "STORED AS %s" % storage)
    session.load_rows("archive", [(i, "m%d" % (i % 3), 1.0)
                                  for i in range(50)])
    session.execute(
        "CREATE TABLE incoming (dev_id int, model string, fw double)")
    session.load_rows("incoming", [
        (10, "m-upgraded", 2.0),        # existing: should update
        (20, "m-upgraded", 2.0),        # existing: should update
        (999, "m-new", 3.0),            # new: should insert
    ])


MERGE_SQL = """
MERGE INTO archive a USING incoming i ON a.dev_id = i.dev_id
WHEN MATCHED THEN UPDATE SET model = i.model, fw = i.fw
WHEN NOT MATCHED THEN INSERT VALUES (i.dev_id, i.model, i.fw)
"""


class TestParsing:
    def test_full_merge(self):
        stmt = parse(MERGE_SQL)
        assert isinstance(stmt, ast.MergeStmt)
        assert stmt.target == "archive" and stmt.alias == "a"
        assert len(stmt.matched_assignments) == 2
        assert len(stmt.insert_values) == 3

    def test_update_only(self):
        stmt = parse("MERGE INTO t USING s ON t.k = s.k "
                     "WHEN MATCHED THEN UPDATE SET v = s.v")
        assert stmt.insert_values is None

    def test_insert_only(self):
        stmt = parse("MERGE INTO t USING s ON t.k = s.k "
                     "WHEN NOT MATCHED THEN INSERT VALUES (s.k, s.v)")
        assert stmt.matched_assignments == []
        assert len(stmt.insert_values) == 2

    def test_subquery_source(self):
        stmt = parse("MERGE INTO t USING (SELECT k, v FROM u) s "
                     "ON t.k = s.k WHEN MATCHED THEN UPDATE SET v = s.v")
        assert stmt.source.subquery is not None

    def test_no_arms_rejected(self):
        with pytest.raises(ParseError):
            parse("MERGE INTO t USING s ON t.k = s.k")


@pytest.mark.parametrize("storage", STORAGES)
class TestMergeSemantics:
    def test_upsert(self, session, storage):
        setup_tables(session, storage)
        result = session.execute(MERGE_SQL)
        assert result.detail["matched"] == 2
        assert result.detail["inserted"] == 1
        assert result.affected == 3
        assert session.execute(
            "SELECT count(*) FROM archive").scalar() == 51
        assert session.execute(
            "SELECT model FROM archive WHERE dev_id = 10"
        ).scalar() == "m-upgraded"
        assert session.execute(
            "SELECT fw FROM archive WHERE dev_id = 999").scalar() == 3.0

    def test_unmatched_target_rows_untouched(self, session, storage):
        setup_tables(session, storage)
        session.execute(MERGE_SQL)
        assert session.execute(
            "SELECT model FROM archive WHERE dev_id = 11"
        ).scalar() == "m2"

    def test_update_only_merge(self, session, storage):
        setup_tables(session, storage)
        result = session.execute(
            "MERGE INTO archive a USING incoming i ON a.dev_id = i.dev_id "
            "WHEN MATCHED THEN UPDATE SET fw = i.fw")
        assert result.detail["matched"] == 2
        assert result.detail["inserted"] == 0
        assert session.execute(
            "SELECT count(*) FROM archive").scalar() == 50

    def test_insert_only_merge(self, session, storage):
        setup_tables(session, storage)
        result = session.execute(
            "MERGE INTO archive a USING incoming i ON a.dev_id = i.dev_id "
            "WHEN NOT MATCHED THEN INSERT VALUES (i.dev_id, i.model, i.fw)")
        assert result.detail["inserted"] == 1
        assert session.execute(
            "SELECT count(*) FROM archive").scalar() == 51
        # matched rows untouched
        assert session.execute(
            "SELECT model FROM archive WHERE dev_id = 10").scalar() == "m1"

    def test_merge_idempotent_second_run(self, session, storage):
        setup_tables(session, storage)
        session.execute(MERGE_SQL)
        result = session.execute(MERGE_SQL)
        assert result.detail["inserted"] == 0        # 999 exists now
        assert result.detail["matched"] == 3
        assert session.execute(
            "SELECT count(*) FROM archive").scalar() == 51


class TestMergeDetails:
    def test_expressions_using_both_sides(self, session):
        setup_tables(session, "dualtable")
        session.execute(
            "MERGE INTO archive a USING incoming i ON a.dev_id = i.dev_id "
            "WHEN MATCHED THEN UPDATE SET fw = a.fw + i.fw")
        assert session.execute(
            "SELECT fw FROM archive WHERE dev_id = 10").scalar() == 3.0

    def test_subquery_source_end_to_end(self, session):
        setup_tables(session, "orc")
        result = session.execute(
            "MERGE INTO archive a USING "
            "(SELECT dev_id, model, fw FROM incoming WHERE fw >= 3) s "
            "ON a.dev_id = s.dev_id "
            "WHEN MATCHED THEN UPDATE SET model = s.model "
            "WHEN NOT MATCHED THEN INSERT VALUES (s.dev_id, s.model, s.fw)")
        assert result.detail["source_rows"] == 1
        assert result.detail["inserted"] == 1

    def test_duplicate_source_keys_first_wins(self, session):
        session.execute("CREATE TABLE t (k int, v string)")
        session.load_rows("t", [(1, "old")])
        session.execute("CREATE TABLE s (k int, v string)")
        session.load_rows("s", [(1, "first"), (1, "second")])
        session.execute("MERGE INTO t USING s ON t.k = s.k "
                        "WHEN MATCHED THEN UPDATE SET v = s.v")
        assert session.execute("SELECT v FROM t").scalar() == "first"

    def test_dualtable_merge_reports_plan(self, session):
        setup_tables(session, "dualtable")
        result = session.execute(MERGE_SQL)
        assert result.detail["plan"] in ("edit", "overwrite")

    def test_dualtable_edit_merge_uses_attached(self, session):
        session.execute(
            "CREATE TABLE archive (dev_id int, model string, fw double) "
            "STORED AS dualtable TBLPROPERTIES "
            "('dualtable.mode' = 'edit')")
        session.load_rows("archive", [(i, "m", 1.0) for i in range(50)])
        session.execute("CREATE TABLE incoming "
                        "(dev_id int, model string, fw double)")
        session.load_rows("incoming", [(10, "x", 2.0)])
        handler = session.table("archive").handler
        files = handler.master.file_paths()
        session.execute(
            "MERGE INTO archive a USING incoming i ON a.dev_id = i.dev_id "
            "WHEN MATCHED THEN UPDATE SET model = i.model")
        assert handler.master.file_paths() == files   # master untouched
        assert not handler.attached.is_empty()

    def test_non_equi_on_rejected(self, session):
        setup_tables(session, "orc")
        with pytest.raises(AnalysisError):
            session.execute(
                "MERGE INTO archive a USING incoming i ON a.dev_id > 1 "
                "WHEN MATCHED THEN UPDATE SET fw = 0")

    def test_merge_after_compact_consistent(self, session):
        setup_tables(session, "dualtable")
        session.execute(MERGE_SQL)
        session.execute("COMPACT TABLE archive")
        assert session.execute(
            "SELECT model FROM archive WHERE dev_id = 20"
        ).scalar() == "m-upgraded"
        assert session.execute(
            "SELECT count(*) FROM archive").scalar() == 51


class TestMergeOnBtreeBackend:
    def test_merge_with_btree_attached(self, session):
        session.execute(
            "CREATE TABLE archive (dev_id int, model string, fw double) "
            "STORED AS dualtable TBLPROPERTIES "
            "('dualtable.attached' = 'btree', 'dualtable.mode' = 'edit')")
        session.load_rows("archive", [(i, "m", 1.0) for i in range(30)])
        session.execute(
            "CREATE TABLE incoming (dev_id int, model string, fw double)")
        session.load_rows("incoming", [(5, "x", 2.0), (99, "new", 3.0)])
        result = session.execute(
            "MERGE INTO archive a USING incoming i ON a.dev_id = i.dev_id "
            "WHEN MATCHED THEN UPDATE SET model = i.model "
            "WHEN NOT MATCHED THEN INSERT VALUES (i.dev_id, i.model, i.fw)")
        assert result.detail["matched"] == 1
        assert result.detail["inserted"] == 1
        assert session.execute(
            "SELECT model FROM archive WHERE dev_id = 5").scalar() == "x"
        assert session.execute(
            "SELECT count(*) FROM archive").scalar() == 31
