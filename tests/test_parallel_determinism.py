"""Regression: workers=N must be byte-identical to workers=1.

The parallel engine's contract is that worker threads change wall-clock
time only.  This test runs one realistic mixed workload (DDL, loads,
UPDATE/DELETE/INSERT, COMPACT, scans, grouped aggregation, and an outer
join with NULL keys) twice — serial and with a 4-thread pool — and
demands byte-for-byte equality of:

* every statement's result rows,
* every statement's simulated seconds,
* the full cost-ledger snapshot (bytes / ops / seconds per subsystem),
* every metric counter except the ``cache.*`` family (cache hit/miss
  counts legitimately depend on execution interleaving and are the one
  documented exclusion).
"""

import pytest

from repro.cluster import ClusterProfile
from repro.hive import HiveSession


#: (left rows, right rows) for the join tables; ``j`` is nullable on
#: both sides so the join exercises the NULL-key sentinel path, which
#: historically used a shared counter that was racy under threads.
LEFT_ROWS = [(i, None if i % 4 == 0 else i % 5, "l%d" % i)
             for i in range(24)]
RIGHT_ROWS = [(i, None if i % 3 == 0 else i % 5, i * 10)
              for i in range(18)]

WORKLOAD = [
    "SELECT count(*), sum(v), min(grp), max(grp) FROM t",
    "UPDATE t SET v = 111 WHERE k < 20",
    "SELECT count(*), sum(v) FROM t WHERE v = 111",
    "DELETE FROM t WHERE k >= 70",
    "INSERT INTO t VALUES (200, 'z', 5, 0.5), (201, 'z', 6, 1.5)",
    "SELECT grp, count(*), sum(v) FROM t GROUP BY grp ORDER BY grp",
    "COMPACT TABLE t",
    "SELECT count(*), sum(v) FROM t",
    "UPDATE t SET grp = 'q' WHERE v = 111",
    "SELECT k, grp, v FROM t WHERE grp = 'q' ORDER BY k",
    "SELECT a.k, a.j, b.v FROM a LEFT JOIN b ON a.j = b.j "
    "ORDER BY a.k, b.v",
    "SELECT a.tag, b.v FROM a FULL JOIN b ON a.j = b.j "
    "ORDER BY a.tag, b.v",
    "SELECT count(*) FROM a JOIN b ON a.j = b.j",
]


def run_workload(workers):
    """Run the full workload; return everything that must be identical."""
    session = HiveSession(profile=ClusterProfile.laptop(workers=workers))
    session.execute(
        "CREATE TABLE t (k int, grp string, v int, w double) "
        "STORED AS dualtable "
        "TBLPROPERTIES ('orc.rows_per_file' = '10')")
    session.load_rows("t", [(i, "g%d" % (i % 3), i % 7, i / 8.0)
                            for i in range(90)])
    session.execute(
        "CREATE TABLE a (k int, j int, tag string) STORED AS orc "
        "TBLPROPERTIES ('orc.rows_per_file' = '6')")
    session.load_rows("a", LEFT_ROWS)
    session.execute(
        "CREATE TABLE b (k int, j int, v int) STORED AS orc "
        "TBLPROPERTIES ('orc.rows_per_file' = '6')")
    session.load_rows("b", RIGHT_ROWS)

    transcript = []
    for sql in WORKLOAD:
        result = session.execute(sql)
        transcript.append((sql, result.rows, result.sim_seconds))
    cluster = session.cluster
    counters = {name: value
                for name, value in cluster.metrics.counters.items()
                if not name.startswith("cache.")}
    return transcript, cluster.ledger.snapshot(), counters


@pytest.fixture(scope="module")
def serial_run():
    return run_workload(workers=1)


def test_workload_is_deterministic_across_worker_counts(serial_run):
    serial_transcript, serial_ledger, serial_counters = serial_run
    transcript, ledger, counters = run_workload(workers=4)
    for (sql, rows, seconds), (_, expect_rows, expect_seconds) \
            in zip(transcript, serial_transcript):
        assert rows == expect_rows, sql
        assert seconds == expect_seconds, sql
    assert ledger == serial_ledger
    assert counters == serial_counters


def test_serial_rerun_is_self_consistent(serial_run):
    # Sanity for the comparison above: the workload itself is stable
    # run-to-run (no hidden dependence on ids, time, or dict order).
    assert run_workload(workers=1) == serial_run


def test_workload_rows_are_nontrivial(serial_run):
    transcript, _, _ = serial_run
    by_sql = {sql: rows for sql, rows, _ in transcript}
    left_join = by_sql["SELECT a.k, a.j, b.v FROM a LEFT JOIN b "
                       "ON a.j = b.j ORDER BY a.k, b.v"]
    # NULL-keyed left rows survive a LEFT JOIN exactly once each.
    null_left = [row for row in left_join if row[1] is None]
    assert len(null_left) == sum(1 for _, j, _ in LEFT_ROWS if j is None)
    assert all(row[2] is None for row in null_left)
    assert by_sql["SELECT count(*), sum(v) FROM t"][0][0] > 0
