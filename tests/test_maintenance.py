"""Autonomous maintenance: stats, policy, daemon, and SQL surface."""

import pytest

from repro.cluster import ClusterProfile
from repro.common.errors import AnalysisError
from repro.hive import HiveSession
from repro.hive.parser import parse
from repro.hive import ast_nodes as ast
from repro.maintenance.policy import CompactionPolicy
from repro.maintenance.stats import TableStats


def make_dualtable(session, n=60, rows_per_file=15, extra_props=""):
    session.execute(
        "CREATE TABLE dt (id int, day string, amount double, tag string) "
        "STORED AS DUALTABLE TBLPROPERTIES ('dualtable.mode' = 'edit', "
        "'orc.rows_per_file' = '%d', 'orc.stripe_rows' = '5'%s)"
        % (rows_per_file, extra_props))
    rows = [(i, "2013-07-%02d" % (1 + i % 20), float(i), "t%d" % (i % 3))
            for i in range(n)]
    session.load_rows("dt", rows)
    return session.table("dt").handler


# ----------------------------------------------------------------------
# SQL surface.
# ----------------------------------------------------------------------
class TestParsing:
    def test_alter_autocompact_on_with_options(self):
        stmt = parse("ALTER TABLE dt SET AUTOCOMPACT "
                     "(ON, horizon = 12.5, max_files = 2, mode = partial)")
        assert isinstance(stmt, ast.AlterAutoCompactStmt)
        assert stmt.table == "dt" and stmt.enabled
        assert stmt.options == {"horizon": 12.5, "max_files": 2,
                                "mode": "partial"}

    def test_alter_autocompact_off(self):
        stmt = parse("ALTER TABLE dt SET AUTOCOMPACT (OFF)")
        assert isinstance(stmt, ast.AlterAutoCompactStmt)
        assert not stmt.enabled and stmt.options == {}

    def test_compact_partial_with_limit(self):
        stmt = parse("COMPACT TABLE dt PARTIAL 3")
        assert isinstance(stmt, ast.CompactStmt)
        assert stmt.partial and stmt.max_files == 3

    def test_compact_partial_unbounded(self):
        stmt = parse("COMPACT TABLE dt PARTIAL")
        assert stmt.partial and stmt.max_files is None

    def test_plain_compact_unchanged(self):
        stmt = parse("COMPACT TABLE dt MINOR")
        assert not stmt.partial and not stmt.major

    def test_show_compactions(self):
        assert isinstance(parse("SHOW COMPACTIONS"),
                          ast.ShowCompactionsStmt)

    def test_explain_compact_partial(self, session):
        make_dualtable(session)
        rows = session.execute("EXPLAIN COMPACT TABLE dt PARTIAL 2").rows
        assert any("partial 2" in line for (line,) in rows)


class TestSqlSurface:
    def test_autocompact_requires_dualtable(self, session):
        session.execute("CREATE TABLE plain (id int) STORED AS orc")
        with pytest.raises(AnalysisError):
            session.execute("ALTER TABLE plain SET AUTOCOMPACT (ON)")

    def test_partial_compact_requires_dualtable(self, session):
        session.execute("CREATE TABLE av (id int, v int) STORED AS acid")
        session.execute("INSERT INTO av VALUES (1, 1)")
        with pytest.raises(AnalysisError):
            session.execute("COMPACT TABLE av PARTIAL")

    def test_show_compactions_lists_manual_runs(self, session):
        make_dualtable(session)
        session.execute("UPDATE dt SET tag = 'x' WHERE id < 20")
        session.execute("COMPACT TABLE dt PARTIAL")
        rows = session.execute("SHOW COMPACTIONS").rows
        assert any(r[2] == "manual" and r[3] == "partial" for r in rows)

    def test_noop_compact_result_shape_matches_real(self, session):
        """compact-noop must carry the same detail fields as a real
        compaction so downstream consumers never special-case it."""
        make_dualtable(session)
        noop = session.execute("COMPACT TABLE dt")
        assert noop.plan == "compact-noop"
        session.execute("UPDATE dt SET tag = 'x' WHERE id < 20")
        real = session.execute("COMPACT TABLE dt")
        assert set(noop.detail) >= {"attached_bytes", "folded_bytes",
                                    "mode", "files", "rows_written"}
        assert set(noop.detail) == set(real.detail) - {"file_ids"} \
            or set(noop.detail) == set(real.detail)
        assert noop.sim_seconds == 0.0 and noop.jobs == [] \
            and noop.affected == 0


class TestAttachedBytesGauge:
    def test_gauge_tracks_dml_and_compact(self, session):
        handler = make_dualtable(session)
        gauges = session.cluster.metrics.snapshot()["gauges"]
        name = "dualtable.attached_bytes.dt"
        session.execute("UPDATE dt SET tag = 'x' WHERE id < 20")
        gauges = session.cluster.metrics.snapshot()["gauges"]
        assert gauges[name] == handler.attached.size_bytes > 0
        session.execute("DELETE FROM dt WHERE id >= 50")
        gauges = session.cluster.metrics.snapshot()["gauges"]
        assert gauges[name] == handler.attached.size_bytes
        session.execute("COMPACT TABLE dt")
        gauges = session.cluster.metrics.snapshot()["gauges"]
        assert gauges[name] == 0


# ----------------------------------------------------------------------
# Stats.
# ----------------------------------------------------------------------
class TestTableStats:
    def test_seeded_from_read_factor(self):
        assert TableStats(read_factor=7).horizon == 7.0

    def test_ewma_tracks_observed_mix(self):
        stats = TableStats(read_factor=1)
        scans = dmls = 0
        for _ in range(20):
            dmls += 1
            scans += 1 + 5      # the DML's own scan plus five reads
            stats.advance(scans, dmls)
        assert stats.horizon == pytest.approx(5.0, rel=0.05)

    def test_reads_between_dmls_accumulate(self):
        stats = TableStats(read_factor=1)
        stats.advance(3, 0)       # three pure reads, no mutation yet
        stats.advance(3, 0)
        stats.advance(4, 1)       # the mutation closes the window
        # 3 accumulated reads + (1 new scan - 1 dml) = 3 reads / 1 dml.
        assert stats.reads_per_dml == pytest.approx(1 + 0.4 * (3 - 1))

    def test_horizon_floor(self):
        stats = TableStats(read_factor=1)
        for i in range(1, 11):
            stats.advance(i, i)   # only DML scans, zero pure reads
        assert stats.horizon == 1.0


# ----------------------------------------------------------------------
# Policy.
# ----------------------------------------------------------------------
class TestPolicy:
    def test_declines_without_deltas(self, session):
        handler = make_dualtable(session)
        decision = CompactionPolicy(handler).decide(horizon=100.0)
        assert decision.action == "decline"
        assert decision.note == "no deltas above threshold"

    def test_declines_at_short_horizon(self, session):
        handler = make_dualtable(session)
        session.execute("UPDATE dt SET tag = 'x' WHERE id < 5")
        decision = CompactionPolicy(handler).decide(horizon=1.0)
        assert decision.action == "decline"
        assert decision.predicted_seconds > decision.benefit_seconds
        assert decision.breakdown["dirty_files"] == 1

    def test_accepts_at_long_horizon(self, session):
        handler = make_dualtable(session)
        session.execute("UPDATE dt SET tag = 'x' WHERE id < 5")
        decision = CompactionPolicy(handler).decide(horizon=1e9)
        assert decision.action in ("partial", "full")
        assert decision.benefit_seconds > decision.predicted_seconds

    def test_partial_picks_densest_files_first(self, session):
        handler = make_dualtable(session)
        # File 0 (ids 0-14) gets 10 deltas, file 2 (ids 30-44) gets 2.
        session.execute("UPDATE dt SET tag = 'x' WHERE id < 10")
        session.execute("UPDATE dt SET tag = 'x' WHERE id IN (30, 31)")
        policy = CompactionPolicy(handler, {"mode": "partial",
                                            "max_files": 1})
        decision = policy.decide(horizon=1e9)
        assert decision.action == "partial"
        assert [f.file_id for f in decision.files] == [0]

    def test_full_mode_skips_partial_plans(self, session):
        handler = make_dualtable(session)
        session.execute("UPDATE dt SET tag = 'x' WHERE id < 5")
        decision = CompactionPolicy(handler, {"mode": "full"}) \
            .decide(horizon=1e9)
        assert decision.action == "full"

    def test_predictions_match_observed_costs(self, session):
        """The per-decision audit: predicted within 25% of charged."""
        handler = make_dualtable(session)
        session.execute("UPDATE dt SET tag = 'x' WHERE id < 20")
        session.execute("DELETE FROM dt WHERE id >= 50")
        policy = CompactionPolicy(handler, {"mode": "partial"})
        decision = policy.decide(horizon=1e9)
        assert decision.action == "partial"
        result = session.execute("COMPACT TABLE dt PARTIAL")
        observed = result.sim_seconds
        assert observed > 0
        rel_error = abs(decision.predicted_seconds - observed) / observed
        assert rel_error <= 0.25, (decision.predicted_seconds, observed)

    def test_full_prediction_matches_observed(self, session):
        handler = make_dualtable(session)
        session.execute("UPDATE dt SET tag = 'x' WHERE id < 20")
        policy = CompactionPolicy(handler, {"mode": "full"})
        decision = policy.decide(horizon=1e9)
        result = session.execute("COMPACT TABLE dt")
        observed = result.sim_seconds
        rel_error = abs(decision.predicted_seconds - observed) / observed
        assert rel_error <= 0.25, (decision.predicted_seconds, observed)


# ----------------------------------------------------------------------
# Daemon.
# ----------------------------------------------------------------------
class TestDaemon:
    def test_auto_compaction_triggers_and_audits(self, session):
        handler = make_dualtable(session)
        session.execute(
            "ALTER TABLE dt SET AUTOCOMPACT (ON, horizon = 1000000)")
        session.execute("UPDATE dt SET tag = 'x' WHERE id < 20")
        rows = session.execute("SHOW COMPACTIONS").rows
        auto = [r for r in rows if r[2] == "auto" and r[3] != "declined"]
        assert auto, rows
        assert handler.attached.is_empty()
        # Every executed auto compaction is audited within 25%.
        for r in auto:
            assert r[8] is not None and r[8] <= 0.25, r
        # Data intact after background folding.
        assert session.execute(
            "SELECT count(*) FROM dt WHERE tag = 'x'").scalar() == 20

    def test_declines_are_logged_with_breakdown(self, session):
        make_dualtable(session)
        session.execute("ALTER TABLE dt SET AUTOCOMPACT (ON, horizon = 1)")
        session.execute("UPDATE dt SET tag = 'x' WHERE id < 5")
        rows = session.execute("SHOW COMPACTIONS").rows
        declined = [r for r in rows if r[3] == "declined"]
        assert declined
        assert "not amortized" in declined[-1][9]
        counters = session.cluster.metrics.counters
        assert counters["dualtable.autocompact.declined"] >= 1

    def test_off_disables(self, session):
        make_dualtable(session)
        session.execute(
            "ALTER TABLE dt SET AUTOCOMPACT (ON, horizon = 1000000)")
        session.execute("ALTER TABLE dt SET AUTOCOMPACT (OFF)")
        session.execute("UPDATE dt SET tag = 'x' WHERE id < 20")
        rows = session.execute("SHOW COMPACTIONS").rows
        assert all(r[2] != "auto" for r in rows)

    def test_daemon_never_runs_mid_statement(self, session):
        """Compactions advance the clock between statements: the
        triggering DML's own sim_seconds must not include them."""
        make_dualtable(session)
        before = session.execute(
            "UPDATE dt SET tag = 'a' WHERE id < 20").sim_seconds
        session.execute("COMPACT TABLE dt")
        session.execute(
            "ALTER TABLE dt SET AUTOCOMPACT (ON, horizon = 1000000)")
        after = session.execute(
            "UPDATE dt SET tag = 'b' WHERE id < 20").sim_seconds
        assert after == pytest.approx(before, rel=0.2)

    def test_tick_crash_window_is_safe(self, session):
        """A kill inside the daemon tick surfaces to the caller, but the
        triggering statement had already committed; the table converges
        on the next access."""
        from repro.common.errors import ReproError
        from repro.faults import Fault, FaultPlan

        handler = make_dualtable(session)
        session.execute(
            "ALTER TABLE dt SET AUTOCOMPACT (ON, horizon = 1000000)")
        session.cluster.faults.install(FaultPlan([
            Fault("dualtable.autocompact.tick", nth_hit=1, kind="kill")]))
        with pytest.raises(ReproError):
            session.execute("UPDATE dt SET tag = 'x' WHERE id < 20")
        session.cluster.faults.uninstall()
        handler.recover()
        # The DML itself committed before the daemon died.
        assert session.execute(
            "SELECT count(*) FROM dt WHERE tag = 'x'").scalar() == 20
        # The daemon stays usable: the next statement triggers the fold.
        session.execute("SELECT count(*) FROM dt")
        assert handler.attached.is_empty()

    def test_interval_rate_limits_decisions(self, session):
        make_dualtable(session)
        session.execute("ALTER TABLE dt SET AUTOCOMPACT "
                        "(ON, horizon = 1, interval = 1000000)")
        session.execute("UPDATE dt SET tag = 'x' WHERE id < 5")
        session.execute("UPDATE dt SET tag = 'y' WHERE id < 5")
        session.execute("UPDATE dt SET tag = 'z' WHERE id < 5")
        counters = session.cluster.metrics.counters
        assert counters["dualtable.autocompact.decisions"] == 1


# ----------------------------------------------------------------------
# Determinism: same workload, same compaction schedule, any workers.
# ----------------------------------------------------------------------
MAINT_WORKLOAD = [
    "UPDATE t SET v = 111 WHERE k < 20",
    "SELECT count(*), sum(v) FROM t",
    "SELECT count(*) FROM t WHERE v = 111",
    "DELETE FROM t WHERE k >= 70",
    "SELECT count(*), sum(v) FROM t",
    "UPDATE t SET grp = 'q' WHERE v = 111",
    "SELECT k, grp, v FROM t WHERE grp = 'q' ORDER BY k",
    "SELECT count(*), sum(v) FROM t",
    "SHOW COMPACTIONS",
]


def run_maintenance_workload(workers):
    session = HiveSession(profile=ClusterProfile.laptop(workers=workers))
    session.execute(
        "CREATE TABLE t (k int, grp string, v int) STORED AS dualtable "
        "TBLPROPERTIES ('orc.rows_per_file' = '10', "
        "'dualtable.mode' = 'edit')")
    session.load_rows("t", [(i, "g%d" % (i % 3), i % 7)
                            for i in range(90)])
    session.execute(
        "ALTER TABLE t SET AUTOCOMPACT (ON, horizon = 1000000)")
    transcript = []
    for sql in MAINT_WORKLOAD:
        result = session.execute(sql)
        transcript.append((sql, result.rows, result.sim_seconds))
    cluster = session.cluster
    counters = {name: value
                for name, value in cluster.metrics.counters.items()
                if not name.startswith("cache.")}
    return (transcript, cluster.ledger.snapshot(), counters,
            cluster.clock.now)


@pytest.fixture(scope="module")
def serial_maintenance_run():
    return run_maintenance_workload(workers=1)


def test_daemon_schedule_is_deterministic(serial_maintenance_run):
    parallel = run_maintenance_workload(workers=4)
    serial_transcript = serial_maintenance_run[0]
    for (sql, rows, seconds), (_, expect_rows, expect_seconds) \
            in zip(parallel[0], serial_transcript):
        assert rows == expect_rows, sql
        assert seconds == expect_seconds, sql
    assert parallel[1] == serial_maintenance_run[1]
    assert parallel[2] == serial_maintenance_run[2]
    assert parallel[3] == serial_maintenance_run[3]


def test_daemon_workload_actually_compacts(serial_maintenance_run):
    transcript, _, counters, _ = serial_maintenance_run
    assert counters.get("dualtable.autocompact.compactions", 0) >= 1
    show = [rows for sql, rows, _ in transcript
            if sql == "SHOW COMPACTIONS"][0]
    assert any(r[2] == "auto" and r[3] in ("partial", "full")
               for r in show)
