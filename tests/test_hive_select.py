"""End-to-end SELECT tests across the full engine."""

import pytest

from repro.common.errors import AnalysisError, CatalogError
from repro.hive import HiveSession
from repro.cluster import ClusterProfile


@pytest.fixture
def db():
    session = HiveSession(profile=ClusterProfile.laptop())
    session.execute("CREATE TABLE emp (id int, name string, dept string, "
                    "salary double, boss int)")
    session.load_rows("emp", [
        (1, "ann", "eng", 120.0, None),
        (2, "bob", "eng", 100.0, 1),
        (3, "cat", "sales", 90.0, 1),
        (4, "dan", "sales", 80.0, 3),
        (5, "eve", "hr", None, 1),
    ])
    session.execute("CREATE TABLE dept (dept string, city string)")
    session.load_rows("dept", [
        ("eng", "sf"), ("sales", "nyc"), ("finance", "chi"),
    ])
    return session


class TestBasics:
    def test_select_star(self, db):
        result = db.execute("SELECT * FROM emp")
        assert len(result.rows) == 5
        assert result.names == ["id", "name", "dept", "salary", "boss"]

    def test_projection_and_expression(self, db):
        result = db.execute("SELECT name, salary * 2 AS double_pay "
                            "FROM emp WHERE id = 2")
        assert result.rows == [("bob", 200.0)]
        assert result.names == ["name", "double_pay"]

    def test_where_filters(self, db):
        result = db.execute("SELECT id FROM emp WHERE dept = 'eng'")
        assert sorted(r[0] for r in result.rows) == [1, 2]

    def test_where_null_filtered(self, db):
        result = db.execute("SELECT id FROM emp WHERE salary > 0")
        assert 5 not in [r[0] for r in result.rows]

    def test_is_null_predicate(self, db):
        result = db.execute("SELECT id FROM emp WHERE salary IS NULL")
        assert [r[0] for r in result.rows] == [5]

    def test_order_by_and_limit(self, db):
        result = db.execute("SELECT name FROM emp ORDER BY salary DESC "
                            "LIMIT 2")
        assert result.rows == [("ann",), ("bob",)]

    def test_order_by_nulls_last(self, db):
        result = db.execute("SELECT name FROM emp ORDER BY salary")
        assert result.rows[-1] == ("eve",)

    def test_constant_select(self, db):
        assert db.execute("SELECT 1 + 2, 'x'").rows == [(3, "x")]

    def test_limit_zero(self, db):
        assert db.execute("SELECT id FROM emp LIMIT 0").rows == []

    def test_alias_in_where(self, db):
        result = db.execute("SELECT e.id FROM emp e WHERE e.name = 'cat'")
        assert result.rows == [(3,)]

    def test_unknown_table(self, db):
        with pytest.raises(CatalogError):
            db.execute("SELECT * FROM missing")

    def test_unknown_column(self, db):
        with pytest.raises(AnalysisError):
            db.execute("SELECT nothere FROM emp")


class TestAggregation:
    def test_global_aggregates(self, db):
        result = db.execute("SELECT count(*), sum(salary), min(salary), "
                            "max(salary) FROM emp")
        assert result.rows == [(5, 390.0, 80.0, 120.0)]

    def test_count_ignores_nulls_sum_skips(self, db):
        result = db.execute("SELECT count(salary), avg(salary) FROM emp")
        count, avg = result.rows[0]
        assert count == 4
        assert avg == pytest.approx(390.0 / 4)

    def test_group_by(self, db):
        result = db.execute("SELECT dept, count(*) c FROM emp "
                            "GROUP BY dept ORDER BY dept")
        assert result.rows == [("eng", 2), ("hr", 1), ("sales", 2)]

    def test_group_by_with_having(self, db):
        result = db.execute("SELECT dept, count(*) c FROM emp GROUP BY dept "
                            "HAVING count(*) > 1 ORDER BY dept")
        assert result.rows == [("eng", 2), ("sales", 2)]

    def test_aggregate_expression(self, db):
        result = db.execute("SELECT dept, sum(salary) / count(*) AS mean "
                            "FROM emp WHERE salary IS NOT NULL "
                            "GROUP BY dept ORDER BY dept")
        assert result.rows[0] == ("eng", 110.0)

    def test_count_distinct(self, db):
        result = db.execute("SELECT count(DISTINCT dept) FROM emp")
        assert result.scalar() == 3

    def test_conditional_aggregate(self, db):
        result = db.execute(
            "SELECT sum(CASE WHEN dept = 'eng' THEN 1 ELSE 0 END) FROM emp")
        assert result.scalar() == 2

    def test_aggregate_on_empty_group_set(self, db):
        result = db.execute("SELECT count(*), sum(salary) FROM emp "
                            "WHERE id > 99")
        assert result.rows == [(0, None)]

    def test_group_key_expression(self, db):
        result = db.execute("SELECT substr(name, 1, 1) ch, count(*) "
                            "FROM emp GROUP BY substr(name, 1, 1) "
                            "ORDER BY ch LIMIT 2")
        assert result.rows == [("a", 1), ("b", 1)]

    def test_bare_column_outside_group_by_rejected(self, db):
        with pytest.raises(AnalysisError):
            db.execute("SELECT name, count(*) FROM emp GROUP BY dept")


class TestJoins:
    def test_inner_join(self, db):
        result = db.execute(
            "SELECT e.name, d.city FROM emp e "
            "JOIN dept d ON e.dept = d.dept WHERE e.id = 3")
        assert result.rows == [("cat", "nyc")]

    def test_left_join_null_extends(self, db):
        result = db.execute(
            "SELECT e.name, d.city FROM emp e "
            "LEFT JOIN dept d ON e.dept = d.dept ORDER BY e.name")
        by_name = dict(result.rows)
        assert by_name["eve"] is None       # hr has no dept row
        assert by_name["ann"] == "sf"

    def test_right_join(self, db):
        result = db.execute(
            "SELECT e.name, d.dept FROM emp e "
            "RIGHT JOIN dept d ON e.dept = d.dept")
        depts = [r[1] for r in result.rows]
        assert "finance" in depts           # unmatched right side kept
        assert (None, "finance") in result.rows

    def test_full_join(self, db):
        result = db.execute(
            "SELECT e.name, d.dept FROM emp e "
            "FULL JOIN dept d ON e.dept = d.dept")
        names = [r[0] for r in result.rows]
        depts = [r[1] for r in result.rows]
        assert "eve" in names and "finance" in depts

    def test_self_join(self, db):
        result = db.execute(
            "SELECT w.name, b.name FROM emp w "
            "JOIN emp b ON w.boss = b.id ORDER BY w.name")
        assert ("bob", "ann") in result.rows
        assert ("dan", "cat") in result.rows

    def test_three_way_join(self, db):
        result = db.execute(
            "SELECT w.name, d.city FROM emp w "
            "JOIN emp b ON w.boss = b.id "
            "JOIN dept d ON b.dept = d.dept WHERE w.name = 'dan'")
        assert result.rows == [("dan", "nyc")]

    def test_join_with_extra_condition(self, db):
        result = db.execute(
            "SELECT e.name FROM emp e "
            "JOIN dept d ON e.dept = d.dept AND e.salary > 95 "
            "ORDER BY e.name")
        assert result.rows == [("ann",), ("bob",)]

    def test_join_aggregate(self, db):
        result = db.execute(
            "SELECT d.city, count(*) c FROM emp e "
            "JOIN dept d ON e.dept = d.dept GROUP BY d.city ORDER BY d.city")
        assert result.rows == [("nyc", 2), ("sf", 2)]

    def test_null_keys_do_not_match(self, db):
        # ann's boss is NULL: must not join to anything.
        result = db.execute(
            "SELECT w.name FROM emp w JOIN emp b ON w.boss = b.id")
        assert "ann" not in [r[0] for r in result.rows]

    def test_non_equi_join_rejected(self, db):
        with pytest.raises(AnalysisError):
            db.execute("SELECT e.name FROM emp e "
                       "JOIN dept d ON e.salary > 10")


class TestSubqueries:
    def test_derived_table(self, db):
        result = db.execute(
            "SELECT big.name FROM (SELECT name, salary FROM emp "
            "WHERE salary >= 100) big ORDER BY big.name")
        assert result.rows == [("ann",), ("bob",)]

    def test_scalar_subquery(self, db):
        result = db.execute(
            "SELECT name FROM emp "
            "WHERE salary = (SELECT max(salary) FROM emp)")
        assert result.rows == [("ann",)]

    def test_in_subquery(self, db):
        result = db.execute(
            "SELECT name FROM emp WHERE dept IN "
            "(SELECT dept FROM dept WHERE city = 'nyc') ORDER BY name")
        assert result.rows == [("cat",), ("dan",)]

    def test_scalar_subquery_multirow_rejected(self, db):
        with pytest.raises(AnalysisError):
            db.execute("SELECT name FROM emp "
                       "WHERE salary = (SELECT salary FROM emp)")

    def test_derived_table_with_aggregate(self, db):
        result = db.execute(
            "SELECT s.dept FROM (SELECT dept, count(*) n FROM emp "
            "GROUP BY dept) s WHERE s.n = 1")
        assert result.rows == [("hr",)]


class TestCostReporting:
    def test_select_reports_jobs_and_time(self, db):
        result = db.execute("SELECT count(*) FROM emp")
        assert result.sim_seconds > 0
        assert len(result.jobs) == 1

    def test_join_runs_a_reduce_phase(self, db):
        simple = db.execute("SELECT id FROM emp")
        joined = db.execute("SELECT e.id FROM emp e "
                            "JOIN dept d ON e.dept = d.dept")
        assert simple.jobs[0].num_reduce_tasks == 0
        assert joined.jobs[0].num_reduce_tasks >= 1
        assert joined.jobs[0].shuffle_bytes > 0

    def test_projection_cheaper_than_star(self, db):
        narrow = db.execute("SELECT id FROM emp")
        wide = db.execute("SELECT * FROM emp")
        assert narrow.sim_seconds < wide.sim_seconds


class TestUnionAll:
    def test_basic_union(self, db):
        result = db.execute(
            "SELECT name FROM emp WHERE dept = 'eng' "
            "UNION ALL SELECT name FROM emp WHERE dept = 'hr'")
        assert sorted(result.rows) == [("ann",), ("bob",), ("eve",)]

    def test_duplicates_kept(self, db):
        result = db.execute(
            "SELECT dept FROM emp UNION ALL SELECT dept FROM emp")
        assert len(result.rows) == 10

    def test_union_in_derived_table(self, db):
        result = db.execute(
            "SELECT u.dept, count(*) c FROM "
            "(SELECT dept FROM emp UNION ALL SELECT dept FROM dept) u "
            "GROUP BY u.dept ORDER BY u.dept")
        by_dept = dict(result.rows)
        assert by_dept["eng"] == 3       # 2 from emp + 1 from dept
        assert by_dept["finance"] == 1

    def test_arity_mismatch_rejected(self, db):
        import pytest as _pytest
        from repro.common.errors import AnalysisError
        with _pytest.raises(AnalysisError):
            db.execute("SELECT id FROM emp UNION ALL "
                       "SELECT id, name FROM emp")

    def test_union_of_aggregates(self, db):
        result = db.execute(
            "SELECT count(*) FROM emp UNION ALL SELECT count(*) FROM dept")
        assert sorted(r[0] for r in result.rows) == [3, 5]

    def test_insert_from_union(self, db):
        db.execute("CREATE TABLE all_names (n string)")
        db.execute("INSERT INTO all_names "
                   "SELECT name FROM emp UNION ALL SELECT dept FROM dept")
        assert db.execute(
            "SELECT count(*) FROM all_names").scalar() == 8


class TestSelectDistinct:
    def test_distinct_single_column(self, db):
        result = db.execute("SELECT DISTINCT dept FROM emp ORDER BY dept")
        assert result.rows == [("eng",), ("hr",), ("sales",)]

    def test_distinct_multi_column(self, db):
        db.execute("INSERT INTO emp VALUES (6, 'ann', 'eng', 120.0, null)")
        result = db.execute("SELECT DISTINCT name, dept FROM emp "
                            "WHERE dept = 'eng' ORDER BY name")
        assert result.rows == [("ann", "eng"), ("bob", "eng")]

    def test_distinct_preserves_first_occurrence_order(self, db):
        result = db.execute("SELECT DISTINCT dept FROM emp")
        assert result.rows[0] == ("eng",)

    def test_distinct_with_aggregate_rejected(self, db):
        with pytest.raises(AnalysisError):
            db.execute("SELECT DISTINCT count(*) FROM emp")
