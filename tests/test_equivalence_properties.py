"""Cross-implementation equivalence properties.

Different physical layouts must never change logical results:

* partitioned vs flat ORC tables answer every query identically;
* MERGE INTO behaves like the equivalent UPDATE+INSERT program;
* all four storage backends agree on any DML statement's outcome.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterProfile
from repro.hive import HiveSession


def fresh_session():
    return HiveSession(profile=ClusterProfile.laptop())


# ----------------------------------------------------------------------
# Partitioned vs flat.
# ----------------------------------------------------------------------
rows_strategy = st.lists(
    st.tuples(st.integers(0, 99),
              st.integers(0, 200),
              st.sampled_from(["d1", "d2", "d3", "d4"])),
    min_size=0, max_size=50)


def _load_pair(rows):
    flat = fresh_session()
    flat.execute("CREATE TABLE t (k int, v int, day string)")
    flat.load_rows("t", rows)
    part = fresh_session()
    part.execute("CREATE TABLE t (k int, v int) "
                 "PARTITIONED BY (day string)")
    part.load_rows("t", rows)
    return flat, part


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(rows=rows_strategy,
       day=st.sampled_from(["d1", "d2", "d3", "d9"]),
       threshold=st.integers(0, 100))
def test_partitioned_equals_flat_for_queries(rows, day, threshold):
    flat, part = _load_pair(rows)
    queries = [
        "SELECT count(*), sum(v) FROM t",
        "SELECT count(*) FROM t WHERE day = '%s'" % day,
        "SELECT day, count(*) FROM t WHERE k < %d GROUP BY day "
        "ORDER BY day" % threshold,
        "SELECT k, v, day FROM t WHERE day >= 'd2' ORDER BY k, v, day",
    ]
    for sql in queries:
        assert flat.execute(sql).rows == part.execute(sql).rows, sql


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(rows=rows_strategy, day=st.sampled_from(["d1", "d2", "d3"]),
       threshold=st.integers(0, 100))
def test_partitioned_equals_flat_for_dml(rows, day, threshold):
    flat, part = _load_pair(rows)
    statements = [
        "UPDATE t SET v = v + 1 WHERE day = '%s'" % day,
        "DELETE FROM t WHERE k >= %d AND day = '%s'" % (threshold, day),
        "UPDATE t SET v = 0 WHERE k < %d" % (threshold // 2),
    ]
    for sql in statements:
        a = flat.execute(sql)
        b = part.execute(sql)
        assert a.affected == b.affected, sql
    final = "SELECT k, v, day FROM t ORDER BY k, v, day"
    assert flat.execute(final).rows == part.execute(final).rows


# ----------------------------------------------------------------------
# MERGE vs UPDATE+INSERT program.
# ----------------------------------------------------------------------
merge_rows = st.lists(st.tuples(st.integers(0, 30), st.integers(0, 99)),
                      min_size=0, max_size=25)


@pytest.mark.parametrize("storage", ["orc", "dualtable"])
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(target=merge_rows, source=merge_rows)
def test_merge_equals_update_plus_insert(storage, target, source):
    # Deduplicate keys (MERGE's first-source-wins would otherwise add
    # order dependence that the oracle program doesn't model).
    target = list({k: (k, v) for k, v in target}.values())
    source = list({k: (k, v) for k, v in source}.values())

    merged = fresh_session()
    merged.execute("CREATE TABLE t (k int, v int) STORED AS %s" % storage)
    merged.load_rows("t", target)
    merged.execute("CREATE TABLE s (k int, v int)")
    merged.load_rows("s", source)
    merged.execute(
        "MERGE INTO t USING s ON t.k = s.k "
        "WHEN MATCHED THEN UPDATE SET v = s.v "
        "WHEN NOT MATCHED THEN INSERT VALUES (s.k, s.v)")

    oracle = {k: v for k, v in target}
    for k, v in source:
        oracle[k] = v
    got = sorted(merged.execute("SELECT k, v FROM t").rows)
    assert got == sorted(oracle.items())


# ----------------------------------------------------------------------
# All storage backends agree.
# ----------------------------------------------------------------------
dml_script = st.lists(st.tuples(
    st.sampled_from(["update", "delete", "insert"]),
    st.integers(0, 40)), min_size=1, max_size=6)


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(script=dml_script)
def test_all_backends_agree_on_dml_script(script):
    finals = {}
    for storage in ("orc", "hbase", "dualtable", "acid"):
        session = fresh_session()
        session.execute("CREATE TABLE t (k int, v int) STORED AS %s"
                        % storage)
        session.load_rows("t", [(i, i) for i in range(30)])
        next_key = 1000
        for op, key in script:
            if op == "update":
                session.execute("UPDATE t SET v = v + 7 WHERE k = %d"
                                % key)
            elif op == "delete":
                session.execute("DELETE FROM t WHERE k = %d" % key)
            else:
                session.execute("INSERT INTO t VALUES (%d, %d)"
                                % (next_key, key))
                next_key += 1
        finals[storage] = sorted(
            session.execute("SELECT k, v FROM t").rows)
    reference = finals["orc"]
    for storage, rows in finals.items():
        assert rows == reference, storage
