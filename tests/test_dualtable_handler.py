"""End-to-end tests of the DualTable storage handler through the session."""

import pytest

from repro.cluster import ClusterProfile
from repro.common.errors import CompactionInProgressError
from repro.core.record_id import encode_record_id
from repro.hive import HiveSession


@pytest.fixture
def session():
    return HiveSession(profile=ClusterProfile.laptop())


def make_dualtable(session, mode="edit", n=200, rows_per_file=50):
    session.execute(
        "CREATE TABLE dt (id int, day string, amount double, tag string) "
        "STORED AS DUALTABLE TBLPROPERTIES ("
        "'dualtable.mode' = '%s', 'orc.rows_per_file' = '%d', "
        "'orc.stripe_rows' = '10')" % (mode, rows_per_file))
    rows = [(i, "2013-07-%02d" % (1 + i % 20), float(i), "t%d" % (i % 3))
            for i in range(n)]
    session.load_rows("dt", rows)
    return session.table("dt").handler


class TestReads:
    def test_scan_equals_loaded_rows(self, session):
        make_dualtable(session)
        assert session.execute("SELECT count(*) FROM dt").scalar() == 200

    def test_splits_one_per_master_file(self, session):
        handler = make_dualtable(session, rows_per_file=50)
        assert len(handler.scan_splits()) == 4

    def test_read_split_with_rids_sorted(self, session):
        handler = make_dualtable(session)
        for split in handler.scan_splits():
            rids = [rid for rid, _ in
                    handler.read_split_with_rids(split, None)]
            assert rids == sorted(rids)

    def test_pruning_disabled_when_attached_nonempty(self, session):
        handler = make_dualtable(session)
        splits = handler.scan_splits(ranges={"id": None})
        assert all(s.payload["prune_safe"] for s in splits)
        session.execute("UPDATE dt SET tag = 'x' WHERE id = 0")
        splits = handler.scan_splits(ranges={"id": None})
        # first file now has attached entries: pruning unsafe there.
        assert not splits[0].payload["prune_safe"]
        assert splits[1].payload["prune_safe"]


class TestUpdateCorrectness:
    def test_update_visible_through_union_read(self, session):
        make_dualtable(session)
        session.execute("UPDATE dt SET amount = 0 WHERE day = '2013-07-03'")
        got = session.execute(
            "SELECT count(*) FROM dt WHERE amount = 0 AND id > 0")
        assert got.scalar() == 10

    def test_update_moves_row_into_predicate_range(self, session):
        """Pruning soundness: a second update must see values written by
        the first one even when stripe stats say otherwise."""
        make_dualtable(session)
        session.execute("UPDATE dt SET day = '2099-01-01' WHERE id = 5")
        result = session.execute(
            "UPDATE dt SET tag = 'future' WHERE day = '2099-01-01'")
        assert result.affected == 1
        assert session.execute("SELECT tag FROM dt WHERE id = 5"
                               ).scalar() == "future"

    def test_repeated_updates_last_wins(self, session):
        make_dualtable(session)
        for value in ("a", "b", "c"):
            session.execute("UPDATE dt SET tag = '%s' WHERE id = 7" % value)
        assert session.execute(
            "SELECT tag FROM dt WHERE id = 7").scalar() == "c"

    def test_edit_plan_does_not_touch_master(self, session):
        handler = make_dualtable(session)
        files_before = handler.master.file_paths()
        session.execute("UPDATE dt SET tag = 'x' WHERE id < 10")
        assert handler.master.file_paths() == files_before
        assert not handler.attached.is_empty()

    def test_overwrite_plan_rewrites_master_and_clears_attached(self,
                                                                session):
        handler = make_dualtable(session, mode="edit")
        session.execute("UPDATE dt SET tag = 'x' WHERE id < 10")
        assert not handler.attached.is_empty()
        handler.mode = "overwrite"
        session.execute("UPDATE dt SET tag = 'y' WHERE id < 5")
        assert handler.attached.is_empty()
        assert session.execute(
            "SELECT count(*) FROM dt WHERE tag = 'y'").scalar() == 5
        # earlier edit survived the rewrite
        assert session.execute(
            "SELECT count(*) FROM dt WHERE tag = 'x'").scalar() == 5

    def test_update_history_tracked(self, session):
        handler = make_dualtable(session)
        session.execute("UPDATE dt SET tag = 'v1' WHERE id = 3")
        session.execute("UPDATE dt SET tag = 'v2' WHERE id = 3")
        history = handler.attached.history(encode_record_id(0, 3))
        tag_index = handler.schema.index_of("tag")
        assert [v for _, v in history[tag_index]] == ["v2", "v1"]


class TestDeleteCorrectness:
    def test_delete_hides_rows(self, session):
        make_dualtable(session)
        result = session.execute("DELETE FROM dt WHERE id < 20")
        assert result.affected == 20
        assert session.execute("SELECT count(*) FROM dt").scalar() == 180
        assert session.execute("SELECT min(id) FROM dt").scalar() == 20

    def test_delete_then_insert_appends_new_file(self, session):
        handler = make_dualtable(session)
        session.execute("DELETE FROM dt WHERE id >= 100")
        session.execute("INSERT INTO dt VALUES (999, 'd', 1.0, 'new')")
        assert session.execute("SELECT count(*) FROM dt").scalar() == 101
        assert session.execute(
            "SELECT tag FROM dt WHERE id = 999").scalar() == "new"

    def test_aggregates_respect_deletes(self, session):
        make_dualtable(session, n=10, rows_per_file=10)
        before = session.execute("SELECT sum(amount) FROM dt").scalar()
        session.execute("DELETE FROM dt WHERE id = 9")
        after = session.execute("SELECT sum(amount) FROM dt").scalar()
        assert before - after == pytest.approx(9.0)


class TestCompact:
    def test_compact_preserves_logical_table(self, session):
        handler = make_dualtable(session)
        session.execute("UPDATE dt SET tag = 'upd' WHERE id < 30")
        session.execute("DELETE FROM dt WHERE id >= 150")
        expect = session.execute("SELECT * FROM dt ORDER BY id").rows
        result = session.execute("COMPACT TABLE dt")
        assert result.plan == "compact"
        got = session.execute("SELECT * FROM dt ORDER BY id").rows
        assert got == expect
        assert handler.attached.is_empty()

    def test_compact_empty_attached_is_noop(self, session):
        make_dualtable(session)
        result = session.execute("COMPACT TABLE dt")
        assert result.plan == "compact-noop"

    def test_compact_blocks_concurrent_ops(self, session):
        handler = make_dualtable(session)
        handler._compacting = True
        with pytest.raises(CompactionInProgressError):
            handler.scan_splits()
        with pytest.raises(CompactionInProgressError):
            handler.insert_rows([(1, "d", 1.0, "t")])
        handler._compacting = False

    def test_compact_resets_read_cost(self, session):
        make_dualtable(session)
        session.execute("UPDATE dt SET tag = 'x' WHERE id < 100")
        costly = session.execute("SELECT count(*) FROM dt").sim_seconds
        session.execute("COMPACT TABLE dt")
        cheap = session.execute("SELECT count(*) FROM dt").sim_seconds
        assert cheap < costly


class TestCostModelIntegration:
    def test_ratio_estimated_from_stripe_stats(self, session):
        make_dualtable(session, mode="cost")
        result = session.execute(
            "UPDATE dt SET tag = 'x' WHERE id < 20")
        assert result.detail["ratio"] == pytest.approx(0.1, abs=0.05)

    def test_sampling_fallback_for_opaque_predicate(self, session):
        make_dualtable(session, mode="cost")
        # column-vs-column predicate: no ranges, must sample.
        result = session.execute(
            "UPDATE dt SET tag = 'x' WHERE id % 2 = 0")
        assert 0.3 < result.detail["ratio"] < 0.7

    def test_detail_reports_costs(self, session):
        make_dualtable(session, mode="cost")
        result = session.execute("UPDATE dt SET tag = 'x' WHERE id = 1")
        for key in ("plan", "cost_plan", "cost_difference",
                    "edit_seconds", "overwrite_seconds", "ratio"):
            assert key in result.detail

    def test_forced_modes_override_cost_model(self, session):
        make_dualtable(session, mode="overwrite")
        result = session.execute("UPDATE dt SET tag = 'x' WHERE id = 1")
        assert result.detail["plan"] == "overwrite"

    def test_bad_mode_rejected(self, session):
        with pytest.raises(Exception):
            session.execute(
                "CREATE TABLE bad (a int) STORED AS DUALTABLE "
                "TBLPROPERTIES ('dualtable.mode' = 'sometimes')")

    def test_ratio_recorded_in_history(self, session):
        handler = make_dualtable(session, mode="cost")
        session.execute("UPDATE dt SET tag = 'x' WHERE id < 20")
        history = handler.metadata.ratio_history("dt")
        assert len(history) == 1
        assert history[0] == pytest.approx(0.1, abs=0.05)
