"""Unit tests for the aggregate accumulator protocol."""

import pytest

from repro.common.errors import AnalysisError
from repro.hive.aggregates import (AggregateSpec, rewrite_aggregates,
                                   validate_no_nested_aggregates)
from repro.hive.expressions import SlotRef
from repro.hive.parser import parse


def _spec(name, distinct=False, count_star=False):
    return AggregateSpec(name, (lambda values: values[0]),
                         distinct=distinct, count_star=count_star)


def _run(spec, column):
    acc = spec.init()
    for value in column:
        acc = spec.add(acc, (value,))
    return spec.finalize(acc)


def _run_partitioned(spec, column, split_at):
    """Simulate the map-side partial + reduce-side merge path."""
    left = spec.init()
    for value in column[:split_at]:
        left = spec.add(left, (value,))
    right = spec.init()
    for value in column[split_at:]:
        right = spec.add(right, (value,))
    return spec.finalize(spec.merge(left, right))


class TestAccumulators:
    def test_sum(self):
        assert _run(_spec("sum"), [1, 2, 3]) == 6

    def test_sum_empty_is_null(self):
        assert _run(_spec("sum"), []) is None

    def test_sum_skips_nulls(self):
        assert _run(_spec("sum"), [1, None, 2]) == 3

    def test_count_column_skips_nulls(self):
        assert _run(_spec("count"), [1, None, 2]) == 2

    def test_count_star_counts_everything(self):
        assert _run(_spec("count", count_star=True), [1, None, 2]) == 3

    def test_avg(self):
        assert _run(_spec("avg"), [2, 4]) == 3.0
        assert _run(_spec("avg"), []) is None

    def test_min_max(self):
        assert _run(_spec("min"), [5, 1, 9]) == 1
        assert _run(_spec("max"), [5, 1, 9]) == 9

    def test_min_max_strings(self):
        assert _run(_spec("min"), ["b", "a"]) == "a"

    @pytest.mark.parametrize("name,column,expected", [
        ("sum", [1, 2, 3, 4], 10),
        ("count", [1, None, 3, 4], 3),
        ("avg", [2.0, 4.0, 6.0, 8.0], 5.0),
        ("min", [4, 2, 9, 7], 2),
        ("max", [4, 2, 9, 7], 9),
    ])
    def test_merge_equals_single_pass(self, name, column, expected):
        spec = _spec(name)
        for split in range(len(column) + 1):
            assert _run_partitioned(spec, column, split) == expected

    def test_distinct_count(self):
        spec = _spec("count", distinct=True)
        assert _run(spec, [1, 1, 2, None, 2]) == 2

    def test_distinct_sum_merge(self):
        spec = _spec("sum", distinct=True)
        assert _run_partitioned(spec, [1, 1, 2, 2, 3], 2) == 6

    def test_distinct_avg_and_min_max(self):
        assert _run(_spec("avg", distinct=True), [2, 2, 4]) == 3.0
        assert _run(_spec("min", distinct=True), [5, 5, 1]) == 1
        assert _run(_spec("max", distinct=True), [5, 5, 1]) == 5

    def test_distinct_empty(self):
        assert _run(_spec("sum", distinct=True), [None]) is None


class TestRewrite:
    def _parts(self, sql):
        stmt = parse(sql)
        calls = []
        rewritten = [rewrite_aggregates(item.expr, stmt.group_by, calls)
                     for item in stmt.items]
        return stmt, calls, rewritten

    def test_group_key_becomes_slot_zero(self):
        _, calls, rewritten = self._parts(
            "SELECT g, sum(v) FROM t GROUP BY g")
        assert isinstance(rewritten[0], SlotRef)
        assert rewritten[0].index == 0
        assert rewritten[1].index == 1
        assert len(calls) == 1

    def test_duplicate_aggregates_share_a_slot(self):
        _, calls, rewritten = self._parts(
            "SELECT sum(v), sum(v) + 1 FROM t")
        assert len(calls) == 1
        assert rewritten[0].index == 0

    def test_expression_over_aggregates(self):
        _, calls, rewritten = self._parts(
            "SELECT sum(v) / count(*) FROM t")
        assert len(calls) == 2

    def test_bare_column_not_in_group_by_rejected(self):
        with pytest.raises(AnalysisError):
            self._parts("SELECT v, count(*) FROM t GROUP BY g")

    def test_nested_aggregate_rejected(self):
        stmt = parse("SELECT sum(count(*)) FROM t")
        calls = []
        rewrite_aggregates(stmt.items[0].expr, [], calls)
        with pytest.raises(AnalysisError):
            validate_no_nested_aggregates(calls)
