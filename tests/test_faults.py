"""Unit tests for the fault-injection subsystem itself."""

import pytest

from repro.common.errors import FaultInjectedError
from repro.common.rng import make_rng
from repro.faults import (INJECTION_POINTS, POINT_KINDS, Fault,
                          FaultInjector, FaultPlan)


class TestInjectorMechanics:
    def test_noop_without_plan(self):
        injector = FaultInjector()
        assert injector.hit("hbase.put") is None
        assert injector.hit_count("hbase.put") == 0   # not even counted

    def test_fires_at_exact_nth_hit(self):
        injector = FaultInjector()
        injector.install(FaultPlan([Fault("hbase.put", nth_hit=3)]))
        injector.hit("hbase.put")
        injector.hit("hbase.put")
        with pytest.raises(FaultInjectedError) as err:
            injector.hit("hbase.put")
        assert err.value.point == "hbase.put"
        assert err.value.nth_hit == 3
        assert not err.value.fatal

    def test_fires_at_most_once(self):
        injector = FaultInjector()
        injector.install(FaultPlan([Fault("mapreduce.map", nth_hit=1)]))
        with pytest.raises(FaultInjectedError):
            injector.hit("mapreduce.map")
        for _ in range(10):
            assert injector.hit("mapreduce.map") is None
        assert len(injector.fired) == 1

    def test_kill_is_fatal_crash_is_not(self):
        injector = FaultInjector()
        injector.install(FaultPlan([
            Fault("dualtable.compact.swap", nth_hit=1, kind="kill"),
            Fault("mapreduce.map", nth_hit=1, kind="crash"),
        ]))
        with pytest.raises(FaultInjectedError) as err:
            injector.hit("dualtable.compact.swap")
        assert err.value.fatal
        with pytest.raises(FaultInjectedError) as err:
            injector.hit("mapreduce.map")
        assert not err.value.fatal

    def test_action_kinds_run_bound_action(self):
        injector = FaultInjector()
        killed = []
        injector.bind("datanode_loss", killed.append)
        fault = Fault("hdfs.write_block", nth_hit=1, kind="datanode_loss")
        injector.install(FaultPlan([fault]))
        returned = injector.hit("hdfs.write_block")
        assert returned is fault        # non-raising kinds return the fault
        assert killed == [fault]

    def test_region_crash_runs_action_then_raises(self):
        injector = FaultInjector()
        crashed = []
        injector.bind("region_crash", crashed.append)
        injector.install(FaultPlan([
            Fault("hbase.put", nth_hit=1, kind="region_crash")]))
        with pytest.raises(FaultInjectedError):
            injector.hit("hbase.put")
        assert len(crashed) == 1

    def test_slow_faults_do_not_raise(self):
        injector = FaultInjector()
        injector.install(FaultPlan([
            Fault("mapreduce.map", nth_hit=1, kind="slow", factor=4.0)]))
        fault = injector.hit("mapreduce.map")
        assert fault.kind == "slow"
        assert fault.factor == 4.0

    def test_pause_suppresses_hits_entirely(self):
        injector = FaultInjector()
        injector.install(FaultPlan([Fault("hbase.put", nth_hit=1)]))
        with injector.paused():
            assert injector.hit("hbase.put") is None
        # Paused hits are not counted either: the fault still fires at
        # the first *observed* hit.
        with pytest.raises(FaultInjectedError):
            injector.hit("hbase.put")

    def test_install_resets_counters(self):
        injector = FaultInjector()
        injector.install(FaultPlan([Fault("hbase.put", nth_hit=2)]))
        injector.hit("hbase.put")
        injector.install(FaultPlan([Fault("hbase.put", nth_hit=2)]))
        injector.hit("hbase.put")
        with pytest.raises(FaultInjectedError):
            injector.hit("hbase.put")


class TestFaultPlans:
    def test_random_plan_is_deterministic_per_seed(self):
        plan_a = FaultPlan.random(make_rng("chaos", 7))
        plan_b = FaultPlan.random(make_rng("chaos", 7))
        assert plan_a.faults == plan_b.faults

    def test_random_plans_differ_across_seeds(self):
        plans = [FaultPlan.random(make_rng("chaos", s)).faults
                 for s in range(20)]
        assert any(p != plans[0] for p in plans[1:])

    def test_random_plan_uses_known_points_and_kinds(self):
        for seed in range(30):
            for fault in FaultPlan.random(make_rng("chaos", seed)):
                assert fault.point in INJECTION_POINTS
                assert fault.kind in POINT_KINDS[fault.point]
                assert fault.nth_hit >= 1
