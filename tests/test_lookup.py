"""The LOOKUP plan: point reads that skip MapReduce.

Covers the full surface of the third plan type: PRIMARY KEY DDL and the
``SET dualtable.plan`` knob through the parser and session, eligibility
rules (equality / IN / closed BETWEEN only, row-count cap, forced-mode
rejections for non-PK predicates, aggregates and joins), result parity
with the MR scan plan under deltas / deletes / PK-moving updates,
EXPLAIN and EXPLAIN ANALYZE output, the metrics and cost-audit trail,
and the no-double-charge guarantee when a fault forces a mid-lookup
fallback to the scan plan.
"""

import pytest

from repro.cluster import ClusterProfile
from repro.common.errors import AnalysisError, ParseError
from repro.faults import Fault, FaultPlan
from repro.hive import HiveSession
from repro.hive import ast_nodes as ast
from repro.hive.parser import parse

ROWS = [(i, i * 10, "n%03d" % i) for i in range(100)]


def build_session(rows=ROWS, rows_per_file=25, stripe_rows=5, workers=1,
                  mode="cost", extra_props=""):
    session = HiveSession(profile=ClusterProfile.laptop(workers=workers))
    session.execute(
        "CREATE TABLE t (k int, v int, name string, PRIMARY KEY (k)) "
        "STORED AS DUALTABLE TBLPROPERTIES "
        "('orc.rows_per_file' = '%d', 'orc.stripe_rows' = '%d', "
        "'dualtable.mode' = '%s'%s)"
        % (rows_per_file, stripe_rows, mode, extra_props))
    session.load_rows("t", rows)
    return session


def lookup_vs_scan(session, sql):
    """Run ``sql`` under both forced plans; return (lookup, scan) rows."""
    session.execute("SET dualtable.plan = lookup")
    looked = session.execute(sql)
    session.execute("SET dualtable.plan = scan")
    scanned = session.execute(sql)
    session.execute("SET dualtable.plan = cost")
    assert looked.plan == "lookup", sql
    assert scanned.plan.startswith("select("), sql
    return looked.rows, scanned.rows


# ----------------------------------------------------------------------
# Parser.
# ----------------------------------------------------------------------
class TestParser:
    def test_primary_key_clause_inside_column_list(self):
        stmt = parse("CREATE TABLE t (k int, v int, PRIMARY KEY (k)) "
                     "STORED AS DUALTABLE")
        assert isinstance(stmt, ast.CreateTableStmt)
        assert stmt.primary_key == "k"
        assert [n for n, _ in stmt.columns] == ["k", "v"]

    def test_primary_key_is_case_insensitive(self):
        stmt = parse("CREATE TABLE t (K int, primary key (K)) "
                     "STORED AS DUALTABLE")
        assert stmt.primary_key == "k"

    def test_composite_primary_key_rejected(self):
        with pytest.raises(ParseError, match="composite"):
            parse("CREATE TABLE t (a int, b int, PRIMARY KEY (a, b)) "
                  "STORED AS DUALTABLE")

    def test_duplicate_primary_key_rejected(self):
        with pytest.raises(ParseError):
            parse("CREATE TABLE t (a int, PRIMARY KEY (a), "
                  "PRIMARY KEY (a)) STORED AS DUALTABLE")

    def test_set_option_statement(self):
        stmt = parse("SET dualtable.plan = lookup")
        assert isinstance(stmt, ast.SetOptionStmt)
        assert stmt.name == "dualtable.plan"
        assert stmt.value == "lookup"

    def test_set_option_name_is_lowercased(self):
        stmt = parse("SET DualTable.Plan = SCAN")
        assert stmt.name == "dualtable.plan"


# ----------------------------------------------------------------------
# Session-level DDL / knob validation.
# ----------------------------------------------------------------------
class TestSessionValidation:
    def test_primary_key_requires_dualtable_storage(self):
        session = HiveSession(profile=ClusterProfile.laptop())
        with pytest.raises(AnalysisError, match="DUALTABLE"):
            session.execute("CREATE TABLE t (k int, PRIMARY KEY (k)) "
                            "STORED AS orc")

    def test_primary_key_column_must_exist(self):
        session = HiveSession(profile=ClusterProfile.laptop())
        with pytest.raises(AnalysisError, match="column list"):
            session.execute("CREATE TABLE t (k int, PRIMARY KEY (nope)) "
                            "STORED AS DUALTABLE")

    def test_primary_key_lands_in_properties_and_handler(self):
        session = build_session()
        info = session.table("t")
        assert info.properties["dualtable.primary_key"] == "k"
        assert info.handler.primary_key == "k"

    def test_unknown_set_option_rejected(self):
        session = build_session()
        with pytest.raises(AnalysisError, match="unknown session option"):
            session.execute("SET dualtable.bogus = 1")

    def test_bad_plan_value_rejected(self):
        session = build_session()
        with pytest.raises(AnalysisError, match="bad value"):
            session.execute("SET dualtable.plan = turbo")
        assert session.plan_mode == "cost"

    def test_set_plan_round_trip(self):
        session = build_session()
        result = session.execute("SET dualtable.plan = scan")
        assert result.plan == "set"
        assert session.plan_mode == "scan"
        session.execute("SET dualtable.plan = cost")
        assert session.plan_mode == "cost"


# ----------------------------------------------------------------------
# Eligibility and forced-mode rejections.
# ----------------------------------------------------------------------
class TestEligibility:
    def test_point_equality_routes_to_lookup(self):
        session = build_session()
        result = session.execute("SELECT v FROM t WHERE k = 42")
        assert result.plan == "lookup"
        assert result.rows == [(420,)]
        assert result.jobs == []
        assert result.detail["plan"] == "lookup"

    def test_closed_between_routes_to_lookup(self):
        session = build_session()
        result = session.execute(
            "SELECT k, v FROM t WHERE k BETWEEN 10 AND 13")
        assert result.plan == "lookup"
        assert result.rows == [(k, k * 10) for k in range(10, 14)]

    def test_in_list_routes_to_lookup(self):
        session = build_session()
        result = session.execute(
            "SELECT k, v FROM t WHERE k IN (3, 97, 55)")
        assert result.plan == "lookup"
        assert sorted(result.rows) == [(3, 30), (55, 550), (97, 970)]

    def test_open_range_is_ineligible(self):
        session = build_session()
        result = session.execute("SELECT v FROM t WHERE k > 5")
        assert result.plan.startswith("select(")
        session.execute("SET dualtable.plan = lookup")
        with pytest.raises(AnalysisError, match="does not bound"):
            session.execute("SELECT v FROM t WHERE k > 5")

    def test_non_pk_predicate_is_ineligible(self):
        session = build_session()
        session.execute("SET dualtable.plan = lookup")
        with pytest.raises(AnalysisError, match="does not bound"):
            session.execute("SELECT k FROM t WHERE v = 420")

    def test_row_limit_caps_eligibility(self):
        session = build_session(
            extra_props=", 'dualtable.lookup.max_rows' = '10'")
        assert session.table("t").handler.lookup_rows_limit == 10
        session.execute("SET dualtable.plan = lookup")
        result = session.execute("SELECT v FROM t WHERE k = 7")
        assert result.plan == "lookup"
        with pytest.raises(AnalysisError, match="max_rows"):
            session.execute("SELECT v FROM t WHERE k BETWEEN 0 AND 90")

    def test_forced_lookup_rejects_aggregates(self):
        session = build_session()
        session.execute("SET dualtable.plan = lookup")
        with pytest.raises(AnalysisError, match="aggregation"):
            session.execute("SELECT count(*) FROM t WHERE k = 3")

    def test_forced_lookup_rejects_joins(self):
        session = build_session()
        session.execute(
            "CREATE TABLE u (k int, tag string, PRIMARY KEY (k)) "
            "STORED AS DUALTABLE")
        session.load_rows("u", [(i, "u%d" % i) for i in range(10)])
        session.execute("SET dualtable.plan = lookup")
        with pytest.raises(AnalysisError, match="join"):
            session.execute("SELECT t.v, u.tag FROM t JOIN u "
                            "ON t.k = u.k WHERE t.k = 3")

    def test_forced_lookup_rejects_tables_without_pk(self):
        session = build_session()
        session.execute("CREATE TABLE plain (k int, v int) "
                        "STORED AS DUALTABLE")
        session.load_rows("plain", [(1, 2)])
        session.execute("SET dualtable.plan = lookup")
        with pytest.raises(AnalysisError, match="no PRIMARY KEY"):
            session.execute("SELECT v FROM plain WHERE k = 1")

    def test_forced_scan_counts_eligible_statements(self):
        session = build_session()
        session.execute("SET dualtable.plan = scan")
        session.execute("SELECT v FROM t WHERE k = 1")
        session.execute("SELECT v FROM t WHERE k = 2")
        counters = session.cluster.metrics.counters
        assert counters["dualtable.plan.lookup_eligible_scan.t"] == 2
        assert counters.get("dualtable.plan.lookup.t", 0) == 0


# ----------------------------------------------------------------------
# Result parity with the scan plan.
# ----------------------------------------------------------------------
class TestScanParity:
    def test_point_lookup_matches_scan(self):
        session = build_session()
        for sql in ("SELECT k, v, name FROM t WHERE k = 0",
                    "SELECT k, v, name FROM t WHERE k = 99",
                    "SELECT v FROM t WHERE k = 50",
                    "SELECT k FROM t WHERE k = 12345"):
            looked, scanned = lookup_vs_scan(session, sql)
            assert looked == scanned, sql

    def test_lookup_sees_live_deltas(self):
        session = build_session(mode="edit")
        session.execute("UPDATE t SET v = -1 WHERE k BETWEEN 40 AND 44")
        session.execute("DELETE FROM t WHERE k = 42")
        assert not session.table("t").handler.attached.is_empty()
        for k, expect in ((40, [(40, -1)]), (42, []), (50, [(50, 500)])):
            sql = "SELECT k, v FROM t WHERE k = %d" % k
            looked, scanned = lookup_vs_scan(session, sql)
            assert looked == scanned == expect, sql

    def test_pk_moving_update_reads_dirty_files_whole(self):
        """A delta that rewrites the PK column defeats stripe pruning
        for its file; the planner must read that file in full."""
        session = build_session(mode="edit")
        session.execute("UPDATE t SET k = 500 WHERE k = 7")
        handler = session.table("t").handler
        path = handler.master.file_paths()[0]
        file_id = handler.master.file_id_of(path)
        assert handler.attached.pk_dirty_in_file(file_id, 0)
        for sql in ("SELECT k, v FROM t WHERE k = 500",
                    "SELECT k, v FROM t WHERE k = 7"):
            looked, scanned = lookup_vs_scan(session, sql)
            assert looked == scanned, sql
        result = session.execute("SELECT k, v FROM t WHERE k = 500")
        assert result.rows == [(500, 70)]

    def test_residual_filter_applies_after_lookup(self):
        session = build_session()
        looked, scanned = lookup_vs_scan(
            session, "SELECT k, v FROM t WHERE k BETWEEN 10 AND 20 "
                     "AND v > 150")
        assert looked == scanned
        assert looked == [(k, k * 10) for k in range(16, 21)]

    @pytest.mark.parametrize("engine", ["row", "vectorized"])
    def test_engines_agree_on_lookup_rows(self, engine):
        session = build_session(mode="edit")
        session.set_engine(engine)
        session.execute("UPDATE t SET v = 0 WHERE k BETWEEN 20 AND 29")
        looked, scanned = lookup_vs_scan(
            session, "SELECT k, v, name FROM t WHERE k BETWEEN 18 AND 23")
        assert looked == scanned

    def test_lookup_after_compact_and_overwrite(self):
        session = build_session(mode="edit")
        session.execute("UPDATE t SET v = 1 WHERE k < 30")
        session.execute("COMPACT TABLE t")
        looked, scanned = lookup_vs_scan(
            session, "SELECT k, v FROM t WHERE k = 10")
        assert looked == scanned == [(10, 1)]
        session.execute("INSERT OVERWRITE TABLE t "
                        "VALUES (1, 11, 'one'), (2, 22, 'two')")
        looked, scanned = lookup_vs_scan(
            session, "SELECT k, v FROM t WHERE k = 2")
        assert looked == scanned == [(2, 22)]


# ----------------------------------------------------------------------
# EXPLAIN / EXPLAIN ANALYZE and observability.
# ----------------------------------------------------------------------
class TestObservability:
    def test_explain_shows_lookup_verdict(self):
        session = build_session()
        text = "\n".join(
            line for (line,) in
            session.execute("EXPLAIN SELECT v FROM t WHERE k = 5").rows)
        assert "LOOKUP eligibility (PRIMARY KEY k)" in text
        assert "plan: lookup" in text

    def test_explain_shows_forced_plan(self):
        session = build_session()
        session.execute("SET dualtable.plan = scan")
        text = "\n".join(
            line for (line,) in
            session.execute("EXPLAIN SELECT v FROM t WHERE k = 5").rows)
        assert "plan: scan (forced by dualtable.plan)" in text
        session.execute("SET dualtable.plan = cost")

    def test_explain_does_not_execute(self):
        session = build_session()
        before = session.cluster.metrics.counters.get(
            "dualtable.plan.lookup.t", 0)
        session.execute("EXPLAIN SELECT v FROM t WHERE k = 5")
        assert session.cluster.metrics.counters.get(
            "dualtable.plan.lookup.t", 0) == before

    def test_explain_analyze_prints_lookup_audit(self):
        session = build_session()
        result = session.execute(
            "EXPLAIN ANALYZE SELECT v FROM t WHERE k = 5")
        text = "\n".join(line for (line,) in result.rows)
        assert "cost-model audit: plan=lookup" in text
        assert result.detail["audit"]["plan"] == "lookup"

    def test_lookup_metrics_and_audit_trail(self):
        session = build_session()
        result = session.execute("SELECT v FROM t WHERE k = 5")
        assert result.plan == "lookup"
        metrics = session.cluster.metrics
        counters = metrics.counters
        assert counters["dualtable.plan.lookup"] == 1
        assert counters["dualtable.plan.lookup.t"] == 1
        assert counters["dualtable.lookups.t"] == 1
        assert counters["costmodel.audits.t"] == 1
        assert metrics.histogram("dualtable.plan.lookup_seconds.t").count \
            == 1
        assert metrics.histogram("dualtable.plan.lookup_bytes.t").count == 1
        audit = result.detail["audit"]
        assert audit["plan"] == "lookup"
        assert audit["observed_seconds"] >= 0
        assert result.detail["files_read"] <= result.detail["total_files"]

    def test_lookup_reads_fewer_bytes_than_scan(self):
        session = build_session()
        ledger = session.cluster.ledger

        def charged(plan):
            session.execute("SET dualtable.plan = %s" % plan)
            before = ledger.snapshot()
            session.execute("SELECT v, name FROM t WHERE k = 42")
            return sum(ledger.diff(before)["bytes"].values())

        lookup_bytes = charged("lookup")
        scan_bytes = charged("scan")
        session.execute("SET dualtable.plan = cost")
        assert 0 < lookup_bytes < scan_bytes

    def test_advisor_flags_lookup_eligible_scans(self):
        from repro.advisor.analyzer import (MIN_LOOKUP_ELIGIBLE,
                                            WorkloadAdvisor)
        session = build_session()
        session.execute("SET dualtable.plan = scan")
        for _ in range(MIN_LOOKUP_ELIGIBLE):
            session.execute("SELECT v FROM t WHERE k = 9")
        findings = WorkloadAdvisor(session).analyze()
        routing = [f for f in findings if f.code == "lookup-eligible-scan"]
        assert len(routing) == 1
        assert routing[0].subject == "t"
        assert "SET dualtable.plan = cost" in routing[0].remediation


# ----------------------------------------------------------------------
# Fault fallback: no double-charged cost.
# ----------------------------------------------------------------------
class TestFaultFallback:
    @pytest.mark.parametrize("point", ["lookup.index_read",
                                       "lookup.hbase_probe"])
    def test_crash_mid_lookup_falls_back_to_scan(self, point):
        session = build_session()
        session.execute("SET dualtable.plan = lookup")
        session.cluster.faults.install(FaultPlan([
            Fault(point, nth_hit=1, kind="crash")]))
        try:
            result = session.execute("SELECT k, v FROM t WHERE k = 33")
        finally:
            session.cluster.faults.uninstall()
        assert result.rows == [(33, 330)]
        assert result.plan.startswith("select(")
        counters = session.cluster.metrics.counters
        assert counters["dualtable.plan.lookup_fallback.t"] == 1
        assert counters.get("dualtable.plan.lookup.t", 0) == 0

    def test_region_crash_fallback_charges_exactly_like_a_scan(self):
        """Ledger proof of the no-double-charge guarantee: a forced
        LOOKUP whose attached probe dies in a region-server crash must
        charge byte-for-byte what a plain scan over the same
        crashed-then-recovered table charges — the lookup's planning is
        uncharged and its fault point fires before the first charged
        byte."""
        def run(crash_via_fault):
            session = build_session(mode="edit")
            session.execute("UPDATE t SET v = -5 WHERE k BETWEEN 30 AND 34")
            if crash_via_fault:
                session.execute("SET dualtable.plan = lookup")
                session.cluster.faults.install(FaultPlan([
                    Fault("lookup.hbase_probe", nth_hit=1,
                          kind="region_crash")]))
            else:
                session.hbase.crash_region_server()
                session.execute("SET dualtable.plan = scan")
            before = session.cluster.ledger.snapshot()
            try:
                result = session.execute(
                    "SELECT k, v FROM t WHERE k = 33")
            finally:
                session.cluster.faults.uninstall()
            return result, session.cluster.ledger.diff(before), session

        faulted, fault_delta, fault_session = run(crash_via_fault=True)
        scanned, scan_delta, _ = run(crash_via_fault=False)
        assert faulted.rows == scanned.rows == [(33, -5)]
        assert faulted.plan.startswith("select(")
        assert fault_delta["bytes"] == scan_delta["bytes"]
        assert fault_delta["ops"] == scan_delta["ops"]
        assert fault_delta["seconds"] == scan_delta["seconds"]
        counters = fault_session.cluster.metrics.counters
        assert counters["dualtable.plan.lookup_fallback.t"] == 1

    def test_fatal_kill_is_not_absorbed(self):
        from repro.common.errors import FaultInjectedError
        session = build_session()
        session.execute("SET dualtable.plan = lookup")
        session.cluster.faults.install(FaultPlan([
            Fault("lookup.hbase_probe", nth_hit=1, kind="kill")]))
        try:
            with pytest.raises(FaultInjectedError):
                session.execute("SELECT v FROM t WHERE k = 3")
        finally:
            session.cluster.faults.uninstall()


# ----------------------------------------------------------------------
# Stripe-index cache invalidation (regressions also in
# tests/test_cache_invalidation.py).
# ----------------------------------------------------------------------
class TestStripeIndexCache:
    def test_index_is_cached_and_reused(self):
        from repro.core.lookup import stripe_index
        session = build_session()
        handler = session.table("t").handler
        first = stripe_index(handler, hit_faults=False)
        cache = session.cluster.delta_cache
        path = handler.master.file_paths()[0]
        key = (handler.attached.name, "stripe-index", path,
               session.fs.file_size(path))
        assert key in cache
        assert stripe_index(handler, hit_faults=False) == first

    def test_zero_budget_disables_index_cache(self):
        session = HiveSession(profile=ClusterProfile.laptop(
            delta_cache_bytes=0))
        session.execute(
            "CREATE TABLE t (k int, v int, name string, PRIMARY KEY (k)) "
            "STORED AS DUALTABLE TBLPROPERTIES "
            "('orc.rows_per_file' = '25', 'orc.stripe_rows' = '5')")
        session.load_rows("t", ROWS)
        result = session.execute("SELECT v FROM t WHERE k = 8")
        assert result.plan == "lookup"
        assert result.rows == [(80,)]
        assert len(session.cluster.delta_cache) == 0
