"""Tests for repro.common: units, errors, RNG derivation."""

import pytest

from repro.common import errors
from repro.common.rng import derive_seed, make_rng
from repro.common.units import GB, KB, MB, fmt_bytes, fmt_seconds


class TestUnits:
    def test_constants(self):
        assert KB == 1024
        assert MB == 1024 * KB
        assert GB == 1024 * MB

    def test_fmt_bytes_bytes(self):
        assert fmt_bytes(0) == "0 B"
        assert fmt_bytes(512) == "512 B"

    def test_fmt_bytes_kb(self):
        assert fmt_bytes(1536) == "1.50 KB"

    def test_fmt_bytes_mb(self):
        assert fmt_bytes(2 * MB) == "2.00 MB"

    def test_fmt_bytes_gb(self):
        assert fmt_bytes(3 * GB) == "3.00 GB"

    def test_fmt_bytes_tb(self):
        assert "TB" in fmt_bytes(5 * 1024 * GB)

    def test_fmt_seconds_small(self):
        assert fmt_seconds(1.5) == "1.50s"

    def test_fmt_seconds_minutes(self):
        assert fmt_seconds(93.5) == "1m 33.5s"

    def test_fmt_seconds_hours(self):
        assert fmt_seconds(3723) == "1h 2m 3s"

    def test_fmt_seconds_negative(self):
        assert fmt_seconds(-5) == "-5.00s"


class TestRng:
    def test_derive_seed_deterministic(self):
        assert derive_seed("lineitem", 42) == derive_seed("lineitem", 42)

    def test_derive_seed_distinct_parts(self):
        assert derive_seed("lineitem", 42) != derive_seed("orders", 42)

    def test_derive_seed_distinct_seeds(self):
        assert derive_seed("t", 1) != derive_seed("t", 2)

    def test_derive_seed_no_concat_collision(self):
        # ("ab", "c") must differ from ("a", "bc").
        assert derive_seed("ab", "c") != derive_seed("a", "bc")

    def test_make_rng_reproducible(self):
        a = make_rng("x", 1)
        b = make_rng("x", 1)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


class TestErrorHierarchy:
    @pytest.mark.parametrize("exc", [
        errors.HdfsError, errors.OrcError, errors.HBaseError,
        errors.MapReduceError, errors.HiveError, errors.DualTableError,
    ])
    def test_subsystem_errors_are_repro_errors(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_parse_error_position(self):
        err = errors.ParseError("bad", position=17)
        assert err.position == 17

    def test_specific_errors(self):
        assert issubclass(errors.FileNotFoundHdfsError, errors.HdfsError)
        assert issubclass(errors.ImmutableFileError, errors.HdfsError)
        assert issubclass(errors.CorruptOrcFileError, errors.OrcError)
        assert issubclass(errors.TableNotFoundError, errors.HBaseError)
        assert issubclass(errors.ParseError, errors.HiveError)
        assert issubclass(errors.CompactionInProgressError,
                          errors.DualTableError)
