"""Tests for the workload generators: TPC-H, smart grid, DML stats."""

import pytest

from repro.cluster import ClusterProfile
from repro.hive import HiveSession
from repro.hive.parser import parse
from repro.workloads import dml_stats, smartgrid, tpch


@pytest.fixture
def session():
    return HiveSession(profile=ClusterProfile.laptop())


class TestTpchGenerators:
    def test_deterministic(self):
        a = tpch.generate_lineitem(50, seed=1)
        b = tpch.generate_lineitem(50, seed=1)
        assert a == b
        assert tpch.generate_lineitem(50, seed=2) != a

    def test_orders_one_per_key(self):
        rows = tpch.generate_orders(30)
        assert [r[0] for r in rows] == list(range(1, 31))

    def test_lineitem_arity_matches_schema(self):
        rows = tpch.generate_lineitem(10)
        assert all(len(r) == len(tpch.LINEITEM_COLUMNS) for r in rows)

    def test_lineitem_date_invariants(self):
        schema = [n for n, _ in tpch.LINEITEM_COLUMNS]
        ship = schema.index("l_shipdate")
        receipt = schema.index("l_receiptdate")
        for row in tpch.generate_lineitem(60):
            assert row[receipt] > row[ship]

    def test_returnflag_consistent_with_receiptdate(self):
        schema = [n for n, _ in tpch.LINEITEM_COLUMNS]
        flag = schema.index("l_returnflag")
        receipt = schema.index("l_receiptdate")
        for row in tpch.generate_lineitem(80):
            if row[receipt] <= "1995-06-17":
                assert row[flag] in ("R", "A")
            else:
                assert row[flag] == "N"

    def test_partkey_threshold_ratio(self):
        rows = tpch.generate_lineitem(400)
        schema = [n for n, _ in tpch.LINEITEM_COLUMNS]
        partkey = schema.index("l_partkey")
        threshold = tpch.partkey_threshold(0.2)
        hit = sum(1 for r in rows if r[partkey] <= threshold)
        assert hit / len(rows) == pytest.approx(0.2, abs=0.05)

    def test_statements_parse(self):
        for sql in (tpch.QUERY_A_Q1, tpch.QUERY_B_Q12, tpch.QUERY_C_COUNT,
                    tpch.dml_a_sql(), tpch.dml_b_sql(), tpch.dml_c_sql(100),
                    tpch.update_ratio_sql(0.3), tpch.delete_ratio_sql(0.3),
                    tpch.create_table_sql("lineitem", "dualtable",
                                          {"k": "v"})):
            parse(sql)

    def test_row_cache_returns_same_object(self):
        a = tpch.tpch_rows_cached("orders", 20)
        b = tpch.tpch_rows_cached("orders", 20)
        assert a is b


class TestTpchQueries:
    def test_q1_results_match_manual_computation(self, session):
        tpch.load_tpch(session, 80, tables=("lineitem",))
        result = session.execute(tpch.QUERY_A_Q1)
        schema = [n for n, _ in tpch.LINEITEM_COLUMNS]
        rows = tpch.generate_lineitem(80)
        ship = schema.index("l_shipdate")
        qty = schema.index("l_quantity")
        flag, status = (schema.index("l_returnflag"),
                        schema.index("l_linestatus"))
        manual = {}
        for row in rows:
            if row[ship] <= "1998-09-02":
                key = (row[flag], row[status])
                manual.setdefault(key, []).append(row[qty])
        for out in result.rows:
            key = (out[0], out[1])
            assert out[2] == pytest.approx(sum(manual[key]))
            assert out[9] == len(manual[key])

    def test_q12_runs_and_groups_by_shipmode(self, session):
        tpch.load_tpch(session, 120)
        result = session.execute(tpch.QUERY_B_Q12)
        modes = [r[0] for r in result.rows]
        assert modes == sorted(modes)
        assert set(modes) <= {"MAIL", "SHIP"}

    def test_dml_c_updates_about_16_percent(self, session):
        tpch.load_tpch(session, 100)
        result = session.execute(tpch.dml_c_sql(100))
        assert result.affected == 16


class TestGridGenerators:
    def test_every_table_generates_with_declared_schema(self):
        for table, generator in smartgrid.GENERATORS.items():
            rows = generator(120)
            assert len(rows) == 120 or table == "tj_gbsjwzl_mx"
            width = len(smartgrid.SCHEMAS[table])
            assert all(len(r) == width for r in rows)

    def test_mx_table_sorted_by_date(self):
        rows = smartgrid.generate_tj_gbsjwzl_mx(720)
        days = [r[1] for r in rows]
        assert days == sorted(days)
        assert set(days) == set(smartgrid.GRID_DAYS)

    def test_sjwzl_y_sorted(self):
        rows = smartgrid.generate_tj_sjwzl_y(300)
        assert [r[0] for r in rows] == sorted(r[0] for r in rows)

    def test_scaled_rows_floor(self):
        assert smartgrid.scaled_rows("tj_sjwzl_y", 1e-9) == 200
        assert smartgrid.scaled_rows("tj_gbsjwzl_mx", 1e-5) == 2390

    def test_statement_ratios_close_to_paper(self):
        """Every Table IV statement selects ~its declared ratio."""
        checks = {
            "U#1": ("tj_tdjl", lambda r: r[0] == smartgrid.OUTAGE_TIMES[0]),
            "U#2": ("tj_td", lambda r: r[0] < r[1]),
            "U#3": ("tj_sjwzl_r",
                    lambda r: r[0] == smartgrid.MONTH_DAYS[10]
                    and r[2] == smartgrid.USER_TYPES[3]),
            "U#4": ("tj_dysjwzl_mx",
                    lambda r: r[0] == smartgrid.GRID_DAYS[4]
                    and r[3] == smartgrid.USER_TYPES[1]),
            "D#1": ("tj_sjwzl_y",
                    lambda r: "2012-03-01" <= r[0] <= "2012-03-30"),
            "D#2": ("tj_tdjl", lambda r: r[1] == smartgrid.ORG_CODES[2]),
            "D#3": ("tj_gk",
                    lambda r: r[1] == smartgrid.ORG_CODES[5] and r[2] == 1),
        }
        declared = {s["id"]: s["ratio"]
                    for s in smartgrid.TABLE4_STATEMENTS}
        for stmt_id, (table, predicate) in checks.items():
            rows = smartgrid.GENERATORS[table](20000)
            ratio = sum(1 for r in rows if predicate(r)) / len(rows)
            assert ratio == pytest.approx(declared[stmt_id],
                                          rel=0.5, abs=0.005), stmt_id

    def test_all_statements_parse(self):
        parse(smartgrid.GRID_QUERY_1)
        parse(smartgrid.GRID_QUERY_2)
        parse(smartgrid.update_days_sql(3))
        parse(smartgrid.delete_days_sql(17))
        parse(smartgrid.FOLLOWING_SELECT_SQL)
        for stmt in smartgrid.TABLE4_STATEMENTS:
            parse(stmt["sql"])

    def test_update_days_sql_selects_right_fraction(self, session):
        smartgrid.load_grid_table(session, "tj_gbsjwzl_mx", 720)
        result = session.execute(smartgrid.update_days_sql(9))
        assert result.affected == 720 // 36 * 9

    def test_paper_row_counts_present_for_all_tables(self):
        assert set(smartgrid.SCHEMAS) == set(smartgrid.PAPER_ROW_COUNTS)
        assert set(smartgrid.SCHEMAS) == set(smartgrid.GENERATORS)


class TestDmlStats:
    def test_recomputed_percentages_match_paper(self):
        for scenario in dml_stats.TABLE1_DATA:
            assert scenario.dml_percent == \
                dml_stats.PAPER_DML_PERCENT[scenario.scenario]

    def test_minimum_is_50(self):
        assert dml_stats.minimum_dml_percent() == 50

    def test_table_shape(self):
        table = dml_stats.dml_ratio_table()
        assert len(table) == 5
        assert all(len(row) == 6 for row in table)

    def test_names_present(self):
        assert dml_stats.TABLE1_DATA[0].name == "power line loss analysis"
