"""Tests for the SVG figure renderer."""

import xml.etree.ElementTree as ET

import pytest

from repro.bench.experiments import ExperimentResult
from repro.bench.svg import (_parse_x, render_bar_chart, render_figure,
                             render_line_chart)


def sweep_result():
    return ExperimentResult(
        experiment="figX", title="Sweep",
        columns=["ratio", "Hive(HDFS)", "DualTable EDIT",
                 "cost_model_plan"],
        rows=[("1%", 100.0, 40.0, "edit"),
              ("25%", 99.0, 120.0, "edit"),
              ("50%", 98.0, 200.0, "overwrite")])


def bar_result():
    return ExperimentResult(
        experiment="figY", title="Bars",
        columns=["system", "query", "sim_seconds"],
        rows=[("Hive", "q1", 10.0), ("Hive", "q2", 20.0),
              ("DualTable", "q1", 11.0), ("DualTable", "q2", 21.0)])


class TestParseX:
    def test_percent(self):
        assert _parse_x("25%") == 0.25

    def test_fraction(self):
        assert _parse_x("9/36") == 0.25

    def test_plain_number(self):
        assert _parse_x("0.4") == 0.4


class TestLineChart:
    def test_valid_xml(self):
        svg = render_line_chart(sweep_result())
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_one_polyline_per_numeric_series(self):
        svg = render_line_chart(sweep_result())
        assert svg.count("<polyline") == 2

    def test_title_and_legend_present(self):
        svg = render_line_chart(sweep_result())
        assert "Sweep" in svg
        assert "Hive(HDFS)" in svg
        assert "DualTable EDIT" in svg

    def test_plan_column_excluded(self):
        svg = render_line_chart(sweep_result())
        assert "cost_model_plan" not in svg

    def test_xml_escaping(self):
        result = sweep_result()
        result.title = "a < b & c"
        root = ET.fromstring(render_line_chart(result))
        assert root is not None


class TestBarChart:
    def test_valid_xml_with_bars(self):
        svg = render_bar_chart(bar_result())
        ET.fromstring(svg)
        # one leading background rect + 4 value bars + 2 legend swatches
        assert svg.count("<rect") == 1 + 4 + 2

    def test_group_labels_present(self):
        svg = render_bar_chart(bar_result())
        assert "Hive" in svg and "DualTable" in svg


class TestDispatch:
    def test_sweep_becomes_line_chart(self):
        assert "<polyline" in render_figure(sweep_result())

    def test_categorical_becomes_bar_chart(self):
        svg = render_figure(bar_result())
        assert "<polyline" not in svg and "<rect" in svg

    def test_unchartable_returns_none(self):
        result = ExperimentResult(
            experiment="t", title="t", columns=["a", "b"],
            rows=[(1, 2)])
        assert render_figure(result) is None

    def test_empty_returns_none(self):
        result = ExperimentResult(experiment="t", title="t",
                                  columns=["a"], rows=[])
        assert render_figure(result) is None

    @pytest.mark.parametrize("name", ["fig5", "fig13", "fig15"])
    def test_real_sweeps_render(self, name):
        from repro.bench.experiments import EXPERIMENTS
        result = EXPERIMENTS[name](scale="tiny")
        svg = render_figure(result)
        ET.fromstring(svg)

    def test_cli_svg_flag(self, tmp_path):
        from repro.bench.cli import main
        assert main(["fig4", "--scale", "tiny",
                     "--svg", str(tmp_path)]) == 0
        assert (tmp_path / "fig4.svg").exists()
