"""Tests for EXPLAIN."""

import pytest

from repro.cluster import ClusterProfile
from repro.hive import HiveSession


@pytest.fixture
def session():
    s = HiveSession(profile=ClusterProfile.laptop())
    s.execute("CREATE TABLE dt (id int, day string, v double) "
              "STORED AS DUALTABLE")
    s.load_rows("dt", [(i, "2013-07-%02d" % (1 + i % 20), float(i))
                       for i in range(500)])
    s.execute("CREATE TABLE ref (day string, tag string)")
    s.load_rows("ref", [("2013-07-%02d" % d, "t") for d in range(1, 21)])
    return s


def text(result):
    return "\n".join(line for (line,) in result.rows)


class TestExplainSelect:
    def test_does_not_execute(self, session):
        before = session.cluster.ledger.total_seconds
        session.execute("EXPLAIN SELECT count(*) FROM dt")
        after = session.cluster.ledger.total_seconds
        # footer peeks only; no scan-sized charges
        assert after - before < 0.5

    def test_shows_scan_projection_and_pruning(self, session):
        out = text(session.execute(
            "EXPLAIN SELECT v FROM dt WHERE day = '2013-07-03'"))
        assert "SCAN dt" in out
        assert "storage=dualtable" in out
        assert "day, v" in out
        assert "stripe-prunable predicate columns: day" in out

    def test_shows_join_and_aggregate(self, session):
        out = text(session.execute(
            "EXPLAIN SELECT a.day, count(*) FROM dt a "
            "JOIN ref b ON a.day = b.day GROUP BY a.day "
            "ORDER BY a.day LIMIT 3"))
        assert "JOIN [inner]" in out
        assert "GROUP BY 1 key(s)" in out
        assert "ORDER BY" in out and "LIMIT 3" in out

    def test_derived_table(self, session):
        out = text(session.execute(
            "EXPLAIN SELECT s.day FROM (SELECT day FROM ref) s"))
        assert "derived table s" in out

    def test_constant(self, session):
        out = text(session.execute("EXPLAIN SELECT 1"))
        assert "constant" in out


class TestExplainDml:
    def test_update_dualtable_shows_cost_evaluation(self, session):
        out = text(session.execute(
            "EXPLAIN UPDATE dt SET v = 0 WHERE day = '2013-07-03'"))
        assert "cost evaluation" in out
        assert "estimated ratio" in out
        assert "EDIT cost" in out and "OVERWRITE cost" in out
        assert "plan:" in out

    def test_update_orc_shows_overwrite_lowering(self, session):
        session.execute("CREATE TABLE plain (a int)")
        out = text(session.execute("EXPLAIN UPDATE plain SET a = 1"))
        assert "INSERT OVERWRITE" in out

    def test_delete_acid_shows_delta(self, session):
        session.execute("CREATE TABLE t (a int) STORED AS ACID")
        out = text(session.execute("EXPLAIN DELETE FROM t WHERE a = 1"))
        assert "delta" in out

    def test_explain_forced_mode_noted(self, session):
        session.execute(
            "CREATE TABLE forced (a int) STORED AS DUALTABLE "
            "TBLPROPERTIES ('dualtable.mode' = 'edit')")
        session.load_rows("forced", [(1,), (2,)])
        out = text(session.execute("EXPLAIN UPDATE forced SET a = 0"))
        assert "forced by dualtable.mode" in out

    def test_explain_merge(self, session):
        out = text(session.execute(
            "EXPLAIN MERGE INTO dt USING ref ON dt.day = ref.day "
            "WHEN MATCHED THEN UPDATE SET v = 1 "
            "WHEN NOT MATCHED THEN INSERT VALUES (0, ref.day, 0.0)"))
        assert "MERGE INTO dt" in out
        assert "WHEN MATCHED: update 1 column(s)" in out
        assert "WHEN NOT MATCHED: insert" in out

    def test_explain_insert(self, session):
        out = text(session.execute(
            "EXPLAIN INSERT OVERWRITE TABLE ref SELECT day, tag FROM ref"))
        assert "INSERT OVERWRITE TABLE ref" in out

    def test_explain_compact(self, session):
        out = text(session.execute("EXPLAIN COMPACT TABLE dt"))
        assert "COMPACT dt" in out


class TestExplainDmlHeaders:
    def test_update_header_names_table_and_storage(self, session):
        out = text(session.execute("EXPLAIN UPDATE dt SET v = 0"))
        assert out.startswith("UPDATE dt (storage=dualtable)")
        assert "SET 1 column(s): v" in out

    def test_delete_header(self, session):
        out = text(session.execute(
            "EXPLAIN DELETE FROM dt WHERE day = '2013-07-03'"))
        assert out.startswith("DELETE FROM dt (storage=dualtable)")
        assert "cost evaluation" in out

    def test_merge_header(self, session):
        out = text(session.execute(
            "EXPLAIN MERGE INTO dt USING ref ON dt.day = ref.day "
            "WHEN MATCHED THEN UPDATE SET v = 1"))
        assert out.startswith("MERGE INTO dt (storage=dualtable)")
        assert "USING ref" in out


class TestExplainAnalyze:
    def test_update_executes_and_reports_observed(self, session):
        result = session.execute(
            "EXPLAIN ANALYZE UPDATE dt SET v = -1 "
            "WHERE day = '2013-07-03'")
        out = text(result)
        assert result.plan == "explain-analyze"
        assert "== observed (statement executed) ==" in out
        assert "row(s) affected" in out
        assert "job " in out
        # PostgreSQL semantics: the DML really ran.
        touched = session.execute(
            "SELECT count(*) FROM dt WHERE v = -1").scalar()
        assert touched == result.affected > 0

    def test_update_shows_cost_model_audit(self, session):
        out = text(session.execute(
            "EXPLAIN ANALYZE UPDATE dt SET v = 0 "
            "WHERE day = '2013-07-05'"))
        assert "cost-model audit: plan=" in out
        assert "predicted=" in out and "observed=" in out
        assert "rel_error=" in out

    def test_analyze_select_reports_rows_and_io(self, session):
        result = session.execute(
            "EXPLAIN ANALYZE SELECT count(*) FROM dt")
        out = text(result)
        assert "row(s)" in out
        assert "io: " in out
        assert "cost-model audit" not in out  # SELECTs aren't audited

    def test_analyze_does_not_leak_spans_when_tracing_off(self, session):
        assert not session.cluster.tracer.enabled
        session.execute("EXPLAIN ANALYZE SELECT count(*) FROM dt")
        assert session.cluster.tracer.spans == []
        assert not session.cluster.tracer.enabled

    def test_analyze_preserves_enabled_tracer(self, session):
        session.cluster.tracer.enable()
        session.execute("EXPLAIN ANALYZE SELECT count(*) FROM dt")
        assert session.cluster.tracer.enabled
        assert session.cluster.tracer.spans  # spans kept for the user


class TestExplainPartitioned:
    def test_scan_shows_partitioned_storage(self, session):
        session.execute("CREATE TABLE p (a int) PARTITIONED BY (d string)")
        session.load_rows("p", [(1, "x")])
        out = text(session.execute("EXPLAIN SELECT a FROM p WHERE d = 'x'"))
        assert "storage=orc-partitioned" in out
