"""Tests for the B-tree row store and its use as an Attached backend."""

import pytest

from repro.cluster import Cluster, ClusterProfile
from repro.core.cost_model import AttachedRates, CostModel
from repro.core.record_id import encode_record_id
from repro.hive import HiveSession
from repro.kvstore import BTreeTable


@pytest.fixture
def table():
    return BTreeTable(Cluster(ClusterProfile.laptop()), "t")


class TestBTreeTable:
    def test_put_get_roundtrip(self, table):
        table.put(b"k", {b"a": b"1", b"b": b"2"})
        assert table.get(b"k") == {b"a": b"1", b"b": b"2"}

    def test_get_missing(self, table):
        assert table.get(b"nope") is None

    def test_update_in_place_latest_wins(self, table):
        table.put(b"k", {b"a": b"old"})
        table.put(b"k", {b"a": b"new"})
        assert table.get(b"k") == {b"a": b"new"}

    def test_bounded_version_history(self, table):
        for i in range(12):
            table.put(b"k", {b"a": b"v%d" % i})
        history = table.get(b"k", versions=20)
        values = [v for _, v in history[b"a"]]
        assert values[0] == b"v11"
        assert len(values) == 8        # MAX_VERSIONS cap

    def test_scan_sorted_and_ranged(self, table):
        for key in (b"d", b"a", b"c", b"b"):
            table.put(key, {b"q": key})
        assert [k for k, _ in table.scan()] == [b"a", b"b", b"c", b"d"]
        assert [k for k, _ in table.scan(b"b", b"d")] == [b"b", b"c"]

    def test_delete_row(self, table):
        table.put(b"k", {b"a": b"1"})
        table.delete_row(b"k")
        assert table.get(b"k") is None
        assert table.is_empty()

    def test_delete_column(self, table):
        table.put(b"k", {b"a": b"1", b"b": b"2"})
        table.delete_column(b"k", b"a")
        assert table.get(b"k") == {b"b": b"2"}
        table.delete_column(b"k", b"b")
        assert table.get(b"k") is None

    def test_truncate(self, table):
        table.put(b"k", {b"a": b"1"})
        table.truncate()
        assert table.count_rows() == 0

    def test_bytes_in_range(self, table):
        for i in range(10):
            table.put(b"k%d" % i, {b"q": b"value"})
        full = table.bytes_in_range()
        part = table.bytes_in_range(b"k3", b"k6")
        assert part == full * 3 // 10

    def test_writes_pay_amortized_page_rmw(self, table):
        ledger = table.cluster.ledger
        table.put(b"k", {b"a": b"1"})
        # The op's charged seconds exceed pure latency: amortized page
        # read-modify-write I/O is folded into every write op.
        assert ledger.seconds_for("hbase", "write") > table.op_latency_s
        assert table._write_op_latency > table.op_latency_s

    def test_rate_overrides_via_profile_extra(self):
        profile = ClusterProfile.laptop()
        profile.extra["kvstore.write_bps"] = 999.0
        profile.extra["kvstore.page_bytes"] = 4096
        table = BTreeTable(Cluster(profile), "t")
        assert table.write_bps == 999.0
        assert table.page_bytes == 4096


class TestBTreeAttachedBackend:
    def _session(self, mode="edit"):
        session = HiveSession(profile=ClusterProfile.laptop())
        session.execute(
            "CREATE TABLE t (id int, v string) STORED AS DUALTABLE "
            "TBLPROPERTIES ('dualtable.attached' = 'btree', "
            "'dualtable.mode' = '%s', 'orc.rows_per_file' = '50')" % mode)
        session.load_rows("t", [(i, "v%d" % i) for i in range(200)])
        return session

    def test_update_delete_compact_cycle(self):
        session = self._session()
        session.execute("UPDATE t SET v = 'x' WHERE id < 20")
        session.execute("DELETE FROM t WHERE id >= 190")
        assert session.execute(
            "SELECT count(*) FROM t WHERE v = 'x'").scalar() == 20
        session.execute("COMPACT TABLE t")
        assert session.execute("SELECT count(*) FROM t").scalar() == 190
        handler = session.table("t").handler
        assert handler.attached.is_empty()

    def test_history_preserved(self):
        session = self._session()
        session.execute("UPDATE t SET v = 'a' WHERE id = 3")
        session.execute("UPDATE t SET v = 'b' WHERE id = 3")
        handler = session.table("t").handler
        history = handler.attached.history(encode_record_id(0, 3))
        assert [v for _, v in history[1]] == ["b", "a"]

    def test_rates_reflect_backend(self):
        session = self._session()
        handler = session.table("t").handler
        rates = handler.attached.rates(session.cluster.profile)
        assert rates.page_bytes > 0          # B-tree: page RMW modeled
        hbase_rates = AttachedRates.from_hbase_profile(
            session.cluster.profile)
        assert hbase_rates.page_bytes == 0

    def test_unknown_backend_rejected(self):
        session = HiveSession(profile=ClusterProfile.laptop())
        with pytest.raises(Exception):
            session.execute(
                "CREATE TABLE t (a int) STORED AS DUALTABLE "
                "TBLPROPERTIES ('dualtable.attached' = 'floppy')")


class TestCostModelWithBackendRates:
    def test_page_overhead_raises_edit_cost(self):
        profile = ClusterProfile(name="t")
        hbase = CostModel(profile)
        btree = CostModel(profile, attached_rates=AttachedRates(
            write_bps=profile.hbase_write_bps,
            read_bps=profile.hbase_read_bps,
            op_latency_s=profile.hbase_op_latency_s,
            scan_row_latency_s=profile.hbase_scan_row_latency_s,
            page_bytes=16 * 1024))
        a = hbase.choose_update_plan(10**9, 10**6, 0.05, 40)
        b = btree.choose_update_plan(10**9, 10**6, 0.05, 40)
        assert b.edit_seconds > a.edit_seconds

    def test_crossover_differs_by_backend(self):
        profile = ClusterProfile(name="t")
        hbase = CostModel(profile)
        btree = CostModel(profile, attached_rates=AttachedRates(
            write_bps=120e6, read_bps=300e6, op_latency_s=8e-6,
            scan_row_latency_s=5e-7, page_bytes=16 * 1024))
        upd_hbase = hbase.update_crossover_ratio(10**9, 10**6, 40)
        upd_btree = btree.update_crossover_ratio(10**9, 10**6, 40)
        assert upd_hbase != pytest.approx(upd_btree, rel=0.01)
