"""Tests for the Table-I scenario replayer."""

import pytest

from repro.cluster import ClusterProfile
from repro.hive import HiveSession
from repro.hive.parser import parse
from repro.workloads import scenarios, smartgrid
from repro.workloads.dml_stats import TABLE1_DATA


class TestScenarioBuilder:
    def test_deterministic(self):
        a = scenarios.build_scenario(1, statements_factor=0.2, seed=5)
        b = scenarios.build_scenario(1, statements_factor=0.2, seed=5)
        assert a == b

    def test_mix_follows_table1(self):
        spec = next(s for s in TABLE1_DATA if s.scenario == 3)
        statements = scenarios.build_scenario(3, statements_factor=1.0)
        counts = {}
        for kind, _ in statements:
            counts[kind] = counts.get(kind, 0) + 1
        assert counts["update"] == spec.update
        assert counts["delete"] == spec.delete
        assert counts["merge"] == spec.merge
        assert counts["select"] == spec.total - spec.dml_count

    def test_scenario_without_merges(self):
        statements = scenarios.build_scenario(4, statements_factor=1.0)
        kinds = {kind for kind, _ in statements}
        assert "merge" not in kinds        # scenario 4 has 0 merges

    def test_every_statement_parses(self):
        for scenario_id in (1, 2, 3, 4, 5):
            for _, sql in scenarios.build_scenario(scenario_id,
                                                   statements_factor=0.3):
                parse(sql)

    def test_factor_scales_counts(self):
        full = scenarios.build_scenario(1, statements_factor=1.0)
        small = scenarios.build_scenario(1, statements_factor=0.1)
        assert len(small) < len(full)
        assert len(small) >= 4             # at least one of each kind


class TestScenarioExecution:
    @pytest.mark.parametrize("storage", ["orc", "dualtable"])
    def test_scenario_runs_end_to_end(self, storage):
        session = HiveSession(profile=ClusterProfile.laptop())
        smartgrid.load_grid_table(session, "tj_gbsjwzl_mx", 720,
                                  storage=storage)
        scenarios.prepare_session(session)
        statements = scenarios.build_scenario(2, statements_factor=0.08)
        total, per_kind = scenarios.run_scenario(session, statements)
        assert total > 0
        assert set(per_kind) <= {"update", "delete", "merge", "select"}
        # the table is still consistent and queryable afterwards
        count = session.execute(
            "SELECT count(*) FROM tj_gbsjwzl_mx").scalar()
        assert 0 < count <= 720

    def test_same_statements_same_results_across_storages(self):
        """Scenario replay leaves both systems in the same logical state."""
        finals = {}
        for storage in ("orc", "dualtable"):
            session = HiveSession(profile=ClusterProfile.laptop())
            smartgrid.load_grid_table(session, "tj_gbsjwzl_mx", 720,
                                      storage=storage)
            scenarios.prepare_session(session)
            statements = scenarios.build_scenario(5,
                                                  statements_factor=0.2)
            scenarios.run_scenario(session, statements)
            finals[storage] = sorted(session.execute(
                "SELECT yhlx, rq, dwdm, cjbm, val FROM tj_gbsjwzl_mx"
            ).rows)
        assert finals["orc"] == finals["dualtable"]


class TestZipfUpdateScenario:
    def test_deterministic(self):
        a = scenarios.build_zipf_update_scenario(rows=400, seed=9)
        b = scenarios.build_zipf_update_scenario(rows=400, seed=9)
        assert a == b

    def test_seed_changes_statements(self):
        a = scenarios.build_zipf_update_scenario(rows=400, seed=1)
        b = scenarios.build_zipf_update_scenario(rows=400, seed=2)
        assert a["statements"] != b["statements"]

    def test_every_statement_parses(self):
        scenario = scenarios.build_zipf_update_scenario(rows=400)
        parse(scenario["ddl"])
        for _, sql in scenario["statements"]:
            parse(sql)

    def test_mix_matches_requested_counts(self):
        scenario = scenarios.build_zipf_update_scenario(
            rows=400, updates=5, deletes=3, scans=2)
        counts = {}
        for kind, _ in scenario["statements"]:
            counts[kind] = counts.get(kind, 0) + 1
        assert counts == {"update": 5, "delete": 3, "scan": 2}

    def test_hot_set_bounds_dml_keys(self):
        """All DML keys come from the dirty_fraction-sized hot set —
        spread over the key space, but never more distinct keys than
        the hot set holds."""
        scenario = scenarios.build_zipf_update_scenario(
            rows=200, dirty_fraction=0.1, keys_per_stmt=30)
        assert scenario["hot_keys"] == 20
        keys = set()
        for kind, sql in scenario["statements"]:
            if kind == "scan":
                continue
            in_list = sql[sql.index("(") + 1:sql.rindex(")")]
            keys.update(int(key) for key in in_list.split(", "))
        assert len(keys) <= scenario["hot_keys"]
        assert all(0 <= key < 200 for key in keys)

    def test_skew_concentrates_on_hot_ranks(self):
        """Higher skew repeats fewer distinct keys (Zipf head heavier)."""
        def distinct(skew):
            scenario = scenarios.build_zipf_update_scenario(
                rows=2000, skew=skew, keys_per_stmt=50,
                updates=10, deletes=0, scans=0)
            keys = set()
            for _, sql in scenario["statements"]:
                in_list = sql[sql.index("(") + 1:sql.rindex(")")]
                keys.update(int(key) for key in in_list.split(", "))
            return len(keys)
        assert distinct(2.5) < distinct(0.2)

    def test_runs_end_to_end_and_matches_orc_twin(self):
        """Replaying the stream against DualTable (edit mode) and plain
        ORC leaves both in the same logical state — the scenario is a
        valid workload, not just parseable strings."""
        finals = {}
        for storage in ("dualtable", "orc"):
            scenario = scenarios.build_zipf_update_scenario(rows=300)
            session = HiveSession(profile=ClusterProfile.laptop())
            if storage == "dualtable":
                session.execute(scenario["ddl"])
            else:
                session.execute("CREATE TABLE %s (k int, grp string, "
                                "v int, w double) STORED AS orc"
                                % scenario["table"])
            session.load_rows(scenario["table"], scenario["rows"])
            total, per_kind = scenarios.run_scenario(
                session, scenario["statements"])
            assert total > 0
            finals[storage] = sorted(session.execute(
                "SELECT k, grp, v, w FROM zipf_updates").rows)
        assert finals["dualtable"] == finals["orc"]
        assert 0 < len(finals["orc"]) <= 300

    def test_dml_lands_as_attached_deltas(self):
        """dualtable.mode=edit forces every UPDATE/DELETE into the
        Attached store, generating the delta churn the merge benchmark
        measures."""
        scenario = scenarios.build_zipf_update_scenario(rows=300)
        session = HiveSession(profile=ClusterProfile.laptop())
        session.execute(scenario["ddl"])
        session.load_rows(scenario["table"], scenario["rows"])
        for kind, sql in scenario["statements"]:
            if kind != "scan":
                session.execute(sql)
        handler = session.table(scenario["table"]).handler
        assert not handler.attached.is_empty()
