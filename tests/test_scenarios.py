"""Tests for the Table-I scenario replayer."""

import pytest

from repro.cluster import ClusterProfile
from repro.hive import HiveSession
from repro.hive.parser import parse
from repro.workloads import scenarios, smartgrid
from repro.workloads.dml_stats import TABLE1_DATA


class TestScenarioBuilder:
    def test_deterministic(self):
        a = scenarios.build_scenario(1, statements_factor=0.2, seed=5)
        b = scenarios.build_scenario(1, statements_factor=0.2, seed=5)
        assert a == b

    def test_mix_follows_table1(self):
        spec = next(s for s in TABLE1_DATA if s.scenario == 3)
        statements = scenarios.build_scenario(3, statements_factor=1.0)
        counts = {}
        for kind, _ in statements:
            counts[kind] = counts.get(kind, 0) + 1
        assert counts["update"] == spec.update
        assert counts["delete"] == spec.delete
        assert counts["merge"] == spec.merge
        assert counts["select"] == spec.total - spec.dml_count

    def test_scenario_without_merges(self):
        statements = scenarios.build_scenario(4, statements_factor=1.0)
        kinds = {kind for kind, _ in statements}
        assert "merge" not in kinds        # scenario 4 has 0 merges

    def test_every_statement_parses(self):
        for scenario_id in (1, 2, 3, 4, 5):
            for _, sql in scenarios.build_scenario(scenario_id,
                                                   statements_factor=0.3):
                parse(sql)

    def test_factor_scales_counts(self):
        full = scenarios.build_scenario(1, statements_factor=1.0)
        small = scenarios.build_scenario(1, statements_factor=0.1)
        assert len(small) < len(full)
        assert len(small) >= 4             # at least one of each kind


class TestScenarioExecution:
    @pytest.mark.parametrize("storage", ["orc", "dualtable"])
    def test_scenario_runs_end_to_end(self, storage):
        session = HiveSession(profile=ClusterProfile.laptop())
        smartgrid.load_grid_table(session, "tj_gbsjwzl_mx", 720,
                                  storage=storage)
        scenarios.prepare_session(session)
        statements = scenarios.build_scenario(2, statements_factor=0.08)
        total, per_kind = scenarios.run_scenario(session, statements)
        assert total > 0
        assert set(per_kind) <= {"update", "delete", "merge", "select"}
        # the table is still consistent and queryable afterwards
        count = session.execute(
            "SELECT count(*) FROM tj_gbsjwzl_mx").scalar()
        assert 0 < count <= 720

    def test_same_statements_same_results_across_storages(self):
        """Scenario replay leaves both systems in the same logical state."""
        finals = {}
        for storage in ("orc", "dualtable"):
            session = HiveSession(profile=ClusterProfile.laptop())
            smartgrid.load_grid_table(session, "tj_gbsjwzl_mx", 720,
                                      storage=storage)
            scenarios.prepare_session(session)
            statements = scenarios.build_scenario(5,
                                                  statements_factor=0.2)
            scenarios.run_scenario(session, statements)
            finals[storage] = sorted(session.execute(
                "SELECT yhlx, rq, dwdm, cjbm, val FROM tj_gbsjwzl_mx"
            ).rows)
        assert finals["orc"] == finals["dualtable"]
