"""Legacy shim so `pip install -e . --no-use-pep517` works offline."""
from setuptools import setup

setup()
