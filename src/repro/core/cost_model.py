"""The DualTable cost model (Section IV).

For an UPDATE with ratio α over table size D and ``k`` successive reads:

.. math::

    Cost_U = C^M_{Write}(D) - α·(C^A_{Write}(D) + k·C^A_{Read}(D))    (1)

For a DELETE with ratio β, average row size d and marker size m:

.. math::

    Cost_D = C^M_{Write}(D) - β·(C^M_{Write}(D) + k·C^M_{Read}(D)
             + (m/d)·C^A_{Write}(D) + k·(m/d)·C^A_{Read}(D))          (2)

Positive cost difference ⇒ the EDIT plan is cheaper; otherwise OVERWRITE.

Two layers are provided:

* :func:`cost_u_paper` / :func:`cost_d_paper` — the literal equations with
  aggregate device rates (the Section IV worked example is a unit test);
* :class:`CostModel` — the production evaluator: it estimates α/β from
  ORC stripe statistics (or the metadata table's history), computes costs
  in *simulated seconds* using the live cluster profile (including HBase
  per-op latency, which the equations fold into the rates), and returns a
  full :class:`PlanChoice` record for observability.
"""

from dataclasses import dataclass


# ----------------------------------------------------------------------
# The literal paper equations (aggregate rates, bytes and seconds).
# ----------------------------------------------------------------------
def cost_u_paper(d_bytes, alpha, k, master_write_bps, attached_write_bps,
                 attached_read_bps):
    """Equation (1): OVERWRITE cost minus EDIT cost, in seconds."""
    master_write = d_bytes / master_write_bps
    attached_write = d_bytes / attached_write_bps
    attached_read = d_bytes / attached_read_bps
    return master_write - alpha * (attached_write + k * attached_read)


def cost_d_paper(d_bytes, beta, k, row_bytes, marker_bytes,
                 master_write_bps, master_read_bps, attached_write_bps,
                 attached_read_bps):
    """Equation (2): OVERWRITE cost minus EDIT cost, in seconds."""
    m_over_d = marker_bytes / row_bytes
    master_write = d_bytes / master_write_bps
    master_read = d_bytes / master_read_bps
    attached_write = d_bytes / attached_write_bps
    attached_read = d_bytes / attached_read_bps
    return master_write - beta * (
        master_write + k * master_read
        + m_over_d * attached_write + k * m_over_d * attached_read)


# ----------------------------------------------------------------------
# Production evaluator.
# ----------------------------------------------------------------------
@dataclass
class AttachedRates:
    """Device-cost description of one Attached-Table backend.

    ``page_bytes`` models update-in-place stores (B-tree backends) whose
    every random write is a page read-modify-write; it is 0 for
    log-structured stores like HBase.
    """

    write_bps: float
    read_bps: float
    op_latency_s: float
    scan_row_latency_s: float
    page_bytes: int = 0
    page_locality: int = 64

    @classmethod
    def from_hbase_profile(cls, profile):
        return cls(write_bps=profile.hbase_write_bps,
                   read_bps=profile.hbase_read_bps,
                   op_latency_s=profile.hbase_op_latency_s,
                   scan_row_latency_s=profile.hbase_scan_row_latency_s,
                   page_bytes=0)

    def write_seconds(self, nbytes, nops, byte_scale, op_scale):
        # Page read-modify-write is per operation (op_scale), not per byte.
        op_latency = self.op_latency_s
        if self.page_bytes:
            amortized = self.page_bytes / max(1, self.page_locality)
            op_latency += (amortized / self.write_bps
                           + amortized / self.read_bps)
        return (nbytes * byte_scale / self.write_bps
                + nops * op_scale * op_latency)

    def read_seconds(self, nbytes, nops, byte_scale, op_scale):
        return (nbytes * byte_scale / self.read_bps
                + nops * op_scale * self.scan_row_latency_s)


@dataclass
class PlanChoice:
    """Everything the cost evaluator decided and why."""

    plan: str               # 'edit' | 'overwrite'
    cost_difference: float  # positive ⇒ EDIT cheaper (paper convention)
    edit_seconds: float
    overwrite_seconds: float
    ratio: float            # estimated α or β
    k: int
    d_bytes: int
    touched_rows: float


@dataclass
class LookupChoice:
    """Why the planner routed (or refused to route) a read as LOOKUP."""

    plan: str               # 'lookup' | 'scan'
    cost_difference: float  # positive ⇒ LOOKUP cheaper
    lookup_seconds: float
    scan_seconds: float
    files_read: int
    total_files: int
    lookup_bytes: int
    scan_bytes: int
    probe_entries: int


class CostModel:
    """Chooses EDIT vs OVERWRITE for one statement on one cluster."""

    #: size of a delete marker cell (record id + qualifier + overhead)
    MARKER_BYTES = 22

    def __init__(self, profile, k=1, attached_rates=None):
        self.profile = profile
        self.k = k
        self.attached_rates = (attached_rates
                               or AttachedRates.from_hbase_profile(profile))

    # -- device-cost primitives (aggregate cluster rates) ---------------
    def _master_write(self, nbytes):
        return nbytes * self.profile.byte_scale / self.profile.hdfs_write_bps

    def _master_read(self, nbytes):
        return nbytes * self.profile.byte_scale / self.profile.hdfs_read_bps

    def _attached_write(self, nbytes, nops):
        return self.attached_rates.write_seconds(
            nbytes, nops, self.profile.byte_scale, self.profile.op_scale)

    def _attached_read(self, nbytes, nops):
        return self.attached_rates.read_seconds(
            nbytes, nops, self.profile.byte_scale, self.profile.op_scale)

    # -- plan choice -----------------------------------------------------
    def choose_update_plan(self, d_bytes, total_rows, ratio,
                           update_cell_bytes, k=None, edit_scan_bytes=None):
        """Choose the UPDATE plan.

        ``update_cell_bytes`` is the average payload written to the
        Attached Table per updated row (record id + new field values) —
        the generalization of the paper's αD for updates that touch only
        a few of many columns.

        ``edit_scan_bytes`` is the master bytes the EDIT plan's scan must
        read (after projection and stripe pruning).  The paper's equation
        (1) drops both plans' modification-time read terms because without
        pruning they cancel; with ORC projection/pruning they do not, so
        the production evaluator keeps them.
        """
        k = self.k if k is None else k
        touched = ratio * total_rows
        edit_bytes = touched * update_cell_bytes
        if edit_scan_bytes is None:
            edit_scan_bytes = d_bytes
        overwrite_cost = (self._master_read(d_bytes)
                          + self._master_write(d_bytes)
                          + k * self._master_read(d_bytes))
        edit_cost = (self._master_read(edit_scan_bytes)
                     + self._attached_write(edit_bytes, touched)
                     + k * (self._attached_read(edit_bytes, touched)
                            + self._master_read(d_bytes)))
        return self._decide(overwrite_cost, edit_cost, ratio, k, d_bytes,
                            touched)

    def choose_delete_plan(self, d_bytes, total_rows, ratio, k=None,
                           edit_scan_bytes=None):
        """Choose the DELETE plan (markers are tiny; see eq. (2))."""
        k = self.k if k is None else k
        touched = ratio * total_rows
        marker_bytes = touched * self.MARKER_BYTES
        keep_bytes = (1.0 - ratio) * d_bytes
        if edit_scan_bytes is None:
            edit_scan_bytes = d_bytes
        overwrite_cost = (self._master_read(d_bytes)
                          + self._master_write(keep_bytes)
                          + k * self._master_read(keep_bytes))
        edit_cost = (self._master_read(edit_scan_bytes)
                     + self._attached_write(marker_bytes, touched)
                     + k * (self._attached_read(marker_bytes, touched)
                            + self._master_read(d_bytes)))
        return self._decide(overwrite_cost, edit_cost, ratio, k, d_bytes,
                            touched)

    @staticmethod
    def _decide(overwrite_cost, edit_cost, ratio, k, d_bytes, touched):
        difference = overwrite_cost - edit_cost
        return PlanChoice(
            plan="edit" if difference > 0 else "overwrite",
            cost_difference=difference,
            edit_seconds=edit_cost,
            overwrite_seconds=overwrite_cost,
            ratio=ratio,
            k=k,
            d_bytes=d_bytes,
            touched_rows=touched,
        )

    def choose_lookup_plan(self, scan_bytes, total_files, lookup_bytes,
                           files_read, probe_bytes, probe_entries,
                           job_startup_s=0.0, task_overhead_s=0.0):
        """Choose LOOKUP vs the MR scan plan for one point/range read.

        The scan plan pays the MapReduce fixed costs (job submission plus
        one task per file split) and streams every file's projected
        bytes.  The LOOKUP plan pays no job overhead: it reads only the
        stripes whose PK min/max admit the predicate (``lookup_bytes``
        over ``files_read`` candidate files) plus an attached-table probe
        of the candidates' delta ranges (``probe_bytes`` /
        ``probe_entries``).  Positive difference ⇒ LOOKUP cheaper.
        """
        scan_cost = (job_startup_s + total_files * task_overhead_s
                     + self._master_read(scan_bytes))
        lookup_cost = (self._master_read(lookup_bytes)
                       + self._attached_read(probe_bytes, probe_entries))
        difference = scan_cost - lookup_cost
        return LookupChoice(
            plan="lookup" if difference > 0 else "scan",
            cost_difference=difference,
            lookup_seconds=lookup_cost,
            scan_seconds=scan_cost,
            files_read=files_read,
            total_files=total_files,
            lookup_bytes=lookup_bytes,
            scan_bytes=scan_bytes,
            probe_entries=probe_entries,
        )

    # -- crossover analysis (used by the ablation benches) ---------------
    def update_crossover_ratio(self, d_bytes, total_rows,
                               update_cell_bytes, k=None):
        """The α at which EDIT and OVERWRITE break even (bisection)."""
        lo, hi = 0.0, 1.0
        for _ in range(64):
            mid = (lo + hi) / 2
            choice = self.choose_update_plan(d_bytes, total_rows, mid,
                                             update_cell_bytes, k=k)
            if choice.plan == "edit":
                lo = mid
            else:
                hi = mid
        return (lo + hi) / 2

    def delete_crossover_ratio(self, d_bytes, total_rows, k=None):
        lo, hi = 0.0, 1.0
        for _ in range(64):
            mid = (lo + hi) / 2
            choice = self.choose_delete_plan(d_bytes, total_rows, mid, k=k)
            if choice.plan == "edit":
                lo = mid
            else:
                hi = mid
        return (lo + hi) / 2
