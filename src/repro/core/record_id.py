"""DualTable record IDs.

A record ID uniquely identifies a row inside one DualTable (Section V-B):
the Master-Table **file ID** (allocated from a system-wide metadata table
whenever a mapper creates a new ORC file) concatenated with the row's
**row number** inside that file (computed for free while reading ORC).

Encoded big-endian so that byte order == (file_id, row_number) order: the
Attached Table's HBase row keys then sort exactly like a Master-Table
scan, which is what makes UNION READ a linear merge of two sorted streams.
"""

import struct

_FORMAT = ">IQ"     # 4-byte file id, 8-byte row number
RECORD_ID_BYTES = struct.calcsize(_FORMAT)


def encode_record_id(file_id, row_number):
    """Pack (file_id, row_number) into a sortable 12-byte key."""
    return struct.pack(_FORMAT, file_id, row_number)


def decode_record_id(key):
    """Inverse of :func:`encode_record_id`."""
    return struct.unpack(_FORMAT, key)


def file_key_range(file_id):
    """The half-open HBase key range covering one master file's records."""
    start = struct.pack(">I", file_id) + b"\x00" * 8
    stop = struct.pack(">I", file_id + 1) + b"\x00" * 8
    return start, stop
