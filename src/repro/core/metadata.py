"""System-wide DualTable metadata table (Section V-B, point 1).

One HBase table holds an incremental integer **file ID** counter per
DualTable, plus bookkeeping the cost evaluator uses (historical update
ratios).  Mappers that create new Master-Table files fetch a unique ID
here and store it in the ORC file's user metadata.
"""

import struct

META_TABLE = "__dualtable_meta__"

_Q_COUNTER = b"next_file_id"
_Q_HISTORY = b"ratio_history"


class DualTableMetadata:
    """Accessor for the system metadata table."""

    def __init__(self, hbase_service):
        self._service = hbase_service
        self._table = hbase_service.ensure_table(META_TABLE, system=True)

    def _rowkey(self, table_name):
        return b"dt:" + table_name.encode("utf-8")

    def register_table(self, table_name):
        row = self._rowkey(table_name)
        if self._table.get(row) is None:
            self._table.put(row, {_Q_COUNTER: struct.pack(">I", 0)})

    def unregister_table(self, table_name):
        self._table.delete_row(self._rowkey(table_name))

    def next_file_id(self, table_name):
        """Allocate the next unique master-file ID for a DualTable."""
        row = self._rowkey(table_name)
        cells = self._table.get(row)
        current = 0
        if cells and _Q_COUNTER in cells:
            current = struct.unpack(">I", cells[_Q_COUNTER])[0]
        self._table.put(row, {_Q_COUNTER: struct.pack(">I", current + 1)})
        return current

    def record_ratio(self, table_name, ratio):
        """Append an observed modification ratio (cost-model history)."""
        row = self._rowkey(table_name)
        cells = self._table.get(row)
        history = b""
        if cells and _Q_HISTORY in cells:
            history = cells[_Q_HISTORY]
        history += struct.pack(">d", float(ratio))
        # Keep the last 32 observations.
        history = history[-32 * 8:]
        self._table.put(row, {_Q_HISTORY: history})

    def ratio_history(self, table_name):
        cells = self._table.get(self._rowkey(table_name))
        if not cells or _Q_HISTORY not in cells:
            return []
        raw = cells[_Q_HISTORY]
        return [struct.unpack(">d", raw[i:i + 8])[0]
                for i in range(0, len(raw), 8)]

    def mean_historical_ratio(self, table_name):
        history = self.ratio_history(table_name)
        if not history:
            return None
        return sum(history) / len(history)
