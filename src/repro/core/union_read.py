"""UNION READ: merge the Master-Table stream with Attached-Table deltas.

Both inputs arrive sorted by record ID (master rows by construction,
attached rows because HBase keys are record IDs), so the merge is a single
linear two-pointer pass per master file — the "simple MapReduce algorithm
using a divide-and-conquer strategy" of Section III-C.
"""

from repro.core.record_id import encode_record_id
from repro.vector import batch_from_rows


def union_read_file(file_id, orc_rows, delta_items, projection_map,
                    stats=None):
    """Merge one master file with its attached deltas.

    ``orc_rows``        — iterator of ``(row_number, values_tuple)`` from the
                          ORC reader (values in projection order);
    ``delta_items``     — iterator of ``(record_id, DeltaRecord)`` sorted by
                          record id, covering this file's key range;
    ``projection_map``  — ``{schema_column_index: projected_position}`` so
                          update cells can be applied onto projected tuples.
    ``stats``           — optional dict; on exhaustion holds the merge
                          counters ``deltas_applied``, ``rows_deleted``,
                          ``deltas_skipped`` and ``trailing_deltas``
                          (observability hooks, no cost impact).

    Yields ``(record_id, merged_values_tuple)`` with deleted rows skipped.

    Deltas whose record id never matches a master row cannot affect the
    output (UNION READ is master-driven), but silently dropping them
    hides real anomalies — an attached entry for a row COMPACT already
    folded away, or a file that shrank underneath its deltas.  They are
    therefore counted: ``deltas_skipped`` for ids passed over inside the
    master range, ``trailing_deltas`` for ids beyond the last master row
    (the iterator is drained so the count — and the backing scan's
    charges — are complete).
    """
    applied = 0
    deleted = 0
    skipped = 0
    trailing = 0
    delta_iter = iter(delta_items)
    current = next(delta_iter, None)
    try:
        for row_number, values in orc_rows:
            record_id = encode_record_id(file_id, row_number)
            while current is not None and current[0] < record_id:
                skipped += 1
                current = next(delta_iter, None)
            if current is not None and current[0] == record_id:
                delta = current[1]
                current = next(delta_iter, None)
                if delta.deleted:
                    deleted += 1
                    continue
                if delta.updates:
                    applied += 1
                    merged = list(values)
                    for column_index, new_value in delta.updates.items():
                        position = projection_map.get(column_index)
                        if position is not None:
                            merged[position] = new_value
                    yield record_id, tuple(merged)
                    continue
            yield record_id, values
        while current is not None:
            trailing += 1
            current = next(delta_iter, None)
    finally:
        if stats is not None:
            stats["deltas_applied"] = applied
            stats["rows_deleted"] = deleted
            stats["deltas_skipped"] = skipped
            stats["trailing_deltas"] = trailing


def union_read_batches(file_id, orc_batches, delta_items, projection_map,
                       stats=None):
    """Columnar UNION READ: merge ColumnBatches with attached deltas.

    Batch-path sibling of :func:`union_read_file`, yielding
    :class:`~repro.vector.ColumnBatch` objects instead of per-row
    ``(record_id, values)`` pairs.  The merge counters in ``stats`` are
    classified identically (``deltas_applied`` / ``rows_deleted`` /
    ``deltas_skipped`` / ``trailing_deltas``) — the two paths must agree
    exactly, whatever the delta distribution.

    The payoff is the **zero-delta fast path**: while the delta iterator
    is exhausted — or every remaining delta id lies beyond the current
    batch — the batch streams straight through with no merge loop and no
    per-row record-id encoding.  A fully compacted file therefore costs
    one comparison per *batch* instead of one id encode + compare per
    *row*.  Batches that do overlap a delta fall back to the row merge
    and are re-packed (deletes drop rows, updates patch them).
    """
    applied = 0
    deleted = 0
    skipped = 0
    trailing = 0
    delta_iter = iter(delta_items)
    current = next(delta_iter, None)
    try:
        for batch in orc_batches:
            if current is None:
                yield batch
                continue
            base = batch.row_base
            last_id = encode_record_id(file_id, base + batch.length - 1)
            if current[0] > last_id:
                yield batch
                continue
            merged_rows = []
            for offset, values in enumerate(batch.rows()):
                record_id = encode_record_id(file_id, base + offset)
                while current is not None and current[0] < record_id:
                    skipped += 1
                    current = next(delta_iter, None)
                if current is not None and current[0] == record_id:
                    delta = current[1]
                    current = next(delta_iter, None)
                    if delta.deleted:
                        deleted += 1
                        continue
                    if delta.updates:
                        applied += 1
                        merged = list(values)
                        for column_index, new_value in delta.updates.items():
                            position = projection_map.get(column_index)
                            if position is not None:
                                merged[position] = new_value
                        merged_rows.append(tuple(merged))
                        continue
                merged_rows.append(values)
            if merged_rows:
                yield batch_from_rows(merged_rows, len(batch.columns))
        while current is not None:
            trailing += 1
            current = next(delta_iter, None)
    finally:
        if stats is not None:
            stats["deltas_applied"] = applied
            stats["rows_deleted"] = deleted
            stats["deltas_skipped"] = skipped
            stats["trailing_deltas"] = trailing


def apply_delta_to_row(values, delta, projection_map):
    """Apply one DeltaRecord to a projected row (None when deleted)."""
    if delta is None:
        return values
    if delta.deleted:
        return None
    if not delta.updates:
        return values
    merged = list(values)
    for column_index, new_value in delta.updates.items():
        position = projection_map.get(column_index)
        if position is not None:
            merged[position] = new_value
    return tuple(merged)
