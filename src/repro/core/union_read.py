"""UNION READ: merge the Master-Table stream with Attached-Table deltas.

Both inputs arrive sorted by record ID (master rows by construction,
attached rows because HBase keys are record IDs), so the merge is a single
linear two-pointer pass per master file — the "simple MapReduce algorithm
using a divide-and-conquer strategy" of Section III-C.

Two merge strategies produce byte-identical output:

* the **row merge** (:func:`union_read_file` and the fallback loop in
  :func:`union_read_batches`) encodes one record ID per master row and
  walks the delta iterator beside it — simple, and the reference
  semantics for everything else;
* the **overlay merge** (:func:`union_read_overlay`) pre-resolves the
  file's sorted deltas into a :class:`DeltaOverlay` — sorted delete
  positions plus per-column sparse patch lists — and applies it to each
  ColumnBatch with binary search and slice-level column surgery, so the
  merge cost scales with the number of *deltas*, not the number of rows
  (cf. *Fast Updates on Read-Optimized Databases Using Multi-Core CPUs*,
  arXiv:1109.6885).

The merge-stat contract (``deltas_applied`` / ``rows_deleted`` /
``deltas_skipped`` / ``trailing_deltas``) is shared by all three entry
points; tests/test_merge_overlay.py fuzzes row-vs-overlay equality of
rows *and* stats over adversarial delta distributions.
"""

from bisect import bisect_left

from repro.core.record_id import decode_record_id, encode_record_id
from repro.vector import ColumnBatch, batch_from_rows, spliced


def apply_update(values, updates, projection_map):
    """Apply one delta's update cells onto a projected row tuple.

    The single shared implementation of the update-application loop —
    the row merge, the batch fallback merge and
    :func:`apply_delta_to_row` all funnel through here so the paths
    cannot drift.  Update cells whose column is not projected are
    dropped (the delta still *counts* as applied; the caller owns the
    stats).
    """
    merged = list(values)
    for column_index, new_value in updates.items():
        position = projection_map.get(column_index)
        if position is not None:
            merged[position] = new_value
    return tuple(merged)


def union_read_file(file_id, orc_rows, delta_items, projection_map,
                    stats=None):
    """Merge one master file with its attached deltas.

    ``orc_rows``        — iterator of ``(row_number, values_tuple)`` from the
                          ORC reader (values in projection order);
    ``delta_items``     — iterator of ``(record_id, DeltaRecord)`` sorted by
                          record id, covering this file's key range;
    ``projection_map``  — ``{schema_column_index: projected_position}`` so
                          update cells can be applied onto projected tuples.
    ``stats``           — optional dict; on exhaustion holds the merge
                          counters ``deltas_applied``, ``rows_deleted``,
                          ``deltas_skipped`` and ``trailing_deltas``
                          (observability hooks, no cost impact).

    Yields ``(record_id, merged_values_tuple)`` with deleted rows skipped.

    Deltas whose record id never matches a master row cannot affect the
    output (UNION READ is master-driven), but silently dropping them
    hides real anomalies — an attached entry for a row COMPACT already
    folded away, or a file that shrank underneath its deltas.  They are
    therefore counted: ``deltas_skipped`` for ids passed over inside the
    master range, ``trailing_deltas`` for ids beyond the last master row
    (the iterator is drained so the count — and the backing scan's
    charges — are complete).
    """
    applied = 0
    deleted = 0
    skipped = 0
    trailing = 0
    delta_iter = iter(delta_items)
    current = next(delta_iter, None)
    try:
        for row_number, values in orc_rows:
            record_id = encode_record_id(file_id, row_number)
            while current is not None and current[0] < record_id:
                skipped += 1
                current = next(delta_iter, None)
            if current is not None and current[0] == record_id:
                delta = current[1]
                current = next(delta_iter, None)
                if delta.deleted:
                    deleted += 1
                    continue
                if delta.updates:
                    applied += 1
                    yield record_id, apply_update(values, delta.updates,
                                                  projection_map)
                    continue
            yield record_id, values
        while current is not None:
            trailing += 1
            current = next(delta_iter, None)
    finally:
        if stats is not None:
            stats["deltas_applied"] = applied
            stats["rows_deleted"] = deleted
            stats["deltas_skipped"] = skipped
            stats["trailing_deltas"] = trailing


def union_read_batches(file_id, orc_batches, delta_items, projection_map,
                       stats=None):
    """Columnar UNION READ, row-fallback flavor: per-row merge on dirty
    batches.

    Batch-path sibling of :func:`union_read_file`, yielding
    :class:`~repro.vector.ColumnBatch` objects instead of per-row
    ``(record_id, values)`` pairs.  The merge counters in ``stats`` are
    classified identically (``deltas_applied`` / ``rows_deleted`` /
    ``deltas_skipped`` / ``trailing_deltas``) — the two paths must agree
    exactly, whatever the delta distribution.

    The payoff is the **zero-delta fast path**: while the delta iterator
    is exhausted — or every remaining delta id lies beyond the current
    batch — the batch streams straight through with no merge loop and no
    per-row record-id encoding.  A fully compacted file therefore costs
    one comparison per *batch* instead of one id encode + compare per
    *row*.  Batches that do overlap a delta fall back to the row merge
    and are re-packed (deletes drop rows, updates patch them) — the
    overlay merge (:func:`union_read_overlay`, the default) exists to
    avoid exactly that fallback; this function is retained behind
    ``SET dualtable.merge = row`` as the correctness reference.
    """
    applied = 0
    deleted = 0
    skipped = 0
    trailing = 0
    delta_iter = iter(delta_items)
    current = next(delta_iter, None)
    try:
        for batch in orc_batches:
            if current is None:
                yield batch
                continue
            base = batch.row_base
            last_id = encode_record_id(file_id, base + batch.length - 1)
            if current[0] > last_id:
                yield batch
                continue
            merged_rows = []
            for offset, values in enumerate(batch.rows()):
                record_id = encode_record_id(file_id, base + offset)
                while current is not None and current[0] < record_id:
                    skipped += 1
                    current = next(delta_iter, None)
                if current is not None and current[0] == record_id:
                    delta = current[1]
                    current = next(delta_iter, None)
                    if delta.deleted:
                        deleted += 1
                        continue
                    if delta.updates:
                        applied += 1
                        merged_rows.append(apply_update(values, delta.updates,
                                                        projection_map))
                        continue
                merged_rows.append(values)
            if merged_rows:
                yield batch_from_rows(merged_rows, len(batch.columns))
        while current is not None:
            trailing += 1
            current = next(delta_iter, None)
    finally:
        if stats is not None:
            stats["deltas_applied"] = applied
            stats["rows_deleted"] = deleted
            stats["deltas_skipped"] = skipped
            stats["trailing_deltas"] = trailing


class DeltaOverlay:
    """One master file's deltas, pre-resolved for columnar application.

    All four members are derived from the file's sorted delta stream and
    express row *positions* (file-ordinal row numbers), so applying the
    overlay to a ColumnBatch is pure binary search over ``row_base``:

    ``positions``          — every delta row number, sorted (the merge
                             cursor for skipped/trailing accounting);
    ``delete_positions``   — rows with a DELETE marker, sorted;
    ``applied_positions``  — rows with live (non-deleted, non-empty)
                             updates, sorted — the ``deltas_applied``
                             population;
    ``patches``            — ``{schema_column_index: (positions, values)}``
                             sparse per-column patch lists over the live
                             updates (delete-marked rows excluded:
                             delete wins over update, exactly as in the
                             row merge).

    Overlays are immutable and memoized per (file, delta-epoch) in the
    delta-range cache (:meth:`AttachedTable.file_overlay`); callers must
    not mutate them.
    """

    __slots__ = ("positions", "delete_positions", "applied_positions",
                 "patches")

    def __init__(self, positions, delete_positions, applied_positions,
                 patches):
        self.positions = positions
        self.delete_positions = delete_positions
        self.applied_positions = applied_positions
        self.patches = patches

    def __len__(self):
        return len(self.positions)


def build_overlay(items):
    """Resolve one file's sorted ``(record_id, DeltaRecord)`` items into
    a :class:`DeltaOverlay` — one :func:`decode_record_id` per *delta*
    instead of one :func:`encode_record_id` per master *row*."""
    positions = []
    delete_positions = []
    applied_positions = []
    patches = {}
    for record_id, delta in items:
        _, row_number = decode_record_id(record_id)
        positions.append(row_number)
        if delta.deleted:
            delete_positions.append(row_number)
            continue
        if not delta.updates:
            continue   # noop delta: matches a master row, changes nothing
        applied_positions.append(row_number)
        for column_index, new_value in delta.updates.items():
            entry = patches.get(column_index)
            if entry is None:
                entry = patches[column_index] = ([], [])
            entry[0].append(row_number)
            entry[1].append(new_value)
    return DeltaOverlay(positions, delete_positions, applied_positions,
                        patches)


def union_read_overlay(file_id, orc_batches, overlay, projection_map,
                       stats=None):
    """Columnar UNION READ, overlay flavor: vectorized delta application.

    Semantically identical to :func:`union_read_batches` (same yielded
    rows, same ``stats`` dict), but a dirty batch costs binary searches
    plus slice-level column surgery instead of a per-row record-id merge:

    * patched columns are rebuilt once with :func:`repro.vector.spliced`
      (sparse position/value writes on a single list copy);
    * deleted rows are dropped in place on that same copy (untouched
      columns are copied first), so a batch with both patches and
      deletes still costs exactly one copy per column;
    * columns a batch neither patches nor shrinks are shared with the
      source batch zero-copy.

    A batch no delta position falls into streams through unchanged —
    the zero-delta fast path now costs one ``bisect`` per batch.
    """
    applied = 0
    deleted = 0
    skipped = 0
    trailing = 0
    positions = overlay.positions
    deletes = overlay.delete_positions
    updates = overlay.applied_positions
    cursor = 0   # first delta position not yet accounted for
    try:
        for batch in orc_batches:
            base = batch.row_base
            end = base + batch.length
            lo = bisect_left(positions, base, cursor)
            skipped += lo - cursor
            hi = bisect_left(positions, end, lo)
            cursor = hi
            if lo == hi:
                yield batch
                continue
            d_lo = bisect_left(deletes, base)
            d_hi = bisect_left(deletes, end, d_lo)
            deleted += d_hi - d_lo
            a_lo = bisect_left(updates, base)
            a_hi = bisect_left(updates, end, a_lo)
            applied += a_hi - a_lo
            patched = None
            for column_index, (p_positions, p_values) in \
                    overlay.patches.items():
                position = projection_map.get(column_index)
                if position is None:
                    continue
                p_lo = bisect_left(p_positions, base)
                p_hi = bisect_left(p_positions, end, p_lo)
                if p_lo == p_hi:
                    continue
                if patched is None:
                    patched = list(batch.columns)
                patched[position] = spliced(batch.columns[position],
                                            p_positions[p_lo:p_hi],
                                            p_values[p_lo:p_hi], base=base)
            if d_lo == d_hi:
                if patched is None:
                    # Only noop or unprojected-update matches: content is
                    # unchanged; hand the source batch through.
                    yield batch
                else:
                    yield ColumnBatch(patched, batch.length)
                continue
            survivors = batch.length - (d_hi - d_lo)
            if survivors == 0:
                continue   # every row deleted; empty batches are not yielded
            # Highest offset first so earlier deletes keep their index.
            offsets = [p - base for p in reversed(deletes[d_lo:d_hi])]
            source = batch.columns
            columns = patched if patched is not None else list(source)
            for position, column in enumerate(columns):
                if column is source[position]:
                    column = columns[position] = list(column)
                for offset in offsets:
                    del column[offset]
            yield ColumnBatch(columns, survivors)
        trailing = len(positions) - cursor
    finally:
        if stats is not None:
            stats["deltas_applied"] = applied
            stats["rows_deleted"] = deleted
            stats["deltas_skipped"] = skipped
            stats["trailing_deltas"] = trailing


def classify_merge_units(spans, positions):
    """``(fast_units, dirty_units)`` over a file's merge-unit grid.

    ``spans`` are the surviving stripes' ``(first_row, num_rows)`` pairs
    — the canonical merge-unit grid, independent of engine and of the
    session batch-size knob — and ``positions`` the file's sorted delta
    row numbers.  A unit any delta position falls into is *dirty* (the
    merge strategy must do per-delta work there); the rest stream
    through the fast path.  Pure control-plane arithmetic: no charges,
    byte-identical across engines, workers and shards.
    """
    fast = 0
    dirty = 0
    for first_row, num_rows in spans:
        lo = bisect_left(positions, first_row)
        if lo < len(positions) and positions[lo] < first_row + num_rows:
            dirty += 1
        else:
            fast += 1
    return fast, dirty


def apply_delta_to_row(values, delta, projection_map):
    """Apply one DeltaRecord to a projected row (None when deleted)."""
    if delta is None:
        return values
    if delta.deleted:
        return None
    if not delta.updates:
        return values
    return apply_update(values, delta.updates, projection_map)
