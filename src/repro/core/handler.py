"""DualTableHandler: the hybrid storage model, wired into Hive.

One DualTable = one Master Table (ORC on HDFS) + one Attached Table
(HBase) + the cost-model based UPDATE/DELETE execution and COMPACT
(Sections III and V of the paper).

Reads are UNION READs: each master file is one input split; its mapper
merges the sorted ORC row stream with the sorted Attached-Table delta
stream for that file's record-ID range.  Stripe pruning is applied only
when the Attached Table holds no entries for the file (otherwise an
updated field could move a row into the predicate's range and pruning
would be unsound).
"""

import itertools
import json

from repro.common.errors import CompactionInProgressError, DualTableError
from repro.mapreduce import InputSplit, Job
from repro.hive.catalog import register_handler
from repro.hive.expressions import Env, compile_expr, is_true, referenced_columns
from repro.hive.pushdown import (estimate_selection, extract_ranges,
                                 make_stripe_filter)
from repro.hive.session import QueryResult
from repro.hive.storage.base import StorageHandler
from repro.core.attached import AttachedTable
from repro.core.cost_model import CostModel
from repro.core.editlog import (EditBatch, recover_edit_logs,
                                run_with_retries)
from repro.core.lookup import plan_lookup, run_lookup
from repro.core.master import MasterTable
from repro.core.metadata import DualTableMetadata
from repro.core.record_id import RECORD_ID_BYTES
from repro.core.udtf import delete_udtf, update_udtf
from repro.core.union_read import (classify_merge_units, union_read_batches,
                                   union_read_file, union_read_overlay)
from repro.parallel import parallel_map

#: per-assignment Attached-Table payload estimate: 3-byte qualifier +
#: ~10-byte encoded value + cell overhead.
_UPDATE_CELL_BYTES = 18


class DualTableHandler(StorageHandler):
    """The paper's hybrid storage model as a Hive storage handler."""

    kind = "dualtable"
    supports_inplace_mutation = False   # mutation goes through plans

    def __init__(self, table, env):
        super().__init__(table, env)
        props = table.properties
        self.metadata = DualTableMetadata(env.hbase)
        self.master = MasterTable(
            fs=env.fs,
            location="/warehouse/%s/master" % table.name,
            schema=table.schema,
            metadata_manager=self.metadata,
            table_name=table.name,
            rows_per_file=int(props.get("orc.rows_per_file", 50_000)),
            stripe_rows=int(props.get("orc.stripe_rows", 5_000)),
        )
        self.attached = AttachedTable(
            env.hbase, "dt_%s_attached" % table.name,
            backend=str(props.get("dualtable.attached", "hbase")).lower())
        self.mode = str(props.get("dualtable.mode", "cost")).lower()
        if self.mode not in ("cost", "edit", "overwrite"):
            raise DualTableError("bad dualtable.mode: %r" % self.mode)
        self.read_factor = int(props.get("dualtable.read_factor", 1))
        pk = props.get("dualtable.primary_key")
        self.primary_key = str(pk).lower() if pk else None
        self.lookup_rows_limit = int(props.get("dualtable.lookup.max_rows",
                                               10_000))
        self._compacting = False
        # Crash-recovery bookkeeping: the EDIT-plan redo-log directory
        # and the COMPACT two-phase-commit paths (all siblings of the
        # master directory, never inside it).
        base = "/warehouse/%s" % table.name
        self.txn_dir = base + "/txn"
        self._compact_tmp = base + "/master.__compact__"
        self._compact_old = base + "/master.__old__"
        self._manifest_path = base + "/compact.manifest"
        self._txn_ids = itertools.count(1)

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def create(self):
        self.master.create()
        self.attached.create()
        self.metadata.register_table(self.table.name)

    def drop(self):
        self.master.drop()
        self.attached.drop()
        self.metadata.unregister_table(self.table.name)
        for path in (self._manifest_path, self._compact_tmp,
                     self._compact_old, self.txn_dir):
            if self.env.fs.exists(path):
                self.env.fs.delete(path, recursive=True)

    def _check_not_compacting(self):
        if self._compacting:
            raise CompactionInProgressError(
                "COMPACT in progress on %s" % self.table.name)

    # ------------------------------------------------------------------
    # Crash recovery.
    # ------------------------------------------------------------------
    def recover(self):
        """Finish any interrupted COMPACT or EDIT commit; idempotent.

        Every public entry point calls this first, so a table whose last
        statement crashed mid-commit heals on the next access.  Returns
        ``{"compact": <"rolled_forward"|"rolled_back"|"clean">,
        "dml": [(staging_path, outcome), ...]}``.
        """
        outcome = {"compact": self._recover_compact(),
                   "dml": recover_edit_logs(self)}
        self.note_attached_bytes()
        return outcome

    def _ensure_recovered(self):
        if self._compacting:
            return   # mid-commit state is normal while COMPACT runs
        fs = self.env.fs
        if fs.exists(self._manifest_path) or fs.exists(self._compact_tmp) \
                or fs.exists(self._compact_old):
            self._recover_compact()
        if fs.exists(self.txn_dir) and fs.list_files(self.txn_dir):
            recover_edit_logs(self)

    def _recover_compact(self):
        """Roll an interrupted COMPACT forward or back.

        The manifest is the commit point: if it exists (and is valid) the
        new master files are all durable, so recovery *completes* the
        swap; if not, the half-written ``__compact__`` directory is
        discarded and the old master + Attached Table still hold the
        table intact.
        """
        fs = self.env.fs
        if fs.exists(self._manifest_path):
            manifest = self._load_valid_manifest()
            if manifest is not None:
                if manifest.get("mode") == "partial":
                    self._complete_partial_compact(manifest)
                else:
                    self._complete_compact()
                return "rolled_forward"
            fs.delete(self._manifest_path)
        rolled_back = False
        if fs.exists(self._compact_tmp):
            fs.delete(self._compact_tmp, recursive=True)
            rolled_back = True
        if fs.exists(self._compact_old):
            if fs.exists(self.master.location):
                fs.delete(self._compact_old, recursive=True)
            else:
                # Unreachable by protocol order (old is deleted before
                # the manifest), but never discard the only master copy.
                fs.rename(self._compact_old, self.master.location)
            rolled_back = True
        if rolled_back:
            self._invalidate_master_cache()
        return "rolled_back" if rolled_back else "clean"

    def _load_valid_manifest(self):
        """The COMPACT manifest as a dict, or None if absent/torn."""
        fs = self.env.fs
        if not fs.exists(self._manifest_path):
            return None
        try:
            manifest = json.loads(
                fs.read_file(self._manifest_path).decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return None
        if not isinstance(manifest, dict) \
                or manifest.get("table") != self.table.name:
            return None
        return manifest

    # ------------------------------------------------------------------
    # Writes.
    # ------------------------------------------------------------------
    def _invalidate_master_cache(self):
        """Drop cached ORC footers/stripes under the master directory.

        The ORC cache key is content-exact (length + CRC of the file
        bytes), so stale *hits* are impossible even without this — the
        hook exists to release entries for replaced files immediately
        instead of waiting for LRU pressure.
        """
        cache = getattr(self.env.cluster, "orc_cache", None)
        if cache is not None:
            cache.invalidate_group(self.master.location)

    def insert_rows(self, rows, overwrite=False):
        self._check_not_compacting()
        self._ensure_recovered()
        rows = list(rows)
        if overwrite:
            self.master.replace_with(rows)
            self.attached.clear()
            self._invalidate_master_cache()
            self.note_attached_bytes()
        else:
            self.master.write_rows(rows)
        return len(rows)

    def note_attached_bytes(self):
        """Refresh the live per-table Attached-Table size gauge.

        Every path that grows or shrinks the Attached Table calls this,
        so the auto-compaction daemon and SHOW METRICS see delta
        accumulation between compactions, not just the post-COMPACT zero.
        """
        self.env.cluster.metrics.gauge(
            "dualtable.attached_bytes.%s" % self.table.name,
            self.attached.size_bytes)

    # ------------------------------------------------------------------
    # Reads (UNION READ).
    # ------------------------------------------------------------------
    def scan_splits(self, projection=None, ranges=None):
        self._check_not_compacting()
        self._ensure_recovered()
        # Recover the Attached store up front: the per-file fan-out below
        # may run on pool workers, and a WAL replay must happen (and be
        # charged) exactly once, before any of them look at key ranges.
        self.attached.ensure_available()
        # Per-table read counter: the maintenance stats collector derives
        # the read horizon from the scans-vs-DML mix.
        self.env.cluster.metrics.incr("dualtable.scans.%s" % self.table.name)
        projection_list = list(projection) if projection else None

        def split_for(path):
            reader = self.master.reader(path)
            file_id = int(reader.metadata["dualtable.file_id"])
            prune_safe = not self.attached.has_entries_in_file(file_id)
            return InputSplit(
                payload={"path": path, "file_id": file_id,
                         "projection": projection_list,
                         "ranges": (ranges or {}) if prune_safe else {},
                         "prune_safe": prune_safe},
                size_bytes=reader.projected_bytes(projection_list),
                label=path)

        splits = parallel_map(self.env.cluster, split_for,
                              self.master.file_paths())
        # Workload-profile hook: per-table scanned-bytes histogram (the
        # advisor's "bytes read" axis).  Split sizes are control-plane
        # metadata, identical for any worker count or engine.
        self.env.cluster.metrics.observe(
            "dualtable.scan_bytes.%s" % self.table.name,
            sum(split.size_bytes for split in splits))
        return splits

    def read_split(self, split, ctx):
        for _, values in self.read_split_with_rids(split, ctx):
            yield values

    @property
    def merge_mode(self):
        """The session's dirty-batch merge strategy ("overlay" | "row")."""
        return getattr(self.env, "merge_mode", "overlay")

    def _prepare_union_read(self, file_id, reader, stripe_filter):
        """Shared per-file merge setup for the row and batch read paths.

        Materializes the (charged) delta scan, resolves it into the
        memoized :class:`~repro.core.union_read.DeltaOverlay`, and
        classifies the file's merge units (``unionread.batches_*``
        counters) on the canonical per-stripe grid.  Eager
        materialization reorders the delta-scan charges relative to the
        interleaved master reads, which is ledger-neutral: charges
        accumulate per (device, category) key, so only per-key order —
        unchanged — matters.  Returns ``(items, overlay)``.
        """
        items = list(self.attached.scan_file(file_id))
        overlay = self.attached.file_overlay(file_id, items=items)
        spans = [(s.first_row, s.num_rows) for s in reader.stripes
                 if stripe_filter is None or stripe_filter(s)]
        fast, dirty = classify_merge_units(spans, overlay.positions)
        self._note_merge_units(fast, dirty)
        return items, overlay

    def _note_merge_units(self, fast, dirty):
        """Merge-unit accounting: how much of the scanned stripe grid
        streamed through the fast path vs needed delta work.

        The unit grid is per *stripe* — control-plane arithmetic over
        footer spans and delta positions, so the counts are
        byte-identical across engines, workers, shards and the
        batch-size knob.  Dirty units are attributed to the configured
        merge strategy (``batches_overlay`` vs ``batches_row_fallback``);
        the row *engine* reports the same classification the batch
        engine would, keeping the cross-engine counter contract.
        """
        metrics = self.env.cluster.metrics
        table = self.table.name
        if fast:
            metrics.incr("unionread.batches_fast", fast)
            metrics.incr("unionread.batches_fast.%s" % table, fast)
        if dirty:
            name = ("batches_overlay" if self.merge_mode == "overlay"
                    else "batches_row_fallback")
            metrics.incr("unionread.%s" % name, dirty)
            metrics.incr("unionread.%s.%s" % (name, table), dirty)

    def read_split_with_rids(self, split, ctx):
        """UNION READ of one master file: yields (record_id, values)."""
        payload = split.payload
        cluster = self.env.cluster
        with cluster.tracer.span("substrate",
                                 "union-read:%d" % payload["file_id"],
                                 path=payload["path"]) as span:
            reader = self.master.reader(payload["path"])
            projection = payload["projection"]
            stripe_filter = make_stripe_filter(
                [n for n, _ in reader.schema], payload["ranges"] or {})
            orc_rows = reader.rows(projection=projection,
                                   stripe_filter=stripe_filter)
            projection_map = self._projection_map(projection)
            deltas, _ = self._prepare_union_read(
                payload["file_id"], reader, stripe_filter)
            stats = {}
            nrows = 0
            for item in union_read_file(payload["file_id"], orc_rows, deltas,
                                        projection_map, stats=stats):
                nrows += 1
                yield item
            self._note_union_read(span, nrows, stats)

    def read_split_batches(self, split, ctx, batch_rows=None):
        """Columnar UNION READ of one master file.

        Shares every charge and counter with :meth:`read_split_with_rids`
        (footer + stripe-column bytes via the ORC reader, the delta scan
        via ``scan_file``, the per-output-row ``unionread`` CPU charge,
        the ``unionread.*`` metrics) — only the wall-clock work differs.
        Clean files stream straight through the zero-delta fast path
        under either strategy; dirty batches are merged with the
        columnar overlay by default, or the per-row reference merge
        under ``SET dualtable.merge = row`` (INTERNALS §14).
        """
        payload = split.payload
        cluster = self.env.cluster
        with cluster.tracer.span("substrate",
                                 "union-read:%d" % payload["file_id"],
                                 path=payload["path"]) as span:
            reader = self.master.reader(payload["path"])
            projection = payload["projection"]
            stripe_filter = make_stripe_filter(
                [n for n, _ in reader.schema], payload["ranges"] or {})
            orc_batches = reader.batches(projection=projection,
                                         stripe_filter=stripe_filter,
                                         batch_rows=batch_rows)
            projection_map = self._projection_map(projection)
            items, overlay = self._prepare_union_read(
                payload["file_id"], reader, stripe_filter)
            stats = {}
            nrows = 0
            if self.merge_mode == "overlay":
                merged = union_read_overlay(payload["file_id"], orc_batches,
                                            overlay, projection_map,
                                            stats=stats)
            else:
                merged = union_read_batches(payload["file_id"], orc_batches,
                                            items, projection_map,
                                            stats=stats)
            for batch in merged:
                nrows += batch.length
                yield batch
            self._note_union_read(span, nrows, stats)

    def _note_union_read(self, span, nrows, stats):
        """Post-merge accounting shared by the row and batch paths."""
        cluster = self.env.cluster
        # Per-row merge-path invocation overhead (Figure 4).
        profile = cluster.profile
        cluster.charge_fixed(
            "cpu", "unionread",
            nrows * profile.op_scale * profile.unionread_row_cost_s)
        span.annotate(rows=nrows, **stats)
        metrics = cluster.metrics
        metrics.incr("unionread.files")
        metrics.incr("unionread.rows", nrows)
        if stats.get("deltas_applied"):
            metrics.incr("unionread.deltas_applied",
                         stats["deltas_applied"])
            # Per-table delta churn: how much merge work reads on this
            # table keep paying for (advisor read-overhead evidence).
            metrics.incr("unionread.deltas_applied.%s" % self.table.name,
                         stats["deltas_applied"])
        if stats.get("rows_deleted"):
            metrics.incr("unionread.rows_deleted", stats["rows_deleted"])
        if stats.get("deltas_skipped"):
            metrics.incr("unionread.deltas_skipped",
                         stats["deltas_skipped"])
        if stats.get("trailing_deltas"):
            metrics.incr("unionread.trailing_deltas",
                         stats["trailing_deltas"])

    def attached_for_split(self, split):
        """The Attached Table holding one split's deltas.

        A method so sharded handlers can hand back the owning child's
        store; the single-table answer is the table's own.
        """
        return self.attached

    def _projection_map(self, projection):
        schema = self.schema
        if projection is None:
            return {i: i for i in range(len(schema))}
        return {schema.index_of(name): pos
                for pos, name in enumerate(projection)}

    # ------------------------------------------------------------------
    # LOOKUP (the third plan type: point reads without MapReduce).
    # ------------------------------------------------------------------
    def plan_lookup(self, ranges, projection=None, hit_faults=True):
        """Plan a LOOKUP read (or None if ineligible).

        A method so sharded handlers can route the plan to the owning
        shard; the single-table implementation is the module function.
        """
        return plan_lookup(self, ranges, projection=projection,
                           hit_faults=hit_faults)

    def execute_lookup(self, plan, engine="row", batch_rows=None):
        """Run one planned LOOKUP read at sub-job cost (no MR planner).

        Returns ``(rows, sim_seconds, detail)``.  ``sim_seconds`` is the
        ledger-observed device time of the read — there is no Job to sum,
        so the statement's simulated latency is taken straight from the
        charges the union-read merge recorded.  The detail carries the
        same predicted-vs-observed audit shape DML plans emit, so EXPLAIN
        ANALYZE prints a cost-model audit line for LOOKUPs too.
        """
        self._check_not_compacting()
        self._ensure_recovered()
        cluster = self.env.cluster
        table = self.table.name
        before = cluster.ledger.snapshot()
        with cluster.tracer.span("phase", "dualtable:lookup", table=table,
                                 files=len(plan.files),
                                 est_rows=plan.est_rows) as span:
            rows = run_lookup(self, plan, engine=engine,
                              batch_rows=batch_rows)
            span.annotate(rows=len(rows))
        delta = cluster.ledger.diff(before)
        observed = delta["total_seconds"]
        nbytes = sum(delta["bytes"].values())
        metrics = cluster.metrics
        metrics.incr("dualtable.lookups.%s" % table)
        metrics.incr("dualtable.plan.lookup")
        metrics.incr("dualtable.plan.lookup.%s" % table)
        metrics.observe("dualtable.plan.lookup_seconds.%s" % table,
                        observed)
        metrics.observe("dualtable.plan.lookup_bytes.%s" % table, nbytes)
        choice = plan.choice
        predicted = choice.lookup_seconds
        rel_error = (abs(predicted - observed) / observed
                     if observed > 0 else 0.0)
        audit = {"plan": "lookup",
                 "predicted_seconds": predicted,
                 "observed_seconds": observed,
                 "rel_error": rel_error}
        metrics.incr("costmodel.audits")
        metrics.incr("costmodel.audits.%s" % table)
        metrics.observe("costmodel.rel_error", rel_error)
        metrics.observe("costmodel.rel_error.lookup", rel_error)
        metrics.observe("costmodel.rel_error.table.%s" % table, rel_error)
        cluster.tracer.annotate(cost_audit=dict(audit))
        detail = {"plan": "lookup",
                  "files_read": len(plan.files),
                  "total_files": plan.total_files,
                  "est_rows": plan.est_rows,
                  "lookup_bytes": nbytes,
                  "lookup_seconds": choice.lookup_seconds,
                  "scan_seconds": choice.scan_seconds,
                  "cost_difference": choice.cost_difference,
                  "audit": audit}
        return rows, observed, detail

    def note_lookup_eligible_scan(self):
        """A lookup-eligible read routed to the scan plan (advisor feed)."""
        metrics = self.env.cluster.metrics
        metrics.incr("dualtable.plan.lookup_eligible_scan")
        metrics.incr("dualtable.plan.lookup_eligible_scan.%s"
                     % self.table.name)

    def note_lookup_fallback(self):
        """A mid-lookup fault made the statement fall back to the scan."""
        metrics = self.env.cluster.metrics
        metrics.incr("dualtable.plan.lookup_fallback")
        metrics.incr("dualtable.plan.lookup_fallback.%s" % self.table.name)

    # ------------------------------------------------------------------
    # Statistics.
    # ------------------------------------------------------------------
    def data_bytes(self):
        return self.master.data_bytes() + self.attached.size_bytes

    def row_count(self):
        return self.master.row_count()

    # ------------------------------------------------------------------
    # UPDATE / DELETE (cost-model dispatch).
    # ------------------------------------------------------------------
    def cost_model(self):
        profile = self.env.cluster.profile
        return CostModel(profile, k=self.read_factor,
                         attached_rates=self.attached.rates(profile))

    #: rows to sample when the predicate has no extractable column ranges
    SAMPLE_ROWS = 2000

    def _estimate_ratio(self, where):
        """Estimate the modification ratio.

        Prefers stripe-statistics estimation (zero data reads); falls back
        to evaluating the predicate over a small row sample — the paper's
        "historical analysis ... or directly given by the designer"
        alternative, made automatic.
        """
        if where is None:
            return 1.0, self.master.row_count()
        ranges = extract_ranges(where)
        readers = self.master.readers()
        if not readers:
            return 0.0, 0
        schema_cols = {c.name.lower() for c in self.schema}
        usable = {n: r for n, r in ranges.items() if n in schema_cols}
        if usable:
            selected, total = estimate_selection(readers, usable)
            if total == 0:
                return 0.0, 0
            return min(1.0, selected / total), total
        return self._sample_ratio(where, readers)

    def _sample_ratio(self, where, readers):
        projection = [c.name for c in self.schema
                      if c.name.lower() in referenced_columns(where)]
        if not projection:
            projection = [self.schema.columns[0].name]
        env = Env()
        env.add_schema(projection)
        predicate = compile_expr(where, env)
        total = sum(r.num_rows for r in readers)
        sampled = 0
        matched = 0
        per_reader = max(1, self.SAMPLE_ROWS // max(1, len(readers)))
        for reader in readers:
            taken = 0
            for _, values in reader.rows(projection=projection):
                if is_true(predicate(values)):
                    matched += 1
                taken += 1
                if taken >= per_reader:
                    break
            sampled += taken
        if sampled == 0:
            return 0.0, total
        return matched / sampled, total

    def _edit_scan_bytes(self, where, extra_columns=()):
        """Master bytes the EDIT scan reads (projection + pruning)."""
        needed = set(extra_columns)
        if where is not None:
            needed |= referenced_columns(where)
        projection = [c.name for c in self.schema
                      if c.name.lower() in needed] or None
        ranges = extract_ranges(where) if where is not None else {}
        total = 0
        for reader in self.master.readers():
            stripe_filter = make_stripe_filter(
                [n for n, _ in reader.schema], ranges)
            total += reader.projected_bytes(projection, stripe_filter)
        return total

    def execute_update(self, session, stmt):
        self._check_not_compacting()
        self._ensure_recovered()
        self.env.cluster.metrics.incr(
            "dualtable.updates.%s" % self.table.name)
        with self.env.cluster.tracer.span(
                "phase", "dualtable:plan", table=self.table.name,
                dml="update") as span:
            ratio, total_rows = self._estimate_ratio(stmt.where)
            d_bytes = self.master.data_bytes()
            update_cell_bytes = (RECORD_ID_BYTES
                                 + _UPDATE_CELL_BYTES * len(stmt.assignments))
            assignment_columns = set()
            for _, expr in stmt.assignments:
                assignment_columns |= referenced_columns(expr)
            scan_bytes = self._edit_scan_bytes(stmt.where, assignment_columns)
            choice = self.cost_model().choose_update_plan(
                d_bytes, total_rows, ratio, update_cell_bytes,
                edit_scan_bytes=scan_bytes)
            plan = self._forced_or(choice.plan)
            self._annotate_choice(span, choice, plan)
        detail = self._detail(choice, plan)
        self.metadata.record_ratio(self.table.name, ratio)
        self._note_plan_choice(plan, choice)
        self._claim_txn_access(session, plan)
        if plan == "overwrite":
            info = session.metastore.table(self.table.name)
            result = session.update_via_overwrite(info, stmt,
                                                  extra_detail=detail)
        else:
            result = self._edit_update(session, stmt, detail)
        self._audit_cost_model(choice, plan, result)
        return result

    def execute_delete(self, session, stmt):
        self._check_not_compacting()
        self._ensure_recovered()
        self.env.cluster.metrics.incr(
            "dualtable.deletes.%s" % self.table.name)
        with self.env.cluster.tracer.span(
                "phase", "dualtable:plan", table=self.table.name,
                dml="delete") as span:
            ratio, total_rows = self._estimate_ratio(stmt.where)
            d_bytes = self.master.data_bytes()
            scan_bytes = self._edit_scan_bytes(stmt.where)
            choice = self.cost_model().choose_delete_plan(
                d_bytes, total_rows, ratio, edit_scan_bytes=scan_bytes)
            plan = self._forced_or(choice.plan)
            self._annotate_choice(span, choice, plan)
        detail = self._detail(choice, plan)
        self.metadata.record_ratio(self.table.name, ratio)
        self._note_plan_choice(plan, choice)
        self._claim_txn_access(session, plan)
        if plan == "overwrite":
            info = session.metastore.table(self.table.name)
            result = session.delete_via_overwrite(info, stmt,
                                                  extra_detail=detail)
        else:
            result = self._edit_delete(session, stmt, detail)
        self._audit_cost_model(choice, plan, result)
        return result

    def _claim_txn_access(self, session, plan):
        """Declare this DML's isolation needs to the server transaction.

        Under a server (:mod:`repro.server`), an OVERWRITE plan rewrites
        master files in place, which is only snapshot-safe with the
        table to itself — ``require_exclusive`` either escalates the
        transaction or aborts it for an exclusive re-run.  An EDIT plan
        just records the write so conflict detection sees the table.
        """
        txn = getattr(session, "current_txn", None)
        if txn is None:
            return
        if plan == "overwrite":
            txn.require_exclusive(self.table.name)
        else:
            txn.touch(self.table.name, write=True)

    @staticmethod
    def _annotate_choice(span, choice, plan):
        span.annotate(plan=plan, cost_plan=choice.plan,
                      ratio=round(choice.ratio, 6),
                      edit_seconds=round(choice.edit_seconds, 6),
                      overwrite_seconds=round(choice.overwrite_seconds, 6))

    def _note_plan_choice(self, plan, choice):
        metrics = self.env.cluster.metrics
        table = self.table.name
        metrics.incr("dualtable.plan.%s" % plan)
        metrics.incr("dualtable.dml.%s" % table)
        # Workload-profile hooks (repro.advisor): per-table plan mix and
        # the regret signal — an executed plan whose predicted cost was
        # higher than the alternative's (only forced modes can regret;
        # cost mode always takes the cheaper estimate).
        metrics.incr("dualtable.plan.%s.%s" % (plan, table))
        if self.mode != "cost" and plan != choice.plan:
            metrics.incr("dualtable.plan.forced")
            metrics.incr("dualtable.plan.forced.%s" % table)
        if plan == "overwrite" \
                and choice.edit_seconds < choice.overwrite_seconds:
            metrics.incr("dualtable.plan.overwrite_regret.%s" % table)
            metrics.observe(
                "dualtable.plan.regret_seconds.%s" % table,
                choice.overwrite_seconds - choice.edit_seconds)
        elif plan == "edit" \
                and choice.overwrite_seconds < choice.edit_seconds:
            metrics.incr("dualtable.plan.edit_regret.%s" % table)

    def _audit_cost_model(self, choice, plan, result):
        """Record predicted-vs-observed cost for the chosen plan.

        The model's estimate covers device time for the plan's I/O; the
        observation is the whole statement's ledger-derived run time
        (startup, task overheads and commit included), so the relative
        error measures how faithfully Section IV's equations track the
        measured world — the audit SynchroStore-style systems feed back
        into their planners.
        """
        predicted = (choice.edit_seconds if plan == "edit"
                     else choice.overwrite_seconds)
        observed = result.sim_seconds
        rel_error = (abs(predicted - observed) / observed
                     if observed > 0 else 0.0)
        audit = {"plan": plan,
                 "predicted_seconds": predicted,
                 "observed_seconds": observed,
                 "rel_error": rel_error}
        result.detail["audit"] = audit
        cluster = self.env.cluster
        table = self.table.name
        cluster.metrics.incr("costmodel.audits")
        cluster.metrics.observe("costmodel.rel_error", rel_error)
        cluster.metrics.observe("costmodel.rel_error.%s" % plan, rel_error)
        # Workload-profile hooks (repro.advisor): per-table audit trail
        # (drift detection needs a per-table error distribution), DML
        # latency histogram on the simulated axis, and the bytes the
        # plan rewrote (an OVERWRITE rewrites the whole master).
        cluster.metrics.incr("costmodel.audits.%s" % table)
        cluster.metrics.observe("costmodel.rel_error.table.%s" % table,
                                rel_error)
        cluster.metrics.observe("dualtable.dml_seconds.%s" % table,
                                observed)
        if plan == "overwrite":
            cluster.metrics.incr("dualtable.bytes_rewritten.%s" % table,
                                 self.master.data_bytes())
        self.note_attached_bytes()
        cluster.tracer.annotate(cost_audit=dict(audit))
        return audit

    def _forced_or(self, cost_plan):
        if self.mode == "cost":
            return cost_plan
        return self.mode

    @staticmethod
    def _detail(choice, plan):
        return {
            "plan": plan,
            "cost_plan": choice.plan,
            "cost_difference": choice.cost_difference,
            "edit_seconds": choice.edit_seconds,
            "overwrite_seconds": choice.overwrite_seconds,
            "ratio": choice.ratio,
        }

    # -- EDIT plans ------------------------------------------------------
    def _edit_update(self, session, stmt, detail):
        schema = self.schema
        needed = set()
        if stmt.where is not None:
            needed |= referenced_columns(stmt.where)
        for _, expr in stmt.assignments:
            needed |= referenced_columns(expr)
        projection = [c.name for c in schema if c.name.lower() in needed]
        if not projection:
            projection = [schema.columns[0].name]
        env = Env()
        env.add_schema(projection, alias=stmt.alias)
        predicate = (compile_expr(stmt.where, env)
                     if stmt.where is not None else None)
        assigns = [(schema.index_of(name), compile_expr(expr, env))
                   for name, expr in stmt.assignments]
        ranges = extract_ranges(stmt.where) if stmt.where is not None else {}
        splits = self.scan_splits(projection, ranges)
        batch = EditBatch(self, next(self._txn_ids))

        def map_fn(split, ctx):
            # Output-committer semantics: a failed/retried attempt's
            # buffer is dropped; only successful attempts reach the batch.
            buffer = batch.task_buffer()
            for record_id, values in self.read_split_with_rids(split, ctx):
                if predicate is None or is_true(predicate(values)):
                    new_values = {idx: fn(values) for idx, fn in assigns}
                    update_udtf(buffer, record_id, new_values, ctx)
            batch.absorb(buffer, ctx.task_index)
            return ()

        job = Job(name="update-edit", splits=splits, map_fn=map_fn,
                  reduce_fn=None)
        result = session.runner.run(job)
        commit_seconds = self._commit_or_defer(session, batch)
        self.note_attached_bytes()
        jobs = session._dml_subquery_jobs + [result]
        sub = sum(j.sim_seconds for j in session._dml_subquery_jobs)
        return QueryResult(
            sim_seconds=sub + result.sim_seconds + commit_seconds,
            jobs=jobs, affected=result.counters.get("updated", 0),
            plan="update-edit", detail=detail)

    def _edit_delete(self, session, stmt, detail):
        schema = self.schema
        needed = (referenced_columns(stmt.where)
                  if stmt.where is not None else set())
        projection = [c.name for c in schema if c.name.lower() in needed]
        if not projection:
            projection = [schema.columns[0].name]
        env = Env()
        env.add_schema(projection, alias=stmt.alias)
        predicate = (compile_expr(stmt.where, env)
                     if stmt.where is not None else None)
        ranges = extract_ranges(stmt.where) if stmt.where is not None else {}
        splits = self.scan_splits(projection, ranges)
        batch = EditBatch(self, next(self._txn_ids))

        def map_fn(split, ctx):
            buffer = batch.task_buffer()
            for record_id, values in self.read_split_with_rids(split, ctx):
                if predicate is None or is_true(predicate(values)):
                    delete_udtf(buffer, record_id, ctx)
            batch.absorb(buffer, ctx.task_index)
            return ()

        job = Job(name="delete-edit", splits=splits, map_fn=map_fn,
                  reduce_fn=None)
        result = session.runner.run(job)
        commit_seconds = self._commit_or_defer(session, batch)
        self.note_attached_bytes()
        jobs = session._dml_subquery_jobs + [result]
        sub = sum(j.sim_seconds for j in session._dml_subquery_jobs)
        return QueryResult(
            sim_seconds=sub + result.sim_seconds + commit_seconds,
            jobs=jobs, affected=result.counters.get("deleted", 0),
            plan="delete-edit", detail=detail)

    def _commit_or_defer(self, session, batch):
        """Commit the EditBatch now, or buffer it in the server txn.

        Under an *optimistic* server transaction nothing durable may
        happen before the transaction's commit point (a killed or
        conflicted statement must leave zero trace), so stage + publish
        are deferred to :meth:`StatementTxn.publish`.  Standalone
        sessions and exclusive transactions commit immediately, exactly
        as before the server existed.
        """
        txn = getattr(session, "current_txn", None)
        if txn is not None and not txn.exclusive:
            txn.defer_edit_batch(self.table.name, batch, session)
            return 0.0
        with self.env.cluster.tracer.span("phase", "dualtable:edit-commit",
                                          table=self.table.name):
            return batch.commit(session)

    # ------------------------------------------------------------------
    # COMPACT (Section III-C): fold the Attached Table into the Master.
    # ------------------------------------------------------------------
    def execute_compact(self, session, major=True, partial=False,
                        max_files=None, victim_paths=None):
        """Fold Attached-Table deltas into the Master.

        Full COMPACT (``partial=False``) rewrites every master file and
        truncates the Attached Table.  Partial COMPACT rewrites only the
        highest-delta-density files (optionally capped at ``max_files``,
        or the explicit ``victim_paths`` the auto-compaction policy
        selected) and drops only the folded files' deltas — record IDs
        of rewritten rows are remapped to the fresh file IDs the rewrite
        allocates, while untouched files keep their IDs and deltas.
        """
        self._check_not_compacting()
        self._ensure_recovered()
        if self.attached.is_empty():
            return self._compact_noop()
        if partial:
            victims = self._select_compact_victims(victim_paths, max_files)
            if not victims:
                return self._compact_noop()
            return self._run_partial_compact(session, victims)
        attached_bytes = self.attached.size_bytes
        self._compacting = True
        cluster = self.env.cluster
        try:
            with cluster.tracer.span("phase", "dualtable:compact",
                                     table=self.table.name,
                                     attached_bytes=attached_bytes):
                splits = self._compact_splits()

                def map_fn(split, ctx):
                    yield from self.read_split(split, ctx)

                job = Job(name="compact", splits=splits, map_fn=map_fn,
                          reduce_fn=None)
                result = session.runner.run(job)
                write_seconds = run_with_retries(
                    session, lambda: self._commit_compact(result.outputs),
                    "compact-commit")
        finally:
            self._compacting = False
        cluster.metrics.incr("dualtable.compacts")
        cluster.metrics.incr("dualtable.compacts.%s" % self.table.name)
        cluster.metrics.observe("dualtable.compact.folded_bytes",
                                attached_bytes)
        self.note_attached_bytes()
        return QueryResult(
            sim_seconds=result.sim_seconds + write_seconds,
            jobs=[result], affected=len(result.outputs),
            plan="compact",
            detail={"attached_bytes": attached_bytes,
                    "folded_bytes": attached_bytes,
                    "mode": "full", "files": len(splits),
                    "rows_written": len(result.outputs)})

    def _compact_noop(self):
        self.note_attached_bytes()
        return QueryResult(sim_seconds=0.0, jobs=[], affected=0,
                           plan="compact-noop",
                           detail={"attached_bytes": 0, "folded_bytes": 0,
                                   "mode": "noop", "files": 0,
                                   "rows_written": 0})

    def _select_compact_victims(self, victim_paths, max_files):
        """Dirty master files ordered by delta density (highest first).

        Consults only control-plane metadata (file sizes, attached key
        ranges) — selection itself is free, like plan choice.
        """
        candidates = []
        for path in self.master.file_paths():
            if victim_paths is not None and path not in victim_paths:
                continue
            file_id, _ = self.master.file_meta(path)
            delta_bytes, delta_entries = \
                self.attached.file_delta_stats(file_id)
            if delta_bytes <= 0:
                continue
            master_bytes = max(1, self.env.fs.file_size(path))
            candidates.append({"path": path, "file_id": file_id,
                               "delta_bytes": delta_bytes,
                               "delta_entries": delta_entries,
                               "master_bytes": master_bytes})
        candidates.sort(
            key=lambda c: (-(c["delta_bytes"] / c["master_bytes"]),
                           c["path"]))
        if max_files is not None:
            candidates = candidates[:max(1, int(max_files))]
        return candidates

    def _run_partial_compact(self, session, victims):
        attached_bytes = self.attached.size_bytes
        folded_bytes = sum(v["delta_bytes"] for v in victims)
        self._compacting = True
        cluster = self.env.cluster
        try:
            with cluster.tracer.span("phase", "dualtable:compact-partial",
                                     table=self.table.name,
                                     files=len(victims),
                                     folded_bytes=folded_bytes):
                splits = self._compact_splits(
                    paths=[v["path"] for v in victims])

                def map_fn(split, ctx):
                    yield from self.read_split(split, ctx)

                job = Job(name="compact-partial", splits=splits,
                          map_fn=map_fn, reduce_fn=None)
                result = session.runner.run(job)
                write_seconds = run_with_retries(
                    session,
                    lambda: self._commit_partial_compact(result.outputs,
                                                         victims),
                    "compact-partial-commit")
        finally:
            self._compacting = False
        cluster.metrics.incr("dualtable.compacts")
        cluster.metrics.incr("dualtable.compacts.partial")
        cluster.metrics.observe("dualtable.compact.folded_bytes",
                                folded_bytes)
        self.note_attached_bytes()
        return QueryResult(
            sim_seconds=result.sim_seconds + write_seconds,
            jobs=[result], affected=len(result.outputs),
            plan="compact-partial",
            detail={"attached_bytes": attached_bytes,
                    "folded_bytes": folded_bytes,
                    "mode": "partial", "files": len(victims),
                    "file_ids": [v["file_id"] for v in victims],
                    "rows_written": len(result.outputs)})

    def _compact_splits(self, paths=None):
        # scan_splits raises while _compacting; build splits directly.
        splits = []
        for path in (paths if paths is not None
                     else self.master.file_paths()):
            reader = self.master.reader(path)
            splits.append(InputSplit(
                payload={"path": path,
                         "file_id": int(reader.metadata["dualtable.file_id"]),
                         "projection": None, "ranges": {},
                         "prune_safe": False},
                size_bytes=reader.projected_bytes(None),
                label=path))
        return splits

    def _commit_compact(self, rows):
        """Two-phase commit of the compacted master (idempotent).

        Phase 1 writes the new master files into ``master.__compact__``
        and then writes the manifest — the commit point: every step
        before it rolls *back* on a crash, every step after it rolls
        *forward* (see :meth:`_recover_compact`).  Phase 2
        (:meth:`_complete_compact`) is a chain of existence-guarded
        renames/deletes, so replaying it from any prefix converges.
        """
        fs = self.env.fs
        faults = self.env.cluster.faults
        faults.hit("dualtable.compact.write", table=self.table.name)
        if fs.exists(self._compact_tmp):
            fs.delete(self._compact_tmp, recursive=True)
        fs.mkdirs(self._compact_tmp)
        self.master.write_rows(rows, directory=self._compact_tmp)
        faults.hit("dualtable.compact.manifest", table=self.table.name)
        manifest = json.dumps({
            "table": self.table.name,
            "tmp": self._compact_tmp,
            "location": self.master.location,
            "rows": len(rows),
        }).encode("utf-8")
        if fs.exists(self._manifest_path):
            fs.delete(self._manifest_path)
        fs.write_file(self._manifest_path, manifest)
        self._complete_compact(inject=True)

    def _complete_compact(self, inject=False):
        """Finish a committed compaction; every step is re-runnable."""
        fs = self.env.fs
        faults = self.env.cluster.faults

        def hit(point):
            if inject:
                faults.hit(point, table=self.table.name)

        location = self.master.location
        hit("dualtable.compact.swap")
        if fs.exists(self._compact_tmp):
            if fs.exists(location) and not fs.exists(self._compact_old):
                fs.rename(location, self._compact_old)
            hit("dualtable.compact.swap2")
            fs.rename(self._compact_tmp, location)
        self._invalidate_master_cache()
        hit("dualtable.compact.truncate")
        self.attached.clear()
        if fs.exists(self._compact_old):
            fs.delete(self._compact_old, recursive=True)
        hit("dualtable.compact.cleanup")
        if fs.exists(self._manifest_path):
            fs.delete(self._manifest_path)

    def _commit_partial_compact(self, rows, victims):
        """Two-phase commit of a partial compaction (idempotent).

        Same protocol shape as :meth:`_commit_compact`: phase 1 writes
        the replacement files into ``master.__compact__`` and then the
        manifest — the commit point; phase 2 swaps per file.  Unlike the
        full path, phase 2 performs *charged* Attached-Table range
        deletes (``clear_file``), whose ``hbase.delete`` fault point can
        raise retryable faults — so a re-entry first checks for an
        already-committed manifest and resumes phase 2 instead of
        rebuilding phase 1 (which would double-apply the swap).
        """
        fs = self.env.fs
        faults = self.env.cluster.faults
        manifest = self._load_valid_manifest()
        if manifest is not None and manifest.get("mode") == "partial":
            self._complete_partial_compact(manifest)
            return
        faults.hit("dualtable.compact.partial.write", table=self.table.name)
        if fs.exists(self._compact_tmp):
            fs.delete(self._compact_tmp, recursive=True)
        fs.mkdirs(self._compact_tmp)
        new_paths = self.master.write_rows(rows, directory=self._compact_tmp)
        faults.hit("dualtable.compact.partial.manifest",
                   table=self.table.name)
        manifest = {
            "table": self.table.name,
            "mode": "partial",
            "tmp": self._compact_tmp,
            "location": self.master.location,
            "rows": len(rows),
            "old_paths": [v["path"] for v in victims],
            "folded_file_ids": [v["file_id"] for v in victims],
            "new_names": [p.rsplit("/", 1)[1] for p in new_paths],
        }
        if fs.exists(self._manifest_path):
            fs.delete(self._manifest_path)
        fs.write_file(self._manifest_path,
                      json.dumps(manifest).encode("utf-8"))
        self._complete_partial_compact(manifest, inject=True)

    def _complete_partial_compact(self, manifest, inject=False):
        """Finish a committed partial compaction; every step re-runnable.

        Per-file existence-guarded renames move the replacement files
        into the master directory, the folded originals are deleted, and
        only the folded files' deltas are dropped from the Attached
        Table.  Replaying from any prefix converges: renamed files skip
        (source gone), deletes are guarded, and ``clear_file`` of an
        already-empty range is a no-op.
        """
        fs = self.env.fs
        faults = self.env.cluster.faults

        def hit(point):
            if inject:
                faults.hit(point, table=self.table.name)

        location = manifest["location"]
        tmp = manifest["tmp"]
        hit("dualtable.compact.partial.swap")
        for name in manifest["new_names"]:
            src = "%s/%s" % (tmp, name)
            if fs.exists(src):
                dst = "%s/%s" % (location, name)
                if fs.exists(dst):
                    fs.delete(src)
                else:
                    fs.rename(src, dst)
        for old in manifest["old_paths"]:
            if fs.exists(old):
                fs.delete(old)
        self._invalidate_master_cache()
        hit("dualtable.compact.partial.delta_drop")
        for file_id in manifest["folded_file_ids"]:
            self.attached.clear_file(int(file_id))
        if fs.exists(tmp):
            fs.delete(tmp, recursive=True)
        if fs.exists(self._manifest_path):
            fs.delete(self._manifest_path)


register_handler("dualtable", DualTableHandler)
