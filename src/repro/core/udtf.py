"""UPDATE/DELETE UDTFs — the EDIT plan's write path (Section V-A).

In the paper these are Hive user-defined table functions invoked from the
rewritten statement; here they are the functions the EDIT-plan map tasks
call per matching record.  They exist as a separate module to keep the
architecture seam visible (parser → plan → UDTF → Attached Table).

``attached`` is duck-typed: anything exposing ``put_update``/
``put_delete``.  EDIT-plan statements pass a per-task
:class:`repro.core.editlog.TaskEditBuffer` so a crashed statement
publishes nothing (atomic commit via the redo log); MERGE and direct
callers pass the :class:`repro.core.attached.AttachedTable` itself.
"""


def update_udtf(attached, record_id, new_values, ctx=None):
    """Store the new values for one updated record.

    ``new_values`` maps Hive column numbers to the new field values, which
    become (qualifier, cell) pairs in the Attached Table.
    """
    attached.put_update(record_id, new_values)
    if ctx is not None:
        ctx.incr("updated")
        ctx.cluster.metrics.incr("udtf.updates")


def delete_udtf(attached, record_id, ctx=None):
    """Store a DELETE marker for one deleted record."""
    attached.put_delete(record_id)
    if ctx is not None:
        ctx.incr("deleted")
        ctx.cluster.metrics.incr("udtf.deletes")
