"""The LOOKUP plan: point and small-range reads that skip MapReduce.

DualTable already holds the two halves of a hybrid table — sorted ORC
master files with per-stripe min/max statistics, and an attached store
of live deltas keyed by record ID.  A ``SELECT ... WHERE pk = v`` (or a
small BETWEEN / IN range over the declared PRIMARY KEY) therefore never
needs a MapReduce job: consult a control-plane **stripe index** to find
the candidate stripes, probe the attached table for the candidate
files' deltas, and merge the two streams under exactly the scan path's
UNION READ semantics.  The win is the MR fixed cost (job startup + one
task per file) plus every pruned stripe's bytes.

Soundness of PK pruning on a *dirty* file: a delta that updates non-PK
columns cannot move a row across PK ranges, and a delete of a pruned
row is irrelevant — so stripe pruning by PK min/max stays sound unless
some delta rewrites the PK column itself.  :func:`plan_lookup` checks
that per file (:meth:`AttachedTable.pk_dirty_in_file`) and reads
PK-dirty files in full.

Planning is entirely uncharged control-plane work (metastore-style
stats); execution charges exactly what the scan path's per-file union
read charges for the same stripes.  Both fault points fire *before* the
first charged byte, so a mid-lookup crash can fall back to the scan
plan with no double-charged cost.
"""

from dataclasses import dataclass

from repro.hive.pushdown import make_stripe_filter
from repro.core.master import FILE_ID_KEY
from repro.core.union_read import (union_read_batches, union_read_file,
                                   union_read_overlay)
from repro.orc import OrcReader

#: allowed fault kinds per LOOKUP injection point.  Kept separate from
#: :data:`repro.faults.injector.POINT_KINDS` (like SERVER_CHAOS_POINTS)
#: so existing random chaos seeds keep selecting the same faults.
LOOKUP_CHAOS_POINTS = {
    "lookup.index_read": ("crash",),
    "lookup.hbase_probe": ("crash", "region_crash"),
}


@dataclass
class LookupPlan:
    """A fully planned LOOKUP read (control-plane only, nothing charged)."""

    pk: str                 # primary-key column (lowercase)
    pk_range: object        # pushdown.ColumnRange bounding it
    projection: list        # column names to decode, or None for all
    files: list             # candidate file dicts (path/file_id/whole_file)
    choice: object          # cost_model.LookupChoice
    est_rows: int
    total_files: int


# ----------------------------------------------------------------------
# Stripe min/max index (control-plane, cached in the delta cache).
# ----------------------------------------------------------------------
def stripe_index(handler, hit_faults=True):
    """Per-file PK stripe index: ``[{path, file_id, stripes, ...}]``.

    Built uncharged from silent file reads (real warehouses keep these
    stats in the metastore; cf. ``MasterTable.file_meta``) and memoized
    in the cluster's delta cache keyed ``(attached_name, "stripe-index",
    path, file_size)``.  Keying by the attached table's name means every
    PR-3 invalidation path — DML writes, COMPACT, INSERT OVERWRITE, a
    region-server crash clearing the whole cache — drops the index too;
    the file size in the key is belt-and-braces on top (replaced master
    files also get fresh file IDs, hence fresh paths).
    """
    cluster = handler.env.cluster
    if hit_faults:
        cluster.faults.hit("lookup.index_read", table=handler.table.name)
    pk = handler.primary_key
    cache = getattr(cluster, "delta_cache", None)
    if cache is not None and cache.budget_bytes <= 0:
        cache = None
    fs = handler.env.fs
    entries = []
    for path in handler.master.file_paths():
        size = fs.file_size(path)
        key = None
        if cache is not None:
            key = (handler.attached.name, "stripe-index", path, size)
            cached = cache.get(key)
            if cached is not None:
                entries.append(cached)
                continue
        entry = _index_entry(fs, path, pk, size)
        if key is not None:
            cache.put(key, entry,
                      nbytes=96 + 48 * len(entry["stripes"]))
        entries.append(entry)
    return entries


def _index_entry(fs, path, pk, file_size):
    reader = OrcReader(fs.read_file_silent(path))
    names = [n.lower() for n, _ in reader.schema]
    pk_idx = names.index(pk)
    stripes = []
    for stripe in reader.stripes:
        stats = stripe.stats(pk_idx)
        stripes.append((stripe.num_rows, stats["min"], stats["max"],
                        tuple(col["length"] for col in stripe.columns)))
    footer_bytes = max(0, file_size - sum(s.length for s in reader.stripes))
    return {"path": path,
            "file_id": int(reader.metadata[FILE_ID_KEY]),
            "num_rows": reader.num_rows,
            "names": names,
            "footer_bytes": footer_bytes,
            "stripes": stripes}


# ----------------------------------------------------------------------
# Planning.
# ----------------------------------------------------------------------
def plan_lookup(handler, ranges, projection=None, hit_faults=True):
    """Plan a LOOKUP for the extracted column ranges; None if ineligible.

    Eligibility: the table declares a PRIMARY KEY, the predicate bounds
    it on both sides (equality, IN list, or a closed BETWEEN range), and
    the stripe index estimates at most ``dualtable.lookup.max_rows``
    candidate rows.  The returned plan carries the cost-model verdict
    (:class:`~repro.core.cost_model.LookupChoice`); callers decide
    whether a ``scan``-preferring verdict falls through to MR.
    """
    pk = handler.primary_key
    if pk is None or not ranges:
        return None
    pk_range = ranges.get(pk)
    if pk_range is None:
        return None
    if pk_range.in_set is None and (pk_range.low is None
                                    or pk_range.high is None):
        return None
    index = stripe_index(handler, hit_faults=hit_faults)
    candidates = []
    est_rows = 0
    lookup_bytes = 0
    scan_bytes = 0
    probe_bytes = 0
    probe_entries = 0
    for entry in index:
        proj_idx = _projection_indices(entry["names"], projection)
        file_scan_bytes = sum(sum(lengths[i] for i in proj_idx)
                              for _, _, _, lengths in entry["stripes"])
        scan_bytes += file_scan_bytes
        delta_bytes, delta_entries = \
            handler.attached.file_delta_stats(entry["file_id"])
        whole_file = bool(delta_entries) and handler.attached.pk_dirty_in_file(
            entry["file_id"], entry["names"].index(pk))
        match_rows = 0
        match_bytes = 0
        for nrows, pk_min, pk_max, lengths in entry["stripes"]:
            if pk_range.may_overlap(pk_min, pk_max):
                match_rows += nrows
                match_bytes += sum(lengths[i] for i in proj_idx)
        if whole_file:
            match_rows = entry["num_rows"]
            match_bytes = file_scan_bytes
        if match_rows == 0:
            # No stripe can hold a matching PK and (if dirty) no delta
            # can move one in: the file contributes nothing.  Trailing
            # deltas of skipped files never produce rows either.
            continue
        est_rows += match_rows
        lookup_bytes += entry["footer_bytes"] + match_bytes
        probe_bytes += delta_bytes
        probe_entries += delta_entries
        candidates.append({"path": entry["path"],
                           "file_id": entry["file_id"],
                           "whole_file": whole_file,
                           "est_rows": match_rows})
    if est_rows > handler.lookup_rows_limit:
        return None
    profile = handler.env.cluster.profile
    choice = handler.cost_model().choose_lookup_plan(
        scan_bytes=scan_bytes, total_files=len(index),
        lookup_bytes=lookup_bytes, files_read=len(candidates),
        probe_bytes=probe_bytes, probe_entries=probe_entries,
        job_startup_s=profile.job_startup_s,
        task_overhead_s=profile.task_overhead_s)
    return LookupPlan(pk=pk, pk_range=pk_range, projection=projection,
                      files=candidates, choice=choice, est_rows=est_rows,
                      total_files=len(index))


def _projection_indices(names, projection):
    if projection is None:
        return list(range(len(names)))
    return [names.index(name.lower()) for name in projection
            if name.lower() in names]


# ----------------------------------------------------------------------
# Execution.
# ----------------------------------------------------------------------
def run_lookup(handler, plan, engine="row", batch_rows=None):
    """Execute a planned LOOKUP; returns the merged value tuples.

    Per candidate file this charges exactly what the scan path's union
    read charges for the same stripes — the ORC footer plus decoded
    stripe-column bytes via the (cache-parity) charged reader, the delta
    scan via the memoized ``scan_file``, and the per-output-row
    ``unionread`` CPU charge — and feeds the same ``unionread.*``
    counters through ``handler._note_union_read``.  The vectorized
    engine shares every charge with the row engine by construction.

    The ``lookup.hbase_probe`` fault point fires before the first
    charged byte, so a region crash here leaves the ledger exactly as if
    the statement had been a scan from the start.
    """
    cluster = handler.env.cluster
    cluster.faults.hit("lookup.hbase_probe", table=handler.table.name)
    handler.attached.ensure_available()
    vectorized = engine == "vectorized"
    out = []
    for candidate in plan.files:
        with cluster.tracer.span("substrate",
                                 "lookup-read:%d" % candidate["file_id"],
                                 path=candidate["path"]) as span:
            reader = handler.master.reader(candidate["path"])
            if candidate["whole_file"]:
                stripe_filter = None
            else:
                stripe_filter = make_stripe_filter(
                    [n for n, _ in reader.schema],
                    {plan.pk: plan.pk_range})
            projection_map = handler._projection_map(plan.projection)
            deltas, overlay = handler._prepare_union_read(
                candidate["file_id"], reader, stripe_filter)
            stats = {}
            nrows = 0
            if vectorized:
                batches = reader.batches(projection=plan.projection,
                                         stripe_filter=stripe_filter,
                                         batch_rows=batch_rows)
                if handler.merge_mode == "overlay":
                    merged = union_read_overlay(
                        candidate["file_id"], batches, overlay,
                        projection_map, stats=stats)
                else:
                    merged = union_read_batches(
                        candidate["file_id"], batches, deltas,
                        projection_map, stats=stats)
                for batch in merged:
                    nrows += batch.length
                    out.extend(batch.rows())
            else:
                orc_rows = reader.rows(projection=plan.projection,
                                       stripe_filter=stripe_filter)
                for _, values in union_read_file(
                        candidate["file_id"], orc_rows, deltas,
                        projection_map, stats=stats):
                    nrows += 1
                    out.append(values)
            handler._note_union_read(span, nrows, stats)
    return out
