"""Crash-safe EDIT-plan commits: buffered deltas + a durable redo log.

The EDIT plan's UDTF calls used to write straight into the Attached
Table from inside map tasks, so a crashed UPDATE/DELETE left a partially
visible set of edits in UNION READ (and a retried task would publish its
edits twice).  This module gives each statement output-committer
semantics instead:

1. every task *attempt* collects its UDTF calls in a
   :class:`TaskEditBuffer` (same ``put_update``/``put_delete`` surface
   as the Attached Table, so the UDTFs are unchanged); a failed attempt's
   buffer is simply dropped;
2. on job success the statement's :class:`EditBatch` writes all edits to
   one checksummed staging file in HDFS (``<table>/txn/edit-N.log``) —
   the durable redo log;
3. the edits are published into the Attached Table, then the staging
   file is deleted.  Deleting the staging file *is* the commit point.

If the statement dies between (2) and (3), the staging file survives and
:func:`recover_edit_logs` rolls the statement forward by replaying it —
publishing is idempotent (re-putting the same values resolves
identically under latest-timestamp-wins).  If it dies during (2), the
staging file is absent or fails its checksum and the statement rolls
back to nothing-visible.  Either way UNION READ never observes a
partial statement.

Injection points: ``dualtable.dml.stage`` (before the staging write) and
``dualtable.dml.publish`` (before the Attached-Table writes).
"""

import hashlib
import pickle
import struct
import threading

from repro.common.errors import FaultInjectedError

_MAGIC = b"DTEL1\n"
_HEADER = struct.Struct(">Q8s")


def encode_edits(edits):
    """Serialize an edit list with a length + checksum header."""
    payload = pickle.dumps(list(edits), protocol=4)
    digest = hashlib.sha256(payload).digest()[:8]
    return _MAGIC + _HEADER.pack(len(payload), digest) + payload


def decode_edits(data):
    """Decode a staging file; returns the edit list or None if invalid.

    A torn or partial write (crash mid-stage) fails the magic, length,
    or checksum test and the statement is rolled back.
    """
    prefix = len(_MAGIC) + _HEADER.size
    if len(data) < prefix or not data.startswith(_MAGIC):
        return None
    length, digest = _HEADER.unpack(data[len(_MAGIC):prefix])
    payload = data[prefix:]
    if len(payload) != length:
        return None
    if hashlib.sha256(payload).digest()[:8] != digest:
        return None
    try:
        return pickle.loads(payload)
    except Exception:
        return None


def apply_edits(attached, edits):
    """Replay decoded edits into the Attached Table (idempotent)."""
    for kind, record_id, values in edits:
        if kind == "u":
            attached.put_update(record_id, values)
        elif kind == "d":
            attached.put_delete(record_id)


class TaskEditBuffer:
    """Per-task-attempt staging of UDTF writes.

    Quacks like the Attached Table for the UDTFs but only records the
    calls; nothing is charged or stored until the statement commits.
    """

    def __init__(self):
        self.edits = []

    def put_update(self, record_id, new_values):
        self.edits.append(("u", record_id, dict(new_values)))

    def put_delete(self, record_id):
        self.edits.append(("d", record_id, None))


class EditBatch:
    """All deltas of one EDIT-plan statement plus its two-phase commit."""

    def __init__(self, handler, txn_id):
        self.handler = handler
        self.txn_id = txn_id
        self._lock = threading.Lock()
        self._by_task = {}      # task_index -> [edits]
        self._loose = []        # absorbed without an index (arrival order)

    @property
    def staging_path(self):
        return "%s/edit-%06d.log" % (self.handler.txn_dir, self.txn_id)

    def task_buffer(self):
        return TaskEditBuffer()

    def absorb(self, buffer, task_index=None):
        """Adopt a *successful* task attempt's buffered edits.

        Keyed by ``task_index`` so the statement's edit order is the
        task order regardless of how attempts interleave on the worker
        pool — and so a serial rerun after an abandoned parallel attempt
        *overwrites* rather than duplicates a task's edits.
        """
        edits = list(buffer.edits)
        with self._lock:
            if task_index is None:
                self._loose.extend(edits)
            else:
                self._by_task[task_index] = edits

    @property
    def edits(self):
        """All absorbed edits, flattened in task-index order."""
        with self._lock:
            ordered = [edit for index in sorted(self._by_task)
                       for edit in self._by_task[index]]
            return ordered + list(self._loose)

    def write_keys(self):
        """The record IDs this statement writes (the SI write set)."""
        return {record_id for _, record_id, _ in self.edits}

    # ------------------------------------------------------------------
    def commit(self, session):
        """Stage + publish; returns the statement-level commit seconds.

        Both phases run under the session's retry policy: retryable
        faults (task crashes, region-server crashes) back off and rerun;
        fatal kills propagate and leave recovery to
        :func:`recover_edit_logs`.
        """
        edits = self.edits
        if not edits:
            return 0.0
        handler = self.handler
        fs = handler.env.fs
        faults = handler.env.cluster.faults
        path = self.staging_path
        payload = encode_edits(edits)

        def stage():
            faults.hit("dualtable.dml.stage", path=path)
            if fs.exists(path):
                fs.delete(path)
            fs.write_file(path, payload)

        def publish():
            faults.hit("dualtable.dml.publish", path=path)
            apply_edits(handler.attached, edits)
            if fs.exists(path):
                fs.delete(path)

        seconds = run_with_retries(session, stage, "dml-stage")
        seconds += run_with_retries(session, publish, "dml-publish")
        return seconds


def run_with_retries(session, fn, label):
    """Charged execution of ``fn`` with the profile's retry policy.

    Mirrors the MapReduce task-attempt loop for statement-level commit
    work that runs outside any job: retryable injected faults back off
    (charged to the ledger) and rerun ``fn`` — which must be idempotent —
    while fatal kills and real bugs propagate immediately.  Uses the
    same jitter-free :class:`~repro.common.retry.RetryPolicy` as the
    task layer, so the charged backoff sequence is identical.
    """
    from repro.common.retry import RetryPolicy

    cluster = session.cluster
    policy = RetryPolicy.from_profile(cluster.profile)
    total = 0.0
    for attempt in policy.attempts():
        try:
            return total + session._charged_parallel(fn)
        except FaultInjectedError as exc:
            if exc.fatal or policy.is_last(attempt):
                raise
            backoff = policy.backoff(attempt, key=label)
            cluster.charge_fixed("mapreduce", "retry_backoff", backoff)
            total += backoff
    raise AssertionError("unreachable: final attempt raises")


def recover_edit_logs(handler):
    """Roll interrupted EDIT commits forward (or back); idempotent.

    Returns ``[(path, outcome)]`` with outcome ``"rolled_forward"`` for
    valid redo logs that were replayed or ``"rolled_back"`` for invalid
    (torn) ones that were discarded.
    """
    fs = handler.env.fs
    outcomes = []
    if not fs.exists(handler.txn_dir):
        return outcomes
    for path in list(fs.list_files(handler.txn_dir)):
        edits = decode_edits(fs.read_file(path))
        if edits is None:
            outcomes.append((path, "rolled_back"))
        else:
            apply_edits(handler.attached, edits)
            outcomes.append((path, "rolled_forward"))
        fs.delete(path)
    return outcomes
