"""The Master Table: ORC files on HDFS carrying DualTable file IDs.

Every file stores its unique file ID (allocated from the system metadata
table) in the ORC user metadata; record IDs are generated on read by
concatenating that ID with the ORC row number — zero storage cost, exactly
as in Section V-B of the paper.
"""

from repro.orc import OrcReader, OrcWriter

FILE_ID_KEY = "dualtable.file_id"


class MasterTable:
    """Directory of ORC files with per-file IDs."""

    def __init__(self, fs, location, schema, metadata_manager, table_name,
                 rows_per_file=50_000, stripe_rows=5_000):
        self.fs = fs
        self.location = location
        self.schema = schema          # TableSchema
        self.metadata = metadata_manager
        self.table_name = table_name
        self.rows_per_file = rows_per_file
        self.stripe_rows = stripe_rows

    def create(self):
        self.fs.mkdirs(self.location)

    def drop(self):
        if self.fs.exists(self.location):
            self.fs.delete(self.location, recursive=True)

    def file_paths(self):
        if not self.fs.exists(self.location):
            return []
        return [p for p in self.fs.list_files(self.location)
                if p.endswith(".orc")]

    # ------------------------------------------------------------------
    def write_rows(self, rows, directory=None):
        """Write rows into new master files; returns created paths."""
        directory = directory or self.location
        rows = list(rows)
        orc_schema = self.schema.orc_schema()
        paths = []
        chunks = [rows[i:i + self.rows_per_file]
                  for i in range(0, len(rows), self.rows_per_file)] or [[]]
        for chunk in chunks:
            file_id = self.metadata.next_file_id(self.table_name)
            writer = OrcWriter(orc_schema, stripe_rows=self.stripe_rows,
                               metadata={FILE_ID_KEY: file_id})
            writer.write_rows(chunk)
            path = "%s/part-%08d.orc" % (directory, file_id)
            self.fs.write_file(path, writer.finish())
            paths.append(path)
        return paths

    def replace_with(self, rows):
        """Atomically replace the master with freshly written files.

        The old directory is renamed aside before the new one takes its
        place (instead of deleted first), so at every instant either the
        old or the new master is fully present under some path.
        """
        tmp = self.location + ".__tmp__"
        old = self.location + ".__replaced__"
        for leftover in (tmp, old):
            if self.fs.exists(leftover):
                self.fs.delete(leftover, recursive=True)
        self.fs.mkdirs(tmp)
        self.write_rows(rows, directory=tmp)
        if self.fs.exists(self.location):
            self.fs.rename(self.location, old)
        self.fs.rename(tmp, self.location)
        if self.fs.exists(old):
            self.fs.delete(old, recursive=True)

    # ------------------------------------------------------------------
    def reader(self, path):
        return OrcReader(self.fs, path)

    def file_meta(self, path):
        """``(file_id, num_rows)`` without charging the footer read.

        Control-plane metadata, like ``fs.file_size``: real warehouses
        keep per-file stats in the metastore, so planning (victim
        selection, compaction policy) consults them for free.
        """
        reader = OrcReader(self.fs.read_file_silent(path))
        return int(reader.metadata[FILE_ID_KEY]), reader.num_rows

    def readers(self):
        return [self.reader(p) for p in self.file_paths()]

    def file_id_of(self, path):
        return int(self.reader(path).metadata[FILE_ID_KEY])

    def data_bytes(self):
        return sum(self.fs.file_size(p) for p in self.file_paths())

    def row_count(self):
        return sum(r.num_rows for r in self.readers())

    def avg_row_bytes(self):
        rows = self.row_count()
        return (self.data_bytes() / rows) if rows else 0.0
