"""DualTable: the paper's hybrid storage model (core contribution)."""

from repro.core.attached import AttachedTable, DeltaRecord
from repro.core.cost_model import CostModel, PlanChoice, cost_d_paper, cost_u_paper
from repro.core.handler import DualTableHandler
from repro.core.master import MasterTable
from repro.core.metadata import DualTableMetadata
from repro.core.record_id import (RECORD_ID_BYTES, decode_record_id,
                                  encode_record_id, file_key_range)
from repro.core.union_read import (DeltaOverlay, apply_delta_to_row,
                                   apply_update, build_overlay,
                                   classify_merge_units, union_read_batches,
                                   union_read_file, union_read_overlay)

__all__ = [
    "AttachedTable",
    "DeltaRecord",
    "CostModel",
    "PlanChoice",
    "cost_u_paper",
    "cost_d_paper",
    "DualTableHandler",
    "MasterTable",
    "DualTableMetadata",
    "RECORD_ID_BYTES",
    "encode_record_id",
    "decode_record_id",
    "file_key_range",
    "union_read_file",
    "union_read_batches",
    "union_read_overlay",
    "DeltaOverlay",
    "build_overlay",
    "classify_merge_units",
    "apply_delta_to_row",
    "apply_update",
]
