"""The Attached Table: HBase-backed store of row modifications.

Data layout (Section V-B):

* HBase row key   = the DualTable record ID (sorted == master order),
* UPDATE info     = one cell per updated field; the qualifier encodes the
  Hive column number, the cell value the new field value,
* DELETE info     = a special marker cell (``D``) in the record's row.

HBase multi-versioning tracks the change history of each field for free —
the paper calls this out as an advantage over Hive ACID deltas.
"""

import struct

from dataclasses import dataclass, field

from repro.core.record_id import file_key_range
from repro.hive.valuecodec import decode_value, encode_value

DELETE_MARKER = b"D"
_UPDATE_PREFIX = b"u"


def update_qualifier(column_index):
    return _UPDATE_PREFIX + struct.pack(">H", column_index)


def parse_qualifier(qualifier):
    """Return ('delete', None) or ('update', column_index)."""
    if qualifier == DELETE_MARKER:
        return "delete", None
    if qualifier[:1] == _UPDATE_PREFIX and len(qualifier) == 3:
        return "update", struct.unpack(">H", qualifier[1:])[0]
    return "unknown", None


@dataclass
class DeltaRecord:
    """Resolved modification state of one record ID."""

    deleted: bool = False
    updates: dict = field(default_factory=dict)   # column_index -> value


class AttachedTable:
    """Client API over the per-DualTable attached store.

    The default backend is HBase (the paper's implementation); passing
    ``backend="btree"`` stores modifications in the simulated MySQL-style
    B-tree row store instead — the "other storage options for the
    Attached Table" the paper leaves as future work.  Both backends share
    the HTable client surface, so everything above this class is
    backend-agnostic.
    """

    def __init__(self, hbase_service, name, backend="hbase"):
        if backend not in ("hbase", "btree"):
            raise ValueError("unknown attached backend %r" % backend)
        self._service = hbase_service
        self.name = name
        self.backend = backend
        self._btree = None

    def create(self):
        if self.backend == "hbase":
            self._service.ensure_table(self.name)
        elif self._btree is None:
            from repro.kvstore import BTreeTable
            self._btree = BTreeTable(self._service.cluster, self.name)

    def drop(self):
        if self.backend == "hbase":
            if self._service.has_table(self.name):
                self._service.drop_table(self.name)
        else:
            self._btree = None

    def _htable(self):
        if self.backend == "hbase":
            return self._service.table(self.name)
        if self._btree is None:
            raise RuntimeError("attached btree store not created")
        return self._btree

    def ensure_available(self):
        """Run any pending WAL recovery now (and charge it), so later
        reads — possibly on pool workers, or under cache capture — see a
        recovered store without racing on the replay."""
        if self.backend == "hbase":
            self._service.ensure_available()

    def rates(self, profile):
        """Device rates of this backend, for the cost evaluator."""
        from repro.core.cost_model import AttachedRates

        if self.backend == "hbase":
            return AttachedRates.from_hbase_profile(profile)
        store = self._htable()
        return AttachedRates(write_bps=store.write_bps,
                             read_bps=store.read_bps,
                             op_latency_s=store.op_latency_s,
                             scan_row_latency_s=store.op_latency_s / 16,
                             page_bytes=store.page_bytes,
                             page_locality=store.page_locality)

    def _delta_cache(self):
        return getattr(self._service.cluster, "delta_cache", None)

    def _invalidate_cache(self):
        cache = self._delta_cache()
        if cache is not None:
            cache.invalidate_group(self.name)

    # ------------------------------------------------------------------
    # Writes (the EDIT plan's UDTF calls).
    # ------------------------------------------------------------------
    def put_update(self, record_id, new_values):
        """Store new field values: ``{column_index: python_value}``."""
        self._invalidate_cache()
        payload = {update_qualifier(idx): encode_value(val)
                   for idx, val in new_values.items()}
        self._htable().put(record_id, payload)

    def put_delete(self, record_id):
        """Store a DELETE marker for one record."""
        self._invalidate_cache()
        self._htable().put(record_id, {DELETE_MARKER: b"1"})

    # ------------------------------------------------------------------
    # Reads (the UNION READ merge input).
    # ------------------------------------------------------------------
    def scan_file(self, file_id):
        """Yield ``(record_id, DeltaRecord)`` for one master file, sorted.

        The per-file result is memoized in the cluster's delta-range
        cache together with the charges the materializing scan recorded;
        a hit replays those charges verbatim, so simulated time is
        byte-identical either way.  Every mutation path — ``put_update``,
        ``put_delete``, ``clear`` (EDIT commit, COMPACT, INSERT
        OVERWRITE, WAL-recovery replay) and a region-server crash —
        drops the table's entries, so a hit always reflects current
        content.  Cached DeltaRecords are shared: callers must not
        mutate them.
        """
        start, stop = file_key_range(file_id)
        cache = self._delta_cache()
        cluster = self._service.cluster
        if cache is None or cache.budget_bytes <= 0:
            return self.scan_range(start, stop)
        key = (self.name, self.backend, file_id)
        cached = cache.get(key)
        if cached is not None:
            items, recorder = cached
            recorder.replay(cluster)
            return iter(items)
        # Trigger any pending WAL recovery *before* capturing, so the
        # replay charge applies once globally instead of being stored in
        # (and re-charged from) the cache entry.
        self.ensure_available()
        with cluster.capture() as recorder:
            items = list(self.scan_range(start, stop))
        recorder.replay(cluster)
        nbytes = sum(len(record_id) + 24 + 40 * len(delta.updates)
                     for record_id, delta in items) + 64
        cache.put(key, (items, recorder), nbytes=nbytes)
        return iter(items)

    def file_overlay(self, file_id, items=None):
        """The file's :class:`~repro.core.union_read.DeltaOverlay`,
        memoized per delta-epoch.

        ``items`` is the already-materialized (and already-charged)
        result of :meth:`scan_file` — building the overlay is pure CPU
        re-arrangement of data the scan paid for, so this method charges
        nothing; when ``items`` is omitted the charged scan runs here.

        The overlay is cached keyed ``(table, backend, file_id,
        "overlay")`` in the same delta-range cache as :meth:`scan_file`
        results and the presence index, so every existing invalidation
        path — ``put_update`` / ``put_delete`` / ``clear`` /
        ``clear_file`` via ``_invalidate_cache``, a region-server crash
        clearing the whole cache, LRU eviction — covers it for free; a
        stale overlay is impossible by construction.  Overlays are
        shared: callers must not mutate them.
        """
        from repro.core.union_read import build_overlay

        cache = self._delta_cache()
        key = None
        if cache is not None and cache.budget_bytes > 0:
            key = (self.name, self.backend, file_id, "overlay")
            cached = cache.get(key)
            if cached is not None:
                return cached
        if items is None:
            items = list(self.scan_file(file_id))
        overlay = build_overlay(items)
        if key is not None:
            npatch = sum(len(p[0]) for p in overlay.patches.values())
            nbytes = 64 + 16 * (len(overlay.positions)
                                + len(overlay.delete_positions)
                                + len(overlay.applied_positions)) \
                + 48 * npatch
            cache.put(key, overlay, nbytes=nbytes)
        return overlay

    def scan_range(self, start=None, stop=None):
        for record_id, cells in self._htable().scan(start, stop):
            yield record_id, self._resolve(cells)

    def get(self, record_id):
        cells = self._htable().get(record_id)
        if cells is None:
            return None
        return self._resolve(cells)

    @staticmethod
    def _resolve(cells):
        delta = DeltaRecord()
        for qualifier, value in cells.items():
            kind, column_index = parse_qualifier(qualifier)
            if kind == "delete":
                delta.deleted = True
            elif kind == "update":
                delta.updates[column_index] = decode_value(value)
        return delta

    def history(self, record_id, versions=10):
        """Multi-version change history of one record's fields."""
        cells = self._htable().get(record_id, versions=versions)
        if cells is None:
            return {}
        out = {}
        for qualifier, entries in cells.items():
            kind, column_index = parse_qualifier(qualifier)
            if kind != "update":
                continue
            out[column_index] = [(ts, decode_value(v)) for ts, v in entries]
        return out

    # ------------------------------------------------------------------
    # Stats / maintenance.
    # ------------------------------------------------------------------
    @property
    def size_bytes(self):
        return self._htable().store_bytes

    def is_empty(self):
        return self._htable().is_empty()

    def has_entries_in_file(self, file_id):
        """Metadata-level check used to decide if stripe pruning is safe."""
        return self.file_delta_stats(file_id)[0] > 0

    def file_delta_stats(self, file_id):
        """``(delta_bytes, delta_entries)`` for one master file.

        Control-plane metadata (uncharged), like the key-range scans it
        wraps — the compaction policy consults it for every candidate
        file on every decision, and scan planning asks it per file to
        decide whether stripe pruning (and the batch path's zero-delta
        fast path) is safe.

        The answer is memoized as a **delta-presence index** in the
        delta-range cache, keyed ``(table, backend, file_id,
        "presence")`` — one entry per master file recording how many
        delta bytes/entries sit in its record-id key range.  Storing it
        in the same cache as :meth:`scan_file` results means every
        existing invalidation path (``put_update`` / ``put_delete`` /
        ``clear`` / ``clear_file`` via ``_invalidate_cache``, HBase
        COMPACT's group invalidation, a region-server crash clearing
        the whole cache, LRU eviction) covers the index for free; a
        stale presence answer is impossible by construction.
        """
        cache = self._delta_cache()
        key = None
        if cache is not None and cache.budget_bytes > 0:
            key = (self.name, self.backend, file_id, "presence")
            cached = cache.get(key)
            if cached is not None:
                return cached
        start, stop = file_key_range(file_id)
        table = self._htable()
        stats = (table.bytes_in_range(start, stop),
                 table.rows_in_range(start, stop))
        if key is not None:
            cache.put(key, stats, nbytes=64)
        return stats

    def pk_dirty_in_file(self, file_id, column_index):
        """True if any delta in this file rewrites the PK column itself.

        Stripe pruning by primary-key min/max on a file *with* deltas is
        still sound as long as no delta moves a row across PK ranges —
        non-PK updates cannot change which stripe a key lives in, and
        deletes of pruned rows are irrelevant.  The one unsound case is
        an UPDATE that sets the PK column: the LOOKUP planner must read
        such a file in full.  Control-plane metadata (uncharged, via
        ``scan_silent``) memoized beside the presence index so every
        cache-invalidation path covers it for free.
        """
        cache = self._delta_cache()
        key = None
        if cache is not None and cache.budget_bytes > 0:
            key = (self.name, self.backend, file_id, "pk-dirty",
                   column_index)
            cached = cache.get(key)
            if cached is not None:
                return cached
        start, stop = file_key_range(file_id)
        dirty = False
        for _, cells in self._htable().scan_silent(start, stop):
            for qualifier in cells:
                kind, col = parse_qualifier(qualifier)
                if kind == "update" and col == column_index:
                    dirty = True
                    break
            if dirty:
                break
        if key is not None:
            cache.put(key, dirty, nbytes=64)
        return dirty

    def entry_count(self):
        return self._htable().count_rows()

    def clear(self):
        self._invalidate_cache()
        self._htable().truncate()

    def clear_file(self, file_id):
        """Delete every delta of one master file; charged and idempotent.

        Unlike :meth:`clear` (a free HBase ``truncate``), dropping one
        file's key range is a real data-path operation: a charged scan
        materializes the record IDs, then each row is deleted at per-op
        cost.  Partial COMPACT pays this asymmetry by design — it is the
        price of keeping every other file's deltas.  Returns the number
        of rows deleted.
        """
        self._invalidate_cache()
        start, stop = file_key_range(file_id)
        table = self._htable()
        doomed = [record_id for record_id, _ in table.scan(start, stop)]
        for record_id in doomed:
            table.delete_row(record_id)
        # Range-scoped reclaim: without it the HBase backend would count
        # the delete tombstones in ``bytes_in_range`` forever and stripe
        # pruning for this file would never re-enable.
        table.reclaim_range(start, stop)
        return len(doomed)
