"""Cluster hardware/configuration profiles.

A :class:`ClusterProfile` describes the simulated cluster that all
subsystems (HDFS, HBase, MapReduce) charge their I/O against.  The default
rates follow the worked example in Section IV of the paper:

* aggregate HDFS write throughput ~1 GB/s ("multiple Map tasks"),
* aggregate HBase read/write throughput 0.5 GB/s and 0.8 GB/s,

and the evaluation-section cluster shape: 8-core nodes configured with up
to 6 mappers and 2 reducers each, 64 MB HDFS chunks, 3 replicas.

Because this reproduction executes on laptop-scale data, the profile also
carries ``byte_scale``/``op_scale`` multipliers: the bench harness sets
them to ``paper_rows / generated_rows`` so that *simulated* seconds land in
the same ballpark as the paper's measurements while the actual in-memory
data stays small.  Scaling multiplies charged time only; raw ledger byte
counters always record true bytes.
"""

from dataclasses import dataclass, field

from repro.common.units import GB, MB


@dataclass
class ClusterProfile:
    """Static description of the simulated cluster."""

    name: str = "default"
    num_workers: int = 9
    map_slots_per_node: int = 6
    reduce_slots_per_node: int = 2

    # HDFS: aggregate sequential throughput across the whole cluster.
    hdfs_read_bps: float = 1.2 * GB
    hdfs_write_bps: float = 1.0 * GB
    hdfs_block_size: int = 64 * MB
    hdfs_replication: int = 3

    # HBase: aggregate random-access throughput plus per-operation latency.
    # Charged at aggregate rates and serialized at the job level (region
    # servers are a shared resource; see repro.cluster.cluster).
    hbase_read_bps: float = 0.5 * GB
    hbase_write_bps: float = 0.8 * GB
    hbase_op_latency_s: float = 1.6e-6      # amortized per put/get (batched)
    hbase_scan_row_latency_s: float = 1.6e-7

    # MapReduce overheads.
    job_startup_s: float = 8.0
    task_overhead_s: float = 1.0
    shuffle_bps: float = 0.8 * GB
    cpu_row_cost_s: float = 0.4e-6        # per row of operator processing
    #: extra per-row cost of the UNION READ merge path (the Attached-Table
    #: "function invocation is inevitable" overhead the paper measures in
    #: Figure 4, present even when the Attached Table is empty).
    unionread_row_cost_s: float = 0.5e-6

    # Fault tolerance: per-task retry with exponential backoff, plus
    # speculative re-execution of stragglers (Hadoop's mapred.map.tasks.
    # speculative.execution).  Backoff seconds are charged to the ledger
    # so recovery is visible in the simulated time model.
    max_task_attempts: int = 4
    retry_backoff_s: float = 1.0
    speculative_execution: bool = True
    #: a task is a straggler when its duration exceeds this multiple of
    #: the job's median task duration.
    speculative_threshold: float = 3.0

    # Real-parallelism knobs (repro.parallel): how many OS threads
    # execute task attempts concurrently, plus the byte budgets of the
    # wall-clock caches.  None of these change any simulated quantity —
    # results, ledger charges and sim_seconds are byte-identical for
    # every ``workers`` value and cache state (docs/INTERNALS.md §6).
    workers: int = 1
    orc_cache_bytes: int = 64 * MB
    delta_cache_bytes: int = 16 * MB

    # Simulated-scale multipliers (see module docstring).
    byte_scale: float = 1.0
    op_scale: float = 1.0

    extra: dict = field(default_factory=dict)

    @property
    def total_map_slots(self):
        return self.num_workers * self.map_slots_per_node

    @property
    def total_reduce_slots(self):
        return self.num_workers * self.reduce_slots_per_node

    def per_slot_rate(self, aggregate_bps, slots=None):
        """Throughput a single task sees when the cluster is saturated."""
        slots = slots or self.total_map_slots
        return aggregate_bps / max(1, slots)

    @classmethod
    def paper_grid_cluster(cls, **overrides):
        """26-node cluster used for the State Grid experiments (Sec. VI-A)."""
        params = dict(name="grid-26node", num_workers=25)
        params.update(overrides)
        return cls(**params)

    @classmethod
    def paper_tpch_cluster(cls, **overrides):
        """10-node cluster used for the TPC-H experiments (Sec. VI-B)."""
        params = dict(name="tpch-10node", num_workers=9)
        params.update(overrides)
        return cls(**params)

    @classmethod
    def laptop(cls, **overrides):
        """A tiny single-node profile for unit tests (no scaling)."""
        params = dict(
            name="laptop",
            num_workers=1,
            map_slots_per_node=2,
            reduce_slots_per_node=1,
            job_startup_s=0.5,
            task_overhead_s=0.05,
        )
        params.update(overrides)
        return cls(**params)
