"""A simple monotonically advancing simulated clock.

The clock is *event-driven*: code advances it explicitly when a simulated
operation completes.  Nothing in this repository sleeps on wall time; all
"run time" figures reported by the bench harness are simulated seconds.
"""


class SimClock:
    """Simulated wall clock measured in seconds since cluster start."""

    def __init__(self, start=0.0):
        self._now = float(start)

    @property
    def now(self):
        return self._now

    def advance(self, seconds):
        """Move time forward.  Negative advances are a programming error."""
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards: %r" % seconds)
        self._now += seconds
        return self._now

    def reset(self, start=0.0):
        self._now = float(start)
