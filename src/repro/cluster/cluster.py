"""The simulated cluster: profile + clock + ledger + charge API.

A :class:`Cluster` is the shared substrate handed to HDFS, HBase, the
MapReduce engine, and the Hive session.  Subsystems never compute time on
their own; they call one of the ``charge_*`` methods, which converts bytes
and operation counts into simulated seconds using the cluster profile and
records the result in the ledger (and in any active cost scope).

Charging model
--------------

Charges are expressed *per task*: the rate used for a sequential stream is
the per-slot share of the aggregate device throughput.  When the MapReduce
scheduler lays concurrently-running tasks onto slots, total throughput
approaches the configured aggregate — matching the paper's "multiple Map
tasks add up to 1 GB/s" framing.

``byte_scale``/``op_scale`` multiply *charged time only* so that benches
can emulate paper-sized datasets with laptop-sized data (see
:mod:`repro.cluster.profile`).
"""

import threading
from contextlib import contextmanager

from repro.cluster.clock import SimClock
from repro.cluster.ledger import Charge, MetricsLedger
from repro.cluster.profile import ClusterProfile
from repro.faults import FaultInjector
from repro.parallel import ByteBudgetLRU, TaskRecorder, WorkerPool
from repro import obs


class Cluster:
    """A simulated Hadoop cluster shared by every storage subsystem."""

    def __init__(self, profile=None, seed=0):
        self.profile = profile or ClusterProfile()
        self.clock = SimClock()
        self.ledger = MetricsLedger()
        self.seed = seed
        #: the shared fault-injection point registry (no-op until a
        #: FaultPlan is installed; see repro.faults).
        self.faults = FaultInjector()
        #: always-on event metrics (counters/gauges/histograms).
        self.metrics = obs.MetricsRegistry()
        #: structured span tracer; disabled unless turned on (or a
        #: profiling collector is active — see repro.obs.profiling).
        self.tracer = obs.Tracer(self)
        self.faults.on_fire = self._record_fault
        #: thread-local capture stack for the parallel engine: while a
        #: TaskRecorder is pushed, this thread's charges and metric
        #: events are buffered instead of applied (see repro.parallel).
        self._capture = threading.local()
        self.metrics.bind_capture(self._capture)
        self._pool = None
        #: wall-clock caches; contents never change simulated charges
        #: (hits replay the same charges a miss records).
        self.orc_cache = ByteBudgetLRU(
            getattr(self.profile, "orc_cache_bytes", 0),
            metrics=self.metrics, name="cache.orc")
        self.delta_cache = ByteBudgetLRU(
            getattr(self.profile, "delta_cache_bytes", 0),
            metrics=self.metrics, name="cache.delta")
        obs.register_cluster(self)

    def _record_fault(self, fault, context):
        self.metrics.incr("faults.fired")
        self.metrics.incr("faults.fired.%s" % fault.kind)
        if self.tracer.enabled:
            self.tracer.annotate(fault="%s@%s" % (fault.kind, fault.point))

    # ------------------------------------------------------------------
    # Cost scopes (used by the MR engine to meter individual tasks).
    # ------------------------------------------------------------------
    @contextmanager
    def cost_scope(self, label=""):
        scope = self.ledger.push_scope(label)
        try:
            yield scope
        finally:
            self.ledger.pop_scope(scope)

    # ------------------------------------------------------------------
    # Capture/replay (the parallel engine's determinism protocol).
    # ------------------------------------------------------------------
    @contextmanager
    def capture(self, recorder=None):
        """Buffer this thread's charges/metrics into a TaskRecorder.

        Capture stacks nest per thread; replaying a recorder while an
        outer capture is active bubbles its contents into the outer
        recorder (see :mod:`repro.parallel.recorder`).
        """
        recorder = recorder or TaskRecorder()
        stack = getattr(self._capture, "stack", None)
        if stack is None:
            stack = self._capture.stack = []
        stack.append(recorder)
        try:
            yield recorder
        finally:
            stack.pop()

    def record_charge(self, charge):
        """Apply one charge: to the active capture, else the ledger."""
        stack = getattr(self._capture, "stack", None)
        if stack:
            stack[-1].add_charge(charge)
        else:
            self.ledger.record(charge)
        return charge

    @property
    def pool(self):
        """The cluster's worker pool, sized to ``profile.workers``."""
        workers = max(1, int(getattr(self.profile, "workers", 1)))
        pool = self._pool
        if pool is None or pool.workers != workers:
            if pool is not None:
                pool.close()
            pool = self._pool = WorkerPool(workers)
        return pool

    # ------------------------------------------------------------------
    # Generic charging.
    # ------------------------------------------------------------------
    def _charge(self, subsystem, op, nbytes=0, nops=0, seconds=None, rate=None,
                per_op_latency=0.0):
        profile = self.profile
        if seconds is None:
            seconds = 0.0
            if rate and nbytes:
                seconds += (nbytes * profile.byte_scale) / rate
            if per_op_latency and nops:
                seconds += nops * profile.op_scale * per_op_latency
        charge = Charge(subsystem=subsystem, op=op, nbytes=nbytes,
                        nops=nops, seconds=seconds)
        return self.record_charge(charge)

    # ------------------------------------------------------------------
    # HDFS sequential streams.
    # ------------------------------------------------------------------
    def charge_hdfs_read(self, nbytes):
        rate = self.profile.per_slot_rate(self.profile.hdfs_read_bps)
        return self._charge("hdfs", "read", nbytes=nbytes, nops=1, rate=rate)

    def charge_hdfs_write(self, nbytes):
        rate = self.profile.per_slot_rate(self.profile.hdfs_write_bps)
        return self._charge("hdfs", "write", nbytes=nbytes, nops=1, rate=rate)

    # ------------------------------------------------------------------
    # HBase random reads/writes and scans.
    #
    # HBase is modeled as a shared, serialized resource: charges use the
    # *aggregate* cluster rates (the paper's C^A terms), and the MapReduce
    # engine adds a job's total HBase seconds to its run time as a serial
    # component rather than splitting them across task slots.  This
    # captures the region-server bottleneck that date-clustered record IDs
    # create (all EDIT-plan writes land in one key range).
    # ------------------------------------------------------------------
    def charge_hbase_write(self, nbytes, nops=1):
        return self._charge("hbase", "write", nbytes=nbytes, nops=nops,
                            rate=self.profile.hbase_write_bps,
                            per_op_latency=self.profile.hbase_op_latency_s)

    def charge_hbase_read(self, nbytes, nops=1):
        return self._charge("hbase", "read", nbytes=nbytes, nops=nops,
                            rate=self.profile.hbase_read_bps,
                            per_op_latency=self.profile.hbase_op_latency_s)

    def charge_hbase_scan(self, nbytes, nrows):
        return self._charge("hbase", "scan", nbytes=nbytes, nops=nrows,
                            rate=self.profile.hbase_read_bps,
                            per_op_latency=self.profile.hbase_scan_row_latency_s)

    # ------------------------------------------------------------------
    # MapReduce engine costs.
    # ------------------------------------------------------------------
    def charge_shuffle(self, nbytes):
        rate = self.profile.per_slot_rate(self.profile.shuffle_bps,
                                          self.profile.total_reduce_slots)
        return self._charge("mapreduce", "shuffle", nbytes=nbytes, nops=1,
                            rate=rate)

    def charge_cpu_rows(self, nrows):
        return self._charge(
            "cpu", "rows", nops=nrows,
            seconds=nrows * self.profile.op_scale * self.profile.cpu_row_cost_s)

    def charge_fixed(self, subsystem, op, seconds):
        return self._charge(subsystem, op, seconds=seconds)

    # ------------------------------------------------------------------
    # Convenience.
    # ------------------------------------------------------------------
    def reset_accounting(self):
        self.ledger.reset()
        self.clock.reset()
        self.metrics.reset()
        self.tracer.clear()

    def __repr__(self):
        return "Cluster(profile=%r, t=%.2fs)" % (self.profile.name,
                                                 self.clock.now)
