"""Simulated cluster substrate: clock, profiles, ledger, charge API."""

from repro.cluster.clock import SimClock
from repro.cluster.cluster import Cluster
from repro.cluster.ledger import Charge, CostScope, MetricsLedger
from repro.cluster.profile import ClusterProfile

__all__ = [
    "SimClock",
    "Cluster",
    "Charge",
    "CostScope",
    "MetricsLedger",
    "ClusterProfile",
]
