"""Metrics ledger: the single place all simulated I/O cost is recorded.

Every byte that moves through a simulated device (HDFS sequential streams,
HBase random reads/writes, the MapReduce shuffle) is *charged* here.  The
ledger keeps:

* raw counters — true bytes and operation counts per (subsystem, op), and
* accumulated simulated seconds per (subsystem, op).

Cost scopes (see :class:`CostScope`) let the MapReduce engine attribute
charges to individual tasks so a job's makespan can be computed from
per-task durations.
"""

from collections import defaultdict
from dataclasses import dataclass


@dataclass
class Charge:
    """One recorded device charge."""

    subsystem: str
    op: str
    nbytes: int
    nops: int
    seconds: float


@dataclass
class CostScope:
    """Accumulates the simulated seconds charged while the scope is active.

    HBase seconds are tracked separately: the region servers are a shared,
    serialized resource, so the MapReduce engine adds them to a job's run
    time as a serial component instead of folding them into individual
    task durations (see :mod:`repro.mapreduce.runner`).
    """

    label: str = ""
    seconds: float = 0.0
    hbase_seconds: float = 0.0
    nbytes: int = 0
    nops: int = 0
    #: attached (tracer) scopes interleave freely; pushed scopes are LIFO.
    attached: bool = False

    def add(self, charge):
        self.seconds += charge.seconds
        if charge.subsystem == "hbase":
            self.hbase_seconds += charge.seconds
        self.nbytes += charge.nbytes
        self.nops += charge.nops

    @property
    def parallel_seconds(self):
        """Seconds spent on per-task parallelizable work (non-HBase)."""
        return self.seconds - self.hbase_seconds


class MetricsLedger:
    """Global cost accounting for one simulated cluster."""

    def __init__(self):
        self.bytes_by_key = defaultdict(int)
        self.ops_by_key = defaultdict(int)
        self.seconds_by_key = defaultdict(float)
        self.total_seconds = 0.0
        self._scopes = []

    def record(self, charge):
        """Record a charge globally and into every active scope."""
        key = (charge.subsystem, charge.op)
        self.bytes_by_key[key] += charge.nbytes
        self.ops_by_key[key] += charge.nops
        self.seconds_by_key[key] += charge.seconds
        self.total_seconds += charge.seconds
        for scope in self._scopes:
            scope.add(charge)

    def push_scope(self, label=""):
        scope = CostScope(label=label)
        self._scopes.append(scope)
        return scope

    def pop_scope(self, scope):
        """Pop a pushed scope; pushed scopes must unwind LIFO.

        Attached (tracer) scopes sitting above the popped scope are left
        in place — span scopes may outlive a task scope when a traced
        generator is abandoned mid-iteration.
        """
        for i in range(len(self._scopes) - 1, -1, -1):
            if self._scopes[i] is scope:
                if any(not s.attached for s in self._scopes[i + 1:]):
                    raise ValueError("cost scopes must be popped LIFO")
                del self._scopes[i]
                return scope
        raise ValueError("cost scopes must be popped LIFO")

    def attach_scope(self, label=""):
        """Attach a scope removable by identity in any order (tracing)."""
        scope = CostScope(label=label, attached=True)
        self._scopes.append(scope)
        return scope

    def detach_scope(self, scope):
        """Remove an attached scope; tolerant of resets in between."""
        try:
            self._scopes.remove(scope)
        except ValueError:
            pass
        return scope

    def scope(self, label):
        """The innermost active scope with ``label``, or None."""
        for scope in reversed(self._scopes):
            if scope.label == label:
                return scope
        return None

    def active_scope_labels(self):
        return [scope.label for scope in self._scopes]

    def bytes_for(self, subsystem, op=None):
        if op is not None:
            return self.bytes_by_key[(subsystem, op)]
        return sum(v for (s, _), v in self.bytes_by_key.items() if s == subsystem)

    def ops_for(self, subsystem, op=None):
        if op is not None:
            return self.ops_by_key[(subsystem, op)]
        return sum(v for (s, _), v in self.ops_by_key.items() if s == subsystem)

    def seconds_for(self, subsystem, op=None):
        if op is not None:
            return self.seconds_by_key[(subsystem, op)]
        return sum(v for (s, _), v in self.seconds_by_key.items() if s == subsystem)

    def snapshot(self):
        """An immutable dict snapshot, handy for before/after deltas."""
        return {
            "bytes": dict(self.bytes_by_key),
            "ops": dict(self.ops_by_key),
            "seconds": dict(self.seconds_by_key),
            "total_seconds": self.total_seconds,
        }

    def diff(self, before):
        """Per-key deltas since a :meth:`snapshot`, zero keys dropped.

        Returns the same shape as :meth:`snapshot`; lets callers compute
        per-statement costs without pushing a scope.
        """
        delta = {"total_seconds":
                 self.total_seconds - before["total_seconds"]}
        for field, current in (("bytes", self.bytes_by_key),
                               ("ops", self.ops_by_key),
                               ("seconds", self.seconds_by_key)):
            base = before[field]
            delta[field] = {
                key: value - base.get(key, 0)
                for key, value in current.items()
                if value - base.get(key, 0)
            }
        return delta

    def reset(self):
        self.bytes_by_key.clear()
        self.ops_by_key.clear()
        self.seconds_by_key.clear()
        self.total_seconds = 0.0
        self._scopes.clear()
