"""Simulated HDFS: write-once files, blocks, replication, batch streams."""

from repro.hdfs.datanode import DataNode
from repro.hdfs.filesystem import HdfsFileSystem, HdfsWriteHandle
from repro.hdfs.namenode import Block, INodeDirectory, INodeFile, NameNode

__all__ = [
    "DataNode",
    "HdfsFileSystem",
    "HdfsWriteHandle",
    "Block",
    "INodeDirectory",
    "INodeFile",
    "NameNode",
]
