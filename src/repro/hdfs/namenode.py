"""Simulated HDFS namenode: namespace tree, block map, replica placement.

The namespace is a map of absolute paths to inodes.  Files are write-once:
once an :class:`INodeFile` is closed it can never be modified, only
deleted or renamed — exactly the HDFS contract DualTable's Master Table
relies on.
"""

import itertools

from repro.common.errors import (
    FileAlreadyExistsError,
    FileNotFoundHdfsError,
    HdfsError,
    ImmutableFileError,
    ReplicationError,
)
from repro.common.rng import make_rng


class Block:
    """Metadata for one block: id, length, and the replica datanode ids."""

    __slots__ = ("block_id", "length", "replicas")

    def __init__(self, block_id, length, replicas):
        self.block_id = block_id
        self.length = length
        self.replicas = list(replicas)

    def __repr__(self):
        return "Block(%d, %dB, replicas=%r)" % (
            self.block_id, self.length, self.replicas)


class INodeFile:
    """A file inode: ordered block list plus open/closed state."""

    def __init__(self, path, replication):
        self.path = path
        self.replication = replication
        self.blocks = []
        self.closed = False

    @property
    def length(self):
        return sum(b.length for b in self.blocks)


class INodeDirectory:
    """A directory inode (directories are implicit containers)."""

    def __init__(self, path):
        self.path = path


def _normalize(path):
    if not path.startswith("/"):
        raise HdfsError("HDFS paths must be absolute: %r" % path)
    while "//" in path:
        path = path.replace("//", "/")
    if len(path) > 1 and path.endswith("/"):
        path = path.rstrip("/")
    return path


def _parents(path):
    parts = path.strip("/").split("/")
    for i in range(1, len(parts)):
        yield "/" + "/".join(parts[:i])


class NameNode:
    """Namespace and block management for the simulated HDFS."""

    def __init__(self, datanodes, replication=3, seed=0):
        self.datanodes = {dn.node_id: dn for dn in datanodes}
        self.replication = replication
        self._namespace = {"/": INodeDirectory("/")}
        self._block_ids = itertools.count(1)
        # Replica placement shares the library-wide seed derivation so a
        # single seed reproduces placements *and* fault schedules.
        self._rng = make_rng("hdfs.namenode.placement", seed)

    # ------------------------------------------------------------------
    # Namespace operations.
    # ------------------------------------------------------------------
    def exists(self, path):
        return _normalize(path) in self._namespace

    def lookup(self, path):
        path = _normalize(path)
        try:
            return self._namespace[path]
        except KeyError:
            raise FileNotFoundHdfsError("no such path: %s" % path) from None

    def is_file(self, path):
        return isinstance(self._namespace.get(_normalize(path)), INodeFile)

    def is_dir(self, path):
        return isinstance(self._namespace.get(_normalize(path)), INodeDirectory)

    def mkdirs(self, path):
        path = _normalize(path)
        node = self._namespace.get(path)
        if isinstance(node, INodeFile):
            raise FileAlreadyExistsError("file exists at %s" % path)
        for parent in _parents(path):
            existing = self._namespace.get(parent)
            if isinstance(existing, INodeFile):
                raise HdfsError("parent %s is a file" % parent)
            self._namespace.setdefault(parent, INodeDirectory(parent))
        self._namespace.setdefault(path, INodeDirectory(path))

    def create_file(self, path, replication=None):
        path = _normalize(path)
        if path in self._namespace:
            raise FileAlreadyExistsError("path already exists: %s" % path)
        parent = path.rsplit("/", 1)[0] or "/"
        self.mkdirs(parent)
        inode = INodeFile(path, replication or self.replication)
        self._namespace[path] = inode
        return inode

    def close_file(self, inode):
        inode.closed = True

    def listdir(self, path):
        path = _normalize(path)
        node = self.lookup(path)
        if isinstance(node, INodeFile):
            raise HdfsError("not a directory: %s" % path)
        prefix = path if path.endswith("/") else path + "/"
        children = set()
        for other in self._namespace:
            if other != path and other.startswith(prefix):
                rest = other[len(prefix):]
                children.add(rest.split("/", 1)[0])
        return sorted(children)

    def delete(self, path, recursive=False):
        path = _normalize(path)
        node = self.lookup(path)
        if isinstance(node, INodeFile):
            self._drop_file_blocks(node)
            del self._namespace[path]
            return 1
        prefix = path if path.endswith("/") else path + "/"
        doomed = [p for p in self._namespace
                  if p == path or p.startswith(prefix)]
        files = [p for p in doomed if isinstance(self._namespace[p], INodeFile)]
        if files and not recursive:
            raise HdfsError("directory not empty: %s" % path)
        for p in doomed:
            if p == "/":
                continue
            node = self._namespace.pop(p)
            if isinstance(node, INodeFile):
                self._drop_file_blocks(node)
        return len(doomed)

    def rename(self, src, dst):
        src, dst = _normalize(src), _normalize(dst)
        if dst in self._namespace:
            raise FileAlreadyExistsError("destination exists: %s" % dst)
        node = self.lookup(src)
        if isinstance(node, INodeFile):
            del self._namespace[src]
            node.path = dst
            parent = dst.rsplit("/", 1)[0] or "/"
            self.mkdirs(parent)
            self._namespace[dst] = node
            return
        prefix = src if src.endswith("/") else src + "/"
        moves = [(p, dst + p[len(src):]) for p in list(self._namespace)
                 if p == src or p.startswith(prefix)]
        for old, new in moves:
            inode = self._namespace.pop(old)
            inode.path = new
            self._namespace[new] = inode

    # ------------------------------------------------------------------
    # Block management.
    # ------------------------------------------------------------------
    def allocate_block(self, inode, data):
        if inode.closed:
            raise ImmutableFileError(
                "file %s is closed; HDFS files are write-once" % inode.path)
        live = [dn for dn in self.datanodes.values() if dn.alive]
        if len(live) < 1:
            raise ReplicationError("no live datanodes")
        want = min(inode.replication, len(live))
        targets = self._rng.sample(live, want)
        block = Block(next(self._block_ids), len(data),
                      [dn.node_id for dn in targets])
        for dn in targets:
            dn.store(block.block_id, data)
        inode.blocks.append(block)
        return block

    def read_block(self, block):
        for node_id in block.replicas:
            dn = self.datanodes.get(node_id)
            if dn is not None and dn.has_block(block.block_id):
                return dn.fetch(block.block_id)
        raise HdfsError("all replicas of block %d are unavailable"
                        % block.block_id)

    def _drop_file_blocks(self, inode):
        for block in inode.blocks:
            for node_id in block.replicas:
                dn = self.datanodes.get(node_id)
                if dn is not None:
                    dn.drop(block.block_id)

    # ------------------------------------------------------------------
    # Failure handling.
    # ------------------------------------------------------------------
    def kill_datanode(self, node_id):
        self.datanodes[node_id].kill()

    def re_replicate(self):
        """Restore the replication factor after datanode failures.

        Returns the number of new replicas created.
        """
        live = [dn for dn in self.datanodes.values() if dn.alive]
        created = 0
        for node in self._namespace.values():
            if not isinstance(node, INodeFile):
                continue
            for block in node.blocks:
                holders = [nid for nid in block.replicas
                           if self.datanodes[nid].alive
                           and self.datanodes[nid].has_block(block.block_id)]
                missing = min(node.replication, len(live)) - len(holders)
                if missing <= 0:
                    block.replicas = holders
                    continue
                data = None
                for nid in holders:
                    data = self.datanodes[nid].fetch(block.block_id)
                    break
                if data is None:
                    raise HdfsError("block %d lost all replicas"
                                    % block.block_id)
                candidates = [dn for dn in live if dn.node_id not in holders]
                for dn in self._rng.sample(candidates,
                                           min(missing, len(candidates))):
                    dn.store(block.block_id, data)
                    holders.append(dn.node_id)
                    created += 1
                block.replicas = holders
        return created

    def files_under(self, path):
        """All file inodes at or under ``path`` (sorted by path)."""
        path = _normalize(path)
        node = self.lookup(path)
        if isinstance(node, INodeFile):
            return [node]
        prefix = path if path.endswith("/") else path + "/"
        return sorted(
            (n for p, n in self._namespace.items()
             if isinstance(n, INodeFile) and p.startswith(prefix)),
            key=lambda n: n.path)
