"""Client-facing HDFS filesystem facade.

:class:`HdfsFileSystem` is what the rest of the library uses: create
(write-once) files, stream them back, list directories, delete, rename.
Every byte written or read is charged to the cluster ledger at HDFS
sequential rates.
"""

import io

from repro.common.errors import HdfsError, ImmutableFileError
from repro.hdfs.datanode import DataNode
from repro.hdfs.namenode import NameNode


class HdfsWriteHandle:
    """Write-once output stream; splits data into blocks on the fly."""

    def __init__(self, fs, inode):
        self._fs = fs
        self._inode = inode
        self._buffer = bytearray()
        self._closed = False

    def write(self, data):
        if self._closed:
            raise ImmutableFileError("write after close: %s" % self._inode.path)
        self._buffer.extend(data)
        block_size = self._fs.block_size
        while len(self._buffer) >= block_size:
            chunk = bytes(self._buffer[:block_size])
            del self._buffer[:block_size]
            self._fs._write_block(self._inode, chunk)
        return len(data)

    def close(self):
        if self._closed:
            return
        if self._buffer:
            self._fs._write_block(self._inode, bytes(self._buffer))
            self._buffer.clear()
        self._fs.namenode.close_file(self._inode)
        self._closed = True

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    @property
    def path(self):
        return self._inode.path


class HdfsFileSystem:
    """The HDFS client API used by ORC, HBase persistence and Hive."""

    def __init__(self, cluster, num_datanodes=None, replication=None):
        self.cluster = cluster
        profile = cluster.profile
        n = num_datanodes or max(1, profile.num_workers)
        self.datanodes = [DataNode("dn%02d" % i) for i in range(n)]
        self.namenode = NameNode(
            self.datanodes,
            replication=replication or profile.hdfs_replication,
            seed=cluster.seed,
        )
        self.block_size = profile.hdfs_block_size

    # ------------------------------------------------------------------
    # Write path.
    # ------------------------------------------------------------------
    def create(self, path, replication=None):
        inode = self.namenode.create_file(path, replication)
        return HdfsWriteHandle(self, inode)

    def write_file(self, path, data):
        """Create ``path`` holding ``data`` in one call."""
        with self.cluster.tracer.span("substrate", "hdfs:write", path=path):
            with self.create(path) as handle:
                handle.write(data)
        return len(data)

    def _write_block(self, inode, data):
        # datanode_loss faults fire here (non-raising): the pipeline
        # routes around the dead node via replica placement.
        self.cluster.faults.hit("hdfs.write_block", path=inode.path)
        self.namenode.allocate_block(inode, data)
        # The client pays for one stream; pipeline replication happens on
        # cluster-internal links and is tracked separately for visibility.
        self.cluster.charge_hdfs_write(len(data))
        extra = (inode.replication - 1) * len(data)
        if extra > 0:
            self.cluster._charge("hdfs", "replicate", nbytes=extra, seconds=0.0)

    # ------------------------------------------------------------------
    # Read path.
    # ------------------------------------------------------------------
    def read_file(self, path):
        """Read a whole file, charging sequential-read time."""
        inode = self._file_inode(path)
        out = io.BytesIO()
        for block in inode.blocks:
            out.write(self.namenode.read_block(block))
        data = out.getvalue()
        with self.cluster.tracer.span("substrate", "hdfs:read", path=path):
            self.cluster.charge_hdfs_read(len(data))
        return data

    def read_file_silent(self, path):
        """Read file bytes *without* charging (metadata/footer peeks)."""
        inode = self._file_inode(path)
        return b"".join(self.namenode.read_block(b) for b in inode.blocks)

    def charge_read(self, nbytes):
        """Charge a partial sequential read (columnar projection reads)."""
        with self.cluster.tracer.span("substrate", "hdfs:read"):
            self.cluster.charge_hdfs_read(nbytes)

    # ------------------------------------------------------------------
    # Namespace.
    # ------------------------------------------------------------------
    def exists(self, path):
        return self.namenode.exists(path)

    def is_file(self, path):
        return self.namenode.is_file(path)

    def is_dir(self, path):
        return self.namenode.is_dir(path)

    def mkdirs(self, path):
        self.namenode.mkdirs(path)

    def listdir(self, path):
        return self.namenode.listdir(path)

    def list_files(self, path):
        """Paths of all files under a directory, sorted."""
        return [inode.path for inode in self.namenode.files_under(path)]

    def file_size(self, path):
        return self._file_inode(path).length

    def dir_size(self, path):
        return sum(inode.length for inode in self.namenode.files_under(path))

    def delete(self, path, recursive=False):
        return self.namenode.delete(path, recursive=recursive)

    def rename(self, src, dst):
        self.namenode.rename(src, dst)

    # ------------------------------------------------------------------
    # Failure injection.
    # ------------------------------------------------------------------
    def kill_datanode(self, index):
        self.cluster.metrics.incr("hdfs.datanodes_killed")
        self.datanodes[index].kill()

    def revive_datanode(self, index):
        self.datanodes[index].revive()

    def re_replicate(self):
        restored = self.namenode.re_replicate()
        if restored:
            self.cluster.metrics.incr("hdfs.re_replicated_blocks", restored)
        return restored

    def _file_inode(self, path):
        inode = self.namenode.lookup(path)
        if not hasattr(inode, "blocks"):
            raise HdfsError("not a file: %s" % path)
        return inode
