"""Simulated HDFS datanode: stores block replicas in memory."""

from repro.common.errors import HdfsError


class DataNode:
    """One datanode holding block replicas keyed by block id."""

    def __init__(self, node_id):
        self.node_id = node_id
        self.blocks = {}
        self.alive = True

    def store(self, block_id, data):
        if not self.alive:
            raise HdfsError("datanode %s is dead" % self.node_id)
        self.blocks[block_id] = data

    def fetch(self, block_id):
        if not self.alive:
            raise HdfsError("datanode %s is dead" % self.node_id)
        try:
            return self.blocks[block_id]
        except KeyError:
            raise HdfsError(
                "datanode %s has no replica of block %s" % (self.node_id, block_id)
            ) from None

    def has_block(self, block_id):
        return self.alive and block_id in self.blocks

    def drop(self, block_id):
        self.blocks.pop(block_id, None)

    @property
    def used_bytes(self):
        return sum(len(b) for b in self.blocks.values())

    def kill(self):
        """Simulate a node crash; replicas become unreachable."""
        self.alive = False

    def revive(self):
        self.alive = True

    def __repr__(self):
        state = "up" if self.alive else "DOWN"
        return "DataNode(%s, %d blocks, %s)" % (self.node_id, len(self.blocks), state)
