"""Deterministic random-number helpers.

All workload generators in this repository are seeded so experiments are
reproducible run-to-run.  This module centralizes seed derivation so that
two generators never accidentally share a stream.
"""

import hashlib
import random


def derive_seed(*parts):
    """Derive a stable 64-bit seed from any printable parts.

    >>> derive_seed("lineitem", 42) == derive_seed("lineitem", 42)
    True
    >>> derive_seed("lineitem", 42) != derive_seed("orders", 42)
    True
    """
    digest = hashlib.sha256("\x1f".join(str(p) for p in parts).encode()).digest()
    return int.from_bytes(digest[:8], "big")


def make_rng(*parts):
    """Return a :class:`random.Random` seeded from ``parts``."""
    return random.Random(derive_seed(*parts))
