"""One seeded retry/backoff policy shared by every retry layer.

Three layers used to carry their own ad-hoc backoff arithmetic: the
MapReduce task-attempt loop, the statement-level commit retries in
:mod:`repro.core.editlog`, and (new with the server) optimistic
transaction conflict retries.  They now share one :class:`RetryPolicy`:

* ``max_attempts`` — total tries including the first;
* exponential backoff: ``backoff_s * factor ** (attempt - 1)``;
* optional *deterministic* jitter: a ``jitter`` fraction of the step,
  drawn from :func:`repro.common.rng.make_rng` seeded with the policy
  seed, the caller's key and the attempt number — the same (seed, key,
  attempt) triple always yields the same backoff, so seeded experiments
  reproduce byte-for-byte while concurrent retries still decorrelate.

The MapReduce/commit layers use ``jitter=0.0`` (their charged backoff
sequence is asserted by the tier-1 suite); the server's conflict retries
use a jittered policy so colliding sessions don't re-collide in
lockstep.
"""

from repro.common.rng import make_rng


class RetryPolicy:
    """Seeded exponential backoff with deterministic jitter."""

    __slots__ = ("max_attempts", "backoff_s", "factor", "jitter", "seed")

    def __init__(self, max_attempts=4, backoff_s=1.0, factor=2.0,
                 jitter=0.0, seed=0):
        self.max_attempts = max(1, int(max_attempts))
        self.backoff_s = float(backoff_s)
        self.factor = float(factor)
        self.jitter = float(jitter)
        self.seed = seed

    @classmethod
    def from_profile(cls, profile):
        """The task/commit retry policy a cluster profile implies.

        Jitter-free, so it charges exactly the classic
        ``retry_backoff_s * 2**(attempt-1)`` sequence.
        """
        return cls(max_attempts=profile.max_task_attempts,
                   backoff_s=profile.retry_backoff_s,
                   factor=2.0, jitter=0.0)

    def attempts(self):
        """Attempt numbers, 1-based: ``1, 2, ..., max_attempts``."""
        return range(1, self.max_attempts + 1)

    def is_last(self, attempt):
        return attempt >= self.max_attempts

    def backoff(self, attempt, key=None):
        """Backoff seconds to wait *after* a failed ``attempt``."""
        step = self.backoff_s * (self.factor ** (attempt - 1))
        if self.jitter <= 0.0:
            return step
        rng = make_rng("retry-jitter", self.seed, key, attempt)
        return step * (1.0 + self.jitter * rng.random())

    def __repr__(self):
        return ("RetryPolicy(max_attempts=%d, backoff_s=%g, factor=%g, "
                "jitter=%g)" % (self.max_attempts, self.backoff_s,
                                self.factor, self.jitter))
