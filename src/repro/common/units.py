"""Byte/time unit constants and human-readable formatting."""

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


def fmt_bytes(n):
    """Format a byte count for humans: ``fmt_bytes(1536) == '1.50 KB'``."""
    n = float(n)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(n) < 1024.0 or unit == "TB":
            if unit == "B":
                return "%d B" % int(n)
            return "%.2f %s" % (n, unit)
        n /= 1024.0
    raise AssertionError("unreachable")


def fmt_seconds(s):
    """Format a duration in seconds: ``fmt_seconds(93.5) == '1m 33.5s'``."""
    s = float(s)
    if s < 0:
        return "-" + fmt_seconds(-s)
    if s < 60:
        return "%.2fs" % s
    minutes, rest = divmod(s, 60.0)
    if minutes < 60:
        return "%dm %.1fs" % (int(minutes), rest)
    hours, minutes = divmod(int(minutes), 60)
    return "%dh %dm %.0fs" % (hours, minutes, rest)
