"""Shared helpers: units, errors, retry policy, deterministic RNG."""

from repro.common.errors import (
    ReproError,
    HdfsError,
    HBaseError,
    OrcError,
    MapReduceError,
    HiveError,
    DualTableError,
    FaultError,
    FaultInjectedError,
    RecoveryError,
    ServerError,
    ServerOverloaded,
    StatementTimeout,
    TxnConflictError,
    SessionKilledError,
)
from repro.common.retry import RetryPolicy
from repro.common.units import KB, MB, GB, fmt_bytes, fmt_seconds

__all__ = [
    "ReproError",
    "HdfsError",
    "HBaseError",
    "OrcError",
    "MapReduceError",
    "HiveError",
    "DualTableError",
    "FaultError",
    "FaultInjectedError",
    "RecoveryError",
    "ServerError",
    "ServerOverloaded",
    "StatementTimeout",
    "TxnConflictError",
    "SessionKilledError",
    "RetryPolicy",
    "KB",
    "MB",
    "GB",
    "fmt_bytes",
    "fmt_seconds",
]
