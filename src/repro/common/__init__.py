"""Shared helpers: units, errors, deterministic RNG utilities."""

from repro.common.errors import (
    ReproError,
    HdfsError,
    HBaseError,
    OrcError,
    MapReduceError,
    HiveError,
    DualTableError,
)
from repro.common.units import KB, MB, GB, fmt_bytes, fmt_seconds

__all__ = [
    "ReproError",
    "HdfsError",
    "HBaseError",
    "OrcError",
    "MapReduceError",
    "HiveError",
    "DualTableError",
    "KB",
    "MB",
    "GB",
    "fmt_bytes",
    "fmt_seconds",
]
