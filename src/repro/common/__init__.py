"""Shared helpers: units, errors, deterministic RNG utilities."""

from repro.common.errors import (
    ReproError,
    HdfsError,
    HBaseError,
    OrcError,
    MapReduceError,
    HiveError,
    DualTableError,
    FaultError,
    FaultInjectedError,
    RecoveryError,
)
from repro.common.units import KB, MB, GB, fmt_bytes, fmt_seconds

__all__ = [
    "ReproError",
    "HdfsError",
    "HBaseError",
    "OrcError",
    "MapReduceError",
    "HiveError",
    "DualTableError",
    "FaultError",
    "FaultInjectedError",
    "RecoveryError",
    "KB",
    "MB",
    "GB",
    "fmt_bytes",
    "fmt_seconds",
]
