"""Exception hierarchy for the DualTable reproduction.

Every subsystem raises a subclass of :class:`ReproError` so callers can
catch either the broad family or a specific layer's failures.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class HdfsError(ReproError):
    """Raised by the simulated HDFS layer."""


class FileNotFoundHdfsError(HdfsError):
    """A path does not exist in the HDFS namespace."""


class FileAlreadyExistsError(HdfsError):
    """Attempted to create a file over an existing path."""


class ImmutableFileError(HdfsError):
    """Attempted to modify a closed (write-once) HDFS file."""


class ReplicationError(HdfsError):
    """Not enough live datanodes to satisfy the replication factor."""


class OrcError(ReproError):
    """Raised by the ORC reader/writer."""


class CorruptOrcFileError(OrcError):
    """File bytes do not parse as a valid ORC-like file."""


class HBaseError(ReproError):
    """Raised by the simulated HBase layer."""


class TableNotFoundError(HBaseError):
    """HBase table does not exist."""


class TableExistsError(HBaseError):
    """HBase table already exists."""


class MapReduceError(ReproError):
    """Raised by the MapReduce job engine."""


class TaskFailedError(MapReduceError):
    """A map or reduce task raised an exception."""


class FaultError(ReproError):
    """Base class for the deterministic fault-injection layer."""


class FaultInjectedError(FaultError):
    """A fault plan fired at a named injection point.

    ``fatal`` distinguishes process-level kills (the whole job/statement
    dies; retry layers must not absorb it) from ordinary task crashes
    (retryable).
    """

    def __init__(self, point, kind="crash", nth_hit=1, fatal=False):
        super().__init__("injected %s fault at %s (hit %d)"
                         % (kind, point, nth_hit))
        self.point = point
        self.kind = kind
        self.nth_hit = nth_hit
        self.fatal = fatal


class RecoveryError(FaultError):
    """A crash-recovery protocol found an unrecoverable state."""


class HiveError(ReproError):
    """Raised by the Hive-like SQL layer."""


class ParseError(HiveError):
    """HiveQL text could not be parsed."""

    def __init__(self, message, position=None):
        super().__init__(message)
        self.position = position


class AnalysisError(HiveError):
    """Query refers to unknown tables/columns or is semantically invalid."""


class CatalogError(HiveError):
    """Metastore-level failure (duplicate table, missing table, ...)."""


class DualTableError(ReproError):
    """Raised by the DualTable storage handler."""


class CompactionInProgressError(DualTableError):
    """Operations are blocked while COMPACT is running."""


class ServerError(ReproError):
    """Raised by the concurrent multi-session server (repro.server)."""


class ServerOverloaded(ServerError):
    """Typed load-shed rejection: the admission queue is full.

    Raised instead of queueing without bound; clients may retry later.
    """


class StatementTimeout(ServerError):
    """A statement exceeded its per-statement timeout (queue + retries)."""


class TxnConflictError(ServerError):
    """First-committer-wins: a concurrent commit overlapped this
    transaction's write set (or rewrote a table it touched).

    ``escalation`` marks the variant raised when a statement needs
    table-exclusive execution (an OVERWRITE-plan rewrite) while other
    statements are in flight on the table — the server retries it as an
    exclusive statement.
    """

    def __init__(self, message, escalation=False):
        super().__init__(message)
        self.escalation = escalation


class SessionKilledError(ServerError):
    """The server session was killed while the statement was queued or
    in flight; nothing the statement buffered was published."""
