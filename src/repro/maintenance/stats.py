"""Per-table maintenance statistics from the metrics registry.

The daemon must not instrument the data path itself — the handler
already counts ``dualtable.scans.<table>`` (one per UNION-READ split
planning) and ``dualtable.dml.<table>`` (one per cost-model plan
choice).  This module turns those *cumulative* counters into the one
number the compaction policy needs: the **read horizon** — how many
table reads are expected to pay union-read overhead per mutation — as
an exponentially weighted moving average of the observed reads-per-DML
mix.

Counter deltas are observed at daemon tick time, after all jobs of the
triggering statement completed, so the derived stats are deterministic
for any worker count (PR 3's capture-replay makes the counters so).
"""


class TableStats:
    """Observed read/write mix of one DualTable."""

    #: EWMA weight of the newest observation.
    EWMA_ALPHA = 0.4

    def __init__(self, read_factor=1):
        #: the horizon estimate, seeded from the table's declared
        #: ``dualtable.read_factor`` (the paper's ``k``) until real
        #: observations arrive.
        self.reads_per_dml = float(max(1, read_factor))
        self.total_scans = 0
        self.total_dmls = 0
        self._last_scans = 0
        self._last_dmls = 0
        self._reads_since_dml = 0

    def advance(self, scans, dmls):
        """Fold the latest cumulative counter values into the EWMA.

        Each DML performs one table scan of its own (the EDIT/OVERWRITE
        plans both read the table), so pure reads in a window are
        ``new_scans - new_dmls``.  Reads between mutations accumulate
        and are attributed when the next mutation window closes.
        """
        new_scans = max(0, scans - self._last_scans)
        new_dmls = max(0, dmls - self._last_dmls)
        self._last_scans = scans
        self._last_dmls = dmls
        self.total_scans = scans
        self.total_dmls = dmls
        reads = max(0, new_scans - new_dmls)
        if new_dmls > 0:
            observed = (self._reads_since_dml + reads) / new_dmls
            self.reads_per_dml += self.EWMA_ALPHA * (observed
                                                     - self.reads_per_dml)
            self._reads_since_dml = 0
        else:
            self._reads_since_dml += reads

    @property
    def horizon(self):
        """Projected reads that will pay for the current deltas."""
        return max(1.0, self.reads_per_dml)


class StatsCollector:
    """Derives and caches per-table :class:`TableStats` from metrics."""

    def __init__(self, cluster):
        self.cluster = cluster
        self._tables = {}

    def table_stats(self, name, read_factor=1):
        stats = self._tables.get(name)
        if stats is None:
            stats = self._tables[name] = TableStats(read_factor)
        return stats

    def refresh(self, name, read_factor=1):
        """Advance one table's stats to the current counter values."""
        counters = self.cluster.metrics.counters
        stats = self.table_stats(name, read_factor)
        stats.advance(counters.get("dualtable.scans.%s" % name, 0),
                      counters.get("dualtable.dml.%s" % name, 0))
        return stats

    def forget(self, name):
        self._tables.pop(name, None)
