"""The amortized compaction decision rule (extends Section IV).

The paper's cost model (eq. 1/2) weighs one statement's EDIT vs
OVERWRITE plans.  Compaction needs the *amortized* generalization: the
Attached Table taxes every future UNION READ with its delta scan, so

    compact file set S now  iff
    horizon × Σ_{f∈S} per_read_overhead(f)  >  rewrite_cost(S)

where ``horizon`` is the stats-derived expected number of table reads
per mutation (:mod:`repro.maintenance.stats`) and both sides are
predicted with the same device-rate arithmetic the cluster charges —
the predictions are audited against observed seconds after every
executed compaction, under the same 25 % rel-error discipline as the
DML cost model.

Candidate plans, scored by net benefit:

* **partial** — rewrite the ``k`` highest-delta-density master files
  (for every prefix ``k`` of the density ordering) and pay charged
  per-entry range deletes to drop only their deltas;
* **full** — rewrite every master file; the Attached-Table truncate is
  free, which is exactly why full compaction wins once most files are
  dirty.
"""

from dataclasses import dataclass, field

from repro.mapreduce.runner import _makespan


@dataclass
class FileDelta:
    """Per-master-file delta-density observation."""

    path: str
    file_id: int
    master_bytes: int
    master_rows: int
    delta_bytes: int
    delta_entries: int

    @property
    def density(self):
        return self.delta_bytes / max(1, self.master_bytes)


@dataclass
class CompactionDecision:
    """What the policy chose and the full cost breakdown (for spans,
    SHOW COMPACTIONS and the 'declined' observability requirement)."""

    action: str                 # 'partial' | 'full' | 'decline'
    files: list = field(default_factory=list)   # selected FileDelta list
    predicted_seconds: float = 0.0
    benefit_seconds: float = 0.0
    horizon: float = 1.0
    note: str = ""
    breakdown: dict = field(default_factory=dict)

    @property
    def net_seconds(self):
        return self.benefit_seconds - self.predicted_seconds


class CompactionPolicy:
    """Scores compaction plans for one DualTable handler."""

    def __init__(self, handler, options=None):
        self.handler = handler
        self.options = dict(options or {})

    # ------------------------------------------------------------------
    # Observation.
    # ------------------------------------------------------------------
    def observe_files(self):
        """One :class:`FileDelta` per master file.

        Consults only control-plane metadata (metastore-style per-file
        stats, attached key-range sizes) — observation is free, like
        plan choice, so the daemon can re-score tables on every tick.
        """
        handler = self.handler
        fs = handler.env.fs
        out = []
        for path in handler.master.file_paths():
            file_id, num_rows = handler.master.file_meta(path)
            delta_bytes, delta_entries = \
                handler.attached.file_delta_stats(file_id)
            out.append(FileDelta(path=path, file_id=file_id,
                                 master_bytes=max(1, fs.file_size(path)),
                                 master_rows=num_rows,
                                 delta_bytes=delta_bytes,
                                 delta_entries=delta_entries))
        return out

    # ------------------------------------------------------------------
    # Predicted costs (mirrors the charging model in mapreduce.runner
    # and cluster.Cluster: HDFS at per-slot rate inside map tasks, HBase
    # at aggregate rates added serially to job time).
    # ------------------------------------------------------------------
    def _profile(self):
        return self.handler.env.cluster.profile

    def _rates(self):
        return self.handler.attached.rates(self._profile())

    def per_read_overhead(self, f):
        """Extra seconds ONE table read pays for file ``f``'s deltas."""
        profile = self._profile()
        return self._rates().read_seconds(
            f.delta_bytes, f.delta_entries,
            profile.byte_scale, profile.op_scale)

    def rewrite_job_seconds(self, files):
        """Predicted compact-job time over ``files`` (read + write)."""
        profile = self._profile()
        bs, ops = profile.byte_scale, profile.op_scale
        per_slot_read = profile.per_slot_rate(profile.hdfs_read_bps)
        row_cost = profile.unionread_row_cost_s + profile.cpu_row_cost_s
        tasks = []
        hbase_seconds = 0.0
        out_bytes = 0
        for f in files:
            tasks.append(profile.task_overhead_s
                         + f.master_bytes * bs / per_slot_read
                         + f.master_rows * ops * row_cost)
            hbase_seconds += self.per_read_overhead(f)
            out_bytes += f.master_bytes
        read_seconds = (profile.job_startup_s
                        + _makespan(tasks, profile.total_map_slots)
                        + hbase_seconds)
        write_seconds = out_bytes * bs / profile.hdfs_write_bps
        return read_seconds + write_seconds

    def delta_drop_seconds(self, f):
        """Predicted charged cost of ``clear_file`` for one file: a
        range scan to materialize the record IDs plus one bulk delete
        per entry (full truncate, by contrast, is free)."""
        profile = self._profile()
        rates = self._rates()
        bs, ops = profile.byte_scale, profile.op_scale
        scan = rates.read_seconds(f.delta_bytes, f.delta_entries, bs, ops)
        # delete_row charges len(record_id) + 9 bytes per entry.
        deletes = rates.write_seconds(21 * f.delta_entries, f.delta_entries,
                                      bs, ops)
        return scan + deletes

    # ------------------------------------------------------------------
    # The decision.
    # ------------------------------------------------------------------
    def decide(self, horizon):
        """Best plan for the given read horizon (a CompactionDecision)."""
        mode = str(self.options.get("mode", "auto")).lower()
        min_delta = int(self.options.get("min_delta_bytes", 1))
        max_files = self.options.get("max_files")
        files = self.observe_files()
        dirty = [f for f in files if f.delta_bytes >= max(1, min_delta)]
        if not dirty:
            return CompactionDecision(action="decline", horizon=horizon,
                                      note="no deltas above threshold")
        dirty.sort(key=lambda f: (-f.density, f.path))
        candidates = []
        if mode != "full":
            limit = len(dirty)
            if max_files is not None:
                limit = min(limit, max(1, int(max_files)))
            for k in range(1, limit + 1):
                subset = dirty[:k]
                cost = (self.rewrite_job_seconds(subset)
                        + sum(self.delta_drop_seconds(f) for f in subset))
                benefit = horizon * sum(self.per_read_overhead(f)
                                        for f in subset)
                candidates.append(("partial", subset, cost, benefit))
        if mode != "partial":
            cost = self.rewrite_job_seconds(files)
            benefit = horizon * sum(self.per_read_overhead(f)
                                    for f in dirty)
            candidates.append(("full", files, cost, benefit))
        action, subset, cost, benefit = max(
            candidates, key=lambda c: c[3] - c[2])
        breakdown = {
            "horizon": horizon,
            "dirty_files": len(dirty),
            "total_files": len(files),
            "candidate_plans": len(candidates),
            "predicted_seconds": cost,
            "benefit_seconds": benefit,
        }
        if benefit <= cost:
            return CompactionDecision(
                action="decline", files=[], predicted_seconds=cost,
                benefit_seconds=benefit, horizon=horizon,
                note="best plan (%s over %d files) not amortized"
                     % (action, len(subset)),
                breakdown=breakdown)
        breakdown["plan_files"] = len(subset)
        return CompactionDecision(
            action=action, files=list(subset), predicted_seconds=cost,
            benefit_seconds=benefit, horizon=horizon,
            note="%s over %d/%d files" % (action, len(subset), len(files)),
            breakdown=breakdown)
