"""Autonomous maintenance: stats-driven background compaction.

Three layers (each importable on its own):

* :mod:`repro.maintenance.stats` — per-table read/write-mix statistics
  derived from the cluster's MetricsRegistry counters;
* :mod:`repro.maintenance.policy` — the amortized compaction decision
  rule extending the Section-IV cost model: compact a file set now iff
  the projected union-read overhead over the stats-derived read horizon
  exceeds the rewrite cost;
* :mod:`repro.maintenance.daemon` — the sim-clock-driven daemon the
  session ticks between statements, with a concurrency guard against
  in-flight DML and a bounded decision log behind ``SHOW COMPACTIONS``.
"""

from repro.maintenance.daemon import AutoCompactionDaemon, CompactionRecord
from repro.maintenance.policy import CompactionDecision, CompactionPolicy
from repro.maintenance.stats import StatsCollector, TableStats

__all__ = [
    "AutoCompactionDaemon",
    "CompactionDecision",
    "CompactionPolicy",
    "CompactionRecord",
    "StatsCollector",
    "TableStats",
]
