"""The auto-compaction daemon: sim-clock-driven background maintenance.

Scheduling contract (documented in INTERNALS §7):

* the session calls :meth:`AutoCompactionDaemon.tick` after every
  outermost statement, once that statement's simulated time has been
  added to the clock — maintenance runs *between* statements, never
  inside one;
* a tick never re-enters itself, never touches a table whose handler is
  mid-COMPACT or that has no AUTOCOMPACT config, and fast-exits on the
  uncharged ``attached.is_empty()`` metadata check;
* everything a decision reads (ORC footers for file stats) is charged
  inside a ``maintenance`` cost scope and advanced on the clock, so
  background work is as real as foreground work;
* the injected ``dualtable.autocompact.tick`` fault point covers the
  new crash window: a kill between the decision and the compaction
  leaves at most a manifest behind, which PR 1's ``recover()`` heals on
  the next table access.

Every decision — including declines — lands in a bounded log with the
policy's full cost breakdown; ``SHOW COMPACTIONS`` renders it.
"""

import itertools

from dataclasses import dataclass

from repro.common.errors import AnalysisError
from repro.maintenance.policy import CompactionPolicy
from repro.maintenance.stats import StatsCollector

#: columns of SHOW COMPACTIONS.
COMPACTION_COLUMNS = ["id", "table", "trigger", "action", "files",
                      "folded_bytes", "predicted_s", "observed_s",
                      "rel_error", "note"]


@dataclass
class CompactionRecord:
    """One logged maintenance decision or manual compaction."""

    id: int
    table: str
    trigger: str            # 'auto' | 'manual'
    action: str             # 'partial' | 'full' | 'declined' | 'noop'
    files: int = 0
    folded_bytes: int = 0
    predicted_s: float = None
    observed_s: float = None
    rel_error: float = None
    clock: float = 0.0
    note: str = ""

    def row(self):
        return (self.id, self.table, self.trigger, self.action, self.files,
                self.folded_bytes,
                None if self.predicted_s is None
                else round(self.predicted_s, 3),
                None if self.observed_s is None
                else round(self.observed_s, 3),
                None if self.rel_error is None
                else round(self.rel_error, 4),
                self.note)


class AutoCompactionDaemon:
    """Per-session background compactor over AUTOCOMPACT-enabled tables."""

    #: decision-log bound (oldest entries dropped first).
    MAX_RECORDS = 256

    def __init__(self, session):
        self.session = session
        self.collector = StatsCollector(session.cluster)
        self.configs = {}           # table name -> options dict
        self.records = []
        self._ids = itertools.count(1)
        self._last_decision_clock = {}
        self._active = False

    # ------------------------------------------------------------------
    # Configuration (ALTER TABLE t SET AUTOCOMPACT (...)).
    # ------------------------------------------------------------------
    def configure(self, table, enabled, options):
        from repro.hive.session import QueryResult

        info = self.session.metastore.table(table)
        handler = info.handler
        if getattr(handler, "kind", None) not in ("dualtable",
                                                  "dualtable-sharded"):
            raise AnalysisError(
                "AUTOCOMPACT requires a DualTable table (got %s stored "
                "as %s)" % (info.name, info.storage))
        key = info.name
        if enabled:
            self.configs[key] = dict(options)
        else:
            self.configs.pop(key, None)
            self._last_decision_clock.pop(key, None)
        self.session.cluster.metrics.gauge("dualtable.autocompact.tables",
                                           len(self.configs))
        return QueryResult(
            plan="alter-autocompact", affected=0,
            detail={"table": key, "enabled": bool(enabled),
                    "options": dict(options)})

    def note_manual(self, table, result):
        """Log a manually issued COMPACT so SHOW COMPACTIONS sees it."""
        detail = result.detail or {}
        action = detail.get("mode") or result.plan
        self._log(CompactionRecord(
            id=next(self._ids), table=table, trigger="manual",
            action=action, files=detail.get("files", 0),
            folded_bytes=detail.get("folded_bytes", 0),
            observed_s=result.sim_seconds,
            clock=self.session.cluster.clock.now,
            note=result.plan))

    def compaction_rows(self):
        return [record.row() for record in self.records]

    def _log(self, record):
        self.records.append(record)
        del self.records[:-self.MAX_RECORDS]

    # ------------------------------------------------------------------
    # The tick (called by the session between statements).
    # ------------------------------------------------------------------
    def tick(self):
        if self._active or not self.configs:
            return
        self._active = True
        try:
            for name in sorted(self.configs):
                self._tick_table(name, self.configs[name])
        finally:
            self._active = False

    def _tick_table(self, name, options):
        session = self.session
        cluster = session.cluster
        try:
            info = session.metastore.table(name)
        except Exception:
            self.configs.pop(name, None)
            self.collector.forget(name)
            return
        handler = info.handler
        if handler._compacting:
            return      # concurrency guard: a COMPACT is mid-commit
        guard = getattr(session, "txn_guard", None)
        if guard is not None and guard(name):
            # Server transactions hold buffered (unpublished) EditBatches
            # on this table; compacting now would remap the record IDs
            # those edits target.  Skip and retry on a later tick.
            return
        interval = float(options.get("interval", 0.0))
        last = self._last_decision_clock.get(name)
        if last is not None and interval > 0 \
                and cluster.clock.now - last < interval:
            return
        cluster.faults.hit("dualtable.autocompact.tick", table=name)
        stats = self.collector.refresh(name, handler.read_factor)
        # Sharded tables expose one compaction unit per shard, so a hot
        # shard folds alone; single tables are their own unit.
        units = getattr(handler, "compaction_units", None)
        targets = units() if units is not None else [handler]
        if all(t.attached.is_empty() for t in targets):
            return      # uncharged fast path: nothing to fold
        self._last_decision_clock[name] = cluster.clock.now
        horizon = float(options.get("horizon", 0.0)) or stats.horizon
        for target in targets:
            if target._compacting or target.attached.is_empty():
                continue
            self._tick_target(target, options, horizon)

    def _tick_target(self, target, options, horizon):
        """Decide + (maybe) compact one compaction unit."""
        cluster = self.session.cluster
        name = target.table.name
        with cluster.tracer.span("phase", "autocompact:decide",
                                 table=name) as span:
            with cluster.cost_scope("maintenance") as scope:
                policy = CompactionPolicy(target, options)
                decision = policy.decide(horizon)
            decision_seconds = (
                scope.parallel_seconds
                / max(1, cluster.profile.total_map_slots)
                + scope.hbase_seconds)
            attrs = {"action": decision.action,
                     "predicted_seconds": decision.predicted_seconds,
                     "benefit_seconds": decision.benefit_seconds,
                     "horizon": horizon}
            attrs.update(decision.breakdown)
            span.annotate(**{k: round(v, 6) if isinstance(v, float) else v
                             for k, v in attrs.items()})
        cluster.metrics.incr("dualtable.autocompact.decisions")
        cluster.metrics.observe("dualtable.autocompact.decision_seconds",
                                decision_seconds)
        if decision_seconds > 0:
            cluster.clock.advance(decision_seconds)
        if decision.action == "decline":
            cluster.metrics.incr("dualtable.autocompact.declined")
            self._log(CompactionRecord(
                id=next(self._ids), table=name, trigger="auto",
                action="declined",
                files=decision.breakdown.get("dirty_files", 0),
                predicted_s=decision.predicted_seconds,
                observed_s=decision_seconds,
                clock=cluster.clock.now, note=decision.note))
            return
        self._execute(name, target, decision)

    def _execute(self, name, handler, decision):
        session = self.session
        cluster = session.cluster
        folded_bytes = sum(f.delta_bytes for f in decision.files
                           if f.delta_bytes > 0)
        if decision.action == "full":
            result = handler.execute_compact(session, major=True)
        else:
            result = handler.execute_compact(
                session, partial=True,
                victim_paths=[f.path for f in decision.files])
        observed = result.sim_seconds
        predicted = decision.predicted_seconds
        rel_error = (abs(predicted - observed) / observed
                     if observed > 0 else 0.0)
        cluster.metrics.incr("dualtable.autocompact.compactions")
        cluster.metrics.observe("maintenance.rel_error", rel_error)
        if observed > 0:
            cluster.clock.advance(observed)
        self._log(CompactionRecord(
            id=next(self._ids), table=name, trigger="auto",
            action=result.detail.get("mode", decision.action),
            files=result.detail.get("files", len(decision.files)),
            folded_bytes=result.detail.get("folded_bytes", folded_bytes),
            predicted_s=predicted, observed_s=observed,
            rel_error=rel_error, clock=cluster.clock.now,
            note=decision.note))
