"""Simulated B-tree row store: the MySQL-style Attached-Table backend."""

from repro.kvstore.btree import BTreeTable

__all__ = ["BTreeTable"]
