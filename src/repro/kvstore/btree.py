"""A B-tree-backed row store: the "MySQL option" for the Attached Table.

The paper's future work proposes evaluating other storage backends for the
Attached Table (MySQL, MongoDB...).  This module provides a simulated
update-in-place B-tree row store with the cost profile of an InnoDB-style
engine:

* a random write is a page read-modify-write (two page I/Os + latency),
* a point read is a page read,
* range scans stream leaf pages sequentially.

It exposes the same client surface as :class:`repro.hbase.HTable` (duck
typing), so :class:`repro.core.attached.AttachedTable` can sit on either
backend unchanged.  Multi-versioning keeps a bounded per-cell history
(InnoDB-undo-style), so DualTable's change-history feature still works.

Device rates default to the values below and can be overridden per
cluster through ``profile.extra``:

* ``kvstore.read_bps`` / ``kvstore.write_bps`` — aggregate stream rates,
* ``kvstore.op_latency_s`` — per-operation latency,
* ``kvstore.page_bytes`` — page size for the read-modify-write charge.
"""

import bisect

from repro.common.units import MB

DEFAULT_READ_BPS = 300 * MB
DEFAULT_WRITE_BPS = 120 * MB
DEFAULT_OP_LATENCY_S = 8e-6
DEFAULT_PAGE_BYTES = 16 * 1024
#: consecutive updates share pages (DualTable record IDs are sorted, so
#: EDIT-plan writes have strong key locality); page I/O amortizes over
#: this many operations.
DEFAULT_PAGE_LOCALITY = 64
MAX_VERSIONS = 8


class BTreeTable:
    """One sorted row table with HTable-compatible surface."""

    def __init__(self, cluster, name):
        self.cluster = cluster
        self.name = name
        self._keys = []
        self._rows = []        # parallel: {qualifier: [(ts, value), ...]}
        self._ts = 0
        extra = cluster.profile.extra
        self.read_bps = float(extra.get("kvstore.read_bps",
                                        DEFAULT_READ_BPS))
        self.write_bps = float(extra.get("kvstore.write_bps",
                                         DEFAULT_WRITE_BPS))
        self.op_latency_s = float(extra.get("kvstore.op_latency_s",
                                            DEFAULT_OP_LATENCY_S))
        self.page_bytes = int(extra.get("kvstore.page_bytes",
                                        DEFAULT_PAGE_BYTES))
        self.page_locality = max(1, int(extra.get("kvstore.page_locality",
                                                  DEFAULT_PAGE_LOCALITY)))

    # ------------------------------------------------------------------
    # Charging (subsystem "hbase" so the job-level serialization of the
    # shared random-access store applies identically to both backends).
    # ------------------------------------------------------------------
    @property
    def _write_op_latency(self):
        """Effective per-op latency: seek + page read-modify-write.

        Page I/O is per *operation*, so it scales with op_scale (each
        simulated op stands for op_scale real page RMWs), not byte_scale.
        """
        amortized_page = self.page_bytes / self.page_locality
        return (self.op_latency_s + amortized_page / self.write_bps
                + amortized_page / self.read_bps)

    @property
    def _read_op_latency(self):
        return (self.op_latency_s
                + self.page_bytes / self.page_locality / self.read_bps)

    def _charge_write_op(self, payload_bytes):
        self.cluster._charge("hbase", "write", nbytes=payload_bytes,
                             nops=1, rate=self.write_bps,
                             per_op_latency=self._write_op_latency)

    def _charge_read_op(self, nbytes):
        self.cluster._charge("hbase", "read", nbytes=nbytes, nops=1,
                             rate=self.read_bps,
                             per_op_latency=self._read_op_latency)

    def _charge_scan(self, nbytes, nrows):
        self.cluster._charge("hbase", "scan", nbytes=nbytes, nops=nrows,
                             rate=self.read_bps,
                             per_op_latency=self.op_latency_s / 16)

    # ------------------------------------------------------------------
    # Writes.
    # ------------------------------------------------------------------
    def _slot(self, row):
        idx = bisect.bisect_left(self._keys, row)
        if idx < len(self._keys) and self._keys[idx] == row:
            return idx, True
        return idx, False

    def put(self, row, values, ts=None):
        self._ts += 1
        ts = self._ts if ts is None else ts
        idx, found = self._slot(row)
        if not found:
            self._keys.insert(idx, row)
            self._rows.insert(idx, {})
        cells = self._rows[idx]
        payload = 0
        for qualifier, value in values.items():
            history = cells.setdefault(qualifier, [])
            history.insert(0, (ts, value))
            del history[MAX_VERSIONS:]
            payload += len(row) + len(qualifier) + len(value) + 9
        self._charge_write_op(payload)
        return ts

    def delete_row(self, row, ts=None):
        idx, found = self._slot(row)
        if found:
            del self._keys[idx]
            del self._rows[idx]
        self._charge_write_op(len(row))
        self._ts += 1
        return self._ts

    def delete_column(self, row, qualifier, ts=None):
        idx, found = self._slot(row)
        if found:
            self._rows[idx].pop(qualifier, None)
            if not self._rows[idx]:
                del self._keys[idx]
                del self._rows[idx]
        self._charge_write_op(len(row) + len(qualifier))
        self._ts += 1
        return self._ts

    # ------------------------------------------------------------------
    # Reads.
    # ------------------------------------------------------------------
    def get(self, row, versions=1):
        idx, found = self._slot(row)
        if not found:
            self._charge_read_op(len(row))
            return None
        cells = self._rows[idx]
        nbytes = self._row_bytes(row, cells)
        self._charge_read_op(nbytes)
        return self._view(cells, versions)

    def scan(self, start_row=None, stop_row=None, versions=1):
        lo = 0 if start_row is None else bisect.bisect_left(self._keys,
                                                            start_row)
        nbytes = 0
        nrows = 0
        for idx in range(lo, len(self._keys)):
            row = self._keys[idx]
            if stop_row is not None and row >= stop_row:
                break
            cells = self._rows[idx]
            nbytes += self._row_bytes(row, cells)
            nrows += 1
            yield row, self._view(cells, versions)
        self._charge_scan(nbytes, nrows)

    def scan_silent(self, start_row=None, stop_row=None, versions=1):
        """Uncharged :meth:`scan` for control-plane planning stats."""
        lo = 0 if start_row is None else bisect.bisect_left(self._keys,
                                                            start_row)
        for idx in range(lo, len(self._keys)):
            row = self._keys[idx]
            if stop_row is not None and row >= stop_row:
                break
            yield row, self._view(self._rows[idx], versions)

    @staticmethod
    def _view(cells, versions):
        if versions == 1:
            return {q: history[0][1] for q, history in cells.items()}
        return {q: list(history[:versions])
                for q, history in cells.items()}

    @staticmethod
    def _row_bytes(row, cells):
        return sum(len(row) + len(q) + len(v) + 9
                   for q, history in cells.items()
                   for _, v in history)

    # ------------------------------------------------------------------
    # Maintenance / stats.
    # ------------------------------------------------------------------
    def truncate(self):
        self._keys = []
        self._rows = []

    def reclaim_range(self, start_row=None, stop_row=None):
        """No-op: B-tree deletes already remove rows in place."""

    def flush(self):
        """No-op: B-tree writes are in place."""

    def compact(self, major=False):
        """No-op: there are no LSM runs to merge."""

    @property
    def store_bytes(self):
        return sum(self._row_bytes(row, cells)
                   for row, cells in zip(self._keys, self._rows))

    def bytes_in_range(self, start_row=None, stop_row=None):
        lo = 0 if start_row is None else bisect.bisect_left(self._keys,
                                                            start_row)
        total = 0
        for idx in range(lo, len(self._keys)):
            if stop_row is not None and self._keys[idx] >= stop_row:
                break
            total += self._row_bytes(self._keys[idx], self._rows[idx])
        return total

    def rows_in_range(self, start_row=None, stop_row=None):
        """Row count in range; control-plane metadata, uncharged."""
        lo = 0 if start_row is None else bisect.bisect_left(self._keys,
                                                            start_row)
        hi = (len(self._keys) if stop_row is None
              else bisect.bisect_left(self._keys, stop_row))
        return max(0, hi - lo)

    def count_rows(self):
        return len(self._keys)

    def is_empty(self):
        return not self._keys
