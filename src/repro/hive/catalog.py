"""Metastore: table catalog plus the storage-handler registry.

Handler kinds are registered by name (``orc``, ``hbase``, ``dualtable``,
``acid``) so new storage models plug in exactly the way DualTable plugs
into Hive in the paper — without the catalog knowing their internals.
"""

from dataclasses import dataclass, field

from repro.common.errors import CatalogError
from repro.hive.types import TableSchema

_HANDLER_REGISTRY = {}


def register_handler(kind, factory):
    """Register a storage handler class under ``kind``."""
    _HANDLER_REGISTRY[kind.lower()] = factory


def handler_kinds():
    return sorted(_HANDLER_REGISTRY)


@dataclass
class TableInfo:
    """Catalog entry for one table."""

    name: str
    schema: TableSchema
    storage: str
    properties: dict = field(default_factory=dict)
    handler: object = None


class HiveEnv:
    """Shared runtime services handed to every storage handler."""

    def __init__(self, cluster, fs, hbase, runner):
        self.cluster = cluster
        self.fs = fs
        self.hbase = hbase
        self.runner = runner
        #: UNION READ merge strategy ("overlay" | "row"); the session
        #: owns the knob (``SET dualtable.merge``), handlers read it per
        #: scan.  A wall-clock-only choice: both strategies produce
        #: byte-identical rows, charges and merge stats (INTERNALS §14).
        self.merge_mode = "overlay"


class Metastore:
    """In-memory table catalog."""

    def __init__(self, env):
        self.env = env
        self._tables = {}

    def create_table(self, name, schema, storage="orc", properties=None,
                     if_not_exists=False):
        key = name.lower()
        if key in self._tables:
            if if_not_exists:
                return self._tables[key]
            raise CatalogError("table already exists: %s" % name)
        if not isinstance(schema, TableSchema):
            schema = TableSchema(schema)
        storage = storage.lower()
        factory = _HANDLER_REGISTRY.get(storage)
        if factory is None:
            raise CatalogError(
                "unknown storage kind %r (registered: %s)"
                % (storage, ", ".join(handler_kinds())))
        info = TableInfo(name=name.lower(), schema=schema, storage=storage,
                         properties=dict(properties or {}))
        info.handler = factory(info, self.env)
        info.handler.create()
        self._tables[key] = info
        return info

    def drop_table(self, name, if_exists=False):
        key = name.lower()
        info = self._tables.pop(key, None)
        if info is None:
            if if_exists:
                return False
            raise CatalogError("no such table: %s" % name)
        info.handler.drop()
        return True

    def table(self, name):
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError("no such table: %s" % name) from None

    def has_table(self, name):
        return name.lower() in self._tables

    def list_tables(self):
        return sorted(self._tables)
