"""Recursive-descent parser for the HiveQL dialect.

Supported statements (the set the paper's workloads need, plus basics):

* ``SELECT`` with joins, derived tables, GROUP BY/HAVING, ORDER BY, LIMIT
* ``INSERT INTO / INSERT OVERWRITE TABLE ... SELECT ...`` and ``VALUES``
* ``UPDATE t SET c = e, ... WHERE ...``  (the DualTable extension)
* ``DELETE FROM t WHERE ...``            (the DualTable extension)
* ``CREATE TABLE ... (cols) STORED AS {ORC|HBASE|DUALTABLE|ACID}``
* ``DROP TABLE [IF EXISTS]``, ``COMPACT TABLE``, ``SHOW TABLES``,
  ``DESCRIBE t``
"""

from repro.common.errors import ParseError
from repro.hive import ast_nodes as ast
from repro.hive.lexer import tokenize

_COMPARISONS = ("=", "!=", "<", "<=", ">", ">=")


class Parser:
    def __init__(self, text):
        self.text = text
        self.tokens = tokenize(text)
        self.pos = 0

    # ------------------------------------------------------------------
    # Token helpers.
    # ------------------------------------------------------------------
    def peek(self, offset=0):
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self):
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def check(self, kind, value=None):
        token = self.peek()
        if token.kind != kind:
            return False
        return value is None or token.value == value

    def check_kw(self, *words):
        token = self.peek()
        return token.kind == "kw" and token.value in words

    def accept(self, kind, value=None):
        if self.check(kind, value):
            return self.advance()
        return None

    def accept_kw(self, *words):
        if self.check_kw(*words):
            return self.advance()
        return None

    def expect(self, kind, value=None):
        token = self.accept(kind, value)
        if token is None:
            actual = self.peek()
            raise ParseError(
                "expected %s %r but found %s %r"
                % (kind, value, actual.kind, actual.value), actual.pos)
        return token

    def expect_kw(self, *words):
        token = self.accept_kw(*words)
        if token is None:
            actual = self.peek()
            raise ParseError(
                "expected keyword %s but found %r" % ("/".join(words),
                                                      actual.value),
                actual.pos)
        return token

    def expect_ident(self):
        token = self.peek()
        # Allow non-reserved-ish keywords as identifiers where unambiguous.
        if token.kind == "ident":
            return self.advance().value
        raise ParseError("expected identifier, found %r" % (token.value,),
                         token.pos)

    # ------------------------------------------------------------------
    # Entry points.
    # ------------------------------------------------------------------
    def parse_statement(self):
        stmt = self._statement()
        self.accept("punct", ";")
        self.expect("eof")
        return stmt

    def parse_script(self):
        statements = []
        while not self.check("eof"):
            statements.append(self._statement())
            while self.accept("punct", ";"):
                pass
        return statements

    def _statement(self):
        if self.accept_kw("explain"):
            # ANALYZE is not a reserved word; accept it as a bare ident.
            analyze = False
            token = self.peek()
            if token.kind == "ident" and token.value.lower() == "analyze":
                self.advance()
                analyze = True
            return ast.ExplainStmt(statement=self._statement(),
                                   analyze=analyze)
        if self.check_kw("select"):
            return self.parse_query()
        if self.check_kw("insert"):
            return self._insert()
        if self.check_kw("update"):
            return self._update()
        if self.check_kw("delete"):
            return self._delete()
        if self.check_kw("create"):
            return self._create_table()
        if self.check_kw("drop"):
            return self._drop_table()
        if self.check_kw("alter"):
            return self._alter()
        if self.check_kw("merge"):
            return self._merge()
        if self.check_kw("compact"):
            return self._compact()
        if self.check_kw("show"):
            self.expect_kw("show")
            if self.accept_kw("partitions"):
                return ast.ShowPartitionsStmt(table=self.expect_ident())
            token = self.peek()
            if token.kind == "ident" and token.value.lower() == "metrics":
                self.advance()
                like = None
                if self.accept_kw("like"):
                    like = self.expect("string").value
                return ast.ShowMetricsStmt(like=like)
            if token.kind == "ident" and token.value.lower() == "advisor":
                self.advance()
                return ast.ShowAdvisorStmt()
            if token.kind == "ident" and token.value.lower() == "compactions":
                self.advance()
                return ast.ShowCompactionsStmt()
            if token.kind == "ident" and token.value.lower() == "shards":
                self.advance()
                return ast.ShowShardsStmt(table=self.expect_ident())
            if token.kind == "ident" and token.value.lower() == "sessions":
                self.advance()
                return ast.ShowSessionsStmt()
            if token.kind == "ident" and token.value.lower() == "server":
                self.advance()
                stats = self.peek()
                if stats.kind == "ident" and stats.value.lower() == "stats":
                    self.advance()
                    return ast.ShowServerStatsStmt()
                raise ParseError("expected STATS after SHOW SERVER",
                                 stats.pos)
            self.expect_kw("tables")
            return ast.ShowTablesStmt()
        if self.check_kw("describe"):
            self.expect_kw("describe")
            return ast.DescribeStmt(table=self.expect_ident())
        if self.check_kw("set"):
            return self._set_option()
        token = self.peek()
        # ANALYZE is not a reserved word; accept it as a bare ident.
        if token.kind == "ident" and token.value.lower() == "analyze":
            self.advance()
            return self._analyze_workload()
        raise ParseError("cannot parse statement starting with %r"
                         % (token.value,), token.pos)

    def _set_option(self):
        """``SET dotted.option.name = value`` — session knobs."""
        self.expect_kw("set")
        parts = [self._option_name_part()]
        while self.accept("punct", "."):
            parts.append(self._option_name_part())
        self.expect("op", "=")
        token = self.advance()
        if token.kind not in ("ident", "kw", "string", "number"):
            raise ParseError("expected a value after SET %s ="
                             % ".".join(parts), token.pos)
        return ast.SetOptionStmt(name=".".join(parts).lower(),
                                 value=str(token.value))

    def _option_name_part(self):
        """One dotted-name segment of a SET option.

        Keywords are allowed — option names live in their own namespace
        (``dualtable.merge`` must parse even though MERGE is reserved).
        """
        token = self.peek()
        if token.kind in ("ident", "kw"):
            return self.advance().value
        raise ParseError("expected option name, found %r"
                         % (token.value,), token.pos)

    def _analyze_workload(self):
        token = self.advance()
        if token.kind != "ident" or token.value.lower() != "workload":
            raise ParseError("expected WORKLOAD after ANALYZE", token.pos)
        apply = False
        token = self.peek()
        if token.kind == "ident" and token.value.lower() == "apply":
            self.advance()
            apply = True
        return ast.AnalyzeWorkloadStmt(apply=apply)

    # ------------------------------------------------------------------
    # SELECT.
    # ------------------------------------------------------------------
    def parse_query(self):
        """One SELECT, or a UNION ALL chain of SELECTs."""
        first = self.parse_select()
        if not self.check_kw("union"):
            return first
        selects = [first]
        while self.accept_kw("union"):
            self.expect_kw("all")
            selects.append(self.parse_select())
        return ast.UnionAllStmt(selects=selects)

    def parse_select(self):
        self.expect_kw("select")
        distinct = bool(self.accept_kw("distinct"))
        if not distinct:
            self.accept_kw("all")
        items = [self._select_item()]
        while self.accept("punct", ","):
            items.append(self._select_item())
        stmt = ast.SelectStmt(items=items, distinct=distinct)
        if self.accept_kw("from"):
            stmt.source = self._table_ref()
            while self.check_kw("join", "inner", "left", "right", "full"):
                stmt.joins.append(self._join_clause())
        if self.accept_kw("where"):
            stmt.where = self.parse_expr()
        if self.accept_kw("group"):
            self.expect_kw("by")
            stmt.group_by.append(self.parse_expr())
            while self.accept("punct", ","):
                stmt.group_by.append(self.parse_expr())
        if self.accept_kw("having"):
            stmt.having = self.parse_expr()
        if self.accept_kw("order"):
            self.expect_kw("by")
            stmt.order_by.append(self._order_item())
            while self.accept("punct", ","):
                stmt.order_by.append(self._order_item())
        if self.accept_kw("limit"):
            stmt.limit = int(self.expect("number").value)
        return stmt

    def _select_item(self):
        if self.check("op", "*"):
            self.advance()
            return ast.SelectItem(expr=ast.Star())
        # qualified star: t.*
        if (self.check("ident") and self.peek(1).kind == "punct"
                and self.peek(1).value == "." and self.peek(2).kind == "op"
                and self.peek(2).value == "*"):
            qualifier = self.advance().value
            self.advance()
            self.advance()
            return ast.SelectItem(expr=ast.Star(qualifier=qualifier))
        expr = self.parse_expr()
        alias = None
        if self.accept_kw("as"):
            alias = self.expect_ident()
        elif self.check("ident"):
            alias = self.advance().value
        return ast.SelectItem(expr=expr, alias=alias)

    def _order_item(self):
        expr = self.parse_expr()
        descending = False
        if self.accept_kw("desc"):
            descending = True
        else:
            self.accept_kw("asc")
        return ast.OrderItem(expr=expr, descending=descending)

    def _table_ref(self):
        if self.accept("punct", "("):
            subquery = self.parse_query()
            self.expect("punct", ")")
            self.accept_kw("as")
            alias = self.expect_ident()
            return ast.TableRef(alias=alias, subquery=subquery)
        name = self.expect_ident()
        alias = None
        if self.accept_kw("as"):
            alias = self.expect_ident()
        elif self.check("ident"):
            alias = self.advance().value
        return ast.TableRef(name=name, alias=alias)

    def _join_clause(self):
        kind = "inner"
        if self.accept_kw("left"):
            kind = "left"
            self.accept_kw("outer")
        elif self.accept_kw("right"):
            kind = "right"
            self.accept_kw("outer")
        elif self.accept_kw("full"):
            kind = "full"
            self.accept_kw("outer")
        elif self.accept_kw("inner"):
            kind = "inner"
        self.expect_kw("join")
        table = self._table_ref()
        self.expect_kw("on")
        condition = self.parse_expr()
        return ast.JoinClause(kind=kind, table=table, condition=condition)

    # ------------------------------------------------------------------
    # DML.
    # ------------------------------------------------------------------
    def _insert(self):
        self.expect_kw("insert")
        if self.accept_kw("overwrite"):
            overwrite = True
        else:
            self.expect_kw("into")
            overwrite = False
        self.accept_kw("table")
        table = self.expect_ident()
        partition_spec = None
        if self.accept_kw("partition"):
            self.expect("punct", "(")
            partition_spec = {}
            while True:
                name = self.expect_ident()
                self.expect("op", "=")
                token = self.advance()
                if token.kind not in ("number", "string"):
                    raise ParseError("expected a literal partition value",
                                     token.pos)
                partition_spec[name.lower()] = token.value
                if not self.accept("punct", ","):
                    break
            self.expect("punct", ")")
        if self.accept_kw("values"):
            rows = []
            while True:
                self.expect("punct", "(")
                row = [self.parse_expr()]
                while self.accept("punct", ","):
                    row.append(self.parse_expr())
                self.expect("punct", ")")
                rows.append(row)
                if not self.accept("punct", ","):
                    break
            return ast.InsertStmt(table=table, overwrite=overwrite,
                                  values=rows,
                                  partition_spec=partition_spec)
        query = self.parse_query()
        return ast.InsertStmt(table=table, overwrite=overwrite, query=query,
                              partition_spec=partition_spec)

    def _update(self):
        self.expect_kw("update")
        table = self.expect_ident()
        alias = None
        if self.check("ident"):
            alias = self.advance().value
        self.expect_kw("set")
        assignments = [self._assignment()]
        while self.accept("punct", ","):
            assignments.append(self._assignment())
        where = None
        if self.accept_kw("where"):
            where = self.parse_expr()
        return ast.UpdateStmt(table=table, alias=alias,
                              assignments=assignments, where=where)

    def _assignment(self):
        # Allow optional alias qualifier: t.col = expr
        name = self.expect_ident()
        if self.accept("punct", "."):
            name = self.expect_ident()
        self.expect("op", "=")
        return (name, self.parse_expr())

    def _delete(self):
        self.expect_kw("delete")
        self.expect_kw("from")
        table = self.expect_ident()
        alias = None
        if self.check("ident"):
            alias = self.advance().value
        where = None
        if self.accept_kw("where"):
            where = self.parse_expr()
        return ast.DeleteStmt(table=table, alias=alias, where=where)

    def _merge(self):
        """MERGE INTO t [alias] USING src [alias] ON cond
        WHEN MATCHED THEN UPDATE SET a = e, ...
        WHEN NOT MATCHED THEN INSERT VALUES (e, ...)"""
        self.expect_kw("merge")
        self.expect_kw("into")
        target = self.expect_ident()
        alias = None
        if self.check("ident"):
            alias = self.advance().value
        self.expect_kw("using")
        source = self._table_ref()
        self.expect_kw("on")
        condition = self.parse_expr()
        matched_assignments = []
        insert_values = None
        saw_arm = False
        while self.accept_kw("when"):
            saw_arm = True
            negated = bool(self.accept_kw("not"))
            self.expect_kw("matched")
            self.expect_kw("then")
            if negated:
                self.expect_kw("insert")
                self.expect_kw("values")
                self.expect("punct", "(")
                insert_values = [self.parse_expr()]
                while self.accept("punct", ","):
                    insert_values.append(self.parse_expr())
                self.expect("punct", ")")
            else:
                self.expect_kw("update")
                self.expect_kw("set")
                matched_assignments.append(self._assignment())
                while self.accept("punct", ","):
                    matched_assignments.append(self._assignment())
        if not saw_arm:
            raise ParseError("MERGE needs at least one WHEN arm",
                             self.peek().pos)
        return ast.MergeStmt(target=target, alias=alias, source=source,
                             condition=condition,
                             matched_assignments=matched_assignments,
                             insert_values=insert_values)

    # ------------------------------------------------------------------
    # DDL.
    # ------------------------------------------------------------------
    def _create_table(self):
        self.expect_kw("create")
        if self.accept_kw("view"):
            return self._create_view()
        self.expect_kw("table")
        if_not_exists = False
        if self.accept_kw("if"):
            self.expect_kw("not")
            self.expect_kw("exists")
            if_not_exists = True
        table = self.expect_ident()
        self.expect("punct", "(")
        columns = [self._column_def()]
        primary_key = None
        while self.accept("punct", ","):
            if self._peek_word("primary"):
                primary_key = self._primary_key_clause(primary_key)
                continue
            columns.append(self._column_def())
        self.expect("punct", ")")
        # Also accepted as a trailing clause: CREATE TABLE t (...) PRIMARY
        # KEY (k) [STORED AS ...].
        if self._peek_word("primary"):
            primary_key = self._primary_key_clause(primary_key)
        partition_columns = []
        if self.accept_kw("partitioned"):
            self.expect_kw("by")
            self.expect("punct", "(")
            partition_columns.append(self._column_def())
            while self.accept("punct", ","):
                partition_columns.append(self._column_def())
            self.expect("punct", ")")
        shard_key, shard_count = self._sharded_clause(None, None)
        storage = "orc"
        if self.accept_kw("stored"):
            self.expect_kw("as")
            storage = self.expect_ident().lower()
        # Also accepted after STORED AS: ... STORED AS dualtable SHARDED
        # BY (k) INTO 4 [TBLPROPERTIES ...].
        shard_key, shard_count = self._sharded_clause(shard_key,
                                                      shard_count)
        properties = {}
        if self.accept_kw("tblproperties"):
            self.expect("punct", "(")
            while True:
                key = self.expect("string").value
                self.expect("op", "=")
                value = self.advance().value
                properties[key] = value
                if not self.accept("punct", ","):
                    break
            self.expect("punct", ")")
        return ast.CreateTableStmt(table=table, columns=columns,
                                   storage=storage, properties=properties,
                                   if_not_exists=if_not_exists,
                                   partition_columns=partition_columns,
                                   primary_key=primary_key,
                                   shard_key=shard_key,
                                   shard_count=shard_count)

    def _sharded_clause(self, shard_key, shard_count):
        """``SHARDED BY (k) INTO n`` (SHARDED is not reserved)."""
        if not self._peek_word("sharded"):
            return shard_key, shard_count
        token = self.advance()
        if shard_key is not None:
            raise ParseError("duplicate SHARDED BY clause", token.pos)
        self.expect_kw("by")
        self.expect("punct", "(")
        shard_key = self.expect_ident().lower()
        if self.check("punct", ","):
            raise ParseError("composite SHARDED BY key is not supported",
                             self.peek().pos)
        self.expect("punct", ")")
        self.expect_kw("into")
        count_token = self.expect("number")
        shard_count = int(count_token.value)
        if shard_count < 1:
            raise ParseError("SHARDED ... INTO needs a positive shard "
                             "count", count_token.pos)
        return shard_key, shard_count

    def _peek_word(self, word):
        token = self.peek()
        return token.kind == "ident" and token.value.lower() == word

    def _primary_key_clause(self, existing):
        token = self.advance()                       # PRIMARY
        if existing is not None:
            raise ParseError("duplicate PRIMARY KEY clause", token.pos)
        if not self._peek_word("key"):
            raise ParseError("expected KEY after PRIMARY", self.peek().pos)
        self.advance()
        self.expect("punct", "(")
        name = self.expect_ident()
        if self.check("punct", ","):
            raise ParseError("composite PRIMARY KEY is not supported",
                             self.peek().pos)
        self.expect("punct", ")")
        return name.lower()

    def _create_view(self):
        if_not_exists = False
        if self.accept_kw("if"):
            self.expect_kw("not")
            self.expect_kw("exists")
            if_not_exists = True
        name = self.expect_ident()
        self.expect_kw("as")
        query = self.parse_query()
        return ast.CreateViewStmt(name=name, query=query,
                                  if_not_exists=if_not_exists)

    def _column_def(self):
        name = self.expect_ident()
        type_token = self.peek()
        if type_token.kind not in ("ident", "kw"):
            raise ParseError("expected a type after column %r" % name,
                             type_token.pos)
        return (name, self.advance().value)

    def _drop_table(self):
        self.expect_kw("drop")
        self.expect_kw("table")
        if_exists = False
        if self.accept_kw("if"):
            self.expect_kw("exists")
            if_exists = True
        return ast.DropTableStmt(table=self.expect_ident(),
                                 if_exists=if_exists)

    def _alter(self):
        self.expect_kw("alter")
        self.expect_kw("table")
        table = self.expect_ident()
        if self.accept_kw("set"):
            return self._alter_autocompact(table)
        if self._peek_word("rebalance"):
            self.advance()
            return ast.AlterRebalanceStmt(table=table)
        self.expect_kw("drop")
        self.expect_kw("partition")
        self.expect("punct", "(")
        spec = {}
        while True:
            name = self.expect_ident()
            self.expect("op", "=")
            token = self.advance()
            if token.kind not in ("number", "string") \
                    and not (token.kind == "kw"
                             and token.value in ("null", "true", "false")):
                raise ParseError("expected a literal partition value",
                                 token.pos)
            value = {"null": None, "true": True,
                     "false": False}.get(token.value, token.value) \
                if token.kind == "kw" else token.value
            spec[name.lower()] = value
            if not self.accept("punct", ","):
                break
        self.expect("punct", ")")
        return ast.AlterDropPartitionStmt(table=table, spec=spec)

    def _alter_autocompact(self, table):
        # AUTOCOMPACT/DUALTABLE are not reserved; accept bare idents.
        token = self.advance()
        if token.kind == "ident" and token.value.lower() == "dualtable":
            return self._alter_dualtable(table)
        if token.kind != "ident" or token.value.lower() != "autocompact":
            raise ParseError("expected AUTOCOMPACT or DUALTABLE after "
                             "ALTER TABLE ... SET", token.pos)
        self.expect("punct", "(")
        if self.accept_kw("on"):
            enabled = True
        else:
            token = self.advance()
            if token.kind != "ident" or token.value.lower() != "off":
                raise ParseError("expected ON or OFF in AUTOCOMPACT (...)",
                                 token.pos)
            enabled = False
        options = {}
        while self.accept("punct", ","):
            key = self.expect_ident().lower()
            self.expect("op", "=")
            token = self.advance()
            if token.kind == "number":
                value = token.value
                if not isinstance(value, (int, float)):
                    value = float(value)
            elif token.kind in ("string", "ident"):
                value = token.value
            elif token.kind == "kw" and token.value in ("true", "false"):
                value = token.value == "true"
            else:
                raise ParseError("expected a literal AUTOCOMPACT option "
                                 "value", token.pos)
            options[key] = value
        self.expect("punct", ")")
        return ast.AlterAutoCompactStmt(table=table, enabled=enabled,
                                        options=options)

    def _alter_dualtable(self, table):
        """``ALTER TABLE t SET DUALTABLE (key = value, ...)``."""
        self.expect("punct", "(")
        options = {}
        while True:
            key = self.expect_ident().lower()
            self.expect("op", "=")
            token = self.advance()
            if token.kind == "number":
                value = token.value
            elif token.kind in ("string", "ident"):
                value = token.value
            elif token.kind == "kw" and token.value in ("true", "false"):
                value = token.value == "true"
            else:
                raise ParseError("expected a literal DUALTABLE option "
                                 "value", token.pos)
            options[key] = value
            if not self.accept("punct", ","):
                break
        self.expect("punct", ")")
        return ast.AlterDualTableStmt(table=table, options=options)

    def _compact(self):
        self.expect_kw("compact")
        self.accept_kw("table")
        table = self.expect_ident()
        major = True
        partial = False
        max_files = None
        while self.check("ident") \
                and self.peek().value.lower() in ("minor", "major", "partial"):
            word = self.advance().value.lower()
            if word == "partial":
                partial = True
                if self.check("number"):
                    max_files = int(self.advance().value)
            else:
                major = word == "major"
        return ast.CompactStmt(table=table, major=major, partial=partial,
                               max_files=max_files)

    # ------------------------------------------------------------------
    # Expressions (precedence climbing).
    # ------------------------------------------------------------------
    def parse_expr(self):
        return self._or_expr()

    def _or_expr(self):
        operands = [self._and_expr()]
        while self.accept_kw("or"):
            operands.append(self._and_expr())
        if len(operands) == 1:
            return operands[0]
        return ast.LogicalOp(op="or", operands=operands)

    def _and_expr(self):
        operands = [self._not_expr()]
        while self.accept_kw("and"):
            operands.append(self._not_expr())
        if len(operands) == 1:
            return operands[0]
        return ast.LogicalOp(op="and", operands=operands)

    def _not_expr(self):
        if self.accept_kw("not"):
            return ast.NotOp(operand=self._not_expr())
        return self._comparison()

    def _comparison(self):
        left = self._additive()
        token = self.peek()
        if token.kind == "op" and token.value in _COMPARISONS:
            op = self.advance().value
            right = self._additive()
            return ast.BinaryOp(op=op, left=left, right=right)
        negated = bool(self.accept_kw("not"))
        if self.accept_kw("between"):
            low = self._additive()
            self.expect_kw("and")
            high = self._additive()
            between = ast.LogicalOp(op="and", operands=[
                ast.BinaryOp(op=">=", left=left, right=low),
                ast.BinaryOp(op="<=", left=left, right=high),
            ])
            return ast.NotOp(operand=between) if negated else between
        if self.accept_kw("in"):
            self.expect("punct", "(")
            if self.check_kw("select"):
                sub = ast.SubQueryExpr(query=self.parse_select())
                self.expect("punct", ")")
                return ast.InList(operand=left, items=[sub], negated=negated)
            items = [self.parse_expr()]
            while self.accept("punct", ","):
                items.append(self.parse_expr())
            self.expect("punct", ")")
            return ast.InList(operand=left, items=items, negated=negated)
        if self.accept_kw("like"):
            pattern = self._additive()
            return ast.LikeOp(operand=left, pattern=pattern, negated=negated)
        if negated:
            raise ParseError("dangling NOT before %r" % (self.peek().value,),
                             self.peek().pos)
        if self.accept_kw("is"):
            negated = bool(self.accept_kw("not"))
            self.expect_kw("null")
            return ast.IsNull(operand=left, negated=negated)
        return left

    def _additive(self):
        left = self._multiplicative()
        while True:
            token = self.peek()
            if token.kind == "op" and token.value in ("+", "-", "||"):
                op = self.advance().value
                right = self._multiplicative()
                left = ast.BinaryOp(op=op, left=left, right=right)
            else:
                return left

    def _multiplicative(self):
        left = self._unary()
        while True:
            token = self.peek()
            if token.kind == "op" and token.value in ("*", "/", "%"):
                op = self.advance().value
                right = self._unary()
                left = ast.BinaryOp(op=op, left=left, right=right)
            else:
                return left

    def _unary(self):
        if self.accept("op", "-"):
            return ast.UnaryMinus(operand=self._unary())
        self.accept("op", "+")
        return self._primary()

    def _primary(self):
        token = self.peek()
        if token.kind == "number":
            self.advance()
            return ast.Literal(value=token.value)
        if token.kind == "string":
            self.advance()
            return ast.Literal(value=token.value)
        if self.accept_kw("null"):
            return ast.Literal(value=None)
        if self.accept_kw("true"):
            return ast.Literal(value=True)
        if self.accept_kw("false"):
            return ast.Literal(value=False)
        if self.check_kw("case"):
            return self._case_when()
        if self.accept("punct", "("):
            if self.check_kw("select"):
                sub = ast.SubQueryExpr(query=self.parse_select())
                self.expect("punct", ")")
                return sub
            expr = self.parse_expr()
            self.expect("punct", ")")
            return expr
        # IF(...) — `if` is a keyword but also a function name in HiveQL.
        if self.check_kw("if") and self.peek(1).kind == "punct" \
                and self.peek(1).value == "(":
            self.advance()
            return self._finish_func_call("if")
        if token.kind == "ident":
            name = self.advance().value
            if self.check("punct", "("):
                return self._finish_func_call(name.lower())
            if self.accept("punct", "."):
                column = self.expect_ident()
                return ast.ColumnRef(name=column, qualifier=name)
            return ast.ColumnRef(name=name)
        raise ParseError("unexpected token %r in expression"
                         % (token.value,), token.pos)

    def _finish_func_call(self, name):
        self.expect("punct", "(")
        distinct = bool(self.accept_kw("distinct"))
        args = []
        if self.check("op", "*"):
            self.advance()
            args.append(ast.Star())
        elif not self.check("punct", ")"):
            args.append(self.parse_expr())
            while self.accept("punct", ","):
                args.append(self.parse_expr())
        self.expect("punct", ")")
        return ast.FuncCall(name=name, args=args, distinct=distinct)

    def _case_when(self):
        self.expect_kw("case")
        whens = []
        default = None
        while self.accept_kw("when"):
            cond = self.parse_expr()
            self.expect_kw("then")
            whens.append((cond, self.parse_expr()))
        if self.accept_kw("else"):
            default = self.parse_expr()
        self.expect_kw("end")
        return ast.CaseWhen(whens=whens, default=default)


def parse(sql):
    """Parse one statement of HiveQL text."""
    return Parser(sql).parse_statement()


def parse_script(sql):
    """Parse a semicolon-separated list of statements."""
    return Parser(sql).parse_script()
