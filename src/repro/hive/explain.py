"""EXPLAIN and EXPLAIN ANALYZE.

Plain EXPLAIN describes how a statement would execute, without executing
it: for SELECTs the plan shows scans (with projection/pruning decisions),
joins, aggregation and ordering; for UPDATE/DELETE on a DualTable the
plan shows the cost evaluator's full reasoning — estimated modification
ratio, the EDIT and OVERWRITE cost estimates, and the chosen plan.

EXPLAIN ANALYZE *executes* the statement (PostgreSQL semantics: DML
really mutates) with tracing force-enabled and appends the observed
section — per-job seconds/bytes/tasks, per-device ledger deltas, and for
DualTable DML the cost-model audit line comparing the model's predicted
cost of the chosen plan against the ledger-observed run time.
"""

from repro.common.units import fmt_bytes
from repro.hive import ast_nodes as ast
from repro.hive.expressions import (contains_aggregate, referenced_columns,
                                    walk)
from repro.hive.pushdown import extract_ranges


def explain(session, stmt, analyze=False):
    from repro.hive.session import QueryResult

    lines = []
    if isinstance(stmt, ast.SelectStmt):
        _explain_select(session, stmt, lines, indent=0)
    elif isinstance(stmt, ast.UpdateStmt):
        _explain_update(session, stmt, lines)
    elif isinstance(stmt, ast.DeleteStmt):
        _explain_delete(session, stmt, lines)
    elif isinstance(stmt, ast.InsertStmt):
        lines.append("INSERT %s TABLE %s"
                     % ("OVERWRITE" if stmt.overwrite else "INTO",
                        stmt.table))
        info = session.metastore.table(stmt.table)
        lines.append("  target storage: %s" % info.storage)
        if stmt.query is not None:
            _explain_select(session, stmt.query, lines, indent=1)
        else:
            lines.append("  VALUES: %d row(s)" % len(stmt.values))
    elif isinstance(stmt, ast.MergeStmt):
        _explain_merge(session, stmt, lines)
    elif isinstance(stmt, ast.CompactStmt):
        info = session.metastore.table(stmt.table)
        if stmt.partial:
            mode = "partial" if stmt.max_files is None \
                else "partial %d" % stmt.max_files
        else:
            mode = "major" if stmt.major else "minor"
        lines.append("COMPACT %s (%s, %s)" % (stmt.table, info.storage, mode))
    else:
        lines.append("statement: %s" % type(stmt).__name__)
    if not analyze:
        return QueryResult(names=["plan"], rows=[(line,) for line in lines],
                           plan="explain")
    result, delta, spans = _execute_for_analyze(session, stmt)
    lines.append("")
    _analyze_lines(result, delta, spans, lines)
    detail = dict(result.detail)
    detail["observed"] = delta
    return QueryResult(names=["plan"], rows=[(line,) for line in lines],
                       plan="explain-analyze",
                       sim_seconds=result.sim_seconds, jobs=result.jobs,
                       affected=result.affected, detail=detail)


# ----------------------------------------------------------------------
# EXPLAIN ANALYZE: execute under forced tracing, annotate the plan.
# ----------------------------------------------------------------------
def _execute_for_analyze(session, stmt):
    cluster = session.cluster
    tracer = cluster.tracer
    was_enabled = tracer.enabled
    tracer.enable()
    mark = len(tracer.spans)
    before = cluster.ledger.snapshot()
    try:
        result = session.execute_statement(stmt)
    finally:
        if not was_enabled:
            tracer.disable()
    delta = cluster.ledger.diff(before)
    spans = list(tracer.spans[mark:])
    if not was_enabled:
        # Don't leak force-enabled spans into a user's (disabled) trace.
        del tracer.spans[mark:]
    return result, delta, spans


def _analyze_lines(result, delta, spans, lines):
    lines.append("== observed (statement executed) ==")
    summary = "total: %.2fs simulated" % result.sim_seconds
    if result.affected is not None:
        summary += ", %d row(s) affected" % result.affected
    elif result.rows:
        summary += ", %d row(s)" % len(result.rows)
    summary += ", %d job(s)" % len(result.jobs)
    lines.append(summary)
    job_spans = _match_job_spans(result.jobs, spans)
    for job, span in zip(result.jobs, job_spans):
        line = ("job %s: %.2fs (%d map + %d reduce tasks; map %.2fs, "
                "shuffle %.2fs, reduce %.2fs"
                % (job.name, job.sim_seconds, job.num_map_tasks,
                   job.num_reduce_tasks, job.map_seconds,
                   job.shuffle_seconds, job.reduce_seconds))
        if span is not None:
            line += ", hbase %.2fs; %s charged" % (span.hbase_seconds,
                                                   fmt_bytes(span.nbytes))
        if job.counters.get("task_retries"):
            line += "; %d retr%s" % (job.counters["task_retries"],
                                     "y" if job.counters["task_retries"] == 1
                                     else "ies")
        if job.counters.get("speculative_tasks"):
            line += "; %d speculative" % job.counters["speculative_tasks"]
        lines.append("  " + line + ")")
    phase_spans = [s for s in spans if s.kind == "phase"
                   and s.name.startswith("dualtable:")]
    for span in phase_spans:
        lines.append("  phase %s: %.2fs (%s charged)"
                     % (span.name, span.seconds, fmt_bytes(span.nbytes)))
    io_parts = sorted(delta["seconds"].items(), key=lambda kv: -kv[1])
    if io_parts:
        lines.append("io: " + "; ".join(
            "%s.%s %s / %.2fs"
            % (sub, op, fmt_bytes(delta["bytes"].get((sub, op), 0)), secs)
            for (sub, op), secs in io_parts[:8]))
    audit = result.detail.get("audit")
    if audit is not None:
        lines.append(
            "cost-model audit: plan=%s predicted=%.2fs observed=%.2fs "
            "rel_error=%.1f%%"
            % (audit["plan"], audit["predicted_seconds"],
               audit["observed_seconds"], 100.0 * audit["rel_error"]))


def _match_job_spans(jobs, spans):
    """Pair JobResults with their job spans by name, in order."""
    by_name = {}
    for span in spans:
        if span.kind == "job":
            by_name.setdefault(span.name, []).append(span)
    matched = []
    for job in jobs:
        queue = by_name.get(job.name)
        matched.append(queue.pop(0) if queue else None)
    return matched


# ----------------------------------------------------------------------
def _pad(indent):
    return "  " * indent


def _explain_select(session, stmt, lines, indent=0):
    pad = _pad(indent)
    is_aggregate = bool(stmt.group_by) or any(
        contains_aggregate(item.expr) for item in stmt.items)
    lines.append(pad + "SELECT (%d output column(s)%s)"
                 % (len(stmt.items), ", aggregate" if is_aggregate else ""))
    if stmt.source is None:
        lines.append(pad + "  constant (no FROM)")
        return
    refs = [stmt.source] + [j.table for j in stmt.joins]
    needed = set()
    for item in stmt.items:
        needed |= referenced_columns(item.expr)
    if stmt.where is not None:
        needed |= referenced_columns(stmt.where)
    for expr in stmt.group_by:
        needed |= referenced_columns(expr)
    for ref in refs:
        _explain_scan(session, ref, stmt.where, needed, lines, indent + 1)
    for join in stmt.joins:
        keys = [n.display for n in walk(join.condition)
                if isinstance(n, ast.ColumnRef)]
        lines.append(pad + "  JOIN [%s] on %s"
                     % (join.kind, ", ".join(sorted(set(keys)))))
    if is_aggregate:
        lines.append(pad + "  GROUP BY %d key(s) (map-side hash "
                           "aggregation + merge reduce)"
                     % len(stmt.group_by))
    if stmt.having is not None:
        lines.append(pad + "  HAVING filter")
    if stmt.order_by:
        lines.append(pad + "  ORDER BY %d key(s)" % len(stmt.order_by))
    if stmt.limit is not None:
        lines.append(pad + "  LIMIT %d" % stmt.limit)


def _explain_scan(session, table_ref, where, needed, lines, indent):
    pad = _pad(indent)
    if table_ref.subquery is not None:
        lines.append(pad + "derived table %s:" % table_ref.binding)
        _explain_select(session, table_ref.subquery, lines, indent + 1)
        return
    info = session.metastore.table(table_ref.name)
    handler = info.handler
    projection = sorted(n for n in needed if info.schema.has_column(n))
    ranges = extract_ranges(where) if where is not None else {}
    usable = sorted(n for n in ranges if info.schema.has_column(n))
    lines.append(pad + "SCAN %s (storage=%s, ~%d rows)"
                 % (table_ref.binding, info.storage, handler.row_count()))
    lines.append(pad + "  projection: %s"
                 % (", ".join(projection) if projection
                    else "(first column only)"))
    if usable:
        lines.append(pad + "  stripe-prunable predicate columns: %s"
                     % ", ".join(usable))
    if getattr(handler, "primary_key", None) is not None:
        _explain_lookup(session, handler, ranges, projection or None,
                        lines, indent)


def _explain_lookup(session, handler, ranges, projection, lines, indent):
    """LOOKUP-plan eligibility and cost verdict (uncharged planning)."""
    pad = _pad(indent)
    mode = getattr(session, "plan_mode", "cost")
    plan = handler.plan_lookup(ranges, projection=projection,
                               hit_faults=False)
    if plan is None:
        if mode == "lookup":
            lines.append(pad + "  plan: LOOKUP forced but ineligible "
                               "(statement will fail)")
        return
    choice = plan.choice
    chosen = mode if mode in ("lookup", "scan") else choice.plan
    lines.append(pad + "  LOOKUP eligibility (PRIMARY KEY %s):" % plan.pk)
    lines.append(pad + "    candidate files:  %d of %d (~%d row(s))"
                 % (choice.files_read, choice.total_files, plan.est_rows))
    lines.append(pad + "    LOOKUP cost:      %.4fs (%s)"
                 % (choice.lookup_seconds, fmt_bytes(choice.lookup_bytes)))
    lines.append(pad + "    scan cost:        %.4fs (%s)"
                 % (choice.scan_seconds, fmt_bytes(choice.scan_bytes)))
    if mode != "cost":
        lines.append(pad + "    plan: %s (forced by dualtable.plan)"
                     % chosen)
    else:
        lines.append(pad + "    plan: %s" % chosen)


def _dml_header(session, stmt, verb, lines):
    info = session.metastore.table(stmt.table)
    lines.append("%s %s (storage=%s)" % (verb, stmt.table, info.storage))
    return info


def _explain_update(session, stmt, lines):
    info = _dml_header(session, stmt, "UPDATE", lines)
    lines.append("  SET %d column(s): %s"
                 % (len(stmt.assignments),
                    ", ".join(name for name, _ in stmt.assignments)))
    _explain_dml_plan(session, info, stmt, lines, kind="update")


def _explain_delete(session, stmt, lines):
    info = _dml_header(session, stmt, "DELETE FROM", lines)
    _explain_dml_plan(session, info, stmt, lines, kind="delete")


def _explain_dml_plan(session, info, stmt, lines, kind):
    handler = info.handler
    if info.storage == "orc":
        lines.append("  plan: INSERT OVERWRITE (full table rewrite — "
                     "reads and writes every column of every row)")
        return
    if info.storage == "hbase":
        lines.append("  plan: in-place random writes during table scan")
        return
    if info.storage == "acid":
        lines.append("  plan: append a new delta table "
                     "(currently %d delta(s))" % len(handler.delta_dirs()))
        return
    # DualTable: run the actual cost evaluation (cheap, footer-only).
    ratio, total_rows = handler._estimate_ratio(stmt.where)
    d_bytes = handler.master.data_bytes()
    if kind == "update":
        scan_bytes = handler._edit_scan_bytes(
            stmt.where, set().union(*(referenced_columns(e)
                                      for _, e in stmt.assignments))
            if stmt.assignments else set())
        choice = handler.cost_model().choose_update_plan(
            d_bytes, total_rows, ratio,
            12 + 18 * len(stmt.assignments), edit_scan_bytes=scan_bytes)
    else:
        scan_bytes = handler._edit_scan_bytes(stmt.where)
        choice = handler.cost_model().choose_delete_plan(
            d_bytes, total_rows, ratio, edit_scan_bytes=scan_bytes)
    plan = handler._forced_or(choice.plan)
    lines.append("  cost evaluation (DualTable, attached backend=%s):"
                 % handler.attached.backend)
    lines.append("    estimated ratio:      %.4f (%d of ~%d rows)"
                 % (ratio, int(choice.touched_rows), total_rows))
    lines.append("    EDIT cost:            %.2fs" % choice.edit_seconds)
    lines.append("    OVERWRITE cost:       %.2fs"
                 % choice.overwrite_seconds)
    lines.append("    successive reads (k): %d" % choice.k)
    if handler.mode != "cost":
        lines.append("    plan: %s (forced by dualtable.mode)" % plan)
    else:
        lines.append("    plan: %s" % plan)


def _explain_merge(session, stmt, lines):
    info = session.metastore.table(stmt.target)
    lines.append("MERGE INTO %s (storage=%s)" % (stmt.target, info.storage))
    source = (stmt.source.binding if stmt.source.name
              else "(derived table %s)" % stmt.source.binding)
    lines.append("  USING %s" % source)
    if stmt.matched_assignments:
        lines.append("  WHEN MATCHED: update %d column(s)"
                     % len(stmt.matched_assignments))
    if stmt.insert_values is not None:
        lines.append("  WHEN NOT MATCHED: insert")
    lines.append("  update-arm storage dispatch: %s" % info.storage)
