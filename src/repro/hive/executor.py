"""SELECT execution: scans, reduce-side joins, hash aggregation, sorting.

The executor compiles a :class:`~repro.hive.ast_nodes.SelectStmt` into one
or more MapReduce jobs, mirroring how Hive lowers HiveQL:

* leaf scans are map tasks with projection + predicate pushdown,
* each join is one reduce-side-join job (left-deep chaining, single-side
  conjuncts pushed below the join),
* GROUP BY is a hash-aggregation map phase plus a merging reduce,
* ORDER BY / LIMIT run as a final (charged) pass.

Intermediate results between chained jobs are "materialized": their
estimated serialized size is charged as HDFS write+read, like Hive's
inter-job temp files.
"""

import heapq

from dataclasses import dataclass, field

from repro.common.errors import AnalysisError, FaultInjectedError
from repro.mapreduce import InputSplit, Job, estimate_record_bytes
from repro.hive import ast_nodes as ast
from repro.hive.aggregates import (AggregateSpec, rewrite_aggregates,
                                   validate_no_nested_aggregates)
from repro.hive.expressions import (Env, compile_expr, contains_aggregate,
                                    find_subqueries, is_true,
                                    referenced_columns, walk)
from repro.hive.pushdown import extract_ranges
from repro.hive.vexpr import compile_batch, compile_batch_predicate
from repro.vector import DEFAULT_BATCH_ROWS, batches_from_rows


# ----------------------------------------------------------------------
# Row sources.
# ----------------------------------------------------------------------
@dataclass
class ScanSource:
    """A leaf table scan with pushdown applied."""

    handler: object
    alias: str
    projection: list            # column names read from storage
    env: Env                    # environment over the projected tuple
    filter_expr: object = None  # residual row filter (AST)
    ranges: dict = field(default_factory=dict)

    def splits(self):
        return self.handler.scan_splits(self.projection, self.ranges)

    def make_reader(self):
        handler = self.handler
        predicate = (compile_expr(self.filter_expr, self.env)
                     if self.filter_expr is not None else None)

        def read(split, ctx):
            for values in handler.read_split(split, ctx):
                if predicate is None or is_true(predicate(values)):
                    yield values
        return read

    def make_batch_reader(self, batch_rows=DEFAULT_BATCH_ROWS):
        handler = self.handler
        predicate = (compile_batch_predicate(self.filter_expr, self.env)
                     if self.filter_expr is not None else None)

        def read(split, ctx):
            for batch in handler.read_split_batches(split, ctx,
                                                    batch_rows=batch_rows):
                if predicate is not None:
                    batch = predicate(batch)
                    if batch.length == 0:
                        continue
                yield batch
        return read


@dataclass
class MaterializedSource:
    """An in-memory intermediate relation (Hive temp-file analogue)."""

    rows: list
    env: Env
    bytes_estimate: int = 0

    def splits(self, chunk_rows=20000):
        if not self.rows:
            return [InputSplit(payload=[], size_bytes=0, label="mem[empty]")]
        per_row = max(1, self.bytes_estimate // max(1, len(self.rows)))
        return [
            InputSplit(payload=self.rows[i:i + chunk_rows],
                       size_bytes=per_row * len(self.rows[i:i + chunk_rows]),
                       label="mem[%d]" % i)
            for i in range(0, len(self.rows), chunk_rows)
        ]

    def make_reader(self):
        def read(split, ctx):
            ctx.cluster.charge_hdfs_read(split.size_bytes)
            yield from split.payload
        return read

    def make_batch_reader(self, batch_rows=DEFAULT_BATCH_ROWS):
        width = self.env.width

        def read(split, ctx):
            ctx.cluster.charge_hdfs_read(split.size_bytes)
            yield from batches_from_rows(split.payload, width, batch_rows)
        return read


def merge_envs(left_env, right_env):
    """Environment over concatenated (left_tuple + right_tuple) rows."""
    merged = Env()
    for name in left_env.names():
        slot = left_env.try_resolve(name)
        if slot is not None:
            merged.bind(name, slot)
    offset = left_env.width
    for name in right_env.names():
        slot = right_env.try_resolve(name)
        if slot is not None:
            merged.bind(name, offset + slot)
    merged.width = left_env.width + right_env.width
    return merged


class QueryResultRows:
    """Schema names + row tuples returned by the executor."""

    def __init__(self, names, rows):
        self.names = names
        self.rows = rows


# ----------------------------------------------------------------------
# Executor.
# ----------------------------------------------------------------------
class SelectExecutor:
    """Executes one SELECT statement for a session."""

    def __init__(self, session):
        self.session = session
        self.jobs = []
        #: simulated seconds charged by LOOKUP-plan reads (no Job exists
        #: to sum, so the session adds this to the jobs' time).
        self.lookup_seconds = 0.0
        self.lookup_details = []

    @property
    def cluster(self):
        return self.session.env.cluster

    @property
    def runner(self):
        return self.session.env.runner

    @property
    def engine(self):
        """``"row"`` or ``"vectorized"`` — a wall-clock-only choice."""
        return getattr(self.session, "engine", "row")

    @property
    def plan_mode(self):
        """``cost`` (default), or the forced ``lookup`` / ``scan`` knob."""
        return getattr(self.session, "plan_mode", "cost")

    @property
    def batch_rows(self):
        return getattr(self.session, "batch_rows", DEFAULT_BATCH_ROWS)

    def _splits(self, relation):
        """Splits for a relation, honoring the session batch-size knob.

        The knob is shared deliberately: a MaterializedSource split is
        exactly one batch on the vectorized path, so one setting governs
        both task granularity and batch sizing (task count affects
        simulated time identically under either engine).
        """
        if isinstance(relation, MaterializedSource):
            return relation.splits(chunk_rows=self.batch_rows)
        return relation.splits()

    # ------------------------------------------------------------------
    def run(self, stmt):
        if isinstance(stmt, ast.UnionAllStmt):
            return self._union_all(stmt)
        stmt = self._materialize_subqueries(stmt)
        if stmt.source is None:
            return self._constant_select(stmt)
        items = self._expand_stars_early(stmt)
        tracer = self.cluster.tracer
        with tracer.span("phase", "select:from"):
            relation = self._execute_from(stmt, items)
        with tracer.span("phase", "select:finalize"):
            return self._finalize(stmt, items, relation)

    def _union_all(self, stmt):
        """Concatenate branch results (schemas must agree in arity)."""
        names = None
        rows = []
        for select in stmt.selects:
            branch = self.run(select)
            if names is None:
                names = branch.names
            elif len(branch.names) != len(names):
                raise AnalysisError(
                    "UNION ALL branches have %d vs %d columns"
                    % (len(names), len(branch.names)))
            rows.extend(branch.rows)
        self.cluster.charge_cpu_rows(len(rows))
        return QueryResultRows(names or [], rows)

    # ------------------------------------------------------------------
    # Subqueries (uncorrelated; evaluated eagerly, costs accounted).
    # ------------------------------------------------------------------
    def _materialize_subqueries(self, stmt):
        def rewrite(expr):
            if expr is None or not find_subqueries(expr):
                return expr
            return self._rewrite_expr_subqueries(expr)
        stmt.where = rewrite(stmt.where)
        stmt.having = rewrite(stmt.having)
        for item in stmt.items:
            item.expr = rewrite(item.expr)
        for join in stmt.joins:
            join.condition = rewrite(join.condition)
        return stmt

    def _rewrite_expr_subqueries(self, expr):
        if isinstance(expr, ast.SubQueryExpr):
            result = self._run_subquery(expr.query)
            if len(result.rows) > 1:
                raise AnalysisError(
                    "scalar subquery returned %d rows" % len(result.rows))
            value = result.rows[0][0] if result.rows else None
            return ast.Literal(value=value)
        if isinstance(expr, ast.InList):
            items = []
            for item in expr.items:
                if isinstance(item, ast.SubQueryExpr):
                    result = self._run_subquery(item.query)
                    values = frozenset(r[0] for r in result.rows)
                    items.append(ast.Literal(value=values))
                else:
                    items.append(self._rewrite_expr_subqueries(item))
            return ast.InList(
                operand=self._rewrite_expr_subqueries(expr.operand),
                items=items, negated=expr.negated)
        if isinstance(expr, ast.BinaryOp):
            return ast.BinaryOp(op=expr.op,
                                left=self._rewrite_expr_subqueries(expr.left),
                                right=self._rewrite_expr_subqueries(expr.right))
        if isinstance(expr, ast.LogicalOp):
            return ast.LogicalOp(op=expr.op,
                                 operands=[self._rewrite_expr_subqueries(o)
                                           for o in expr.operands])
        if isinstance(expr, ast.NotOp):
            return ast.NotOp(
                operand=self._rewrite_expr_subqueries(expr.operand))
        if isinstance(expr, ast.FuncCall):
            return ast.FuncCall(name=expr.name,
                                args=[self._rewrite_expr_subqueries(a)
                                      for a in expr.args],
                                distinct=expr.distinct)
        return expr

    def _run_subquery(self, query):
        sub = SelectExecutor(self.session)
        result = sub.run(query)
        self.jobs.extend(sub.jobs)
        return result

    # ------------------------------------------------------------------
    # Star expansion (needs source schemas only, not data).
    # ------------------------------------------------------------------
    def _expand_stars_early(self, stmt):
        items = []
        for item in stmt.items:
            if not isinstance(item.expr, ast.Star):
                items.append(item)
                continue
            qualifier = item.expr.qualifier
            refs = [stmt.source] + [j.table for j in stmt.joins]
            for ref in refs:
                if qualifier and ref.binding.lower() != qualifier.lower():
                    continue
                for name in self._source_column_list(ref):
                    col = ast.ColumnRef(name=name, qualifier=ref.binding)
                    items.append(ast.SelectItem(expr=col, alias=name))
        if not items:
            raise AnalysisError("SELECT list is empty after * expansion")
        return items

    def _source_column_list(self, table_ref):
        table_ref = self._resolve_view(table_ref)
        if table_ref.subquery is not None:
            return self.session.infer_select_names(table_ref.subquery)
        info = self.session.metastore.table(table_ref.name)
        return info.schema.names

    def _resolve_view(self, table_ref):
        """Expand a view reference into a derived table (in place).

        The stored view AST is deep-copied: execution rewrites statement
        trees in place (subquery materialization), and the view must stay
        pristine for its next use.
        """
        import copy

        if table_ref.subquery is None and table_ref.name is not None:
            view = self.session.view_query(table_ref.name)
            if view is not None:
                table_ref.subquery = copy.deepcopy(view)
        return table_ref

    # ------------------------------------------------------------------
    # FROM clause → a joined relation with per-binding pushdown.
    # ------------------------------------------------------------------
    def _execute_from(self, stmt, items):
        side_filters, residual = self._split_where(stmt)
        needed = self._needed_columns(stmt, items, residual)
        left = self._leaf_relation(stmt.source,
                                   side_filters.get(stmt.source.binding),
                                   needed.get(stmt.source.binding.lower()))
        for join in stmt.joins:
            right = self._leaf_relation(
                join.table, side_filters.get(join.table.binding),
                needed.get(join.table.binding.lower()))
            left = self._join(left, right, join)
        relation = left
        if residual is not None:
            relation = self._apply_residual(relation, residual)
        return relation

    def _apply_residual(self, relation, residual):
        if isinstance(relation, ScanSource):
            combined = (residual if relation.filter_expr is None
                        else ast.LogicalOp(op="and",
                                           operands=[relation.filter_expr,
                                                     residual]))
            relation.filter_expr = combined
            relation.ranges = extract_ranges(combined)
            return relation
        env = relation.env
        predicate = compile_expr(residual, env)
        rows = [r for r in relation.rows if is_true(predicate(r))]
        self.cluster.charge_cpu_rows(len(relation.rows))
        return MaterializedSource(rows, env, estimate_record_bytes(rows))

    def _split_where(self, stmt):
        """Partition WHERE conjuncts by which FROM binding they touch."""
        if stmt.where is None:
            return {}, None
        bindings = [stmt.source.binding] + [j.table.binding
                                            for j in stmt.joins]
        available = {
            ref.binding: {n.lower() for n in self._source_column_list(ref)}
            for ref in [stmt.source] + [j.table for j in stmt.joins]
        }
        side_filters = {}
        residual = []
        single_source = len(bindings) == 1
        for conjunct in _iter_conjuncts(stmt.where):
            owner = self._owning_binding(conjunct, available, bindings)
            if owner is not None or single_source:
                owner = owner or bindings[0]
                side_filters.setdefault(owner, []).append(conjunct)
            else:
                residual.append(conjunct)
        merged = {b: _and(conj) for b, conj in side_filters.items()}
        return merged, _and(residual) if residual else None

    def _owning_binding(self, expr, available, bindings):
        touched = set()
        for node in walk(expr):
            if not isinstance(node, ast.ColumnRef):
                continue
            if node.qualifier:
                touched.add(node.qualifier.lower())
            else:
                owners = [b for b in bindings
                          if node.name.lower() in available[b]]
                if len(owners) != 1:
                    return None
                touched.add(owners[0].lower())
        if len(touched) != 1:
            return None
        lower_map = {b.lower(): b for b in bindings}
        return lower_map.get(next(iter(touched)))

    def _needed_columns(self, stmt, items, residual):
        """Column names each binding must produce (lowercased sets)."""
        refs = [stmt.source] + [j.table for j in stmt.joins]
        available = {ref.binding.lower():
                     {n.lower() for n in self._source_column_list(ref)}
                     for ref in refs}
        needed = {b: set() for b in available}
        exprs = [item.expr for item in items]
        exprs.extend(j.condition for j in stmt.joins)
        exprs.extend(stmt.group_by)
        if residual is not None:
            exprs.append(residual)
        if stmt.having is not None:
            exprs.append(stmt.having)
        exprs.extend(o.expr for o in stmt.order_by)
        for expr in exprs:
            if expr is None:
                continue
            for node in walk(expr):
                if not isinstance(node, ast.ColumnRef):
                    continue
                name = node.name.lower()
                if node.qualifier:
                    bucket = needed.get(node.qualifier.lower())
                    if bucket is not None:
                        bucket.add(name)
                else:
                    for binding, cols in available.items():
                        if name in cols:
                            needed[binding].add(name)
        return needed

    def _leaf_relation(self, table_ref, side_filter, needed):
        table_ref = self._resolve_view(table_ref)
        if table_ref.subquery is not None:
            result = self._run_subquery(table_ref.subquery)
            env = Env()
            env.add_schema(result.names, alias=table_ref.binding)
            rows = result.rows
            if side_filter is not None:
                predicate = compile_expr(side_filter, env)
                rows = [r for r in rows if is_true(predicate(r))]
            return MaterializedSource(rows, env, estimate_record_bytes(rows))
        info = self.session.metastore.table(table_ref.name)
        return self._make_scan(info, table_ref.binding, side_filter, needed)

    def _make_scan(self, info, alias, side_filter, needed):
        schema = info.schema
        if needed is None:
            projection = schema.names
        else:
            want = set(needed)
            if side_filter is not None:
                want |= referenced_columns(side_filter)
            projection = [c.name for c in schema if c.name.lower() in want]
            if not projection:
                projection = [schema.columns[0].name]
        env = Env()
        env.add_schema(projection, alias=alias)
        ranges = extract_ranges(side_filter) if side_filter is not None else {}
        # Repeatable reads: record the table in the server transaction at
        # scan-build time, so the commit-log snapshot taken at dispatch
        # covers every table the statement physically reads.
        txn = getattr(self.session, "current_txn", None)
        if txn is not None:
            txn.touch(info.name)
        return ScanSource(handler=info.handler, alias=alias,
                          projection=projection, env=env,
                          filter_expr=side_filter, ranges=ranges)

    # ------------------------------------------------------------------
    # Join (reduce-side).
    # ------------------------------------------------------------------
    def _join(self, left, right, join):
        self._reject_forced_lookup(left, "a join")
        self._reject_forced_lookup(right, "a join")
        left_env, right_env = left.env, right.env
        merged_env = merge_envs(left_env, right_env)
        equi, leftover = self._split_join_condition(join.condition,
                                                    left_env, right_env)
        if not equi:
            raise AnalysisError(
                "join requires at least one equi-condition: %r"
                % (join.condition,))
        left_keys = [compile_expr(l, left_env) for l, _ in equi]
        right_keys = [compile_expr(r, right_env) for _, r in equi]
        leftover_fn = (compile_expr(leftover, merged_env)
                       if leftover is not None else None)
        left_width, right_width = left_env.width, right_env.width
        kind = join.kind

        splits = ([InputSplit(payload=("L", s), size_bytes=s.size_bytes,
                              label="L:" + s.label)
                   for s in self._splits(left)]
                  + [InputSplit(payload=("R", s), size_bytes=s.size_bytes,
                                label="R:" + s.label)
                     for s in self._splits(right)])

        if self.engine == "vectorized":
            sides = {
                "L": (left.make_batch_reader(self.batch_rows),
                      [compile_batch(l, left_env) for l, _ in equi],
                      kind in ("left", "full")),
                "R": (right.make_batch_reader(self.batch_rows),
                      [compile_batch(r, right_env) for _, r in equi],
                      kind in ("right", "full")),
            }

            def map_fn(split, ctx):
                # Same NULL-key sentinel scheme as the row path below:
                # (task_index, local_i) in reader order, so both engines
                # and any pool width assign identical sentinels.
                side, inner = split.payload
                reader, key_bexprs, outer = sides[side]
                local_i = 0
                for batch in reader(inner, ctx):
                    key_cols = [fn(batch.columns, batch.length)
                                for fn in key_bexprs]
                    for i, values in enumerate(batch.rows()):
                        key = tuple(kc[i] for kc in key_cols)
                        if any(k is None for k in key):
                            if outer:
                                yield (("\x00null", ctx.task_index, local_i),
                                       (side, values))
                                local_i += 1
                            continue
                        yield key, (side, values)
        else:
            left_reader = left.make_reader()
            right_reader = right.make_reader()

            def map_fn(split, ctx):
                # NULL-key sentinels are unique per row so null keys never
                # group; keyed by (task_index, local_i) — not a shared
                # counter — so key assignment is identical however map
                # tasks interleave on the worker pool.
                side, inner = split.payload
                local_i = 0
                if side == "L":
                    for values in left_reader(inner, ctx):
                        key = tuple(k(values) for k in left_keys)
                        if any(k is None for k in key):
                            if kind in ("left", "full"):
                                yield (("\x00null", ctx.task_index, local_i),
                                       ("L", values))
                                local_i += 1
                            continue
                        yield key, ("L", values)
                else:
                    for values in right_reader(inner, ctx):
                        key = tuple(k(values) for k in right_keys)
                        if any(k is None for k in key):
                            if kind in ("right", "full"):
                                yield (("\x00null", ctx.task_index, local_i),
                                       ("R", values))
                                local_i += 1
                            continue
                        yield key, ("R", values)

        def reduce_fn(key, tagged, ctx):
            lefts = [v for tag, v in tagged if tag == "L"]
            rights = [v for tag, v in tagged if tag == "R"]
            null_right = (None,) * right_width
            null_left = (None,) * left_width
            if isinstance(key, tuple) and key and key[0] == "\x00null":
                # NULL join keys never match; outer sides still emit.
                for lv in lefts:
                    yield lv + null_right
                for rv in rights:
                    yield null_left + rv
                return
            matched_right = set()
            for lv in lefts:
                matched = False
                for i, rv in enumerate(rights):
                    combined = lv + rv
                    if leftover_fn is None or is_true(leftover_fn(combined)):
                        matched = True
                        matched_right.add(i)
                        yield combined
                if not matched and kind in ("left", "full"):
                    yield lv + null_right
            if kind in ("right", "full"):
                for i, rv in enumerate(rights):
                    if i not in matched_right:
                        yield null_left + rv

        job = Job(name="join", splits=splits, map_fn=map_fn,
                  reduce_fn=reduce_fn,
                  num_reducers=self.cluster.profile.total_reduce_slots,
                  properties={"shard_fanout": max(self._fanout(left),
                                                  self._fanout(right))})
        result = self.runner.run(job)
        self.jobs.append(result)
        rows = result.outputs
        source = MaterializedSource(rows, merged_env,
                                    estimate_record_bytes(rows))
        # Hive writes inter-job results to HDFS temp files.
        self.cluster.charge_hdfs_write(source.bytes_estimate)
        return source

    def _split_join_condition(self, condition, left_env, right_env):
        equi, leftover = [], []
        for conjunct in _iter_conjuncts(condition):
            pair = self._equi_pair(conjunct, left_env, right_env)
            if pair is not None:
                equi.append(pair)
            else:
                leftover.append(conjunct)
        return equi, _and(leftover) if leftover else None

    def _equi_pair(self, expr, left_env, right_env):
        if not (isinstance(expr, ast.BinaryOp) and expr.op == "="):
            return None
        sides = []
        for operand in (expr.left, expr.right):
            cols = [n for n in walk(operand) if isinstance(n, ast.ColumnRef)]
            if not cols:
                return None
            in_left = all(_resolvable(c, left_env) for c in cols)
            in_right = all(_resolvable(c, right_env) for c in cols)
            if in_left and not in_right:
                sides.append("L")
            elif in_right and not in_left:
                sides.append("R")
            else:
                return None
        if set(sides) != {"L", "R"}:
            return None
        if sides[0] == "L":
            return (expr.left, expr.right)
        return (expr.right, expr.left)

    # ------------------------------------------------------------------
    # Final stage: aggregation or projection, then ORDER BY / LIMIT.
    # ------------------------------------------------------------------
    def _finalize(self, stmt, items, relation):
        is_aggregate = bool(stmt.group_by) or any(
            contains_aggregate(item.expr) for item in items)
        if stmt.having is not None and not is_aggregate:
            raise AnalysisError("HAVING requires GROUP BY or aggregates")
        if is_aggregate:
            if stmt.distinct:
                raise AnalysisError(
                    "SELECT DISTINCT cannot be combined with aggregates")
            self._reject_forced_lookup(relation, "aggregation")
            names, rows = self._aggregate_stage(stmt, items, relation)
        else:
            names, rows = self._projection_stage(stmt, items, relation)
            if stmt.distinct:
                seen = set()
                deduped = []
                for row in rows:
                    if row not in seen:
                        seen.add(row)
                        deduped.append(row)
                self.cluster.charge_cpu_rows(len(rows))
                rows = deduped
        rows = self._order_and_limit(stmt, names, rows)
        return QueryResultRows(names, rows)

    def _projection_stage(self, stmt, items, relation):
        names = [_output_name(item, i) for i, item in enumerate(items)]
        compiled = [compile_expr(item.expr, relation.env) for item in items]
        if isinstance(relation, MaterializedSource):
            rows = [tuple(fn(r) for fn in compiled) for r in relation.rows]
            self.cluster.charge_cpu_rows(len(relation.rows))
            return names, rows
        source_rows = self._try_lookup(relation)
        if source_rows is not None:
            rows = [tuple(fn(r) for fn in compiled) for r in source_rows]
            self.cluster.charge_cpu_rows(len(source_rows))
            return names, rows
        if self.engine == "vectorized":
            bexprs = [compile_batch(item.expr, relation.env)
                      for item in items]
            reader = relation.make_batch_reader(self.batch_rows)

            def map_fn(split, ctx):
                for batch in reader(split, ctx):
                    cols = [fn(batch.columns, batch.length) for fn in bexprs]
                    yield from zip(*cols)
        else:
            reader = relation.make_reader()

            def map_fn(split, ctx):
                for values in reader(split, ctx):
                    yield tuple(fn(values) for fn in compiled)

        job = Job(name="select-scan", splits=self._splits(relation),
                  map_fn=map_fn, reduce_fn=None,
                  properties={"shard_fanout": self._fanout(relation)})
        result = self.runner.run(job)
        self.jobs.append(result)
        return names, result.outputs

    # ------------------------------------------------------------------
    # LOOKUP routing (the plan that skips MapReduce entirely).
    # ------------------------------------------------------------------
    @staticmethod
    def _lookup_capable(relation):
        return (isinstance(relation, ScanSource)
                and getattr(relation.handler, "primary_key", None) is not None
                and hasattr(relation.handler, "execute_lookup"))

    @staticmethod
    def _fanout(relation):
        """Scatter-gather width for this relation's jobs (makespan only)."""
        if isinstance(relation, ScanSource):
            return getattr(relation.handler, "shard_fanout", 1)
        return 1

    def _try_lookup(self, relation):
        """Route an eligible dualtable scan through the LOOKUP plan.

        Returns the merged source rows (tuples in ``relation.env`` order
        with the residual filter applied) when the LOOKUP plan ran, or
        None to fall through to the MR scan.  A non-fatal injected fault
        anywhere in the lookup (index read, attached probe) falls back to
        the scan plan — planning is uncharged and both fault points fire
        before the first charged byte, so the fallback never double
        charges.
        """
        mode = self.plan_mode
        if not isinstance(relation, ScanSource):
            return None
        handler = relation.handler
        if not self._lookup_capable(relation):
            if mode == "lookup":
                raise AnalysisError(
                    "SET dualtable.plan = lookup: table %r has no PRIMARY "
                    "KEY lookup path" % relation.alias)
            return None
        if mode == "scan":
            if handler.plan_lookup(relation.ranges, relation.projection,
                                   hit_faults=False) is not None:
                handler.note_lookup_eligible_scan()
            return None
        try:
            plan = handler.plan_lookup(relation.ranges,
                                       relation.projection)
        except FaultInjectedError as exc:
            if exc.fatal:
                raise
            handler.note_lookup_fallback()
            return None
        if plan is None:
            if mode == "lookup":
                raise AnalysisError(
                    "SET dualtable.plan = lookup: predicate does not bound "
                    "PRIMARY KEY %r (or the range exceeds "
                    "dualtable.lookup.max_rows)" % handler.primary_key)
            return None
        if mode != "lookup" and plan.choice.plan != "lookup":
            handler.note_lookup_eligible_scan()
            return None
        try:
            rows, seconds, detail = handler.execute_lookup(
                plan, engine=self.engine, batch_rows=self.batch_rows)
        except FaultInjectedError as exc:
            if exc.fatal:
                raise
            handler.note_lookup_fallback()
            return None
        self.lookup_seconds += seconds
        self.lookup_details.append(detail)
        if relation.filter_expr is not None:
            predicate = compile_expr(relation.filter_expr, relation.env)
            filtered = [r for r in rows if is_true(predicate(r))]
            self.cluster.charge_cpu_rows(len(rows))
            return filtered
        return rows

    def _reject_forced_lookup(self, relation, what):
        if self.plan_mode == "lookup" and self._lookup_capable(relation):
            raise AnalysisError(
                "SET dualtable.plan = lookup cannot serve %s over "
                "DualTable %r — SET dualtable.plan = cost (or scan) first"
                % (what, relation.alias))

    def _aggregate_stage(self, stmt, items, relation):
        group_by = list(stmt.group_by)
        agg_calls = []
        rewritten_items = [rewrite_aggregates(item.expr, group_by, agg_calls)
                           for item in items]
        having_rewritten = (rewrite_aggregates(stmt.having, group_by,
                                               agg_calls)
                            if stmt.having is not None else None)
        validate_no_nested_aggregates(agg_calls)

        input_env = relation.env
        key_fns = [compile_expr(e, input_env) for e in group_by]
        specs = []
        for call in agg_calls:
            star = (not call.args) or isinstance(call.args[0], ast.Star)
            arg_fn = None
            if not star:
                arg_fn = compile_expr(call.args[0], input_env)
            elif call.name != "count":
                raise AnalysisError("%s(*) is not supported" % call.name)
            specs.append(AggregateSpec(call.name, arg_fn,
                                       distinct=call.distinct,
                                       count_star=star))
        if self.engine == "vectorized":
            map_fn = self._vectorized_agg_map(relation, group_by, agg_calls,
                                              specs)
        else:
            reader = relation.make_reader()

            def map_fn(split, ctx):
                # Hash aggregation in the mapper (Hive map-side
                # aggregation).
                table = {}
                for values in reader(split, ctx):
                    key = tuple(fn(values) for fn in key_fns)
                    accs = table.get(key)
                    if accs is None:
                        accs = [spec.init() for spec in specs]
                        table[key] = accs
                    for i, spec in enumerate(specs):
                        accs[i] = spec.add(accs[i], values)
                for key, accs in table.items():
                    yield key, accs

        def reduce_fn(key, acc_lists, ctx):
            merged = None
            for accs in acc_lists:
                if merged is None:
                    merged = list(accs)
                else:
                    merged = [spec.merge(m, a)
                              for spec, m, a in zip(specs, merged, accs)]
            finals = [spec.finalize(m) for spec, m in zip(specs, merged)]
            yield tuple(key) + tuple(finals)

        job = Job(name="groupby", splits=self._splits(relation),
                  map_fn=map_fn, reduce_fn=reduce_fn,
                  num_reducers=self.cluster.profile.total_reduce_slots,
                  properties={"shard_fanout": self._fanout(relation)})
        result = self.runner.run(job)
        self.jobs.append(result)
        if not group_by and not result.outputs:
            # SQL: a global aggregate over zero rows yields one row
            # (COUNT = 0, SUM/MIN/MAX/AVG = NULL).
            result.outputs = [tuple(spec.finalize(spec.init())
                                    for spec in specs)]

        post_env = Env()
        post_env.width = len(group_by) + len(specs)
        compiled = [compile_expr(e, post_env) for e in rewritten_items]
        having_fn = (compile_expr(having_rewritten, post_env)
                     if having_rewritten is not None else None)
        names = [_output_name(item, i) for i, item in enumerate(items)]
        rows = []
        for raw in result.outputs:
            if having_fn is not None and not is_true(having_fn(raw)):
                continue
            rows.append(tuple(fn(raw) for fn in compiled))
        self.cluster.charge_cpu_rows(len(result.outputs))
        return names, rows

    def _vectorized_agg_map(self, relation, group_by, agg_calls, specs):
        """Map-side hash aggregation consuming ColumnBatches.

        Keys and aggregate arguments are evaluated column-at-a-time;
        accumulators fold pre-evaluated values via ``add_value``.  The
        global-aggregate case (no GROUP BY) folds whole columns without
        building any per-row key tuples.
        """
        input_env = relation.env
        key_bexprs = [compile_batch(e, input_env) for e in group_by]
        arg_bexprs = [None if spec.count_star
                      else compile_batch(call.args[0], input_env)
                      for call, spec in zip(agg_calls, specs)]
        reader = relation.make_batch_reader(self.batch_rows)

        def map_fn(split, ctx):
            table = {}
            for batch in reader(split, ctx):
                cols, n = batch.columns, batch.length
                key_cols = [fn(cols, n) for fn in key_bexprs]
                arg_cols = [None if fn is None else fn(cols, n)
                            for fn in arg_bexprs]
                if not key_cols:
                    accs = table.get(())
                    if accs is None:
                        accs = table[()] = [spec.init() for spec in specs]
                    for j, spec in enumerate(specs):
                        col = arg_cols[j]
                        acc = accs[j]
                        add_value = spec.add_value
                        if col is None:
                            for _ in range(n):
                                acc = add_value(acc, 1)
                        else:
                            for value in col:
                                acc = add_value(acc, value)
                        accs[j] = acc
                    continue
                for i in range(n):
                    key = tuple(kc[i] for kc in key_cols)
                    accs = table.get(key)
                    if accs is None:
                        accs = table[key] = [spec.init() for spec in specs]
                    for j, spec in enumerate(specs):
                        col = arg_cols[j]
                        accs[j] = spec.add_value(
                            accs[j], 1 if col is None else col[i])
            for key, accs in table.items():
                yield key, accs
        return map_fn

    def _order_and_limit(self, stmt, names, rows):
        if stmt.order_by:
            env = Env()
            env.add_schema(names)
            key_fns = []
            for order in stmt.order_by:
                try:
                    fn = compile_expr(order.expr, env)
                except AnalysisError:
                    fn = None       # unresolvable: stable no-op key
                key_fns.append((fn, order.descending))

            def sort_key(row):
                return tuple(_NullsLast(fn(row) if fn else None, desc)
                             for fn, desc in key_fns)

            self.cluster.charge_cpu_rows(len(rows))
            limit = stmt.limit
            if limit is not None and 0 <= limit < len(rows):
                # Top-k heap instead of a full sort.  heapq.nsmallest
                # decorates with (key, input_index), so ties resolve in
                # input order — exactly the stable full sort's prefix.
                # Simulated cost is charged on the input rows either
                # way; the heap is a wall-clock-only win.
                rows = heapq.nsmallest(limit, rows, key=sort_key)
            else:
                rows = sorted(rows, key=sort_key)
        if stmt.limit is not None:
            rows = rows[:stmt.limit]
        return rows

    def _constant_select(self, stmt):
        env = Env()
        compiled = [compile_expr(item.expr, env) for item in stmt.items]
        names = [_output_name(item, i) for i, item in enumerate(stmt.items)]
        row = tuple(fn(()) for fn in compiled)
        return QueryResultRows(names, [row])


# ----------------------------------------------------------------------
# Helpers.
# ----------------------------------------------------------------------
class _NullsLast:
    """Sort wrapper: NULLs last, optional descending."""

    __slots__ = ("value", "desc")

    def __init__(self, value, desc):
        self.value = value
        self.desc = desc

    def __lt__(self, other):
        a, b = self.value, other.value
        if a is None:
            return False
        if b is None:
            return True
        try:
            if self.desc:
                return b < a
            return a < b
        except TypeError:
            if self.desc:
                return repr(b) < repr(a)
            return repr(a) < repr(b)

    def __eq__(self, other):
        return self.value == other.value


def _output_name(item, index):
    if item.alias:
        return item.alias
    if isinstance(item.expr, ast.ColumnRef):
        return item.expr.name
    if isinstance(item.expr, ast.FuncCall):
        return "%s_%d" % (item.expr.name, index)
    return "_c%d" % index


def _resolvable(column_ref, env):
    try:
        env.resolve(column_ref)
        return True
    except AnalysisError:
        return False


def _and(conjuncts):
    if not conjuncts:
        return None
    if len(conjuncts) == 1:
        return conjuncts[0]
    return ast.LogicalOp(op="and", operands=list(conjuncts))


def _iter_conjuncts(expr):
    if isinstance(expr, ast.LogicalOp) and expr.op == "and":
        for operand in expr.operands:
            yield from _iter_conjuncts(operand)
    else:
        yield expr
