"""Partitioned ORC-on-HDFS storage (Hive-style directory partitioning).

Hive's native answer to bulk mutation is partition-level granularity: the
paper notes Hive supports "complete overwrite ... and delete (DROP) at
table or partition level".  This handler implements that layout:

* ``PARTITIONED BY (p type, ...)`` columns are *not* stored in the data
  files — they live in the directory names (``/warehouse/t/p=v/...``);
* INSERT performs dynamic partitioning (rows are routed by their
  partition-column values);
* scans prune whole partitions using the predicate's column ranges before
  any file is touched;
* UPDATE/DELETE lowering rewrites **only the affected partitions**, which
  is exactly the Hive-side optimization DualTable competes against when
  modifications align with partition boundaries.
"""

from repro.common.errors import AnalysisError, HiveError
from repro.mapreduce import InputSplit
from repro.orc import OrcReader, OrcWriter
from repro.hive.pushdown import make_stripe_filter
from repro.hive.storage.base import StorageHandler

DEFAULT_ROWS_PER_FILE = 50_000
DEFAULT_STRIPE_ROWS = 5_000


def _encode_value(value):
    if value is None:
        return "__NULL__"
    return str(value).replace("/", "%2F").replace("=", "%3D")


def _decode_value(text, column):
    if text == "__NULL__":
        return None
    text = text.replace("%2F", "/").replace("%3D", "=")
    kind = column.physical_kind
    if kind == "int":
        return int(text)
    if kind == "double":
        return float(text)
    if kind == "boolean":
        return text == "True"
    return text


class PartitionedOrcHandler(StorageHandler):
    """Directory-partitioned ORC storage (the Hive partitioning model)."""

    kind = "orc-partitioned"
    supports_inplace_mutation = False

    def __init__(self, table, env):
        super().__init__(table, env)
        self.location = "/warehouse/%s" % table.name
        props = table.properties
        self.rows_per_file = int(props.get("orc.rows_per_file",
                                           DEFAULT_ROWS_PER_FILE))
        self.stripe_rows = int(props.get("orc.stripe_rows",
                                         DEFAULT_STRIPE_ROWS))
        names = props.get("partition.columns")
        if not names:
            raise AnalysisError(
                "orc-partitioned tables need PARTITIONED BY columns")
        self.partition_columns = [n.strip().lower()
                                  for n in str(names).split(",")]
        all_names = [c.name.lower() for c in table.schema]
        if all_names[-len(self.partition_columns):] \
                != self.partition_columns:
            raise AnalysisError(
                "partition columns must be the trailing schema columns")
        self._n_data = len(table.schema) - len(self.partition_columns)

    @property
    def fs(self):
        return self.env.fs

    def _data_schema(self):
        return self.schema.columns[:self._n_data]

    def _partition_schema(self):
        return self.schema.columns[self._n_data:]

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def create(self):
        self.fs.mkdirs(self.location)

    def drop(self):
        if self.fs.exists(self.location):
            self.fs.delete(self.location, recursive=True)

    # ------------------------------------------------------------------
    # Partition directory layout.
    # ------------------------------------------------------------------
    def _partition_dir(self, key):
        parts = ["%s=%s" % (name, _encode_value(value))
                 for name, value in zip(self.partition_columns, key)]
        return "%s/%s" % (self.location, "/".join(parts))

    def partitions(self):
        """Sorted list of (partition_key_tuple, directory)."""
        found = []
        self._walk(self.location, [], found)
        return sorted(found)

    def _walk(self, directory, key_so_far, found):
        depth = len(key_so_far)
        if depth == len(self.partition_columns):
            found.append((tuple(key_so_far), directory))
            return
        if not self.fs.exists(directory):
            return
        column = self._partition_schema()[depth]
        prefix = self.partition_columns[depth] + "="
        for child in self.fs.listdir(directory):
            if not child.startswith(prefix):
                continue
            value = _decode_value(child[len(prefix):], column)
            self._walk("%s/%s" % (directory, child),
                       key_so_far + [value], found)

    def _partition_files(self, directory):
        return [p for p in self.fs.list_files(directory)
                if p.endswith(".orc")]

    def partition_matches(self, key, ranges):
        """May any row in this partition satisfy the predicate ranges?"""
        for name, value in zip(self.partition_columns, key):
            col_range = ranges.get(name) if ranges else None
            if col_range is not None \
                    and not col_range.may_overlap(value, value):
                return False
        return True

    def affected_partitions(self, ranges):
        return [key for key, _ in self.partitions()
                if self.partition_matches(key, ranges)]

    # ------------------------------------------------------------------
    # Writes (dynamic partitioning).
    # ------------------------------------------------------------------
    def insert_rows(self, rows, overwrite=False):
        rows = list(rows)
        if overwrite:
            self.drop()
            self.create()
        grouped = self._group_rows(rows)
        for key, data_rows in grouped.items():
            self._write_partition(key, data_rows, append=True)
        return len(rows)

    def _group_rows(self, rows):
        grouped = {}
        for row in rows:
            key = tuple(row[self._n_data:])
            grouped.setdefault(key, []).append(tuple(row[:self._n_data]))
        return grouped

    def _write_partition(self, key, data_rows, append):
        directory = self._partition_dir(key)
        self.fs.mkdirs(directory)
        start = len(self._partition_files(directory)) if append else 0
        orc_schema = [(c.name, c.physical_kind)
                      for c in self._data_schema()]
        for chunk_no, begin in enumerate(
                range(0, max(len(data_rows), 1), self.rows_per_file)):
            chunk = data_rows[begin:begin + self.rows_per_file]
            if not chunk and chunk_no > 0:
                break
            writer = OrcWriter(orc_schema, stripe_rows=self.stripe_rows)
            writer.write_rows(chunk)
            path = "%s/part-%05d.orc" % (directory, start + chunk_no)
            self.fs.write_file(path, writer.finish())

    def replace_partitions(self, rows, partition_keys):
        """Rewrite exactly ``partition_keys`` with the given rows.

        Partitions not listed are untouched; listed partitions whose rows
        all disappeared are removed (the DELETE-everything-in-partition
        case).
        """
        grouped = self._group_rows(rows)
        unknown = set(grouped) - set(partition_keys)
        if unknown:
            raise HiveError(
                "rows target partitions outside the rewrite scope: %r"
                % sorted(unknown))
        for key in partition_keys:
            directory = self._partition_dir(key)
            if self.fs.exists(directory):
                self.fs.delete(directory, recursive=True)
            data_rows = grouped.get(key)
            if data_rows:
                self._write_partition(key, data_rows, append=False)

    def drop_partition(self, key):
        directory = self._partition_dir(key)
        if not self.fs.exists(directory):
            return False
        self.fs.delete(directory, recursive=True)
        return True

    # ------------------------------------------------------------------
    # Reads with partition pruning.
    # ------------------------------------------------------------------
    def scan_splits(self, projection=None, ranges=None):
        projection = list(projection) if projection else None
        data_names = {c.name.lower() for c in self._data_schema()}
        if projection is None:
            data_projection = None
        else:
            data_projection = [n for n in projection
                               if n.lower() in data_names]
        splits = []
        for key, directory in self.partitions():
            if not self.partition_matches(key, ranges or {}):
                continue
            for path in self._partition_files(directory):
                reader = OrcReader(self.fs, path)
                probe = data_projection
                if probe is not None and not probe:
                    probe = [self._data_schema()[0].name]
                splits.append(InputSplit(
                    payload={"path": path, "projection": projection,
                             "data_projection": data_projection,
                             "ranges": ranges or {}, "key": key},
                    size_bytes=reader.projected_bytes(probe),
                    label=path))
        return splits

    def read_split(self, split, ctx):
        payload = split.payload
        reader = OrcReader(self.fs, payload["path"])
        ranges = {name: r for name, r in (payload["ranges"] or {}).items()
                  if name not in self.partition_columns}
        stripe_filter = make_stripe_filter(
            [n for n, _ in reader.schema], ranges)
        projection = payload["projection"]
        key = payload["key"]
        part_values = dict(zip(self.partition_columns, key))
        if projection is None:
            for _, values in reader.rows(stripe_filter=stripe_filter):
                yield values + key
            return
        data_projection = payload["data_projection"]
        # Even a partition-columns-only projection needs one stored
        # column to drive row multiplicity.
        orc_projection = data_projection or [self._data_schema()[0].name]
        positions = []
        for name in projection:
            lname = name.lower()
            if lname in part_values:
                positions.append(("part", part_values[lname]))
            else:
                positions.append(("data", orc_projection.index(name)))
        for _, values in reader.rows(projection=orc_projection,
                                     stripe_filter=stripe_filter):
            yield tuple(values[idx] if kind == "data" else idx
                        for kind, idx in positions)

    def read_split_batches(self, split, ctx, batch_rows=None):
        """Columnar read; partition columns become constant columns."""
        from repro.vector import ColumnBatch

        payload = split.payload
        reader = OrcReader(self.fs, payload["path"])
        ranges = {name: r for name, r in (payload["ranges"] or {}).items()
                  if name not in self.partition_columns}
        stripe_filter = make_stripe_filter(
            [n for n, _ in reader.schema], ranges)
        projection = payload["projection"]
        key = payload["key"]
        part_values = dict(zip(self.partition_columns, key))
        if projection is None:
            for batch in reader.batches(stripe_filter=stripe_filter,
                                        batch_rows=batch_rows):
                columns = list(batch.columns) + [[value] * batch.length
                                                 for value in key]
                yield ColumnBatch(columns, batch.length,
                                  row_base=batch.row_base)
            return
        data_projection = payload["data_projection"]
        orc_projection = data_projection or [self._data_schema()[0].name]
        positions = []
        for name in projection:
            lname = name.lower()
            if lname in part_values:
                positions.append(("part", part_values[lname]))
            else:
                positions.append(("data", orc_projection.index(name)))
        for batch in reader.batches(projection=orc_projection,
                                    stripe_filter=stripe_filter,
                                    batch_rows=batch_rows):
            columns = [batch.columns[idx] if kind == "data"
                       else [idx] * batch.length
                       for kind, idx in positions]
            yield ColumnBatch(columns, batch.length, row_base=batch.row_base)

    # ------------------------------------------------------------------
    # Statistics.
    # ------------------------------------------------------------------
    def data_bytes(self):
        return sum(self.fs.file_size(p)
                   for _, directory in self.partitions()
                   for p in self._partition_files(directory))

    def partition_bytes(self, keys):
        keys = set(keys)
        return sum(self.fs.file_size(p)
                   for key, directory in self.partitions()
                   if key in keys
                   for p in self._partition_files(directory))

    def row_count(self):
        total = 0
        for _, directory in self.partitions():
            for path in self._partition_files(directory):
                total += OrcReader(self.fs, path).num_rows
        return total
