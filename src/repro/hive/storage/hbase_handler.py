"""Hive-on-HBase storage: every row lives in an HBase table.

This is the "Hive(HBase)" baseline of the paper: row-level UPDATE/DELETE
are cheap random writes, but scans pay HBase's random-read rates and
per-row overhead, which is why the paper drops it from the grid
experiments and why Figure 11 shows it losing badly on reads.
"""

import struct

from repro.mapreduce import InputSplit
from repro.hive.storage.base import StorageHandler
from repro.hive.valuecodec import decode_value, encode_value


def _rowkey(row_id):
    return struct.pack(">Q", row_id)


def _qualifier(col_index):
    return b"c%05d" % col_index


class HBaseTableHandler(StorageHandler):
    """Row-oriented table stored in simulated HBase."""

    kind = "hbase"
    supports_inplace_mutation = True

    def __init__(self, table, env):
        super().__init__(table, env)
        self.hbase_name = "hive_%s" % table.name
        self._next_row_id = 0

    @property
    def service(self):
        return self.env.hbase

    def _htable(self):
        return self.service.table(self.hbase_name)

    # ------------------------------------------------------------------
    def create(self):
        self.service.ensure_table(self.hbase_name)

    def drop(self):
        if self.service.has_table(self.hbase_name):
            self.service.drop_table(self.hbase_name)

    # ------------------------------------------------------------------
    def insert_rows(self, rows, overwrite=False):
        htable = self._htable()
        if overwrite:
            htable.truncate()
            self._next_row_id = 0
        count = 0
        for row in rows:
            values = {}
            for idx, value in enumerate(row):
                values[_qualifier(idx)] = encode_value(value)
            htable.put(_rowkey(self._next_row_id), values)
            self._next_row_id += 1
            count += 1
        return count

    # ------------------------------------------------------------------
    def scan_splits(self, projection=None, ranges=None):
        htable = self._htable()
        total = htable.store_bytes
        nsplits = max(1, len(htable.regions))
        # Carve the row-id space into contiguous ranges, one per region.
        bounds = [None]
        for region in htable.regions[1:]:
            bounds.append(region.start_row)
        bounds.append(None)
        splits = []
        for i in range(nsplits):
            splits.append(InputSplit(
                payload={"start": bounds[i], "stop": bounds[i + 1],
                         "projection": list(projection) if projection else None},
                size_bytes=total // nsplits,
                label="%s[%d]" % (self.hbase_name, i)))
        return splits

    def read_split(self, split, ctx):
        payload = split.payload
        projection = payload["projection"]
        if projection is None:
            indices = list(range(len(self.schema)))
        else:
            indices = [self.schema.index_of(name) for name in projection]
        quals = [_qualifier(i) for i in indices]
        htable = self._htable()
        for _, cells in htable.scan(payload["start"], payload["stop"]):
            yield tuple(
                decode_value(cells[q]) if q in cells else None
                for q in quals)

    def scan_with_rowkeys(self, projection=None):
        """Like read, but yields (rowkey, tuple) — used for mutations."""
        if projection is None:
            indices = list(range(len(self.schema)))
        else:
            indices = [self.schema.index_of(name) for name in projection]
        quals = [_qualifier(i) for i in indices]
        for rowkey, cells in self._htable().scan():
            yield rowkey, tuple(
                decode_value(cells[q]) if q in cells else None
                for q in quals)

    # ------------------------------------------------------------------
    # Row mutation (what makes this handler update-friendly).
    # ------------------------------------------------------------------
    def update_row(self, rowkey, new_values):
        """Put new cell values: ``{column_index: python_value}``."""
        payload = {_qualifier(idx): encode_value(val)
                   for idx, val in new_values.items()}
        self._htable().put(rowkey, payload)

    def delete_row(self, rowkey):
        self._htable().delete_row(rowkey)

    # ------------------------------------------------------------------
    def data_bytes(self):
        return self._htable().store_bytes

    def row_count(self):
        return self._next_row_id
