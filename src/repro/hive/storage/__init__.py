"""Storage handlers: the Hive InputFormat/OutputFormat/SerDe seam."""

from repro.hive.storage.base import StorageHandler
from repro.hive.storage.hbase_handler import HBaseTableHandler
from repro.hive.storage.orc_handler import OrcHdfsHandler

__all__ = ["StorageHandler", "HBaseTableHandler", "OrcHdfsHandler"]
