"""Storage handler interface (Hive's InputFormat/OutputFormat/SerDe seam).

A handler owns a table's bytes and knows how to:

* create/drop the physical storage,
* bulk-insert rows (append or overwrite),
* produce :class:`~repro.mapreduce.job.InputSplit`s for a scan with
  projection + predicate-range pushdown, and
* read one split back as row tuples.

DualTable plugs into Hive through exactly this seam, mirroring the paper's
custom InputFormat/OutputFormat/SerDe implementation (Section V-A).
"""

from abc import ABC, abstractmethod


class StorageHandler(ABC):
    """Per-table storage driver."""

    kind = "abstract"

    #: True when UPDATE/DELETE can be executed as in-place random writes
    #: (HBase-backed tables); False means the session must fall back to
    #: INSERT OVERWRITE semantics (plain ORC) or a handler-specific
    #: mechanism (DualTable, ACID).
    supports_inplace_mutation = False

    def __init__(self, table, env):
        self.table = table      # TableInfo
        self.env = env          # HiveEnv (cluster, fs, hbase service)

    @property
    def schema(self):
        return self.table.schema

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    @abstractmethod
    def create(self):
        """Create the physical storage."""

    @abstractmethod
    def drop(self):
        """Delete the physical storage."""

    # ------------------------------------------------------------------
    # Writes.
    # ------------------------------------------------------------------
    @abstractmethod
    def insert_rows(self, rows, overwrite=False):
        """Append (or replace with) fully-coerced row tuples."""

    # ------------------------------------------------------------------
    # Reads.
    # ------------------------------------------------------------------
    @abstractmethod
    def scan_splits(self, projection=None, ranges=None):
        """InputSplits covering the table for the given access pattern."""

    @abstractmethod
    def read_split(self, split, ctx):
        """Yield row tuples (in projection order) for one split."""

    def read_split_batches(self, split, ctx, batch_rows=None):
        """Yield :class:`~repro.vector.ColumnBatch` objects for one split.

        Columnar sibling of :meth:`read_split` with identical charges
        and row content — only the container differs.  This default
        buffers the row iterator into batches; handlers with a native
        columnar path (ORC-backed storage) override it to hand out
        decoded stripe columns directly.
        """
        from repro.vector import DEFAULT_BATCH_ROWS, batch_from_rows

        batch_rows = batch_rows or DEFAULT_BATCH_ROWS
        buffer = []
        for values in self.read_split(split, ctx):
            buffer.append(values)
            if len(buffer) >= batch_rows:
                yield batch_from_rows(buffer, len(buffer[0]))
                buffer = []
        if buffer:
            yield batch_from_rows(buffer, len(buffer[0]))

    # ------------------------------------------------------------------
    # Statistics.
    # ------------------------------------------------------------------
    @abstractmethod
    def data_bytes(self):
        """Total stored bytes (the cost model's D)."""

    @abstractmethod
    def row_count(self):
        """Exact or estimated row count (no data read)."""

    def avg_row_bytes(self):
        rows = self.row_count()
        return (self.data_bytes() / rows) if rows else 0.0

    # ------------------------------------------------------------------
    # Convenience.
    # ------------------------------------------------------------------
    def read_all_rows(self, projection=None, ranges=None, ctx=None):
        """Non-MR read of every row (still charged). For tests/tools."""
        for split in self.scan_splits(projection, ranges):
            yield from self.read_split(split, ctx)
