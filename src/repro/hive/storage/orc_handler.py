"""Plain Hive storage: a directory of ORC files on HDFS.

This is the baseline "Hive(HDFS)" system of the paper's evaluation.  It
reads fast (columnar projection + stripe pruning) but supports no row
mutation: the session lowers UPDATE/DELETE to a full INSERT OVERWRITE
(Listing 2 in the paper).
"""

from repro.common.errors import HiveError
from repro.mapreduce import InputSplit
from repro.orc import OrcReader, OrcWriter
from repro.hive.pushdown import make_stripe_filter
from repro.hive.storage.base import StorageHandler

DEFAULT_ROWS_PER_FILE = 50_000
DEFAULT_STRIPE_ROWS = 5_000


class OrcHdfsHandler(StorageHandler):
    """ORC-on-HDFS table storage."""

    kind = "orc"
    supports_inplace_mutation = False

    def __init__(self, table, env):
        super().__init__(table, env)
        self.location = "/warehouse/%s" % table.name
        props = table.properties
        self.rows_per_file = int(props.get("orc.rows_per_file",
                                           DEFAULT_ROWS_PER_FILE))
        self.stripe_rows = int(props.get("orc.stripe_rows",
                                         DEFAULT_STRIPE_ROWS))

    @property
    def fs(self):
        return self.env.fs

    # ------------------------------------------------------------------
    def create(self):
        self.fs.mkdirs(self.location)

    def drop(self):
        if self.fs.exists(self.location):
            self.fs.delete(self.location, recursive=True)

    def file_paths(self):
        if not self.fs.exists(self.location):
            return []
        return [p for p in self.fs.list_files(self.location)
                if p.endswith(".orc")]

    # ------------------------------------------------------------------
    def insert_rows(self, rows, overwrite=False):
        rows = list(rows)
        if overwrite:
            target = self.location + ".__tmp__"
            if self.fs.exists(target):
                self.fs.delete(target, recursive=True)
            self.fs.mkdirs(target)
            start_index = 0
        else:
            target = self.location
            start_index = len(self.file_paths())
        written = self._write_files(target, rows, start_index)
        if overwrite:
            self.drop()
            self.fs.rename(target, self.location)
        return written

    def _write_files(self, directory, rows, start_index,
                     metadata_fn=None):
        orc_schema = self.schema.orc_schema()
        paths = []
        for chunk_no, start in enumerate(range(0, max(len(rows), 1),
                                               self.rows_per_file)):
            chunk = rows[start:start + self.rows_per_file]
            if not chunk and chunk_no > 0:
                break
            index = start_index + chunk_no
            metadata = metadata_fn(index) if metadata_fn else {}
            writer = OrcWriter(orc_schema, stripe_rows=self.stripe_rows,
                               metadata=metadata)
            writer.write_rows(chunk)
            path = "%s/part-%05d.orc" % (directory, index)
            self.fs.write_file(path, writer.finish())
            paths.append(path)
        return paths

    # ------------------------------------------------------------------
    def scan_splits(self, projection=None, ranges=None):
        splits = []
        for path in self.file_paths():
            reader = self._reader(path)
            nbytes = reader.projected_bytes(
                list(projection) if projection else None)
            splits.append(InputSplit(
                payload={"path": path,
                         "projection": list(projection) if projection else None,
                         "ranges": ranges or {}},
                size_bytes=nbytes,
                label=path))
        return splits

    def read_split(self, split, ctx):
        payload = split.payload
        reader = self._reader(payload["path"])
        stripe_filter = make_stripe_filter(
            [n for n, _ in reader.schema], payload["ranges"] or {})
        for _, values in reader.rows(projection=payload["projection"],
                                     stripe_filter=stripe_filter):
            yield values

    def read_split_batches(self, split, ctx, batch_rows=None):
        """Native columnar read: decoded stripe columns, zero-copy."""
        payload = split.payload
        reader = self._reader(payload["path"])
        stripe_filter = make_stripe_filter(
            [n for n, _ in reader.schema], payload["ranges"] or {})
        yield from reader.batches(projection=payload["projection"],
                                  stripe_filter=stripe_filter,
                                  batch_rows=batch_rows)

    def _reader(self, path):
        return OrcReader(self.fs, path)

    # ------------------------------------------------------------------
    def data_bytes(self):
        return sum(self.fs.file_size(p) for p in self.file_paths())

    def row_count(self):
        total = 0
        for path in self.file_paths():
            total += self._reader(path).num_rows
        return total

    def readers(self):
        """ORC readers over every file (used for stats estimation)."""
        return [self._reader(p) for p in self.file_paths()]

    def validate_rows(self, rows):
        coerce = self.schema.coerce_row
        return [coerce(r) for r in rows]

    def ensure_exists(self):
        if not self.fs.exists(self.location):
            raise HiveError("table storage missing: %s" % self.location)
