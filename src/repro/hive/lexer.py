"""Tokenizer for the HiveQL dialect.

Produces a flat token stream of keywords, identifiers, literals, operators
and punctuation.  Keywords are case-insensitive; identifiers preserve case
but compare case-insensitively downstream.
"""

from repro.common.errors import ParseError

KEYWORDS = {
    "select", "from", "where", "group", "by", "having", "order", "limit",
    "insert", "into", "overwrite", "table", "values", "update", "set",
    "delete", "create", "drop", "if", "exists", "not", "and", "or",
    "join", "inner", "left", "right", "full", "outer", "on", "as",
    "between", "in", "like", "is", "null", "true", "false", "asc", "desc",
    "stored", "tblproperties", "distinct", "case", "when", "then", "else",
    "end", "compact", "show", "tables", "describe", "union", "all",
    "merge", "using", "matched", "explain", "partitioned",
    "partition", "partitions", "alter", "view",
}

OPERATORS = ("<=", ">=", "<>", "!=", "==", "=", "<", ">", "+", "-", "*",
             "/", "%", "||")

PUNCTUATION = ("(", ")", ",", ".", ";")


class Token:
    __slots__ = ("kind", "value", "pos")

    def __init__(self, kind, value, pos):
        self.kind = kind     # 'kw', 'ident', 'number', 'string', 'op', 'punct', 'eof'
        self.value = value
        self.pos = pos

    def __repr__(self):
        return "Token(%s, %r)" % (self.kind, self.value)


def tokenize(text):
    tokens = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and text[i:i + 2] == "--":
            end = text.find("\n", i)
            i = n if end < 0 else end + 1
            continue
        if ch == "/" and text[i:i + 2] == "/*":
            end = text.find("*/", i)
            if end < 0:
                raise ParseError("unterminated block comment", i)
            i = end + 2
            continue
        if ch == "'" or ch == '"':
            quote = ch
            j = i + 1
            buf = []
            while j < n:
                if text[j] == quote:
                    if text[j:j + 2] == quote * 2:   # escaped quote
                        buf.append(quote)
                        j += 2
                        continue
                    break
                buf.append(text[j])
                j += 1
            else:
                raise ParseError("unterminated string literal", i)
            tokens.append(Token("string", "".join(buf), i))
            i = j + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            seen_dot = False
            seen_exp = False
            while j < n:
                c = text[j]
                if c.isdigit():
                    j += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    j += 1
                elif c in "eE" and not seen_exp and j > i:
                    seen_exp = True
                    j += 1
                    if j < n and text[j] in "+-":
                        j += 1
                else:
                    break
            literal = text[i:j]
            value = float(literal) if (seen_dot or seen_exp) else int(literal)
            tokens.append(Token("number", value, i))
            i = j
            continue
        if ch.isalpha() or ch == "_" or ch == "`":
            if ch == "`":
                end = text.find("`", i + 1)
                if end < 0:
                    raise ParseError("unterminated backtick identifier", i)
                tokens.append(Token("ident", text[i + 1:end], i))
                i = end + 1
                continue
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            lower = word.lower()
            if lower in KEYWORDS:
                tokens.append(Token("kw", lower, i))
            else:
                tokens.append(Token("ident", word, i))
            i = j
            continue
        matched = False
        normalize = {"<>": "!=", "==": "="}
        for op in OPERATORS:
            if text.startswith(op, i):
                tokens.append(Token("op", normalize.get(op, op), i))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in PUNCTUATION:
            tokens.append(Token("punct", ch, i))
            i += 1
            continue
        raise ParseError("unexpected character %r" % ch, i)
    tokens.append(Token("eof", None, n))
    return tokens
