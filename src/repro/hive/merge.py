"""MERGE INTO execution (the proprietary upsert of the paper's Table I).

Semantics implemented (classic Oracle-style MERGE, which is what the grid
stored procedures used):

* the ON condition must contain at least one target=source equi-conjunct;
* each target row joining a source row on those keys is updated with the
  ``WHEN MATCHED`` assignments (expressions may reference both sides);
* source rows that matched no target row are inserted via the
  ``WHEN NOT MATCHED`` value list (expressions over the source row);
* when several source rows share a key, the first one wins.

Per storage backend the *update* arm follows the same plans as UPDATE:

* plain ORC       → full INSERT OVERWRITE rewrite,
* HBase           → in-place puts,
* DualTable       → EDIT (attached-table cells) or OVERWRITE, chosen by
                    the Section-IV cost model with α = |source| / |target|,
* ACID            → a new delta with the full updated rows.

The insert arm appends through the handler's normal insert path.
"""

from repro.common.errors import AnalysisError
from repro.mapreduce import Job
from repro.hive import ast_nodes as ast
from repro.hive.executor import SelectExecutor, merge_envs
from repro.hive.expressions import Env, compile_expr, referenced_columns, walk


def execute_merge(session, stmt):
    from repro.hive.session import QueryResult

    info = session.metastore.table(stmt.target)
    handler = info.handler
    target_alias = stmt.alias or stmt.target

    source_rows, source_env = _load_source(session, stmt)
    target_env = Env()
    target_env.add_schema(info.schema.names, alias=target_alias)
    target_keys, source_keys = _split_merge_condition(
        stmt.condition, target_env, source_env)

    source_key_fns = [compile_expr(e, source_env) for e in source_keys]
    source_index = {}
    for row in source_rows:
        key = tuple(fn(row) for fn in source_key_fns)
        source_index.setdefault(key, row)       # first source row wins
    matched_keys = set()

    # Columns of the *target* the update expressions and keys touch —
    # determines the EDIT plan's projection.
    needed = set()
    for expr in target_keys:
        needed |= referenced_columns(expr)
    for _, expr in stmt.matched_assignments:
        for node in walk(expr):
            if isinstance(node, ast.ColumnRef) \
                    and info.schema.has_column(node.name) \
                    and (node.qualifier is None
                         or node.qualifier.lower() == target_alias.lower()):
                needed.add(node.name.lower())

    if stmt.matched_assignments:
        update_result = _apply_matched(session, info, stmt, target_alias,
                                       target_keys, source_index,
                                       matched_keys, source_env, needed)
    else:
        # Insert-only merge still needs to know which keys already exist.
        _mark_existing_keys(session, info, target_alias, target_keys,
                            source_index, matched_keys)
        jobs = list(session._dml_subquery_jobs)
        update_result = QueryResult(
            plan="merge-insert-only", affected=0, jobs=jobs,
            sim_seconds=sum(j.sim_seconds for j in jobs))

    inserted = 0
    insert_seconds = 0.0
    if stmt.insert_values is not None:
        insert_fns = [compile_expr(e, source_env)
                      for e in stmt.insert_values]
        new_rows = []
        for key, row in source_index.items():
            if key not in matched_keys:
                new_rows.append(info.schema.coerce_row(
                    tuple(fn(row) for fn in insert_fns)))
        if new_rows:
            insert_seconds = session._charged_parallel(
                lambda: handler.insert_rows(new_rows, overwrite=False))
        inserted = len(new_rows)

    detail = dict(update_result.detail)
    detail.update({"matched": update_result.affected or 0,
                   "inserted": inserted,
                   "source_rows": len(source_rows)})
    return QueryResult(
        sim_seconds=update_result.sim_seconds + insert_seconds,
        jobs=update_result.jobs,
        affected=(update_result.affected or 0) + inserted,
        plan="merge(update=%s)" % (detail.get("plan") or update_result.plan),
        detail=detail)


# ----------------------------------------------------------------------
def _mark_existing_keys(session, info, target_alias, target_keys,
                        source_index, matched_keys):
    """Scan only the key columns to find which source keys already exist."""
    handler = info.handler
    needed = set()
    for expr in target_keys:
        needed |= referenced_columns(expr)
    projection = [c.name for c in info.schema
                  if c.name.lower() in needed] or [info.schema.columns[0].name]
    env = Env()
    env.add_schema(projection, alias=target_alias)
    key_fns = [compile_expr(e, env) for e in target_keys]
    splits = handler.scan_splits(projection)

    def map_fn(split, ctx):
        for values in handler.read_split(split, ctx):
            key = tuple(fn(values) for fn in key_fns)
            if key in source_index:
                matched_keys.add(key)
        return ()

    result = session.runner.run(Job(name="merge-probe", splits=splits,
                                    map_fn=map_fn, reduce_fn=None))
    session._dml_subquery_jobs = session._dml_subquery_jobs + [result]


def _load_source(session, stmt):
    """Materialize the USING source; returns (rows, env bound to alias)."""
    select = ast.SelectStmt(items=[ast.SelectItem(expr=ast.Star())],
                            source=stmt.source)
    executor = SelectExecutor(session)
    result = executor.run(select)
    session._dml_subquery_jobs = executor.jobs
    env = Env()
    env.add_schema(result.names, alias=stmt.source.binding)
    return result.rows, env


def _split_merge_condition(condition, target_env, source_env):
    """Equi key expression lists (target side, source side)."""
    target_keys, source_keys = [], []
    for conjunct in _conjuncts(condition):
        if not (isinstance(conjunct, ast.BinaryOp) and conjunct.op == "="):
            raise AnalysisError(
                "MERGE ON supports only equi-conjuncts, got %r" % conjunct)
        left_t = _resolvable(conjunct.left, target_env)
        left_s = _resolvable(conjunct.left, source_env)
        right_t = _resolvable(conjunct.right, target_env)
        right_s = _resolvable(conjunct.right, source_env)
        if left_t and right_s and not left_s:
            target_keys.append(conjunct.left)
            source_keys.append(conjunct.right)
        elif right_t and left_s and not right_s:
            target_keys.append(conjunct.right)
            source_keys.append(conjunct.left)
        else:
            raise AnalysisError(
                "MERGE ON conjunct must compare a target column with a "
                "source expression: %r" % conjunct)
    if not target_keys:
        raise AnalysisError("MERGE ON needs at least one equi-conjunct")
    return target_keys, source_keys


def _conjuncts(expr):
    if isinstance(expr, ast.LogicalOp) and expr.op == "and":
        for operand in expr.operands:
            yield from _conjuncts(operand)
    else:
        yield expr


def _resolvable(expr, env):
    cols = [n for n in walk(expr) if isinstance(n, ast.ColumnRef)]
    if not cols:
        return False
    for col in cols:
        try:
            env.resolve(col)
        except AnalysisError:
            return False
    return True


# ----------------------------------------------------------------------
def _apply_matched(session, info, stmt, target_alias, target_keys,
                   source_index, matched_keys, source_env, needed):
    """Run the update arm; dispatch mirrors UPDATE's storage dispatch."""
    from repro.hive.session import QueryResult

    handler = info.handler
    kind = handler.kind
    if kind == "dualtable":
        return _merge_dualtable(session, info, stmt, target_alias,
                                target_keys, source_index, matched_keys,
                                source_env, needed)
    if kind == "hbase":
        return _merge_hbase(session, info, stmt, target_alias, target_keys,
                            source_index, matched_keys, source_env)
    if kind == "acid":
        return _merge_acid(session, info, stmt, target_alias, target_keys,
                           source_index, matched_keys, source_env)
    return _merge_overwrite(session, info, stmt, target_alias, target_keys,
                            source_index, matched_keys, source_env)


def _compiled_parts(info, stmt, target_alias, target_keys, source_env,
                    projection=None):
    """Key fns over the target tuple + assignment fns over (target+source)."""
    schema = info.schema
    target_env = Env()
    target_env.add_schema(projection or schema.names, alias=target_alias)
    key_fns = [compile_expr(e, target_env) for e in target_keys]
    combined = merge_envs(target_env, source_env)
    assigns = [(schema.index_of(name), compile_expr(expr, combined))
               for name, expr in stmt.matched_assignments]
    return key_fns, assigns


def _merge_overwrite(session, info, stmt, target_alias, target_keys,
                     source_index, matched_keys, source_env):
    from repro.hive.session import QueryResult

    handler = info.handler
    key_fns, assigns = _compiled_parts(info, stmt, target_alias,
                                       target_keys, source_env)
    splits = handler.scan_splits(projection=None, ranges=None)

    def map_fn(split, ctx):
        for values in handler.read_split(split, ctx):
            key = tuple(fn(values) for fn in key_fns)
            source_row = source_index.get(key)
            if source_row is None:
                yield values
                continue
            matched_keys.add(key)
            ctx.incr("updated")
            combined = values + source_row
            row = list(values)
            for idx, fn in assigns:
                row[idx] = fn(combined)
            yield tuple(row)

    job = Job(name="merge-overwrite", splits=splits, map_fn=map_fn,
              reduce_fn=None)
    result = session.runner.run(job)
    rows = [info.schema.coerce_row(r) for r in result.outputs]
    write_seconds = session._charged_parallel(
        lambda: handler.insert_rows(rows, overwrite=True))
    jobs = session._dml_subquery_jobs + [result]
    sub = sum(j.sim_seconds for j in session._dml_subquery_jobs)
    return QueryResult(sim_seconds=sub + result.sim_seconds + write_seconds,
                       jobs=jobs,
                       affected=result.counters.get("updated", 0),
                       plan="merge-overwrite",
                       detail={"plan": "overwrite"})


def _merge_hbase(session, info, stmt, target_alias, target_keys,
                 source_index, matched_keys, source_env):
    from repro.hive.session import QueryResult, _hbase_rows_with_keys

    handler = info.handler
    key_fns, assigns = _compiled_parts(info, stmt, target_alias,
                                       target_keys, source_env)
    splits = handler.scan_splits(projection=None)

    def map_fn(split, ctx):
        pending = []
        for rowkey, values in _hbase_rows_with_keys(handler,
                                                    dict(split.payload),
                                                    ctx):
            key = tuple(fn(values) for fn in key_fns)
            source_row = source_index.get(key)
            if source_row is None:
                continue
            matched_keys.add(key)
            combined = values + source_row
            pending.append((rowkey,
                            {idx: fn(combined) for idx, fn in assigns}))
        for rowkey, new_values in pending:
            ctx.incr("updated")
            handler.update_row(rowkey, new_values)
        return ()

    # In-place writes during the map phase: keep off the worker pool so
    # HBase timestamp allocation follows split order.
    job = Job(name="merge-hbase", splits=splits, map_fn=map_fn,
              reduce_fn=None, properties={"parallel": False})
    result = session.runner.run(job)
    jobs = session._dml_subquery_jobs + [result]
    sub = sum(j.sim_seconds for j in session._dml_subquery_jobs)
    return QueryResult(sim_seconds=sub + result.sim_seconds, jobs=jobs,
                       affected=result.counters.get("updated", 0),
                       plan="merge-hbase", detail={"plan": "hbase"})


def _merge_dualtable(session, info, stmt, target_alias, target_keys,
                     source_index, matched_keys, source_env, needed):
    from repro.core.udtf import update_udtf
    from repro.hive.session import QueryResult

    handler = info.handler
    total_rows = handler.master.row_count()
    ratio = min(1.0, len(source_index) / total_rows) if total_rows else 0.0
    d_bytes = handler.master.data_bytes()
    update_cell_bytes = 12 + 18 * len(stmt.matched_assignments)
    projection = [c.name for c in info.schema
                  if c.name.lower() in needed] or [info.schema.columns[0].name]
    scan_bytes = sum(r.projected_bytes(projection)
                     for r in handler.master.readers())
    choice = handler.cost_model().choose_update_plan(
        d_bytes, total_rows, ratio, update_cell_bytes,
        edit_scan_bytes=scan_bytes)
    plan = handler._forced_or(choice.plan)
    detail = handler._detail(choice, plan)
    if plan == "overwrite":
        result = _merge_overwrite(session, info, stmt, target_alias,
                                  target_keys, source_index, matched_keys,
                                  source_env)
        result.detail.update(detail)
        result.detail["plan"] = "overwrite"
        return result

    key_fns, assigns = _compiled_parts(info, stmt, target_alias,
                                       target_keys, source_env,
                                       projection=projection)
    splits = handler.scan_splits(projection, ranges=None)

    def map_fn(split, ctx):
        # Sharded tables resolve the split's deltas to the owning
        # child's Attached Table; single tables hand back their own.
        attached = handler.attached_for_split(split)
        for record_id, values in handler.read_split_with_rids(split, ctx):
            key = tuple(fn(values) for fn in key_fns)
            source_row = source_index.get(key)
            if source_row is None:
                continue
            matched_keys.add(key)
            combined = values + source_row
            new_values = {idx: fn(combined) for idx, fn in assigns}
            update_udtf(attached, record_id, new_values, ctx)
        return ()

    # update_udtf writes straight into the Attached Table from the map
    # phase (no staging buffer), so put order must follow split order.
    job = Job(name="merge-edit", splits=splits, map_fn=map_fn,
              reduce_fn=None, properties={"parallel": False})
    result = session.runner.run(job)
    jobs = session._dml_subquery_jobs + [result]
    sub = sum(j.sim_seconds for j in session._dml_subquery_jobs)
    return QueryResult(sim_seconds=sub + result.sim_seconds, jobs=jobs,
                       affected=result.counters.get("updated", 0),
                       plan="merge-edit", detail=detail)


def _merge_acid(session, info, stmt, target_alias, target_keys,
                source_index, matched_keys, source_env):
    from repro.hive.session import QueryResult

    handler = info.handler
    key_fns, assigns = _compiled_parts(info, stmt, target_alias,
                                       target_keys, source_env)
    splits = handler.scan_splits(projection=None)

    def map_fn(split, ctx):
        for rid, values in handler.read_split_with_rids(split, ctx):
            key = tuple(fn(values) for fn in key_fns)
            source_row = source_index.get(key)
            if source_row is None:
                continue
            matched_keys.add(key)
            ctx.incr("updated")
            combined = values + source_row
            row = list(values)
            for idx, fn in assigns:
                row[idx] = fn(combined)
            yield (rid, "U", tuple(row))

    job = Job(name="merge-acid", splits=splits, map_fn=map_fn,
              reduce_fn=None)
    result = session.runner.run(job)
    write_seconds = session._charged_parallel(
        lambda: handler._write_delta(result.outputs))
    jobs = session._dml_subquery_jobs + [result]
    sub = sum(j.sim_seconds for j in session._dml_subquery_jobs)
    return QueryResult(sim_seconds=sub + result.sim_seconds + write_seconds,
                       jobs=jobs,
                       affected=result.counters.get("updated", 0),
                       plan="merge-acid-delta", detail={"plan": "delta"})
