"""``dualtable-sql``: an interactive HiveQL shell over a simulated cluster.

Example session::

    $ dualtable-sql
    hive> CREATE TABLE t (id int, v string) STORED AS DUALTABLE;
    OK (0.00 simulated seconds)
    hive> INSERT INTO t VALUES (1, 'a'), (2, 'b');
    2 row(s) affected (0.00 simulated seconds)
    hive> UPDATE t SET v = 'x' WHERE id = 1;
    1 row(s) affected via plan 'edit' (...)
    hive> SELECT * FROM t;
    ...

Shell commands: ``!tables``, ``!ledger``, ``!scale N``, ``!help``,
``quit``/``exit``.
"""

import sys

from repro import obs
from repro.bench.runners import bench_profile
from repro.common.errors import ReproError
from repro.common.units import fmt_bytes, fmt_seconds
from repro.hive.session import HiveSession
from repro.bench.report import format_table

PROMPT = "hive> "
CONTINUATION = "   .> "

HELP_TEXT = """\
Statements end with ';'. Supported: CREATE TABLE ... [PARTITIONED BY
(...)] STORED AS {ORC|HBASE|DUALTABLE|ACID}, CREATE VIEW, DROP, INSERT
[PARTITION (...)], SELECT (joins/group by/subqueries/UNION ALL), UPDATE,
DELETE, MERGE INTO, COMPACT [PARTIAL [n]], EXPLAIN [ANALYZE], SHOW
TABLES, SHOW PARTITIONS, SHOW METRICS [LIKE 'glob'], SHOW COMPACTIONS,
SHOW SESSIONS, SHOW SERVER STATS (the last two need a server front
end), SHOW ADVISOR, ANALYZE WORKLOAD [APPLY] (workload advisor:
findings + remediations; APPLY executes them), DESCRIBE,
ALTER TABLE ... DROP PARTITION,
ALTER TABLE t SET AUTOCOMPACT (ON|OFF[, horizon = h, max_files = k]),
ALTER TABLE t SET DUALTABLE (read_factor = k[, mode = 'cost']).

Shell commands:
  !tables          list tables with storage kind and row counts
  !ledger          simulated-I/O totals per subsystem
  !scale N         set byte/op scale (emulate N-x larger data)
  !help            this text
  TRACE ON|OFF     toggle span tracing (per-statement I/O deltas)
  TRACE EXPORT F   write collected spans to F as Chrome trace JSON
  quit / exit      leave the shell
"""


class HiveShell:
    """Line-oriented REPL around one HiveSession."""

    def __init__(self, session=None, out=None):
        self.session = session or HiveSession(profile=bench_profile("shell"))
        self.out = out or sys.stdout

    # ------------------------------------------------------------------
    def _print(self, text=""):
        self.out.write(text + "\n")

    def handle_line(self, line):
        """Process one complete input (statement or shell command).

        Returns False when the shell should exit.
        """
        stripped = line.strip().rstrip(";").strip()
        if not stripped:
            return True
        lowered = stripped.lower()
        if lowered in ("quit", "exit"):
            return False
        if stripped.startswith("!"):
            self._shell_command(stripped[1:])
            return True
        if lowered.split() and lowered.split()[0] == "trace":
            self._trace_command(stripped.split()[1:])
            return True
        before = (self.session.cluster.ledger.snapshot()
                  if self.session.cluster.tracer.enabled else None)
        try:
            result = self.session.execute(stripped)
        except ReproError as exc:
            self._print("ERROR: %s" % exc)
            return True
        self._render(result)
        if before is not None:
            self._render_delta(self.session.cluster.ledger.diff(before))
        return True

    def _trace_command(self, args):
        tracer = self.session.cluster.tracer
        mode = args[0].lower() if args else ""
        if mode == "on":
            tracer.enable()
            self._print("tracing ON (spans recorded; per-statement I/O "
                        "deltas shown)")
        elif mode == "off":
            tracer.disable()
            self._print("tracing OFF (%d span(s) retained; TRACE EXPORT "
                        "<file> to save)" % len(tracer.spans))
        elif mode == "export" and len(args) == 2:
            doc = obs.export.tracer_trace(
                tracer, metrics=self.session.cluster.metrics.snapshot(),
                label="shell")
            obs.export.write_trace(args[1], doc)
            self._print("wrote %d span(s) to %s"
                        % (len(tracer.spans), args[1]))
        else:
            self._print("usage: TRACE ON | TRACE OFF | TRACE EXPORT <file>")

    def _render_delta(self, delta):
        parts = sorted(delta["seconds"].items(), key=lambda kv: -kv[1])
        if not parts:
            return
        self._print("io: " + "; ".join(
            "%s.%s %s/%s" % (sub, op,
                             fmt_bytes(delta["bytes"].get((sub, op), 0)),
                             fmt_seconds(secs))
            for (sub, op), secs in parts[:6]))

    def _render(self, result):
        if result.rows:
            self._print(format_table(result.names or ["value"],
                                     result.rows[:100]))
            if len(result.rows) > 100:
                self._print("... (%d more rows)" % (len(result.rows) - 100))
        timing = fmt_seconds(result.sim_seconds)
        if result.affected is not None:
            plan = result.detail.get("plan")
            via = " via plan '%s'" % plan if plan else ""
            self._print("%d row(s) affected%s (%s simulated)"
                        % (result.affected, via, timing))
        elif result.rows:
            self._print("%d row(s) (%s simulated)"
                        % (len(result.rows), timing))
        else:
            self._print("OK (%s simulated)" % timing)

    # ------------------------------------------------------------------
    def _shell_command(self, command):
        parts = command.split()
        name = parts[0].lower() if parts else ""
        if name == "help":
            self._print(HELP_TEXT)
        elif name == "tables":
            rows = []
            for table in self.session.metastore.list_tables():
                info = self.session.metastore.table(table)
                rows.append((table, info.storage,
                             info.handler.row_count()))
            if rows:
                self._print(format_table(["table", "storage", "~rows"],
                                         rows))
            else:
                self._print("(no tables)")
        elif name == "ledger":
            ledger = self.session.cluster.ledger
            rows = sorted(
                (subsystem, op, nbytes,
                 round(ledger.seconds_by_key[(subsystem, op)], 3))
                for (subsystem, op), nbytes in ledger.bytes_by_key.items())
            self._print(format_table(
                ["subsystem", "op", "bytes", "sim_seconds"], rows))
            self._print("total simulated seconds: %.2f"
                        % ledger.total_seconds)
        elif name == "scale" and len(parts) == 2:
            factor = float(parts[1])
            profile = self.session.cluster.profile
            profile.byte_scale = factor
            profile.op_scale = factor
            self._print("byte_scale = op_scale = %g" % factor)
        else:
            self._print("unknown shell command; try !help")

    # ------------------------------------------------------------------
    def run(self, stdin=None):
        stdin = stdin or sys.stdin
        self._print("DualTable simulated warehouse. Type !help for help.")
        buffer = []
        interactive = stdin is sys.stdin and stdin.isatty()
        while True:
            prompt = PROMPT if not buffer else CONTINUATION
            if interactive:
                try:
                    line = input(prompt)
                except EOFError:
                    break
            else:
                line = stdin.readline()
                if not line:
                    break
                line = line.rstrip("\n")
            buffer.append(line)
            joined = " ".join(buffer).strip()
            if joined.startswith("!") or joined.lower() in ("quit", "exit") \
                    or joined.endswith(";") or not joined:
                buffer = []
                if not self.handle_line(joined):
                    break
        self._print("bye")


def main(argv=None):
    shell = HiveShell()
    shell.run()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
