"""Batch expression compilation for the vectorized engine.

:func:`compile_batch` turns an AST expression into a closure
``fn(columns, n) -> list`` evaluating all ``n`` rows at once, built from
the same NULL-aware primitives the row compiler uses
(:mod:`repro.hive.expressions`), so both paths share one semantics.

Two escape hatches keep the batch path exactly row-equivalent:

* **uncompilable nodes** — an expression containing a node the
  vectorizer has no handler for falls back to the interpreted row
  closure applied row-by-row over the batch;
* **exception divergence** — the batch form evaluates sub-expressions
  eagerly over whole columns, where the row form short-circuits (AND/OR
  stop at the first False/True, CASE evaluates only the matched branch).
  An expression like ``flag AND ('a' + 1 > 0)`` raises eagerly but not
  under short-circuiting, so any exception from a vectorized closure is
  caught and the batch re-evaluated with the row closure — expressions
  are pure, so this reproduces row-path behavior bit-for-bit, including
  *where* an error surfaces.
"""

import operator

from repro.hive import ast_nodes as ast
from repro.hive.expressions import (SCALAR_FUNCTIONS, SlotRef, _BINARY,
                                    compile_expr, is_true, like_to_regex)

#: C-level forms of the NULL-stripped binary ops, used by the
#: ``col <op> literal`` fast path once the NULL/type checks are hoisted
#: out of the inner comprehension.  ``/ % ||`` stay on the generic
#: wrappers (extra semantics: div-by-zero -> NULL, str coercion).
_RAW_ARITH = {"+": operator.add, "-": operator.sub, "*": operator.mul}
_RAW_CMP = {"=": operator.eq, "!=": operator.ne, "<": operator.lt,
            "<=": operator.le, ">": operator.gt, ">=": operator.ge}


class Unvectorizable(Exception):
    """Internal: no batch form for this node; use the row fallback."""


def compile_batch(expr, env):
    """Compile ``expr`` into ``fn(columns, n) -> list`` of n values.

    Semantically identical to mapping ``compile_expr(expr, env)`` over
    the batch's rows (see module docstring); analysis errors (unknown
    columns, aggregates in scalar context...) are raised at compile
    time, exactly as the row compiler raises them.
    """
    row_fn = compile_expr(expr, env)    # validates; the fallback path

    def interpret(cols, n):
        if cols:
            return [row_fn(values) for values in zip(*cols)]
        return [row_fn(()) for _ in range(n)]

    try:
        vec = _vectorize(expr, env)
    except Unvectorizable:
        return interpret

    def apply(cols, n):
        try:
            return vec(cols, n)
        except Exception:
            # Eager whole-column evaluation raised where the row path
            # may short-circuit past the failing operand; re-run this
            # batch row-at-a-time so results *and* errors match.
            return interpret(cols, n)
    return apply


def compile_batch_predicate(expr, env):
    """Compile a WHERE filter into ``fn(batch) -> batch``.

    Applies SQL WHERE semantics (only TRUE survives) and compacts the
    batch; returns the input batch unchanged when every row passes.

    A top-level conjunction is decomposed: ``a AND b AND c`` keeps a row
    iff every conjunct is individually TRUE (three-valued AND is TRUE
    only when all operands are TRUE, and NULL never passes WHERE), so
    the flag columns merge in one zip pass instead of per-operand
    three-valued merge passes.
    """
    row_fn = compile_expr(expr, env)    # validates; the fallback path

    def row_filter(batch):
        keep = [i for i, values in enumerate(batch.rows())
                if is_true(row_fn(values))]
        if len(keep) == batch.length:
            return batch
        return batch.take(keep)

    try:
        fns = [_vectorize(c, env) for c in _conjuncts(expr)]
    except Unvectorizable:
        return row_filter

    def apply(batch):
        cols, n = batch.columns, batch.length
        try:
            flag_cols = [fn(cols, n) for fn in fns]
            # Keep a row iff every conjunct is TRUE; the 2- and 3-way
            # forms inline the checks (no per-row all() generator).
            if len(flag_cols) == 1:
                keep = [i for i, v in enumerate(flag_cols[0])
                        if v is not None and v is not False and v != 0]
            elif len(flag_cols) == 2:
                keep = [i for i, (a, b) in
                        enumerate(zip(flag_cols[0], flag_cols[1]))
                        if a is not None and a is not False and a != 0
                        and b is not None and b is not False and b != 0]
            elif len(flag_cols) == 3:
                keep = [i for i, (a, b, c) in
                        enumerate(zip(flag_cols[0], flag_cols[1],
                                      flag_cols[2]))
                        if a is not None and a is not False and a != 0
                        and b is not None and b is not False and b != 0
                        and c is not None and c is not False and c != 0]
            else:
                keep = [i for i, vals in enumerate(zip(*flag_cols))
                        if all(v is not None and v is not False and v != 0
                               for v in vals)]
        except Exception:
            # Same shield as compile_batch: eager conjunct evaluation
            # can raise where the row path short-circuits past it.
            return row_filter(batch)
        if len(keep) == n:
            return batch
        return batch.take(keep)
    return apply


def _conjuncts(expr):
    """Flatten nested top-level ANDs into a conjunct list."""
    if isinstance(expr, ast.LogicalOp) and expr.op == "and":
        out = []
        for operand in expr.operands:
            out.extend(_conjuncts(operand))
        return out
    return [expr]


# ----------------------------------------------------------------------
# Vectorizers (one per AST node type; dispatch by exact type so a test
# can exercise the interpreted fallback by removing an entry).
# ----------------------------------------------------------------------
def _vectorize(expr, env):
    handler = VECTORIZERS.get(type(expr))
    if handler is None:
        raise Unvectorizable(type(expr).__name__)
    return handler(expr, env)


def _vec_literal(expr, env):
    value = expr.value
    return lambda cols, n: [value] * n


def _vec_slotref(expr, env):
    index = expr.index
    return lambda cols, n: cols[index]


def _vec_columnref(expr, env):
    index = env.resolve(expr)
    return lambda cols, n: cols[index]


def _vec_binary(expr, env):
    fn = _BINARY.get(expr.op)
    if fn is None:
        raise Unvectorizable(expr.op)
    # Constant operands skip the [value]*n materialization — the common
    # ``col <op> literal`` predicate runs as one tight comprehension.
    if isinstance(expr.right, ast.Literal):
        inner = _vectorize(expr.left, env)
        return _vec_binary_literal(expr.op, fn, inner, expr.right.value,
                                   literal_on_left=False)
    if isinstance(expr.left, ast.Literal):
        inner = _vectorize(expr.right, env)
        return _vec_binary_literal(expr.op, fn, inner, expr.left.value,
                                   literal_on_left=True)
    left = _vectorize(expr.left, env)
    right = _vectorize(expr.right, env)
    return lambda cols, n: [fn(a, b)
                            for a, b in zip(left(cols, n), right(cols, n))]


def _vec_binary_literal(op, fn, inner, k, literal_on_left):
    """Fast forms of ``col <op> k`` / ``k <op> col``.

    Every ``_BINARY`` op is NULL-absorbing, so a NULL literal yields a
    NULL column (the value operand is still evaluated: the row path
    evaluates both operands before the NULL check, so an error raised
    by the value side must still surface).  A non-NULL literal hoists
    the per-element NULL check into the comprehension and, for ``+ - *``
    and comparisons over same-typed operands, runs the C-level operator
    directly instead of the null-aware wrapper pair.
    """
    if k is None:
        def apply_null(cols, n):
            inner(cols, n)
            return [None] * n
        return apply_null
    raw = _RAW_ARITH.get(op)
    if raw is not None:
        if literal_on_left:
            return lambda cols, n: [None if b is None else raw(k, b)
                                    for b in inner(cols, n)]
        return lambda cols, n: [None if a is None else raw(a, k)
                                for a in inner(cols, n)]
    raw = _RAW_CMP.get(op)
    if raw is not None:
        # _cmp coerces when exactly one side is a string; same-typed
        # pairs take the raw comparison, mixed pairs fall back to fn.
        k_is_str = isinstance(k, str)
        if literal_on_left:
            return lambda cols, n: [
                None if b is None
                else (raw(k, b) if isinstance(b, str) == k_is_str
                      else fn(k, b))
                for b in inner(cols, n)]
        return lambda cols, n: [
            None if a is None
            else (raw(a, k) if isinstance(a, str) == k_is_str
                  else fn(a, k))
            for a in inner(cols, n)]
    if literal_on_left:
        return lambda cols, n: [fn(k, b) for b in inner(cols, n)]
    return lambda cols, n: [fn(a, k) for a in inner(cols, n)]


def _vec_logical(expr, env):
    operands = [_vectorize(op, env) for op in expr.operands]
    if expr.op == "and":
        def apply_and(cols, n):
            # Three-valued AND: False dominates, then NULL, then True.
            out = [True] * n
            for operand in operands:
                for i, val in enumerate(operand(cols, n)):
                    cur = out[i]
                    if cur is False:
                        continue
                    if val is None:
                        out[i] = None
                    elif not is_true(val):
                        out[i] = False
            return out
        return apply_and

    def apply_or(cols, n):
        # Three-valued OR: True dominates, then NULL, then False.
        out = [False] * n
        for operand in operands:
            for i, val in enumerate(operand(cols, n)):
                if out[i] is True:
                    continue
                if val is None:
                    out[i] = None
                elif is_true(val):
                    out[i] = True
        return out
    return apply_or


def _vec_not(expr, env):
    inner = _vectorize(expr.operand, env)
    return lambda cols, n: [None if v is None else not is_true(v)
                            for v in inner(cols, n)]


def _vec_unary_minus(expr, env):
    inner = _vectorize(expr.operand, env)
    return lambda cols, n: [None if v is None else -v
                            for v in inner(cols, n)]


def _vec_isnull(expr, env):
    inner = _vectorize(expr.operand, env)
    if expr.negated:
        return lambda cols, n: [v is not None for v in inner(cols, n)]
    return lambda cols, n: [v is None for v in inner(cols, n)]


def _vec_inlist(expr, env):
    inner = _vectorize(expr.operand, env)
    items = [_vectorize(item, env) for item in expr.items]
    negated = expr.negated

    def apply_in(cols, n):
        out = []
        item_cols = [item(cols, n) for item in items]
        for i, needle in enumerate(inner(cols, n)):
            if needle is None:
                out.append(None)
                continue
            candidates = []
            for col in item_cols:
                val = col[i]
                if isinstance(val, (frozenset, set)):
                    candidates.extend(val)
                else:
                    candidates.append(val)
            hit = needle in candidates
            out.append((not hit) if negated else hit)
        return out
    return apply_in


def _vec_like(expr, env):
    inner = _vectorize(expr.operand, env)
    pattern = _vectorize(expr.pattern, env)
    negated = expr.negated
    cache = {}

    def apply_like(cols, n):
        out = []
        for subject, pat in zip(inner(cols, n), pattern(cols, n)):
            if subject is None or pat is None:
                out.append(None)
                continue
            regex = cache.get(pat)
            if regex is None:
                regex = cache[pat] = like_to_regex(pat)
            hit = regex.match(str(subject)) is not None
            out.append((not hit) if negated else hit)
        return out
    return apply_like


def _vec_case(expr, env):
    conds = [_vectorize(c, env) for c, _ in expr.whens]
    results = [_vectorize(r, env) for _, r in expr.whens]
    default = (_vectorize(expr.default, env)
               if expr.default is not None else None)

    def apply_case(cols, n):
        cond_cols = [c(cols, n) for c in conds]
        result_cols = [r(cols, n) for r in results]
        default_col = default(cols, n) if default is not None else None
        out = []
        for i in range(n):
            value = default_col[i] if default_col is not None else None
            for ccol, rcol in zip(cond_cols, result_cols):
                if is_true(ccol[i]):
                    value = rcol[i]
                    break
            out.append(value)
        return out
    return apply_case


def _vec_funccall(expr, env):
    # compile_expr already rejected aggregates and unknown functions.
    fn = SCALAR_FUNCTIONS.get(expr.name)
    if fn is None:
        raise Unvectorizable(expr.name)
    args = [_vectorize(arg, env) for arg in expr.args]
    if not args:
        return lambda cols, n: [fn() for _ in range(n)]

    def apply_fn(cols, n):
        return [fn(*vals) for vals in zip(*(arg(cols, n) for arg in args))]
    return apply_fn


VECTORIZERS = {
    ast.Literal: _vec_literal,
    SlotRef: _vec_slotref,
    ast.ColumnRef: _vec_columnref,
    ast.BinaryOp: _vec_binary,
    ast.LogicalOp: _vec_logical,
    ast.NotOp: _vec_not,
    ast.UnaryMinus: _vec_unary_minus,
    ast.IsNull: _vec_isnull,
    ast.InList: _vec_inlist,
    ast.LikeOp: _vec_like,
    ast.CaseWhen: _vec_case,
    ast.FuncCall: _vec_funccall,
}
