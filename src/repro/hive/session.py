"""HiveSession: the public SQL entry point.

A session owns one simulated cluster plus HDFS, HBase, the MapReduce
runner and the metastore, and executes HiveQL statements end-to-end.

UPDATE/DELETE dispatch (the heart of the paper):

* plain ORC tables  → lowered to a full INSERT OVERWRITE (Listing 2):
  read *every column of every row*, rewrite the whole table;
* HBase tables      → in-place random writes during the scan;
* DualTable / ACID  → delegated to the handler's ``execute_update`` /
  ``execute_delete`` (cost-model plan choice for DualTable, delta files
  for ACID).
"""

import os

from dataclasses import dataclass, field

from repro.cluster import Cluster, ClusterProfile
from repro.common.errors import AnalysisError, HiveError
from repro.hdfs import HdfsFileSystem
from repro.hbase import HBaseService
from repro.mapreduce import Job, JobRunner
from repro.hive import ast_nodes as ast
from repro.hive.catalog import HiveEnv, Metastore, register_handler
from repro.hive.executor import SelectExecutor, _output_name
from repro.hive.expressions import Env, compile_expr, is_true
from repro.hive.parser import parse
from repro.hive.pushdown import extract_ranges
from repro.hive.storage.hbase_handler import HBaseTableHandler
from repro.hive.storage.orc_handler import OrcHdfsHandler
from repro.hive.storage.partitioned_orc import PartitionedOrcHandler
from repro.vector import DEFAULT_BATCH_ROWS

register_handler("orc", OrcHdfsHandler)
register_handler("orc-partitioned", PartitionedOrcHandler)
register_handler("hbase", HBaseTableHandler)

#: Execution engines: identical simulated charges, metrics and results;
#: the vectorized engine only changes wall-clock speed (INTERNALS §8).
ENGINES = ("row", "vectorized")
DEFAULT_ENGINE = "vectorized"

#: UNION READ merge strategies for dirty batches: "overlay" pre-resolves
#: a file's deltas into a columnar DeltaOverlay and applies it with
#: binary search + slice surgery; "row" is the per-row reference merge.
#: Byte-identical rows, charges and stats — wall-clock only (§14).
MERGE_MODES = ("overlay", "row")
DEFAULT_MERGE_MODE = "overlay"


@dataclass
class QueryResult:
    """Rows plus the simulated cost of one statement."""

    names: list = field(default_factory=list)
    rows: list = field(default_factory=list)
    sim_seconds: float = 0.0
    jobs: list = field(default_factory=list)
    plan: str = ""
    affected: int = None
    detail: dict = field(default_factory=dict)

    def __iter__(self):
        return iter(self.rows)

    def scalar(self):
        if not self.rows or not self.rows[0]:
            return None
        return self.rows[0][0]


class HiveSession:
    """One connection to the simulated warehouse."""

    def __init__(self, cluster=None, profile=None, engine=None,
                 batch_rows=None):
        self.cluster = cluster or Cluster(profile or ClusterProfile.laptop())
        self.set_engine(engine or os.environ.get("REPRO_ENGINE")
                        or DEFAULT_ENGINE)
        self.set_batch_rows(batch_rows
                            if batch_rows is not None
                            else os.environ.get("REPRO_BATCH_ROWS")
                            or DEFAULT_BATCH_ROWS)
        self.fs = HdfsFileSystem(self.cluster)
        self.hbase = HBaseService(self.cluster)
        self.runner = JobRunner(self.cluster)
        self.env = HiveEnv(self.cluster, self.fs, self.hbase, self.runner)
        self.set_merge_mode(os.environ.get("REPRO_MERGE")
                            or DEFAULT_MERGE_MODE)
        self.metastore = Metastore(self.env)
        self.views = {}
        self._dml_subquery_jobs = []
        self._stmt_depth = 0
        #: SELECT routing: "cost" consults the cost model per statement,
        #: "lookup" forces the LOOKUP plan (erroring when ineligible),
        #: "scan" forces MapReduce.  ``SET dualtable.plan = ...``.
        self.plan_mode = "cost"
        # Server attachment (repro.server).  `current_txn` is the
        # statement transaction the server is running through this
        # engine — DualTable EDIT commits defer their publish to it;
        # `txn_guard` lets the maintenance daemon skip tables with
        # in-flight buffered writes; `server` backs SHOW SESSIONS /
        # SHOW SERVER STATS.  All stay None for standalone sessions.
        self.current_txn = None
        self.txn_guard = None
        self.server = None
        self._ensure_extended_handlers()
        self._bind_fault_actions()
        # Imported lazily: repro.maintenance returns QueryResults, so a
        # top-level import would be circular.
        from repro.maintenance import AutoCompactionDaemon
        self.maintenance = AutoCompactionDaemon(self)

    def _bind_fault_actions(self):
        """Wire side-effecting fault kinds to this session's subsystems."""
        faults = self.cluster.faults
        faults.bind("region_crash",
                    lambda fault: self.hbase.crash_region_server())
        faults.bind("datanode_loss", self._lose_one_datanode)

    def _lose_one_datanode(self, fault):
        """Kill a live datanode, but never the last one (data would be
        unrecoverable, which is a cluster loss, not a fault to survive)."""
        alive = [i for i, dn in enumerate(self.fs.datanodes) if dn.alive]
        if len(alive) > 1:
            self.fs.kill_datanode(alive[0])

    @staticmethod
    def _ensure_extended_handlers():
        # DualTable and ACID register themselves on import; importing here
        # keeps `HiveSession` self-contained for users.
        from repro.core import handler as _dualtable_handler  # noqa: F401
        from repro.acid import handler as _acid_handler       # noqa: F401
        from repro.shard import sharded as _sharded_handler   # noqa: F401

    # ------------------------------------------------------------------
    # Engine configuration (wall-clock-only knobs).
    # ------------------------------------------------------------------
    def set_engine(self, engine):
        """Select ``"row"`` or ``"vectorized"`` execution.

        Both engines produce byte-identical results, simulated charges
        and metric values; the choice affects wall-clock speed only.
        Also settable per process via ``REPRO_ENGINE``.
        """
        engine = str(engine).lower()
        if engine not in ENGINES:
            raise ValueError("unknown engine %r (choose from %s)"
                             % (engine, "/".join(ENGINES)))
        self.engine = engine
        return self

    def set_batch_rows(self, batch_rows):
        """Set the shared split/batch granularity (bounds-validated).

        One knob governs MaterializedSource split chunking and
        ColumnBatch sizing (a materialized split is exactly one batch).
        Changing it changes task counts — and therefore simulated
        time — identically under either engine.
        """
        from repro.vector import validate_batch_rows
        self.batch_rows = validate_batch_rows(batch_rows)
        return self

    def set_merge_mode(self, merge_mode):
        """Select the dirty-batch UNION READ merge strategy.

        ``"overlay"`` (default) applies pre-resolved columnar delta
        overlays; ``"row"`` keeps the per-row reference merge as a
        correctness fallback.  Both produce byte-identical rows, charges
        and merge stats — wall-clock only, like the engine knob.  Also
        settable per process via ``REPRO_MERGE`` and per session via
        ``SET dualtable.merge = overlay|row``.
        """
        merge_mode = str(merge_mode).lower()
        if merge_mode not in MERGE_MODES:
            raise ValueError("unknown merge mode %r (choose from %s)"
                             % (merge_mode, "/".join(MERGE_MODES)))
        self.env.merge_mode = merge_mode
        return self

    @property
    def merge_mode(self):
        return self.env.merge_mode

    # ------------------------------------------------------------------
    # Public API.
    # ------------------------------------------------------------------
    def execute(self, sql):
        """Parse and execute one HiveQL statement."""
        stmt = parse(sql) if isinstance(sql, str) else sql
        return self.execute_statement(stmt)

    sql = execute

    def execute_statement(self, stmt):
        """Execute one parsed statement inside a statement-level span.

        The span (a no-op unless ``cluster.tracer`` is enabled) is the
        root of the statement → job → task → substrate trace hierarchy;
        the simulated clock advances by the statement's run time once the
        outermost statement finishes (EXPLAIN ANALYZE and MERGE execute
        statements reentrantly).
        """
        verb = type(stmt).__name__.replace("Stmt", "").lower()
        self._stmt_depth += 1
        try:
            with self.cluster.tracer.span(
                    "statement", verb,
                    table=getattr(stmt, "table", None)) as span:
                result = self._dispatch_statement(stmt)
                span.annotate(plan=result.plan,
                              sim_seconds=round(result.sim_seconds, 6),
                              affected=result.affected)
        finally:
            self._stmt_depth -= 1
        self.cluster.metrics.incr("session.statements")
        self.cluster.metrics.incr("session.statements.%s" % verb)
        if self._stmt_depth == 0:
            # Latency histograms observe *simulated* seconds, so the
            # distributions (and the advisor reading them) are identical
            # across workers=N and engine=row/vectorized.
            self.cluster.metrics.observe("statement.seconds",
                                         result.sim_seconds)
            self.cluster.metrics.observe("statement.seconds.%s" % verb,
                                         result.sim_seconds)
        if self._stmt_depth == 0 and result.sim_seconds > 0:
            self.cluster.clock.advance(result.sim_seconds)
        if self._stmt_depth == 0:
            # Background maintenance runs between statements, on the
            # advanced clock, never inside one (see repro.maintenance).
            self.maintenance.tick()
        return result

    def _dispatch_statement(self, stmt):
        if isinstance(stmt, (ast.SelectStmt, ast.UnionAllStmt)):
            return self._select(stmt)
        if isinstance(stmt, ast.InsertStmt):
            return self._insert(stmt)
        if isinstance(stmt, ast.UpdateStmt):
            return self._update(stmt)
        if isinstance(stmt, ast.DeleteStmt):
            return self._delete(stmt)
        if isinstance(stmt, ast.MergeStmt):
            from repro.hive.merge import execute_merge
            self._dml_subquery_jobs = []
            return execute_merge(self, stmt)
        if isinstance(stmt, ast.ExplainStmt):
            from repro.hive.explain import explain
            return explain(self, stmt.statement, analyze=stmt.analyze)
        if isinstance(stmt, ast.ShowMetricsStmt):
            return QueryResult(names=["metric", "type", "value"],
                               rows=self.cluster.metrics.rows(
                                   like=stmt.like),
                               plan="show-metrics")
        if isinstance(stmt, ast.ShowAdvisorStmt):
            from repro.advisor import FINDING_COLUMNS, advisor_rows
            return QueryResult(names=list(FINDING_COLUMNS),
                               rows=advisor_rows(self),
                               plan="show-advisor")
        if isinstance(stmt, ast.AnalyzeWorkloadStmt):
            from repro.advisor import analyze_workload
            return analyze_workload(self, apply=stmt.apply)
        if isinstance(stmt, ast.AlterDualTableStmt):
            return self._alter_dualtable(stmt)
        if isinstance(stmt, ast.SetOptionStmt):
            return self._set_option(stmt)
        if isinstance(stmt, ast.ShowSessionsStmt):
            if self.server is None:
                raise AnalysisError(
                    "SHOW SESSIONS requires a DualTableServer "
                    "(this is a standalone session)")
            return QueryResult(
                names=["session_id", "tenant", "state", "statements",
                       "committed", "inflight"],
                rows=self.server.session_rows(), plan="show-sessions")
        if isinstance(stmt, ast.ShowServerStatsStmt):
            if self.server is None:
                raise AnalysisError(
                    "SHOW SERVER STATS requires a DualTableServer "
                    "(this is a standalone session)")
            return QueryResult(names=["stat", "value"],
                               rows=self.server.stats_rows(),
                               plan="show-server-stats")
        if isinstance(stmt, ast.CreateTableStmt):
            return self._create_table(stmt)
        if isinstance(stmt, ast.CreateViewStmt):
            key = stmt.name.lower()
            if key in self.views or self.metastore.has_table(key):
                if stmt.if_not_exists:
                    return QueryResult(plan="create-view")
                raise AnalysisError("name already in use: %s" % stmt.name)
            self.views[key] = stmt.query
            return QueryResult(plan="create-view")
        if isinstance(stmt, ast.AlterDropPartitionStmt):
            return self._drop_partition(stmt)
        if isinstance(stmt, ast.DropTableStmt):
            if stmt.table.lower() in self.views:
                del self.views[stmt.table.lower()]
                return QueryResult(plan="drop-view")
            self.metastore.drop_table(stmt.table, if_exists=stmt.if_exists)
            return QueryResult(plan="drop")
        if isinstance(stmt, ast.CompactStmt):
            return self._compact(stmt)
        if isinstance(stmt, ast.ShowShardsStmt):
            return self._show_shards(stmt)
        if isinstance(stmt, ast.AlterRebalanceStmt):
            return self._alter_rebalance(stmt)
        if isinstance(stmt, ast.AlterAutoCompactStmt):
            return self.maintenance.configure(stmt.table, stmt.enabled,
                                              stmt.options)
        if isinstance(stmt, ast.ShowCompactionsStmt):
            from repro.maintenance.daemon import COMPACTION_COLUMNS
            return QueryResult(names=list(COMPACTION_COLUMNS),
                               rows=self.maintenance.compaction_rows(),
                               plan="show-compactions")
        if isinstance(stmt, ast.ShowPartitionsStmt):
            info = self.metastore.table(stmt.table)
            handler = info.handler
            if not hasattr(handler, "partitions"):
                raise AnalysisError(
                    "table %s is not partitioned" % stmt.table)
            rows = [("/".join("%s=%s" % (c, v) for c, v in
                              zip(handler.partition_columns, key)),)
                    for key, _ in handler.partitions()]
            return QueryResult(names=["partition"], rows=rows,
                               plan="show-partitions")
        if isinstance(stmt, ast.ShowTablesStmt):
            rows = [(t,) for t in self.metastore.list_tables()]
            rows += [(v,) for v in sorted(self.views)]
            return QueryResult(names=["table_name"], rows=sorted(rows),
                               plan="show")
        if isinstance(stmt, ast.DescribeStmt):
            info = self.metastore.table(stmt.table)
            rows = [(c.name, c.htype.value) for c in info.schema]
            rows.append(("# storage", info.storage))
            return QueryResult(names=["col_name", "data_type"], rows=rows,
                               plan="describe")
        raise HiveError("unsupported statement: %r" % (stmt,))

    def _create_table(self, stmt):
        storage = stmt.storage
        columns = list(stmt.columns)
        properties = dict(stmt.properties)
        if stmt.partition_columns:
            if storage != "orc":
                raise AnalysisError(
                    "PARTITIONED BY is supported for ORC tables only "
                    "(got STORED AS %s)" % storage.upper())
            storage = "orc-partitioned"
            columns = columns + list(stmt.partition_columns)
            properties["partition.columns"] = ",".join(
                name for name, _ in stmt.partition_columns)
        if stmt.primary_key is not None:
            if storage != "dualtable":
                raise AnalysisError(
                    "PRIMARY KEY requires STORED AS DUALTABLE (the "
                    "LOOKUP plan probes the attached table; got %s)"
                    % storage.upper())
            names = [name.lower() for name, _ in columns]
            if stmt.primary_key not in names:
                raise AnalysisError(
                    "PRIMARY KEY column %r is not in the column list"
                    % stmt.primary_key)
            properties["dualtable.primary_key"] = stmt.primary_key
        if stmt.shard_key is not None:
            if storage != "dualtable":
                raise AnalysisError(
                    "SHARDED BY requires STORED AS DUALTABLE (got %s)"
                    % storage.upper())
            names = [name.lower() for name, _ in columns]
            if stmt.shard_key not in names:
                raise AnalysisError(
                    "SHARDED BY column %r is not in the column list"
                    % stmt.shard_key)
            count = int(stmt.shard_count or 1)
            if count < 1:
                raise AnalysisError("SHARDED ... INTO needs n >= 1")
            storage = "dualtable-sharded"
            properties["shard.key"] = stmt.shard_key
            properties["shard.count"] = count
        self.metastore.create_table(stmt.table, columns, storage=storage,
                                    properties=properties,
                                    if_not_exists=stmt.if_not_exists)
        return QueryResult(plan="create")

    def _alter_dualtable(self, stmt):
        """``ALTER TABLE t SET DUALTABLE (read_factor = 2, mode = ...)``.

        The advisor's actuator knobs: retunes the live handler *and*
        the table properties, so the change survives handler re-reads
        and shows in DESCRIBE-adjacent tooling.
        """
        info = self.metastore.table(stmt.table)
        handler = info.handler
        if getattr(handler, "kind", None) not in ("dualtable",
                                                  "dualtable-sharded"):
            raise AnalysisError(
                "ALTER TABLE ... SET DUALTABLE requires a DualTable "
                "table (got %s stored as %s)" % (info.name, info.storage))
        applied = {}
        for key, value in stmt.options.items():
            if key == "read_factor":
                factor = int(value)
                if factor < 1:
                    raise AnalysisError("read_factor must be >= 1")
                handler.read_factor = factor
                for child in getattr(handler, "children", ()):
                    child.read_factor = factor
                info.properties["dualtable.read_factor"] = factor
            elif key == "mode":
                mode = str(value).lower()
                if mode not in ("cost", "edit", "overwrite"):
                    raise AnalysisError(
                        "bad dualtable mode %r (cost/edit/overwrite)"
                        % (value,))
                handler.mode = mode
                for child in getattr(handler, "children", ()):
                    child.mode = mode
                info.properties["dualtable.mode"] = mode
            else:
                raise AnalysisError(
                    "unknown DUALTABLE option %r (read_factor, mode)"
                    % (key,))
            applied[key] = value
        self.cluster.metrics.incr("advisor.alter_dualtable")
        return QueryResult(plan="alter-dualtable",
                           detail={"table": info.name,
                                   "options": applied})

    #: session options settable via ``SET name = value``.
    SESSION_OPTIONS = {"dualtable.plan": ("cost", "lookup", "scan"),
                       "dualtable.merge": MERGE_MODES}

    def _set_option(self, stmt):
        """``SET dualtable.plan = ...`` / ``SET dualtable.merge = ...``."""
        allowed = self.SESSION_OPTIONS.get(stmt.name)
        if allowed is None:
            raise AnalysisError(
                "unknown session option %r (settable: %s)"
                % (stmt.name, ", ".join(sorted(self.SESSION_OPTIONS))))
        value = str(stmt.value).lower()
        if value not in allowed:
            raise AnalysisError(
                "bad value %r for %s (choose from %s)"
                % (stmt.value, stmt.name, "/".join(allowed)))
        if stmt.name == "dualtable.merge":
            self.set_merge_mode(value)
        else:
            self.plan_mode = value
        self.cluster.metrics.incr("session.set_option")
        return QueryResult(plan="set",
                           detail={"name": stmt.name, "value": value})

    def _drop_partition(self, stmt):
        info = self.metastore.table(stmt.table)
        handler = info.handler
        if not hasattr(handler, "drop_partition"):
            raise AnalysisError("table %s is not partitioned" % stmt.table)
        missing = [c for c in handler.partition_columns
                   if c not in stmt.spec]
        if missing:
            raise AnalysisError(
                "DROP PARTITION needs values for: %s" % ", ".join(missing))
        coercers = {"int": int, "double": float, "string": str,
                    "boolean": bool}
        offset = len(info.schema) - len(handler.partition_columns)
        values = []
        for i, name in enumerate(handler.partition_columns):
            column = info.schema.columns[offset + i]
            raw = stmt.spec[name]
            values.append(None if raw is None
                          else coercers[column.physical_kind](raw))
        dropped = handler.drop_partition(tuple(values))
        return QueryResult(plan="drop-partition",
                           affected=1 if dropped else 0,
                           detail={"partition": dict(stmt.spec),
                                   "existed": dropped})

    def load_rows(self, table_name, rows):
        """LOAD-equivalent: bulk append python rows into a table."""
        info = self.metastore.table(table_name)
        coerced = [info.schema.coerce_row(r) for r in rows]
        seconds = self._charged_parallel(
            lambda: info.handler.insert_rows(coerced, overwrite=False))
        return QueryResult(plan="load", affected=len(coerced),
                           sim_seconds=seconds)

    def table(self, name):
        return self.metastore.table(name)

    def io_report(self):
        """Structured ledger summary: per-(subsystem, op) totals.

        Returns ``{(subsystem, op): {"bytes": ..., "ops": ...,
        "sim_seconds": ...}}`` plus a ``"total_seconds"`` entry — handy
        for examples, notebooks and regression assertions.
        """
        ledger = self.cluster.ledger
        report = {
            key: {"bytes": ledger.bytes_by_key[key],
                  "ops": ledger.ops_by_key[key],
                  "sim_seconds": ledger.seconds_by_key[key]}
            for key in ledger.bytes_by_key
        }
        report["total_seconds"] = ledger.total_seconds
        return report

    # ------------------------------------------------------------------
    # SELECT.
    # ------------------------------------------------------------------
    def _select(self, stmt):
        executor = SelectExecutor(self)
        result = executor.run(stmt)
        sim = (sum(job.sim_seconds for job in executor.jobs)
               + executor.lookup_seconds)
        if executor.lookup_details and not executor.jobs:
            plan = "lookup"
        elif executor.lookup_details:
            plan = "select(%d jobs)+lookup" % len(executor.jobs)
        else:
            plan = "select(%d jobs)" % len(executor.jobs)
        detail = {}
        if executor.lookup_details:
            detail = dict(executor.lookup_details[0])
            if len(executor.lookup_details) > 1:
                detail["lookups"] = list(executor.lookup_details)
        return QueryResult(names=result.names, rows=result.rows,
                           sim_seconds=sim, jobs=executor.jobs,
                           plan=plan, detail=detail)

    def view_query(self, name):
        """The stored query of a view, or None."""
        return self.views.get(name.lower())

    def infer_select_names(self, stmt):
        """Output column names of a SELECT without executing it."""
        if isinstance(stmt, ast.UnionAllStmt):
            return self.infer_select_names(stmt.selects[0])
        names = []
        for i, item in enumerate(stmt.items):
            if isinstance(item.expr, ast.Star):
                refs = [stmt.source] + [j.table for j in stmt.joins]
                for ref in refs:
                    qualifier = item.expr.qualifier
                    if qualifier and ref.binding.lower() != qualifier.lower():
                        continue
                    if ref.subquery is not None:
                        names.extend(self.infer_select_names(ref.subquery))
                    elif self.view_query(ref.name) is not None:
                        names.extend(self.infer_select_names(
                            self.view_query(ref.name)))
                    else:
                        names.extend(
                            self.metastore.table(ref.name).schema.names)
            else:
                names.append(_output_name(item, i))
        return names

    # ------------------------------------------------------------------
    # INSERT.
    # ------------------------------------------------------------------
    def _insert(self, stmt):
        info = self.metastore.table(stmt.table)
        if stmt.partition_spec:
            handler = info.handler
            if not hasattr(handler, "partition_columns"):
                raise AnalysisError(
                    "PARTITION (...) insert on unpartitioned table %s"
                    % stmt.table)
            missing = [c for c in handler.partition_columns
                       if c not in stmt.partition_spec]
            if missing:
                raise AnalysisError(
                    "PARTITION spec needs values for: %s"
                    % ", ".join(missing))
        jobs = []
        if stmt.values is not None:
            env = Env()
            rows = [tuple(compile_expr(e, env)(()) for e in row)
                    for row in stmt.values]
            select_seconds = 0.0
        else:
            executor = SelectExecutor(self)
            result = executor.run(stmt.query)
            rows = result.rows
            jobs = executor.jobs
            select_seconds = sum(job.sim_seconds for job in jobs)
        if stmt.partition_spec:
            suffix = tuple(stmt.partition_spec[c]
                           for c in info.handler.partition_columns)
            rows = [tuple(r) + suffix for r in rows]
        coerced = [info.schema.coerce_row(r) for r in rows]
        write_seconds = self._charged_parallel(
            lambda: info.handler.insert_rows(coerced,
                                             overwrite=stmt.overwrite))
        return QueryResult(sim_seconds=select_seconds + write_seconds,
                           jobs=jobs, affected=len(coerced),
                           plan="insert-%s"
                                % ("overwrite" if stmt.overwrite else "into"))

    # ------------------------------------------------------------------
    # UPDATE / DELETE dispatch.
    # ------------------------------------------------------------------
    def _update(self, stmt):
        info = self.metastore.table(stmt.table)
        stmt = self._resolve_dml_subqueries(stmt)
        handler = info.handler
        if hasattr(handler, "execute_update"):
            return handler.execute_update(self, stmt)
        if handler.supports_inplace_mutation:
            return self._update_hbase(info, stmt)
        return self.update_via_overwrite(info, stmt)

    def _delete(self, stmt):
        info = self.metastore.table(stmt.table)
        stmt = self._resolve_dml_subqueries(stmt)
        handler = info.handler
        if hasattr(handler, "execute_delete"):
            return handler.execute_delete(self, stmt)
        if handler.supports_inplace_mutation:
            return self._delete_hbase(info, stmt)
        return self.delete_via_overwrite(info, stmt)

    def _resolve_dml_subqueries(self, stmt):
        """Materialize scalar/IN subqueries in SET and WHERE clauses."""
        executor = SelectExecutor(self)
        self._dml_subquery_jobs = []
        def rewrite(expr):
            if expr is None:
                return None
            rewritten = executor._rewrite_expr_subqueries(expr)
            return rewritten
        if isinstance(stmt, ast.UpdateStmt):
            stmt.assignments = [(name, rewrite(e))
                                for name, e in stmt.assignments]
        stmt.where = rewrite(stmt.where)
        self._dml_subquery_jobs = executor.jobs
        return stmt

    def _dml_env(self, info, alias):
        env = Env()
        env.add_schema(info.schema.names, alias=alias)
        return env

    # -- Hive(HDFS) baseline: full INSERT OVERWRITE --------------------
    def _overwrite_scope(self, handler, where):
        """(scan_ranges, affected_partitions) for an overwrite rewrite.

        Plain tables rewrite everything (no pruning possible: every row
        must be written back).  Partitioned tables rewrite only the
        partitions the predicate can touch — Hive's partition-level
        granularity — so partition-column constraints prune the scan.
        """
        if not hasattr(handler, "replace_partitions"):
            return None, None
        ranges = extract_ranges(where) if where is not None else {}
        partition_ranges = {name: r for name, r in ranges.items()
                            if name in handler.partition_columns}
        return partition_ranges, handler.affected_partitions(
            partition_ranges)

    def update_via_overwrite(self, info, stmt, extra_detail=None):
        """Listing-2 lowering: rewrite every row of the table."""
        handler = info.handler
        env = self._dml_env(info, stmt.alias)
        predicate = (compile_expr(stmt.where, env)
                     if stmt.where is not None else None)
        assigns = [(info.schema.index_of(name), compile_expr(expr, env))
                   for name, expr in stmt.assignments]
        # INSERT OVERWRITE reads *all* columns; only partition-level
        # pruning is possible (every surviving row must be rewritten).
        scan_ranges, affected = self._overwrite_scope(handler, stmt.where)
        splits = handler.scan_splits(projection=None, ranges=scan_ranges)

        def map_fn(split, ctx):
            for values in handler.read_split(split, ctx):
                if predicate is None or is_true(predicate(values)):
                    ctx.incr("updated")
                    row = list(values)
                    for idx, fn in assigns:
                        row[idx] = fn(values)
                    yield tuple(row)
                else:
                    yield values

        job = Job(name="update-overwrite", splits=splits, map_fn=map_fn,
                  reduce_fn=None,
                  properties={"shard_fanout":
                              getattr(handler, "shard_fanout", 1)})
        result = self.runner.run(job)
        rows = [info.schema.coerce_row(r) for r in result.outputs]
        if affected is not None:
            write_seconds = self._charged_parallel(
                lambda: handler.replace_partitions(rows, affected))
        else:
            write_seconds = self._charged_parallel(
                lambda: handler.insert_rows(rows, overwrite=True))
        jobs = self._dml_subquery_jobs + [result]
        sub_seconds = sum(j.sim_seconds for j in self._dml_subquery_jobs)
        detail = {"plan": "overwrite", "rows_written": len(rows)}
        detail.update(extra_detail or {})
        return QueryResult(
            sim_seconds=sub_seconds + result.sim_seconds + write_seconds,
            jobs=jobs, affected=result.counters.get("updated", 0),
            plan="update-overwrite", detail=detail)

    def delete_via_overwrite(self, info, stmt, extra_detail=None):
        handler = info.handler
        env = self._dml_env(info, stmt.alias)
        predicate = (compile_expr(stmt.where, env)
                     if stmt.where is not None else None)
        scan_ranges, affected = self._overwrite_scope(handler, stmt.where)
        splits = handler.scan_splits(projection=None, ranges=scan_ranges)

        def map_fn(split, ctx):
            for values in handler.read_split(split, ctx):
                if predicate is None or is_true(predicate(values)):
                    ctx.incr("deleted")
                else:
                    yield values

        job = Job(name="delete-overwrite", splits=splits, map_fn=map_fn,
                  reduce_fn=None,
                  properties={"shard_fanout":
                              getattr(handler, "shard_fanout", 1)})
        result = self.runner.run(job)
        rows = [info.schema.coerce_row(r) for r in result.outputs]
        if affected is not None:
            write_seconds = self._charged_parallel(
                lambda: handler.replace_partitions(rows, affected))
        else:
            write_seconds = self._charged_parallel(
                lambda: handler.insert_rows(rows, overwrite=True))
        jobs = self._dml_subquery_jobs + [result]
        sub_seconds = sum(j.sim_seconds for j in self._dml_subquery_jobs)
        detail = {"plan": "overwrite", "rows_written": len(rows)}
        detail.update(extra_detail or {})
        return QueryResult(
            sim_seconds=sub_seconds + result.sim_seconds + write_seconds,
            jobs=jobs, affected=result.counters.get("deleted", 0),
            plan="delete-overwrite", detail=detail)

    # -- Hive(HBase) baseline: in-place random writes ------------------
    def _update_hbase(self, info, stmt):
        handler = info.handler
        env = self._dml_env(info, stmt.alias)
        predicate = (compile_expr(stmt.where, env)
                     if stmt.where is not None else None)
        assigns = [(info.schema.index_of(name), compile_expr(expr, env))
                   for name, expr in stmt.assignments]
        splits = handler.scan_splits(projection=None)

        def map_fn(split, ctx):
            inner = dict(split.payload)
            matched = []
            for rowkey, values in _hbase_rows_with_keys(handler, inner, ctx):
                if predicate is None or is_true(predicate(values)):
                    matched.append(
                        (rowkey, {idx: fn(values) for idx, fn in assigns}))
            for rowkey, new_values in matched:
                ctx.incr("updated")
                handler.update_row(rowkey, new_values)
            return ()

        # In-place writes: HBase timestamp allocation must follow split
        # order, so this job never runs on the worker pool.
        job = Job(name="update-hbase", splits=splits, map_fn=map_fn,
                  reduce_fn=None, properties={"parallel": False})
        result = self.runner.run(job)
        jobs = self._dml_subquery_jobs + [result]
        sub_seconds = sum(j.sim_seconds for j in self._dml_subquery_jobs)
        return QueryResult(sim_seconds=sub_seconds + result.sim_seconds,
                           jobs=jobs,
                           affected=result.counters.get("updated", 0),
                           plan="update-hbase", detail={"plan": "hbase"})

    def _delete_hbase(self, info, stmt):
        handler = info.handler
        env = self._dml_env(info, stmt.alias)
        predicate = (compile_expr(stmt.where, env)
                     if stmt.where is not None else None)
        splits = handler.scan_splits(projection=None)

        def map_fn(split, ctx):
            inner = dict(split.payload)
            doomed = []
            for rowkey, values in _hbase_rows_with_keys(handler, inner, ctx):
                if predicate is None or is_true(predicate(values)):
                    doomed.append(rowkey)
            for rowkey in doomed:
                ctx.incr("deleted")
                handler.delete_row(rowkey)
            return ()

        job = Job(name="delete-hbase", splits=splits, map_fn=map_fn,
                  reduce_fn=None, properties={"parallel": False})
        result = self.runner.run(job)
        jobs = self._dml_subquery_jobs + [result]
        sub_seconds = sum(j.sim_seconds for j in self._dml_subquery_jobs)
        return QueryResult(sim_seconds=sub_seconds + result.sim_seconds,
                           jobs=jobs,
                           affected=result.counters.get("deleted", 0),
                           plan="delete-hbase", detail={"plan": "hbase"})

    # ------------------------------------------------------------------
    # COMPACT.
    # ------------------------------------------------------------------
    def _compact(self, stmt):
        info = self.metastore.table(stmt.table)
        handler = info.handler
        if hasattr(handler, "execute_compact"):
            if getattr(handler, "kind", None) in ("dualtable",
                                                  "dualtable-sharded"):
                result = handler.execute_compact(
                    self, major=stmt.major, partial=stmt.partial,
                    max_files=stmt.max_files)
                self.maintenance.note_manual(info.name, result)
                return result
            if stmt.partial:
                raise AnalysisError(
                    "COMPACT ... PARTIAL requires a DualTable table "
                    "(got %s stored as %s)" % (info.name, info.storage))
            return handler.execute_compact(self, major=stmt.major)
        if hasattr(handler, "_htable"):
            seconds = self._charged_parallel(
                lambda: handler._htable().compact(major=stmt.major))
            return QueryResult(plan="compact-hbase", sim_seconds=seconds)
        raise AnalysisError(
            "table %s (storage %s) does not support COMPACT"
            % (info.name, info.storage))

    # ------------------------------------------------------------------
    # Sharding (SHOW SHARDS / ALTER TABLE ... REBALANCE).
    # ------------------------------------------------------------------
    def _sharded_handler(self, table, verb):
        info = self.metastore.table(table)
        handler = info.handler
        if getattr(handler, "kind", None) != "dualtable-sharded":
            raise AnalysisError(
                "%s requires a sharded DualTable (got %s stored as %s)"
                % (verb, info.name, info.storage))
        return handler

    def _show_shards(self, stmt):
        from repro.shard import SHARD_COLUMNS
        handler = self._sharded_handler(stmt.table, "SHOW SHARDS")
        return QueryResult(names=list(SHARD_COLUMNS),
                           rows=handler.shard_rows(), plan="show-shards")

    def _alter_rebalance(self, stmt):
        handler = self._sharded_handler(stmt.table,
                                        "ALTER TABLE ... REBALANCE")
        return handler.execute_rebalance(self)

    # ------------------------------------------------------------------
    # Cost helpers.
    # ------------------------------------------------------------------
    def _charged_parallel(self, fn, slots=None):
        """Run ``fn``, return its charged time divided over ``slots``.

        Bulk writes issued by a statement (INSERT OVERWRITE output, HBase
        truncate+reload...) happen inside parallel tasks on a real
        cluster; per-slot charge divided by slot count yields the
        aggregate-rate elapsed time.
        """
        slots = slots or self.cluster.profile.total_map_slots
        with self.cluster.cost_scope("bulk") as scope:
            fn()
        # HBase charges are already at serialized aggregate rates; only
        # the HDFS/CPU portion parallelizes over task slots.
        return (scope.parallel_seconds / max(1, slots)
                + scope.hbase_seconds)


def _hbase_rows_with_keys(handler, payload, ctx):
    """Scan one HBase split yielding (rowkey, full row tuple)."""
    from repro.hive.storage.hbase_handler import _qualifier
    from repro.hive.valuecodec import decode_value

    quals = [_qualifier(i) for i in range(len(handler.schema))]
    htable = handler._htable()
    for rowkey, cells in htable.scan(payload["start"], payload["stop"]):
        yield rowkey, tuple(
            decode_value(cells[q]) if q in cells else None for q in quals)
