"""Expression compilation and evaluation.

Expressions compile once per scan into Python closures over a *row
environment* (name → tuple index), then run per row with no name lookups —
the moral equivalent of Hive's SerDe + ObjectInspector fast path.

NULL follows SQL three-valued logic: arithmetic and comparisons with NULL
yield NULL, AND/OR propagate unknowns, and WHERE treats non-TRUE as
filtered out.
"""

import re
from dataclasses import dataclass

from repro.common.errors import AnalysisError
from repro.hive import ast_nodes as ast

_AMBIGUOUS = object()

AGGREGATE_FUNCTIONS = {"sum", "count", "avg", "min", "max"}


@dataclass
class SlotRef(ast.Expr):
    """Internal node: direct reference to a tuple slot (post-aggregation)."""

    index: int


class Env:
    """Maps column names (qualified and bare) to tuple indices."""

    def __init__(self):
        self._slots = {}
        self.width = 0

    @classmethod
    def from_schema(cls, schema, alias=None):
        env = cls()
        env.add_schema(schema, alias=alias)
        return env

    def add_schema(self, schema, alias=None):
        base = self.width
        for i, column in enumerate(schema):
            name = column.name if hasattr(column, "name") else column
            self.bind(name, base + i)
            if alias:
                self.bind("%s.%s" % (alias, name), base + i)
        self.width = base + len(list(schema))
        return self

    def bind(self, name, index):
        key = name.lower()
        if key in self._slots and self._slots[key] != index:
            self._slots[key] = _AMBIGUOUS
        else:
            self._slots[key] = index

    def resolve(self, ref):
        key = (ref.display if isinstance(ref, ast.ColumnRef) else ref).lower()
        slot = self._slots.get(key)
        if slot is None and "." not in key:
            # bare name: nothing bound
            raise AnalysisError("unknown column: %s" % key)
        if slot is None:
            raise AnalysisError("unknown column: %s" % key)
        if slot is _AMBIGUOUS:
            raise AnalysisError("ambiguous column reference: %s" % key)
        return slot

    def try_resolve(self, name):
        slot = self._slots.get(name.lower())
        return None if slot in (None, _AMBIGUOUS) else slot

    def names(self):
        return sorted(self._slots)


# ----------------------------------------------------------------------
# NULL-aware primitives.
# ----------------------------------------------------------------------
def _arith(op):
    def apply(a, b):
        if a is None or b is None:
            return None
        return op(a, b)
    return apply


def _add(a, b):
    return a + b


def _sub(a, b):
    return a - b


def _mul(a, b):
    return a * b


def _div(a, b):
    if b == 0:
        return None
    return a / b


def _mod(a, b):
    if b == 0:
        return None
    return a % b


def _concat_op(a, b):
    return str(a) + str(b)


def _cmp(op):
    def apply(a, b):
        if a is None or b is None:
            return None
        if isinstance(a, str) != isinstance(b, str):
            # numeric vs string: coerce string to float when possible
            try:
                if isinstance(a, str):
                    a = float(a)
                else:
                    b = float(b)
            except ValueError:
                return False
        return op(a, b)
    return apply


_BINARY = {
    "+": _arith(_add),
    "-": _arith(_sub),
    "*": _arith(_mul),
    "/": _arith(_div),
    "%": _arith(_mod),
    "||": _arith(_concat_op),
    "=": _cmp(lambda a, b: a == b),
    "!=": _cmp(lambda a, b: a != b),
    "<": _cmp(lambda a, b: a < b),
    "<=": _cmp(lambda a, b: a <= b),
    ">": _cmp(lambda a, b: a > b),
    ">=": _cmp(lambda a, b: a >= b),
}


def is_true(value):
    """SQL WHERE semantics: only TRUE passes (NULL/False filtered)."""
    return value is not None and value is not False and value != 0


def like_to_regex(pattern):
    out = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.compile("^" + "".join(out) + "$", re.DOTALL)


# ----------------------------------------------------------------------
# Scalar functions.
# ----------------------------------------------------------------------
def _fn_if(cond, then, otherwise):
    return then if is_true(cond) else otherwise


def _fn_coalesce(*args):
    for arg in args:
        if arg is not None:
            return arg
    return None


def _null_guard(fn):
    def apply(*args):
        if any(a is None for a in args):
            return None
        return fn(*args)
    return apply


def _fn_substr(s, start, length=None):
    start = int(start)
    begin = start - 1 if start > 0 else len(s) + start
    if length is None:
        return s[begin:]
    return s[begin:begin + int(length)]


def _parse_date(text):
    import datetime

    return datetime.date(int(str(text)[0:4]), int(str(text)[5:7]),
                         int(str(text)[8:10]))


def _fn_date_add(date_text, days):
    import datetime

    return (_parse_date(date_text)
            + datetime.timedelta(days=int(days))).isoformat()


def _fn_date_sub(date_text, days):
    return _fn_date_add(date_text, -int(days))


def _fn_datediff(end_text, start_text):
    return (_parse_date(end_text) - _parse_date(start_text)).days


def _fn_instr(haystack, needle):
    return str(haystack).find(str(needle)) + 1


def _fn_concat_ws(sep, *parts):
    return str(sep).join(str(p) for p in parts if p is not None)


def _fn_greatest(*args):
    present = [a for a in args if a is not None]
    return max(present) if present else None


def _fn_least(*args):
    present = [a for a in args if a is not None]
    return min(present) if present else None


SCALAR_FUNCTIONS = {
    "if": _fn_if,
    "coalesce": _fn_coalesce,
    "nvl": _fn_coalesce,
    "abs": _null_guard(abs),
    "round": _null_guard(lambda x, nd=0: round(x, int(nd))),
    "floor": _null_guard(lambda x: int(x // 1)),
    "ceil": _null_guard(lambda x: int(-(-x // 1))),
    "lower": _null_guard(lambda s: s.lower()),
    "upper": _null_guard(lambda s: s.upper()),
    "length": _null_guard(len),
    "concat": _null_guard(lambda *a: "".join(str(x) for x in a)),
    "substr": _null_guard(_fn_substr),
    "substring": _null_guard(_fn_substr),
    "year": _null_guard(lambda d: int(str(d)[0:4])),
    "month": _null_guard(lambda d: int(str(d)[5:7])),
    "day": _null_guard(lambda d: int(str(d)[8:10])),
    "cast_int": _null_guard(int),
    "cast_double": _null_guard(float),
    "cast_string": _null_guard(str),
    "trim": _null_guard(lambda s: s.strip()),
    "ltrim": _null_guard(lambda s: s.lstrip()),
    "rtrim": _null_guard(lambda s: s.rstrip()),
    "reverse": _null_guard(lambda s: s[::-1]),
    "instr": _null_guard(_fn_instr),
    "lpad": _null_guard(lambda s, n, p=" ": s.rjust(int(n), str(p)[:1])),
    "rpad": _null_guard(lambda s, n, p=" ": s.ljust(int(n), str(p)[:1])),
    "concat_ws": lambda sep, *parts: (None if sep is None
                                      else _fn_concat_ws(sep, *parts)),
    "date_add": _null_guard(_fn_date_add),
    "date_sub": _null_guard(_fn_date_sub),
    "datediff": _null_guard(_fn_datediff),
    "greatest": _fn_greatest,
    "least": _fn_least,
    "pow": _null_guard(lambda x, y: x ** y),
    "power": _null_guard(lambda x, y: x ** y),
    "sqrt": _null_guard(lambda x: x ** 0.5 if x >= 0 else None),
    "mod": _null_guard(lambda a, b: None if b == 0 else a % b),
    "sign": _null_guard(lambda x: (x > 0) - (x < 0)),
}


# ----------------------------------------------------------------------
# Compiler.
# ----------------------------------------------------------------------
def compile_expr(expr, env):
    """Compile an AST expression into ``fn(values_tuple) -> value``.

    Aggregate calls must have been rewritten to :class:`SlotRef` by the
    planner before compilation; encountering one here is an error.
    """
    if isinstance(expr, ast.Literal):
        value = expr.value
        return lambda values: value
    if isinstance(expr, SlotRef):
        index = expr.index
        return lambda values: values[index]
    if isinstance(expr, ast.ColumnRef):
        index = env.resolve(expr)
        return lambda values: values[index]
    if isinstance(expr, ast.BinaryOp):
        fn = _BINARY.get(expr.op)
        if fn is None:
            raise AnalysisError("unknown operator %r" % expr.op)
        left = compile_expr(expr.left, env)
        right = compile_expr(expr.right, env)
        return lambda values: fn(left(values), right(values))
    if isinstance(expr, ast.LogicalOp):
        operands = [compile_expr(op, env) for op in expr.operands]
        if expr.op == "and":
            def apply_and(values):
                saw_null = False
                for operand in operands:
                    val = operand(values)
                    if val is None:
                        saw_null = True
                    elif not is_true(val):
                        return False
                return None if saw_null else True
            return apply_and
        def apply_or(values):
            saw_null = False
            for operand in operands:
                val = operand(values)
                if val is None:
                    saw_null = True
                elif is_true(val):
                    return True
            return None if saw_null else False
        return apply_or
    if isinstance(expr, ast.NotOp):
        inner = compile_expr(expr.operand, env)
        def apply_not(values):
            val = inner(values)
            if val is None:
                return None
            return not is_true(val)
        return apply_not
    if isinstance(expr, ast.UnaryMinus):
        inner = compile_expr(expr.operand, env)
        return lambda values: None if inner(values) is None else -inner(values)
    if isinstance(expr, ast.IsNull):
        inner = compile_expr(expr.operand, env)
        if expr.negated:
            return lambda values: inner(values) is not None
        return lambda values: inner(values) is None
    if isinstance(expr, ast.InList):
        inner = compile_expr(expr.operand, env)
        items = [compile_expr(item, env) for item in expr.items]
        negated = expr.negated
        def apply_in(values):
            needle = inner(values)
            if needle is None:
                return None
            candidates = []
            for item in items:
                val = item(values)
                if isinstance(val, (frozenset, set)):
                    candidates.extend(val)
                else:
                    candidates.append(val)
            hit = needle in candidates
            return (not hit) if negated else hit
        return apply_in
    if isinstance(expr, ast.LikeOp):
        inner = compile_expr(expr.operand, env)
        pattern = compile_expr(expr.pattern, env)
        negated = expr.negated
        cache = {}
        def apply_like(values):
            subject = inner(values)
            pat = pattern(values)
            if subject is None or pat is None:
                return None
            regex = cache.get(pat)
            if regex is None:
                regex = cache[pat] = like_to_regex(pat)
            hit = regex.match(str(subject)) is not None
            return (not hit) if negated else hit
        return apply_like
    if isinstance(expr, ast.CaseWhen):
        whens = [(compile_expr(c, env), compile_expr(r, env))
                 for c, r in expr.whens]
        default = (compile_expr(expr.default, env)
                   if expr.default is not None else (lambda values: None))
        def apply_case(values):
            for cond, result in whens:
                if is_true(cond(values)):
                    return result(values)
            return default(values)
        return apply_case
    if isinstance(expr, ast.FuncCall):
        if expr.name in AGGREGATE_FUNCTIONS:
            raise AnalysisError(
                "aggregate %s() in a non-aggregate context" % expr.name)
        fn = SCALAR_FUNCTIONS.get(expr.name)
        if fn is None:
            raise AnalysisError("unknown function: %s()" % expr.name)
        args = [compile_expr(arg, env) for arg in expr.args]
        return lambda values: fn(*(arg(values) for arg in args))
    if isinstance(expr, ast.SubQueryExpr):
        raise AnalysisError(
            "subquery was not materialized before compilation")
    if isinstance(expr, ast.Star):
        raise AnalysisError("* is only valid in SELECT lists and COUNT(*)")
    raise AnalysisError("cannot compile %r" % (expr,))


# ----------------------------------------------------------------------
# AST utilities used by the planner and pushdown machinery.
# ----------------------------------------------------------------------
def walk(expr):
    """Yield every node of an expression tree (pre-order)."""
    stack = [expr]
    while stack:
        node = stack.pop()
        if node is None:
            continue
        yield node
        if isinstance(node, ast.BinaryOp):
            stack.extend((node.left, node.right))
        elif isinstance(node, ast.LogicalOp):
            stack.extend(node.operands)
        elif isinstance(node, (ast.NotOp, ast.UnaryMinus, ast.IsNull)):
            stack.append(node.operand)
        elif isinstance(node, ast.InList):
            stack.append(node.operand)
            stack.extend(node.items)
        elif isinstance(node, ast.LikeOp):
            stack.extend((node.operand, node.pattern))
        elif isinstance(node, ast.CaseWhen):
            for cond, result in node.whens:
                stack.extend((cond, result))
            stack.append(node.default)
        elif isinstance(node, ast.FuncCall):
            stack.extend(node.args)


def referenced_columns(expr):
    """All column names referenced (bare names, lowercased)."""
    return {node.name.lower() for node in walk(expr)
            if isinstance(node, ast.ColumnRef)}


def contains_aggregate(expr):
    return any(isinstance(node, ast.FuncCall)
               and node.name in AGGREGATE_FUNCTIONS
               for node in walk(expr))


def find_subqueries(expr):
    return [node for node in walk(expr)
            if isinstance(node, ast.SubQueryExpr)]
