"""Aggregate function machinery for GROUP BY execution.

Each aggregate is a (init, add, merge, finalize) quadruple so the MR
engine can run map-side combiners: mappers emit partial accumulators,
reducers merge them, finalize runs once per group.
"""

from repro.common.errors import AnalysisError
from repro.hive import ast_nodes as ast
from repro.hive.expressions import AGGREGATE_FUNCTIONS, SlotRef, walk


class AggregateSpec:
    """One aggregate call, compiled against the pre-aggregation env."""

    def __init__(self, name, arg_fn, distinct=False, count_star=False):
        self.name = name
        self.arg_fn = arg_fn
        self.distinct = distinct
        self.count_star = count_star

    # -- accumulator protocol -------------------------------------------------
    def init(self):
        if self.distinct:
            return set()
        if self.name == "count":
            return 0
        if self.name == "avg":
            return (0.0, 0)
        return None     # sum/min/max start empty (NULL when no rows)

    def add(self, acc, values):
        arg = 1 if self.count_star else self.arg_fn(values)
        return self.add_value(acc, arg)

    def add_value(self, acc, arg):
        """Fold one already-evaluated argument into the accumulator.

        Split out of :meth:`add` so the vectorized engine can evaluate
        argument columns batch-at-a-time and feed values directly.
        """
        if arg is None and not self.count_star:
            return acc
        if self.distinct:
            acc.add(arg)
            return acc
        if self.name == "count":
            return acc + 1
        if self.name == "sum":
            return arg if acc is None else acc + arg
        if self.name == "avg":
            total, count = acc
            return (total + arg, count + 1)
        if self.name == "min":
            return arg if acc is None else min(acc, arg)
        if self.name == "max":
            return arg if acc is None else max(acc, arg)
        raise AnalysisError("unknown aggregate %s" % self.name)

    def merge(self, a, b):
        if self.distinct:
            a.update(b)
            return a
        if self.name in ("count",):
            return a + b
        if self.name == "avg":
            return (a[0] + b[0], a[1] + b[1])
        if a is None:
            return b
        if b is None:
            return a
        if self.name == "sum":
            return a + b
        if self.name == "min":
            return min(a, b)
        if self.name == "max":
            return max(a, b)
        raise AnalysisError("unknown aggregate %s" % self.name)

    def finalize(self, acc):
        if self.distinct:
            if self.name == "count":
                return len(acc)
            if not acc:
                return None
            if self.name == "sum":
                return sum(acc)
            if self.name == "avg":
                return sum(acc) / len(acc)
            if self.name == "min":
                return min(acc)
            if self.name == "max":
                return max(acc)
        if self.name == "avg":
            total, count = acc
            return None if count == 0 else total / count
        return acc


def rewrite_aggregates(expr, group_by, agg_registry):
    """Rewrite ``expr`` for post-aggregation evaluation.

    Group-by expressions become slots ``0..len(group_by)-1``; aggregate
    calls become slots after those, registering their spec-building info in
    ``agg_registry`` (a list of FuncCall nodes, deduplicated structurally).
    Returns the rewritten expression.
    """
    for i, key_expr in enumerate(group_by):
        if expr == key_expr:
            return SlotRef(index=i)
    if isinstance(expr, ast.FuncCall) and expr.name in AGGREGATE_FUNCTIONS:
        for j, existing in enumerate(agg_registry):
            if existing == expr:
                return SlotRef(index=len(group_by) + j)
        agg_registry.append(expr)
        return SlotRef(index=len(group_by) + len(agg_registry) - 1)
    # Recurse structurally.
    if isinstance(expr, ast.BinaryOp):
        return ast.BinaryOp(op=expr.op,
                            left=rewrite_aggregates(expr.left, group_by,
                                                    agg_registry),
                            right=rewrite_aggregates(expr.right, group_by,
                                                     agg_registry))
    if isinstance(expr, ast.LogicalOp):
        return ast.LogicalOp(op=expr.op,
                             operands=[rewrite_aggregates(o, group_by,
                                                          agg_registry)
                                       for o in expr.operands])
    if isinstance(expr, ast.NotOp):
        return ast.NotOp(operand=rewrite_aggregates(expr.operand, group_by,
                                                    agg_registry))
    if isinstance(expr, ast.UnaryMinus):
        return ast.UnaryMinus(operand=rewrite_aggregates(expr.operand,
                                                         group_by,
                                                         agg_registry))
    if isinstance(expr, ast.IsNull):
        return ast.IsNull(operand=rewrite_aggregates(expr.operand, group_by,
                                                     agg_registry),
                          negated=expr.negated)
    if isinstance(expr, ast.InList):
        return ast.InList(operand=rewrite_aggregates(expr.operand, group_by,
                                                     agg_registry),
                          items=[rewrite_aggregates(i, group_by, agg_registry)
                                 for i in expr.items],
                          negated=expr.negated)
    if isinstance(expr, ast.LikeOp):
        return ast.LikeOp(operand=rewrite_aggregates(expr.operand, group_by,
                                                     agg_registry),
                          pattern=rewrite_aggregates(expr.pattern, group_by,
                                                     agg_registry),
                          negated=expr.negated)
    if isinstance(expr, ast.CaseWhen):
        return ast.CaseWhen(
            whens=[(rewrite_aggregates(c, group_by, agg_registry),
                    rewrite_aggregates(r, group_by, agg_registry))
                   for c, r in expr.whens],
            default=(rewrite_aggregates(expr.default, group_by, agg_registry)
                     if expr.default is not None else None))
    if isinstance(expr, ast.FuncCall):
        return ast.FuncCall(name=expr.name,
                            args=[rewrite_aggregates(a, group_by,
                                                     agg_registry)
                                  for a in expr.args],
                            distinct=expr.distinct)
    if isinstance(expr, ast.ColumnRef):
        raise AnalysisError(
            "column %s must appear in GROUP BY or inside an aggregate"
            % expr.display)
    return expr


def validate_no_nested_aggregates(agg_calls):
    for call in agg_calls:
        for arg in call.args:
            for node in walk(arg):
                if isinstance(node, ast.FuncCall) \
                        and node.name in AGGREGATE_FUNCTIONS:
                    raise AnalysisError("nested aggregate in %s()" % call.name)
