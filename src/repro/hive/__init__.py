"""Hive-like SQL engine: parser, expressions, planner, storage handlers."""

from repro.hive.parser import parse, parse_script
from repro.hive.session import HiveSession, QueryResult
from repro.hive.types import Column, HiveType, TableSchema

__all__ = [
    "parse",
    "parse_script",
    "HiveSession",
    "QueryResult",
    "Column",
    "HiveType",
    "TableSchema",
]
