"""Byte codec for typed values stored in HBase cells.

Used by both the Hive-on-HBase storage handler and the DualTable Attached
Table.  Encodings are compact and self-describing enough to round-trip
NULLs and every physical kind.
"""

import struct

from repro.common.errors import HBaseError

_NULL = b"\x00"
_INT = b"i"
_DOUBLE = b"d"
_STRING = b"s"
_BOOL_TRUE = b"T"
_BOOL_FALSE = b"F"


def encode_value(value):
    """Encode a python value (int/float/str/bool/None) to bytes."""
    if value is None:
        return _NULL
    if value is True:
        return _BOOL_TRUE
    if value is False:
        return _BOOL_FALSE
    if isinstance(value, int):
        return _INT + struct.pack("<q", value)
    if isinstance(value, float):
        return _DOUBLE + struct.pack("<d", value)
    if isinstance(value, str):
        return _STRING + value.encode("utf-8")
    raise HBaseError("cannot encode value of type %s" % type(value).__name__)


def decode_value(data):
    """Inverse of :func:`encode_value`."""
    if not data:
        raise HBaseError("empty cell value")
    tag, payload = data[:1], data[1:]
    if tag == _NULL:
        return None
    if tag == _BOOL_TRUE:
        return True
    if tag == _BOOL_FALSE:
        return False
    if tag == _INT:
        return struct.unpack("<q", payload)[0]
    if tag == _DOUBLE:
        return struct.unpack("<d", payload)[0]
    if tag == _STRING:
        return payload.decode("utf-8")
    raise HBaseError("unknown value tag %r" % tag)
