"""Hive type system and table schemas.

Types map onto the ORC-like format's physical kinds; ``DATE`` is stored as
an ISO-8601 string so lexicographic order equals date order (which is what
makes stripe pruning on date predicates work, as in the State Grid
workload).
"""

from dataclasses import dataclass
from enum import Enum

from repro.common.errors import AnalysisError


class HiveType(Enum):
    INT = "int"
    BIGINT = "bigint"
    DOUBLE = "double"
    DECIMAL = "decimal"
    STRING = "string"
    DATE = "date"
    BOOLEAN = "boolean"

    @classmethod
    def parse(cls, text):
        text = text.strip().lower()
        aliases = {
            "integer": "int",
            "long": "bigint",
            "float": "double",
            "varchar": "string",
            "char": "string",
            "bool": "boolean",
            "timestamp": "date",
        }
        text = aliases.get(text, text)
        try:
            return cls(text)
        except ValueError:
            raise AnalysisError("unknown Hive type: %r" % text) from None


# Physical column kind in the ORC-like format / HBase value codec.
PHYSICAL_KIND = {
    HiveType.INT: "int",
    HiveType.BIGINT: "int",
    HiveType.DOUBLE: "double",
    HiveType.DECIMAL: "double",
    HiveType.STRING: "string",
    HiveType.DATE: "string",
    HiveType.BOOLEAN: "boolean",
}

_PYTHON_COERCERS = {
    "int": int,
    "double": float,
    "string": str,
    "boolean": bool,
}


@dataclass(frozen=True)
class Column:
    """One table column."""

    name: str
    htype: HiveType

    @property
    def physical_kind(self):
        return PHYSICAL_KIND[self.htype]


class TableSchema:
    """Ordered column list with name lookup and row validation."""

    def __init__(self, columns):
        self.columns = [
            col if isinstance(col, Column) else Column(col[0], HiveType.parse(col[1]))
            for col in columns
        ]
        if not self.columns:
            raise AnalysisError("a table needs at least one column")
        self._index = {}
        for i, col in enumerate(self.columns):
            key = col.name.lower()
            if key in self._index:
                raise AnalysisError("duplicate column name: %s" % col.name)
            self._index[key] = i

    def __len__(self):
        return len(self.columns)

    def __iter__(self):
        return iter(self.columns)

    def __eq__(self, other):
        return (isinstance(other, TableSchema)
                and self.columns == other.columns)

    @property
    def names(self):
        return [c.name for c in self.columns]

    def has_column(self, name):
        return name.lower() in self._index

    def index_of(self, name):
        try:
            return self._index[name.lower()]
        except KeyError:
            raise AnalysisError(
                "no column %r (have: %s)" % (name, ", ".join(self.names))
            ) from None

    def column(self, name):
        return self.columns[self.index_of(name)]

    def orc_schema(self):
        """The physical schema handed to the ORC writer."""
        return [(c.name, c.physical_kind) for c in self.columns]

    def coerce_row(self, row):
        """Validate arity and coerce values to the declared types."""
        if len(row) != len(self.columns):
            raise AnalysisError(
                "row arity %d != schema arity %d" % (len(row), len(self.columns)))
        out = []
        for col, value in zip(self.columns, row):
            if value is None:
                out.append(None)
                continue
            coercer = _PYTHON_COERCERS[col.physical_kind]
            try:
                out.append(coercer(value))
            except (TypeError, ValueError) as exc:
                raise AnalysisError(
                    "cannot coerce %r to %s for column %s: %s"
                    % (value, col.htype.value, col.name, exc)) from exc
        return tuple(out)

    def __repr__(self):
        cols = ", ".join("%s %s" % (c.name, c.htype.value) for c in self.columns)
        return "TableSchema(%s)" % cols
