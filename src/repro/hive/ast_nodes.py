"""AST node definitions for the HiveQL dialect.

Two families: expression nodes (evaluable against a row environment) and
statement nodes (handed to the planner).
"""

from dataclasses import dataclass, field


# ----------------------------------------------------------------------
# Expressions.
# ----------------------------------------------------------------------
class Expr:
    """Base class for expression nodes."""


@dataclass
class Literal(Expr):
    value: object


@dataclass
class ColumnRef(Expr):
    name: str
    qualifier: str = None   # table alias, e.g. ``t`` in ``t.rq``

    @property
    def display(self):
        return "%s.%s" % (self.qualifier, self.name) if self.qualifier else self.name


@dataclass
class BinaryOp(Expr):
    op: str                 # '+', '-', '*', '/', '%', '=', '!=', '<', ...
    left: Expr
    right: Expr


@dataclass
class LogicalOp(Expr):
    op: str                 # 'and' | 'or'
    operands: list


@dataclass
class NotOp(Expr):
    operand: Expr


@dataclass
class UnaryMinus(Expr):
    operand: Expr


@dataclass
class FuncCall(Expr):
    name: str               # lowercase function name
    args: list
    distinct: bool = False


@dataclass
class Star(Expr):
    qualifier: str = None


@dataclass
class IsNull(Expr):
    operand: Expr
    negated: bool = False


@dataclass
class InList(Expr):
    operand: Expr
    items: list             # list of Expr, or a single SubQueryExpr
    negated: bool = False


@dataclass
class LikeOp(Expr):
    operand: Expr
    pattern: Expr
    negated: bool = False


@dataclass
class CaseWhen(Expr):
    whens: list             # [(cond_expr, result_expr), ...]
    default: Expr = None


@dataclass
class SubQueryExpr(Expr):
    """Uncorrelated scalar or IN-list subquery, evaluated eagerly."""

    query: object           # SelectStmt


# ----------------------------------------------------------------------
# Statements.
# ----------------------------------------------------------------------
class Statement:
    """Base class for statement nodes."""


@dataclass
class SelectItem:
    expr: Expr
    alias: str = None


@dataclass
class TableRef:
    """FROM-clause source: a named table or a derived subquery."""

    name: str = None
    alias: str = None
    subquery: object = None     # SelectStmt when derived

    @property
    def binding(self):
        return self.alias or self.name


@dataclass
class JoinClause:
    kind: str                   # 'inner' | 'left' | 'right' | 'full'
    table: TableRef
    condition: Expr


@dataclass
class OrderItem:
    expr: Expr
    descending: bool = False


@dataclass
class SelectStmt(Statement):
    items: list
    source: TableRef = None
    distinct: bool = False
    joins: list = field(default_factory=list)
    where: Expr = None
    group_by: list = field(default_factory=list)
    having: Expr = None
    order_by: list = field(default_factory=list)
    limit: int = None


@dataclass
class UnionAllStmt(Statement):
    """``SELECT ... UNION ALL SELECT ...`` — branch results concatenated.

    Each branch keeps its own ORDER BY/LIMIT (wrap the union in a derived
    table to order the combined result, as in Hive).
    """

    selects: list = field(default_factory=list)


@dataclass
class InsertStmt(Statement):
    table: str
    overwrite: bool
    query: SelectStmt = None
    values: list = None         # list of rows (list of Expr)
    partition_spec: dict = None  # static partition: {column: literal}


@dataclass
class UpdateStmt(Statement):
    table: str
    alias: str
    assignments: list           # [(column_name, Expr), ...]
    where: Expr = None


@dataclass
class DeleteStmt(Statement):
    table: str
    alias: str = None
    where: Expr = None


@dataclass
class MergeStmt(Statement):
    """``MERGE INTO target USING source ON cond WHEN [NOT] MATCHED ...``

    The proprietary upsert the paper's Table I counts among the grid DML
    statements ("the proprietary MERGE INTO operations").
    """

    target: str
    alias: str
    source: TableRef = None
    condition: Expr = None
    matched_assignments: list = field(default_factory=list)
    insert_values: list = None      # list of Expr, or None (no insert arm)


@dataclass
class CreateTableStmt(Statement):
    table: str
    columns: list               # [(name, type_text), ...]
    storage: str = "orc"        # orc | hbase | dualtable | acid
    properties: dict = field(default_factory=dict)
    if_not_exists: bool = False
    partition_columns: list = field(default_factory=list)
    primary_key: str = None     # single PK column (LOOKUP eligibility)
    shard_key: str = None       # SHARDED BY (k): hash-partition column
    shard_count: int = None     # INTO n: number of region servers


@dataclass
class AlterDropPartitionStmt(Statement):
    """``ALTER TABLE t DROP PARTITION (p = 'v', ...)``"""

    table: str
    spec: dict = field(default_factory=dict)    # column -> literal value


@dataclass
class CreateViewStmt(Statement):
    """``CREATE VIEW v AS SELECT ...`` — a named, expanded-on-use query."""

    name: str
    query: Statement = None     # SelectStmt or UnionAllStmt
    if_not_exists: bool = False


@dataclass
class DropTableStmt(Statement):
    table: str
    if_exists: bool = False


@dataclass
class CompactStmt(Statement):
    table: str
    major: bool = True
    partial: bool = False       # COMPACT TABLE t PARTIAL [n]
    max_files: int = None


@dataclass
class AlterAutoCompactStmt(Statement):
    """``ALTER TABLE t SET AUTOCOMPACT (ON|OFF, key = value, ...)``."""

    table: str
    enabled: bool = True
    options: dict = field(default_factory=dict)


@dataclass
class ShowShardsStmt(Statement):
    """``SHOW SHARDS t``: per-shard rows/bytes/files/hotness."""

    table: str = None


@dataclass
class AlterRebalanceStmt(Statement):
    """``ALTER TABLE t REBALANCE`` — move the hottest bucket off the
    hottest shard (deterministic 2PC move; no-op when balanced)."""

    table: str


@dataclass
class ShowCompactionsStmt(Statement):
    pass


@dataclass
class ShowTablesStmt(Statement):
    pass


@dataclass
class ShowPartitionsStmt(Statement):
    table: str = None


@dataclass
class ShowMetricsStmt(Statement):
    """``SHOW METRICS [LIKE 'glob']`` — optional name filter."""

    like: str = None


@dataclass
class ShowAdvisorStmt(Statement):
    """``SHOW ADVISOR``: workload findings from repro.advisor."""


@dataclass
class AnalyzeWorkloadStmt(Statement):
    """``ANALYZE WORKLOAD [APPLY]``: run the workload advisor.

    With APPLY, the actuator executes each finding's remediation
    statements (``ALTER TABLE ... SET ...``) before returning.
    """

    apply: bool = False


@dataclass
class AlterDualTableStmt(Statement):
    """``ALTER TABLE t SET DUALTABLE (read_factor = 2.0, ...)``."""

    table: str
    options: dict = field(default_factory=dict)


@dataclass
class SetOptionStmt(Statement):
    """``SET dualtable.plan = lookup|scan|cost`` — session-level knob."""

    name: str
    value: str


@dataclass
class ShowSessionsStmt(Statement):
    """``SHOW SESSIONS``: live server sessions (repro.server)."""


@dataclass
class ShowServerStatsStmt(Statement):
    """``SHOW SERVER STATS``: admission/commit/conflict counters."""


@dataclass
class ExplainStmt(Statement):
    statement: Statement = None
    #: EXPLAIN ANALYZE: execute the statement and annotate the plan with
    #: observed seconds/bytes/rows (PostgreSQL semantics: DML mutates).
    analyze: bool = False


@dataclass
class DescribeStmt(Statement):
    table: str
